//! Recursive-descent parser for the template DSL.
//!
//! ```text
//! program  := extern* proc
//! extern   := "extern" NAME "(" type,* ")" ":" type ";"
//! proc     := "proc" NAME "(" param,* ")" block
//! param    := ("in"|"out"|"inout") NAME ":" type
//! type     := "int" | "int[]" | "bool" | NAME        (capitalised = abstract)
//! block    := "{" stmt* "}"
//! stmt     := "local" NAME ":" type ("," NAME ":" type)* ";"
//!           | "assume" "(" pred ")" ";"
//!           | "exit" ";" | "skip" ";"
//!           | "while" "(" pred ")" block
//!           | "if" "(" pred ")" block ("else" block)?
//!           | lval,+ ":=" expr,+ ";"
//! lval     := NAME | NAME "[" expr "]"
//! pred     := conj ("||" conj)*
//! conj     := punit ("&&" punit)*
//! punit    := "!" punit | "*" | "true" | "false" | ?HOLE
//!           | cmp | "(" pred ")" | callpred
//! cmp      := expr (= | != | < | <= | > | >=) expr
//! expr     := term (("+"|"-") term)*
//! term     := unary ("*" unary)*
//! unary    := "-" unary | atom
//! atom     := INT | NAME | NAME "(" expr,* ")" | NAME "[" expr "]"
//!           | "upd" "(" expr "," expr "," expr ")" | ?HOLE | "(" expr ")"
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::ast::*;
use crate::lexer::{lex, LexError, Spanned, Token};

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line (0 for end of input).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses a complete program from DSL source.
///
/// # Errors
///
/// Returns a [`ParseError`] with source position on malformed input,
/// undeclared variables, or type mismatches detectable at parse time.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        program: Program::default(),
        vars: HashMap::new(),
        eholes: HashMap::new(),
        pholes: HashMap::new(),
    };
    p.program()?;
    Ok(p.program)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    program: Program,
    vars: HashMap<String, VarId>,
    eholes: HashMap<String, EHoleId>,
    pholes: HashMap<String, PHoleId>,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .tokens
            .get(self.pos)
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, expected: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected `{expected}`, found `{t}`"))),
            None => Err(self.err(format!("expected `{expected}`, found end of input"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<(), ParseError> {
        while self.eat_keyword("extern") {
            self.extern_decl()?;
        }
        if !self.eat_keyword("proc") {
            return Err(self.err("expected `proc`"));
        }
        self.program.name = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        if self.peek() != Some(&Token::RParen) {
            loop {
                self.param()?;
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        let body = self.block()?;
        self.program.body = body;
        if self.pos != self.tokens.len() {
            return Err(self.err("trailing input after procedure body"));
        }
        Ok(())
    }

    fn extern_decl(&mut self) -> Result<(), ParseError> {
        let name = self.expect_ident()?;
        self.expect(&Token::LParen)?;
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.ty()?);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        self.expect(&Token::Colon)?;
        let (ret, returns_bool) = if self.eat_keyword("bool") {
            (Type::Int, true)
        } else {
            (self.ty()?, false)
        };
        self.expect(&Token::Semi)?;
        self.program.externs.push(ExternDecl {
            name,
            args,
            ret,
            returns_bool,
        });
        Ok(())
    }

    fn param(&mut self) -> Result<(), ParseError> {
        let mode = if self.eat_keyword("inout") {
            Mode::InOut
        } else if self.eat_keyword("in") {
            Mode::In
        } else if self.eat_keyword("out") {
            Mode::Out
        } else {
            return Err(self.err("expected parameter mode `in`, `out`, or `inout`"));
        };
        let name = self.expect_ident()?;
        self.expect(&Token::Colon)?;
        let ty = self.ty()?;
        if self.vars.contains_key(&name) {
            return Err(self.err(format!("duplicate parameter {name}")));
        }
        let id = self.program.add_local(&name, ty);
        self.program.params.push((id, mode));
        self.vars.insert(name, id);
        Ok(())
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let name = self.expect_ident()?;
        if name == "int" {
            if self.peek() == Some(&Token::LBracket) {
                self.pos += 1;
                self.expect(&Token::RBracket)?;
                Ok(Type::IntArray)
            } else {
                Ok(Type::Int)
            }
        } else {
            Ok(Type::Abstract(name))
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&Token::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            if let Some(s) = self.stmt()? {
                stmts.push(s);
            }
        }
        self.expect(&Token::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Option<Stmt>, ParseError> {
        if self.eat_keyword("local") {
            loop {
                let name = self.expect_ident()?;
                self.expect(&Token::Colon)?;
                let ty = self.ty()?;
                if self.vars.contains_key(&name) {
                    return Err(self.err(format!("duplicate variable {name}")));
                }
                let id = self.program.add_local(&name, ty);
                self.vars.insert(name, id);
                if self.peek() == Some(&Token::Comma) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            self.expect(&Token::Semi)?;
            return Ok(None);
        }
        if self.eat_keyword("assume") {
            self.expect(&Token::LParen)?;
            let p = self.pred()?;
            self.expect(&Token::RParen)?;
            self.expect(&Token::Semi)?;
            return Ok(Some(Stmt::Assume(p)));
        }
        if self.eat_keyword("exit") {
            self.expect(&Token::Semi)?;
            return Ok(Some(Stmt::Exit));
        }
        if self.eat_keyword("skip") {
            self.expect(&Token::Semi)?;
            return Ok(Some(Stmt::Skip));
        }
        if self.eat_keyword("while") {
            self.expect(&Token::LParen)?;
            let p = self.pred()?;
            self.expect(&Token::RParen)?;
            let id = LoopId(self.program.num_loops);
            self.program.num_loops += 1;
            let body = self.block()?;
            return Ok(Some(Stmt::While(id, p, body)));
        }
        if self.eat_keyword("if") {
            self.expect(&Token::LParen)?;
            let p = self.pred()?;
            self.expect(&Token::RParen)?;
            let then_body = self.block()?;
            let else_body = if self.eat_keyword("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Some(Stmt::If(p, then_body, else_body)));
        }
        // assignment: lval-list := expr-list
        let mut lvals: Vec<(VarId, Option<Expr>)> = Vec::new();
        loop {
            let name = self.expect_ident()?;
            let var = *self
                .vars
                .get(&name)
                .ok_or_else(|| self.err(format!("undeclared variable {name}")))?;
            if self.peek() == Some(&Token::LBracket) {
                self.pos += 1;
                let idx = self.expr()?;
                self.expect(&Token::RBracket)?;
                lvals.push((var, Some(idx)));
            } else {
                lvals.push((var, None));
            }
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect(&Token::Assign)?;
        let mut rhss = Vec::new();
        loop {
            rhss.push(self.expr()?);
            if self.peek() == Some(&Token::Comma) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.expect(&Token::Semi)?;
        if lvals.len() != rhss.len() {
            return Err(self.err(format!(
                "parallel assignment arity mismatch: {} targets, {} expressions",
                lvals.len(),
                rhss.len()
            )));
        }
        let pairs = lvals
            .into_iter()
            .zip(rhss)
            .map(|((var, idx), rhs)| match idx {
                None => (var, rhs),
                Some(i) => (
                    var,
                    Expr::Upd(Box::new(Expr::Var(var)), Box::new(i), Box::new(rhs)),
                ),
            })
            .collect();
        Ok(Some(Stmt::Assign(pairs)))
    }

    // ---- predicates -------------------------------------------------------

    fn pred(&mut self) -> Result<Pred, ParseError> {
        let mut items = vec![self.conj()?];
        while self.peek() == Some(&Token::OrOr) {
            self.pos += 1;
            items.push(self.conj()?);
        }
        Ok(if items.len() == 1 {
            items.pop().unwrap()
        } else {
            Pred::Or(items)
        })
    }

    fn conj(&mut self) -> Result<Pred, ParseError> {
        let mut items = vec![self.punit()?];
        while self.peek() == Some(&Token::AndAnd) {
            self.pos += 1;
            items.push(self.punit()?);
        }
        Ok(if items.len() == 1 {
            items.pop().unwrap()
        } else {
            Pred::And(items)
        })
    }

    fn punit(&mut self) -> Result<Pred, ParseError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.pos += 1;
                Ok(Pred::Not(Box::new(self.punit()?)))
            }
            Some(Token::Star) => {
                self.pos += 1;
                Ok(Pred::Star)
            }
            Some(Token::Ident(s)) if s == "true" => {
                self.pos += 1;
                Ok(Pred::Bool(true))
            }
            Some(Token::Ident(s)) if s == "false" => {
                self.pos += 1;
                Ok(Pred::Bool(false))
            }
            Some(Token::Hole(name)) if name.starts_with('p') => {
                let name = name.clone();
                self.pos += 1;
                Ok(Pred::Hole(self.phole(&name)))
            }
            Some(Token::LParen) => {
                // backtrack point: try comparison first, else parenthesised pred
                let save = self.pos;
                if let Ok(p) = self.try_cmp() {
                    return Ok(p);
                }
                self.pos = save;
                self.expect(&Token::LParen)?;
                let p = self.pred()?;
                self.expect(&Token::RParen)?;
                Ok(p)
            }
            _ => self.try_cmp(),
        }
    }

    fn try_cmp(&mut self) -> Result<Pred, ParseError> {
        let lhs = self.expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => CmpOp::Eq,
            Some(Token::Ne) => CmpOp::Ne,
            Some(Token::Lt) => CmpOp::Lt,
            Some(Token::Le) => CmpOp::Le,
            Some(Token::Gt) => CmpOp::Gt,
            Some(Token::Ge) => CmpOp::Ge,
            _ => {
                // a boolean extern call used as a predicate
                if let Expr::Call(name, args) = &lhs {
                    if self
                        .program
                        .extern_by_name(name)
                        .is_some_and(|e| e.returns_bool)
                    {
                        return Ok(Pred::Call(name.clone(), args.clone()));
                    }
                }
                return Err(self.err("expected comparison operator"));
            }
        };
        self.pos += 1;
        let rhs = self.expr()?;
        Ok(Pred::Cmp(op, lhs, rhs))
    }

    // ---- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while self.peek() == Some(&Token::Star) {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Token::Minus) {
            self.pos += 1;
            let inner = self.unary()?;
            return Ok(match inner {
                Expr::Int(v) => Expr::Int(-v),
                e => Expr::Sub(Box::new(Expr::Int(0)), Box::new(e)),
            });
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::Int(v)),
            Some(Token::Hole(name)) if name.starts_with('e') => Ok(Expr::Hole(self.ehole(&name))),
            Some(Token::Hole(name)) => Err(self.err(format!(
                "hole ?{name} used in expression position (expression holes start with 'e')"
            ))),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) if name == "upd" => {
                self.expect(&Token::LParen)?;
                let a = self.expr()?;
                self.expect(&Token::Comma)?;
                let i = self.expr()?;
                self.expect(&Token::Comma)?;
                let v = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Upd(Box::new(a), Box::new(i), Box::new(v)))
            }
            Some(Token::Ident(name)) => {
                if self.peek() == Some(&Token::LParen) {
                    // call
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == Some(&Token::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    if self.program.extern_by_name(&name).is_none() {
                        return Err(self.err(format!("call to undeclared function {name}")));
                    }
                    return Ok(Expr::Call(name, args));
                }
                let var = *self
                    .vars
                    .get(&name)
                    .ok_or_else(|| self.err(format!("undeclared variable {name}")))?;
                let mut e = Expr::Var(var);
                while self.peek() == Some(&Token::LBracket) {
                    self.pos += 1;
                    let idx = self.expr()?;
                    self.expect(&Token::RBracket)?;
                    e = Expr::Sel(Box::new(e), Box::new(idx));
                }
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn ehole(&mut self, name: &str) -> EHoleId {
        if let Some(&id) = self.eholes.get(name) {
            return id;
        }
        let id = EHoleId(self.program.num_eholes);
        self.program.num_eholes += 1;
        self.program.ehole_names.push(name.to_owned());
        self.eholes.insert(name.to_owned(), id);
        id
    }

    fn phole(&mut self, name: &str) -> PHoleId {
        if let Some(&id) = self.pholes.get(name) {
            return id;
        }
        let id = PHoleId(self.program.num_pholes);
        self.program.num_pholes += 1;
        self.program.phole_names.push(name.to_owned());
        self.pholes.insert(name.to_owned(), id);
        id
    }
}

/// Parses a single expression against an existing program's variable table
/// (used to read candidate-set entries for Δe).
pub fn parse_expr_in(program: &Program, src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let vars = program
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.name.clone(), VarId(i as u32)))
        .collect();
    let mut p = Parser {
        tokens,
        pos: 0,
        program: program.clone(),
        vars,
        eholes: HashMap::new(),
        pholes: HashMap::new(),
    };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

/// Parses a single predicate against an existing program's variable table
/// (used to read candidate-set entries for Δp).
pub fn parse_pred_in(program: &Program, src: &str) -> Result<Pred, ParseError> {
    let tokens = lex(src)?;
    let vars = program
        .vars
        .iter()
        .enumerate()
        .map(|(i, v)| (v.name.clone(), VarId(i as u32)))
        .collect();
    let mut p = Parser {
        tokens,
        pos: 0,
        program: program.clone(),
        vars,
        eholes: HashMap::new(),
        pholes: HashMap::new(),
    };
    let e = p.pred()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("trailing input after predicate"));
    }
    Ok(e)
}
