//! A concrete interpreter for *closed* programs (no holes, no `*` guards).
//!
//! PINS uses it to validate synthesized inverses on concrete tests (the
//! paper's Section 2.5 methodology), to drive the CEGIS baseline, and to
//! cross-check the symbolic executor in property tests. External library
//! functions are supplied as host closures through [`ExternEnv`], the
//! executable counterpart of the axioms used during synthesis.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;

use crate::ast::*;

/// Runtime values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean (result of boolean externs).
    Bool(bool),
    /// Integer array as a sparse map (absent cells read 0).
    Arr(BTreeMap<i64, i64>),
    /// A sequence value, used for abstract data types (strings, serialized
    /// objects): the executable counterpart of an uninterpreted sort.
    Seq(Vec<Value>),
}

impl Value {
    /// An empty array.
    pub fn empty_arr() -> Value {
        Value::Arr(BTreeMap::new())
    }

    /// Builds an array value from a slice (indices `0..len`).
    pub fn arr_from(items: &[i64]) -> Value {
        Value::Arr(
            items
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as i64, v))
                .collect(),
        )
    }

    /// Extracts an integer.
    pub fn as_int(&self) -> Result<i64, InterpError> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(InterpError::TypeError(format!(
                "expected int, got {other:?}"
            ))),
        }
    }

    /// Extracts an array map.
    pub fn as_arr(&self) -> Result<&BTreeMap<i64, i64>, InterpError> {
        match self {
            Value::Arr(m) => Ok(m),
            other => Err(InterpError::TypeError(format!(
                "expected array, got {other:?}"
            ))),
        }
    }

    /// Reads the first `n` elements of an array value.
    pub fn arr_prefix(&self, n: i64) -> Result<Vec<i64>, InterpError> {
        let m = self.as_arr()?;
        Ok((0..n.max(0))
            .map(|i| m.get(&i).copied().unwrap_or(0))
            .collect())
    }
}

/// Errors raised by interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// An `assume` evaluated to false: the run is outside the program's
    /// precondition (or took an infeasible template path).
    AssumeViolated,
    /// The step budget was exhausted (probable divergence).
    OutOfFuel,
    /// The program contains an unknown hole; only closed programs run.
    HoleInProgram,
    /// A `*` guard was reached; only deterministic programs run.
    NondetGuard,
    /// A called external function has no host implementation.
    MissingExtern(String),
    /// A host extern or operation failed.
    TypeError(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::AssumeViolated => write!(f, "assume violated"),
            InterpError::OutOfFuel => write!(f, "out of fuel"),
            InterpError::HoleInProgram => write!(f, "program contains an unresolved hole"),
            InterpError::NondetGuard => write!(f, "nondeterministic guard in concrete run"),
            InterpError::MissingExtern(n) => write!(f, "missing extern implementation: {n}"),
            InterpError::TypeError(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for InterpError {}

type ExternFn = Rc<dyn Fn(&[Value]) -> Result<Value, InterpError>>;

/// Host implementations for external library functions.
#[derive(Default, Clone)]
pub struct ExternEnv {
    fns: HashMap<String, ExternFn>,
}

impl fmt::Debug for ExternEnv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<&str> = self.fns.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("ExternEnv").field("fns", &names).finish()
    }
}

impl ExternEnv {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a host implementation for `name`.
    pub fn register(
        &mut self,
        name: &str,
        f: impl Fn(&[Value]) -> Result<Value, InterpError> + 'static,
    ) {
        self.fns.insert(name.to_owned(), Rc::new(f));
    }

    /// Invokes a registered extern directly (used by validation harnesses).
    ///
    /// # Errors
    ///
    /// [`InterpError::MissingExtern`] when no host implementation exists,
    /// or whatever the host closure reports.
    pub fn try_call(&self, name: &str, args: &[Value]) -> Result<Value, InterpError> {
        self.call(name, args)
    }

    fn call(&self, name: &str, args: &[Value]) -> Result<Value, InterpError> {
        match self.fns.get(name) {
            Some(f) => f(args),
            None => Err(InterpError::MissingExtern(name.to_owned())),
        }
    }
}

/// The variable store of a run.
pub type Store = HashMap<VarId, Value>;

enum Flow {
    Normal,
    Exited,
}

/// Runs `program` on `inputs` with the given extern environment and fuel
/// (an upper bound on loop iterations + statements).
///
/// # Errors
///
/// See [`InterpError`]. Notably `AssumeViolated` when inputs are outside the
/// precondition and `OutOfFuel` on divergence.
pub fn run(
    program: &Program,
    inputs: &Store,
    env: &ExternEnv,
    fuel: u64,
) -> Result<Store, InterpError> {
    let mut store: Store = Store::new();
    for (i, decl) in program.vars.iter().enumerate() {
        let id = VarId(i as u32);
        let v = inputs
            .get(&id)
            .cloned()
            .unwrap_or_else(|| default_value(&decl.ty));
        store.insert(id, v);
    }
    let mut fuel = fuel;
    exec_block(program, &program.body, &mut store, env, &mut fuel)?;
    Ok(store)
}

fn default_value(ty: &Type) -> Value {
    match ty {
        Type::Int => Value::Int(0),
        Type::IntArray => Value::empty_arr(),
        Type::Abstract(_) => Value::Seq(Vec::new()),
    }
}

fn exec_block(
    p: &Program,
    stmts: &[Stmt],
    store: &mut Store,
    env: &ExternEnv,
    fuel: &mut u64,
) -> Result<Flow, InterpError> {
    for s in stmts {
        match exec_stmt(p, s, store, env, fuel)? {
            Flow::Normal => {}
            Flow::Exited => return Ok(Flow::Exited),
        }
    }
    Ok(Flow::Normal)
}

fn charge(fuel: &mut u64) -> Result<(), InterpError> {
    if *fuel == 0 {
        return Err(InterpError::OutOfFuel);
    }
    *fuel -= 1;
    Ok(())
}

fn exec_stmt(
    p: &Program,
    s: &Stmt,
    store: &mut Store,
    env: &ExternEnv,
    fuel: &mut u64,
) -> Result<Flow, InterpError> {
    charge(fuel)?;
    match s {
        Stmt::Assign(pairs) => {
            let values: Vec<Value> = pairs
                .iter()
                .map(|(_, e)| eval_expr(p, e, store, env))
                .collect::<Result<_, _>>()?;
            for ((v, _), value) in pairs.iter().zip(values) {
                store.insert(*v, value);
            }
            Ok(Flow::Normal)
        }
        Stmt::If(c, t, e) => {
            if eval_pred(p, c, store, env)? {
                exec_block(p, t, store, env, fuel)
            } else {
                exec_block(p, e, store, env, fuel)
            }
        }
        Stmt::While(_, c, body) => {
            while eval_pred(p, c, store, env)? {
                charge(fuel)?;
                match exec_block(p, body, store, env, fuel)? {
                    Flow::Normal => {}
                    Flow::Exited => return Ok(Flow::Exited),
                }
            }
            Ok(Flow::Normal)
        }
        Stmt::Assume(c) => {
            if eval_pred(p, c, store, env)? {
                Ok(Flow::Normal)
            } else {
                Err(InterpError::AssumeViolated)
            }
        }
        Stmt::Exit => Ok(Flow::Exited),
        Stmt::Skip => Ok(Flow::Normal),
    }
}

/// Evaluates an expression in a store.
pub fn eval_expr(
    p: &Program,
    e: &Expr,
    store: &Store,
    env: &ExternEnv,
) -> Result<Value, InterpError> {
    match e {
        Expr::Int(v) => Ok(Value::Int(*v)),
        Expr::Var(v) => Ok(store
            .get(v)
            .cloned()
            .unwrap_or_else(|| default_value(&p.var(*v).ty))),
        Expr::Add(a, b) => {
            let x = eval_expr(p, a, store, env)?.as_int()?;
            let y = eval_expr(p, b, store, env)?.as_int()?;
            Ok(Value::Int(x.wrapping_add(y)))
        }
        Expr::Sub(a, b) => {
            let x = eval_expr(p, a, store, env)?.as_int()?;
            let y = eval_expr(p, b, store, env)?.as_int()?;
            Ok(Value::Int(x.wrapping_sub(y)))
        }
        Expr::Mul(a, b) => {
            let x = eval_expr(p, a, store, env)?.as_int()?;
            let y = eval_expr(p, b, store, env)?.as_int()?;
            Ok(Value::Int(x.wrapping_mul(y)))
        }
        Expr::Sel(a, i) => {
            let arr = eval_expr(p, a, store, env)?;
            let idx = eval_expr(p, i, store, env)?.as_int()?;
            Ok(Value::Int(arr.as_arr()?.get(&idx).copied().unwrap_or(0)))
        }
        Expr::Upd(a, i, v) => {
            let arr = eval_expr(p, a, store, env)?;
            let idx = eval_expr(p, i, store, env)?.as_int()?;
            let val = eval_expr(p, v, store, env)?.as_int()?;
            let mut m = arr.as_arr()?.clone();
            m.insert(idx, val);
            Ok(Value::Arr(m))
        }
        Expr::Call(f, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_expr(p, a, store, env))
                .collect::<Result<_, _>>()?;
            env.call(f, &vals)
        }
        Expr::Hole(_) => Err(InterpError::HoleInProgram),
    }
}

/// Evaluates a predicate in a store.
pub fn eval_pred(
    p: &Program,
    pr: &Pred,
    store: &Store,
    env: &ExternEnv,
) -> Result<bool, InterpError> {
    match pr {
        Pred::Bool(b) => Ok(*b),
        Pred::Cmp(op, a, b) => {
            let x = eval_expr(p, a, store, env)?.as_int()?;
            let y = eval_expr(p, b, store, env)?.as_int()?;
            Ok(match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            })
        }
        Pred::And(items) => {
            for q in items {
                if !eval_pred(p, q, store, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Pred::Or(items) => {
            for q in items {
                if eval_pred(p, q, store, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Pred::Not(q) => Ok(!eval_pred(p, q, store, env)?),
        Pred::Call(f, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_expr(p, a, store, env))
                .collect::<Result<_, _>>()?;
            match env.call(f, &vals)? {
                Value::Bool(b) => Ok(b),
                Value::Int(v) => Ok(v != 0),
                other => Err(InterpError::TypeError(format!(
                    "predicate {f} returned {other:?}"
                ))),
            }
        }
        Pred::Hole(_) => Err(InterpError::HoleInProgram),
        Pred::Star => Err(InterpError::NondetGuard),
    }
}
