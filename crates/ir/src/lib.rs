//! The PINS template language (Section 2.1 of the paper): AST, a readable
//! DSL with parser and pretty printer, and a concrete interpreter.
//!
//! Programs consist of parallel assignments, (sugar-level) conditionals and
//! loops, `assume`, `exit`, and expressions with array `sel`/`upd`, external
//! calls, and *unknown holes* (`?e1`, `?p1`) that the PINS engine fills in
//! from candidate sets.
//!
//! # Example
//!
//! ```
//! use pins_ir::{parse_program, program_to_string};
//!
//! let src = r#"
//! proc double(in n: int, out m: int) {
//!   local i: int;
//!   i := 0; m := 0;
//!   while (i < n) {
//!     m, i := m + 2, i + 1;
//!   }
//! }
//! "#;
//! let p = parse_program(src).unwrap();
//! assert_eq!(p.num_loops, 1);
//! // the printer round-trips through the parser
//! let printed = program_to_string(&p);
//! let p2 = parse_program(&printed).unwrap();
//! assert_eq!(p, p2);
//! ```

mod ast;
mod interp;
mod lexer;
mod parser;
mod printer;

pub use ast::{
    CmpOp, EHoleId, Expr, ExternDecl, LoopId, Mode, PHoleId, Pred, Program, Stmt, Type, VarDecl,
    VarId,
};
pub use interp::{eval_expr, eval_pred, run, ExternEnv, InterpError, Store, Value};
pub use lexer::{lex, LexError, Spanned, Token};
pub use parser::{parse_expr_in, parse_pred_in, parse_program, ParseError};
pub use printer::{expr_to_string, pred_to_string, program_to_string};

#[cfg(test)]
mod tests;
