//! Pretty-printing of programs back to DSL syntax (round-trips through the
//! parser).

use std::fmt::Write as _;

use crate::ast::*;

/// Renders an expression to DSL syntax.
pub fn expr_to_string(p: &Program, e: &Expr) -> String {
    let mut s = String::new();
    write_expr(p, e, &mut s, 0);
    s
}

/// Renders a predicate to DSL syntax.
pub fn pred_to_string(p: &Program, pr: &Pred) -> String {
    let mut s = String::new();
    write_pred(p, pr, &mut s, 0);
    s
}

/// Renders a whole program to DSL syntax.
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    for e in &p.externs {
        let args: Vec<String> = e.args.iter().map(ty_str).collect();
        let ret = if e.returns_bool {
            "bool".to_owned()
        } else {
            ty_str(&e.ret)
        };
        let _ = writeln!(s, "extern {}({}): {};", e.name, args.join(", "), ret);
    }
    let params: Vec<String> = p
        .params
        .iter()
        .map(|&(v, m)| {
            let mode = match m {
                Mode::In => "in",
                Mode::Out => "out",
                Mode::InOut => "inout",
            };
            format!("{} {}: {}", mode, p.var(v).name, ty_str(&p.var(v).ty))
        })
        .collect();
    let _ = writeln!(s, "proc {}({}) {{", p.name, params.join(", "));
    let param_ids: Vec<VarId> = p.params.iter().map(|&(v, _)| v).collect();
    let locals: Vec<String> = p
        .vars
        .iter()
        .enumerate()
        .filter(|(i, _)| !param_ids.contains(&VarId(*i as u32)))
        .map(|(_, v)| format!("{}: {}", v.name, ty_str(&v.ty)))
        .collect();
    if !locals.is_empty() {
        let _ = writeln!(s, "  local {};", locals.join(", "));
    }
    for st in &p.body {
        write_stmt(p, st, &mut s, 1);
    }
    let _ = writeln!(s, "}}");
    s
}

fn ty_str(t: &Type) -> String {
    match t {
        Type::Int => "int".to_owned(),
        Type::IntArray => "int[]".to_owned(),
        Type::Abstract(n) => n.clone(),
    }
}

fn indent(s: &mut String, depth: usize) {
    for _ in 0..depth {
        s.push_str("  ");
    }
}

fn write_stmt(p: &Program, st: &Stmt, s: &mut String, depth: usize) {
    match st {
        Stmt::Assign(pairs) => {
            indent(s, depth);
            // array-store sugar: single pair (A, upd(A, i, v)) prints A[i] := v
            if let [(v, Expr::Upd(base, i, val))] = pairs.as_slice() {
                if **base == Expr::Var(*v) {
                    let _ = write!(s, "{}[", p.var(*v).name);
                    write_expr(p, i, s, 0);
                    s.push_str("] := ");
                    write_expr(p, val, s, 0);
                    s.push_str(";\n");
                    return;
                }
            }
            let lhs: Vec<&str> = pairs.iter().map(|(v, _)| p.var(*v).name.as_str()).collect();
            let _ = write!(s, "{} := ", lhs.join(", "));
            for (i, (_, e)) in pairs.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(p, e, s, 0);
            }
            s.push_str(";\n");
        }
        Stmt::If(c, t, e) => {
            indent(s, depth);
            s.push_str("if (");
            write_pred(p, c, s, 0);
            s.push_str(") {\n");
            for st in t {
                write_stmt(p, st, s, depth + 1);
            }
            indent(s, depth);
            s.push('}');
            if !e.is_empty() {
                s.push_str(" else {\n");
                for st in e {
                    write_stmt(p, st, s, depth + 1);
                }
                indent(s, depth);
                s.push('}');
            }
            s.push('\n');
        }
        Stmt::While(_, c, body) => {
            indent(s, depth);
            s.push_str("while (");
            write_pred(p, c, s, 0);
            s.push_str(") {\n");
            for st in body {
                write_stmt(p, st, s, depth + 1);
            }
            indent(s, depth);
            s.push_str("}\n");
        }
        Stmt::Assume(c) => {
            indent(s, depth);
            s.push_str("assume(");
            write_pred(p, c, s, 0);
            s.push_str(");\n");
        }
        Stmt::Exit => {
            indent(s, depth);
            s.push_str("exit;\n");
        }
        Stmt::Skip => {
            indent(s, depth);
            s.push_str("skip;\n");
        }
    }
}

/// Precedence levels: 0 = additive context, 1 = multiplicative, 2 = atom.
fn write_expr(p: &Program, e: &Expr, s: &mut String, prec: u8) {
    match e {
        Expr::Int(v) => {
            let _ = write!(s, "{v}");
        }
        Expr::Var(v) => s.push_str(&p.var(*v).name),
        Expr::Add(a, b) => {
            if prec > 0 {
                s.push('(');
            }
            write_expr(p, a, s, 0);
            s.push_str(" + ");
            write_expr(p, b, s, 1);
            if prec > 0 {
                s.push(')');
            }
        }
        Expr::Sub(a, b) => {
            if prec > 0 {
                s.push('(');
            }
            write_expr(p, a, s, 0);
            s.push_str(" - ");
            write_expr(p, b, s, 1);
            if prec > 0 {
                s.push(')');
            }
        }
        Expr::Mul(a, b) => {
            if prec > 1 {
                s.push('(');
            }
            write_expr(p, a, s, 1);
            s.push_str(" * ");
            write_expr(p, b, s, 2);
            if prec > 1 {
                s.push(')');
            }
        }
        Expr::Sel(a, i) => {
            write_expr(p, a, s, 2);
            s.push('[');
            write_expr(p, i, s, 0);
            s.push(']');
        }
        Expr::Upd(a, i, v) => {
            s.push_str("upd(");
            write_expr(p, a, s, 0);
            s.push_str(", ");
            write_expr(p, i, s, 0);
            s.push_str(", ");
            write_expr(p, v, s, 0);
            s.push(')');
        }
        Expr::Call(f, args) => {
            s.push_str(f);
            s.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(p, a, s, 0);
            }
            s.push(')');
        }
        Expr::Hole(h) => {
            let _ = write!(s, "?{}", p.ehole_names[h.0 as usize]);
        }
    }
}

fn write_pred(p: &Program, pr: &Pred, s: &mut String, prec: u8) {
    match pr {
        Pred::Bool(b) => {
            let _ = write!(s, "{b}");
        }
        Pred::Cmp(op, a, b) => {
            write_expr(p, a, s, 0);
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            let _ = write!(s, " {sym} ");
            write_expr(p, b, s, 0);
        }
        Pred::And(items) => {
            if prec > 1 {
                s.push('(');
            }
            for (i, q) in items.iter().enumerate() {
                if i > 0 {
                    s.push_str(" && ");
                }
                write_pred(p, q, s, 2);
            }
            if prec > 1 {
                s.push(')');
            }
        }
        Pred::Or(items) => {
            if prec > 0 {
                s.push('(');
            }
            for (i, q) in items.iter().enumerate() {
                if i > 0 {
                    s.push_str(" || ");
                }
                write_pred(p, q, s, 1);
            }
            if prec > 0 {
                s.push(')');
            }
        }
        Pred::Not(q) => {
            s.push('!');
            s.push('(');
            write_pred(p, q, s, 0);
            s.push(')');
        }
        Pred::Call(f, args) => {
            s.push_str(f);
            s.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(p, a, s, 0);
            }
            s.push(')');
        }
        Pred::Hole(h) => {
            let _ = write!(s, "?{}", p.phole_names[h.0 as usize]);
        }
        Pred::Star => s.push('*'),
    }
}
