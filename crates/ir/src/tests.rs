use std::collections::BTreeMap;

use pins_prng::SplitMix64;

use crate::*;

fn cases(light: usize, heavy: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        light
    }
}

const RUNLENGTH: &str = r#"
proc runlength(inout A: int[], in n: int, out N: int[], out m: int) {
  local i: int, r: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) {
    r := 1;
    while (i + 1 < n && A[i] = A[i + 1]) {
      r, i := r + 1, i + 1;
    }
    A[m] := A[i];
    N[m] := r;
    m, i := m + 1, i + 1;
  }
}
"#;

const RL_INVERSE_TEMPLATE: &str = r#"
proc rl_inverse(in A: int[], in N: int[], in m: int, out AI: int[], out iI: int) {
  local mI: int, rI: int;
  iI, mI := ?e1, ?e2;
  while (?p1) {
    rI := ?e3;
    while (?p2) {
      rI, iI, AI := ?e4, ?e5, ?e6;
    }
    mI := ?e7;
  }
}
"#;

#[test]
fn parses_runlength() {
    let p = parse_program(RUNLENGTH).unwrap();
    assert_eq!(p.name, "runlength");
    assert_eq!(p.num_loops, 2);
    assert_eq!(p.params.len(), 4);
    assert_eq!(p.inputs().len(), 2); // A, n
    assert_eq!(p.outputs().len(), 3); // A, N, m
    assert_eq!(p.num_eholes, 0);
    assert_eq!(p.num_pholes, 0);
}

#[test]
fn parses_template_with_holes() {
    let p = parse_program(RL_INVERSE_TEMPLATE).unwrap();
    assert_eq!(p.num_eholes, 7);
    assert_eq!(p.num_pholes, 2);
    assert_eq!(p.ehole_names[0], "e1");
    assert_eq!(p.phole_names[1], "p2");
}

#[test]
fn printer_round_trips() {
    for src in [RUNLENGTH, RL_INVERSE_TEMPLATE] {
        let p = parse_program(src).unwrap();
        let printed = program_to_string(&p);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(p, p2, "round trip mismatch for\n{printed}");
    }
}

#[test]
fn concat_merges_variables_by_name() {
    let p = parse_program(RUNLENGTH).unwrap();
    let t = parse_program(RL_INVERSE_TEMPLATE).unwrap();
    let (c, map, loop_off) = p.concat(&t);
    // A, N, m are shared
    assert_eq!(map[0], p.var_by_name("A").unwrap());
    assert_eq!(loop_off, 2);
    assert_eq!(c.num_loops, 4);
    assert_eq!(c.num_eholes, 7);
    // names resolve uniquely in the combined program
    assert!(c.var_by_name("iI").is_some());
    assert!(c.var_by_name("i").is_some());
}

#[test]
fn parse_errors_have_positions() {
    let err = parse_program("proc f(in x: int) { y := 1; }").unwrap_err();
    assert!(err.message.contains("undeclared variable y"), "{err}");
    assert!(err.line >= 1);
}

#[test]
fn arity_mismatch_rejected() {
    let err = parse_program("proc f(in x: int, out y: int) { y, x := 1; }").unwrap_err();
    assert!(err.message.contains("arity"), "{err}");
}

#[test]
fn extern_calls_type_checked_at_parse() {
    let src = r#"
extern strlen(Str): int;
proc f(in s: Str, out n: int) {
  n := strlen(s);
}
"#;
    let p = parse_program(src).unwrap();
    assert_eq!(p.externs.len(), 1);
    let bad = r#"proc f(in s: Str, out n: int) { n := strlen(s); }"#;
    assert!(parse_program(bad).is_err());
}

// ---------------- interpreter ----------------

fn run_runlength(input: &[i64]) -> (Vec<i64>, Vec<i64>, i64) {
    let p = parse_program(RUNLENGTH).unwrap();
    let mut inputs = Store::new();
    inputs.insert(p.var_by_name("A").unwrap(), Value::arr_from(input));
    inputs.insert(p.var_by_name("n").unwrap(), Value::Int(input.len() as i64));
    let out = run(&p, &inputs, &ExternEnv::new(), 100_000).unwrap();
    let m = out[&p.var_by_name("m").unwrap()].as_int().unwrap();
    let a = out[&p.var_by_name("A").unwrap()].arr_prefix(m).unwrap();
    let n = out[&p.var_by_name("N").unwrap()].arr_prefix(m).unwrap();
    (a, n, m)
}

#[test]
fn runlength_compresses() {
    let (a, n, m) = run_runlength(&[5, 5, 5, 7, 7, 2]);
    assert_eq!(m, 3);
    assert_eq!(a, vec![5, 7, 2]);
    assert_eq!(n, vec![3, 2, 1]);
}

#[test]
fn runlength_empty_input() {
    let (a, n, m) = run_runlength(&[]);
    assert_eq!(m, 0);
    assert!(a.is_empty() && n.is_empty());
}

#[test]
fn runlength_single_element() {
    let (a, n, m) = run_runlength(&[9]);
    assert_eq!(m, 1);
    assert_eq!(a, vec![9]);
    assert_eq!(n, vec![1]);
}

#[test]
fn assume_violation_reported() {
    let p = parse_program(RUNLENGTH).unwrap();
    let mut inputs = Store::new();
    inputs.insert(p.var_by_name("n").unwrap(), Value::Int(-1));
    let err = run(&p, &inputs, &ExternEnv::new(), 1000).unwrap_err();
    assert_eq!(err, InterpError::AssumeViolated);
}

#[test]
fn fuel_exhaustion_detected() {
    let src = r#"
proc spin(in n: int, out x: int) {
  x := 0;
  while (0 < 1) { x := x + 1; }
}
"#;
    let p = parse_program(src).unwrap();
    let err = run(&p, &Store::new(), &ExternEnv::new(), 500).unwrap_err();
    assert_eq!(err, InterpError::OutOfFuel);
}

#[test]
fn holes_do_not_execute() {
    let p = parse_program(RL_INVERSE_TEMPLATE).unwrap();
    let err = run(&p, &Store::new(), &ExternEnv::new(), 1000).unwrap_err();
    assert_eq!(err, InterpError::HoleInProgram);
}

#[test]
fn externs_execute_via_host_closures() {
    let src = r#"
extern strlen(Str): int;
proc f(in s: Str, out n: int) {
  n := strlen(s);
}
"#;
    let p = parse_program(src).unwrap();
    let mut env = ExternEnv::new();
    env.register("strlen", |args| match &args[0] {
        Value::Seq(items) => Ok(Value::Int(items.len() as i64)),
        other => Err(InterpError::TypeError(format!("strlen on {other:?}"))),
    });
    let mut inputs = Store::new();
    inputs.insert(
        p.var_by_name("s").unwrap(),
        Value::Seq(vec![Value::Int(104), Value::Int(105)]),
    );
    let out = run(&p, &inputs, &env, 1000).unwrap();
    assert_eq!(out[&p.var_by_name("n").unwrap()], Value::Int(2));
}

#[test]
fn parallel_assignment_is_simultaneous() {
    let src = r#"
proc swap(inout x: int, inout y: int) {
  x, y := y, x;
}
"#;
    let p = parse_program(src).unwrap();
    let mut inputs = Store::new();
    inputs.insert(p.var_by_name("x").unwrap(), Value::Int(1));
    inputs.insert(p.var_by_name("y").unwrap(), Value::Int(2));
    let out = run(&p, &inputs, &ExternEnv::new(), 100).unwrap();
    assert_eq!(out[&p.var_by_name("x").unwrap()], Value::Int(2));
    assert_eq!(out[&p.var_by_name("y").unwrap()], Value::Int(1));
}

#[test]
fn exit_stops_execution() {
    let src = r#"
proc f(out x: int) {
  x := 1;
  exit;
  x := 2;
}
"#;
    let p = parse_program(src).unwrap();
    let out = run(&p, &Store::new(), &ExternEnv::new(), 100).unwrap();
    assert_eq!(out[&p.var_by_name("x").unwrap()], Value::Int(1));
}

#[test]
fn array_store_sugar_and_upd_agree() {
    let src1 = r#"
proc f(inout A: int[]) {
  A[3] := 7;
}
"#;
    let src2 = r#"
proc f(inout A: int[]) {
  A := upd(A, 3, 7);
}
"#;
    let p1 = parse_program(src1).unwrap();
    let p2 = parse_program(src2).unwrap();
    let out1 = run(&p1, &Store::new(), &ExternEnv::new(), 100).unwrap();
    let out2 = run(&p2, &Store::new(), &ExternEnv::new(), 100).unwrap();
    let a1 = out1[&p1.var_by_name("A").unwrap()].clone();
    let a2 = out2[&p2.var_by_name("A").unwrap()].clone();
    assert_eq!(a1, a2);
    let mut expect = BTreeMap::new();
    expect.insert(3, 7);
    assert_eq!(a1, Value::Arr(expect));
}

#[test]
fn parse_expr_in_existing_program() {
    let p = parse_program(RUNLENGTH).unwrap();
    let e = parse_expr_in(&p, "m + 1").unwrap();
    assert_eq!(
        e,
        Expr::Add(
            Box::new(Expr::Var(p.var_by_name("m").unwrap())),
            Box::new(Expr::Int(1))
        )
    );
    let pr = parse_pred_in(&p, "r > 0").unwrap();
    assert!(matches!(pr, Pred::Cmp(CmpOp::Gt, _, _)));
}

#[test]
fn nested_pred_parens_parse() {
    let p = parse_program(RUNLENGTH).unwrap();
    let pr = parse_pred_in(&p, "(i < n) && (r > 0 || !(m = 0))").unwrap();
    assert!(matches!(pr, Pred::And(_)));
}

#[test]
fn runlength_output_is_consistent() {
    let mut rng = SplitMix64::new(0x12_0001);
    for _ in 0..cases(64, 512) {
        let input: Vec<i64> = (0..rng.gen_index(24))
            .map(|_| rng.gen_range(0..4))
            .collect();
        // decompressing the compressor's output by hand reproduces the input
        let (vals, counts, m) = run_runlength(&input);
        assert_eq!(vals.len(), m as usize);
        let mut rebuilt = Vec::new();
        for (v, c) in vals.iter().zip(&counts) {
            assert!(*c >= 1);
            for _ in 0..*c {
                rebuilt.push(*v);
            }
        }
        assert_eq!(rebuilt, input);
    }
}

#[test]
fn printer_parser_round_trip_on_rl_variants() {
    for seed in 0..cases(64, 1000) as u64 {
        // perturb the run-length program with extra skip/assume statements
        let mut src = String::from(RUNLENGTH);
        if seed % 2 == 0 {
            src = src.replace("r := 1;", "r := 1; skip;");
        }
        if seed % 3 == 0 {
            src = src.replace("i := 0; m := 0;", "i, m := 0, 0; assume(true);");
        }
        let p = parse_program(&src).unwrap();
        let printed = program_to_string(&p);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p, p2);
    }
}
