//! A hand-written lexer for the template DSL.

use std::fmt;

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword.
    Ident(String),
    /// A hole name: `?e1`, `?p2`.
    Hole(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Hole(s) => write!(f, "?{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Assign => write!(f, ":="),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
            Token::Bang => write!(f, "!"),
        }
    }
}

/// A token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A lexing error with position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`. `//` starts a line comment.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned {
                token: $tok,
                line,
                col,
            });
            i += $len;
            col += $len as u32;
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if next == Some('/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => push!(Token::LParen, 1),
            ')' => push!(Token::RParen, 1),
            '{' => push!(Token::LBrace, 1),
            '}' => push!(Token::RBrace, 1),
            '[' => push!(Token::LBracket, 1),
            ']' => push!(Token::RBracket, 1),
            ',' => push!(Token::Comma, 1),
            ';' => push!(Token::Semi, 1),
            '+' => push!(Token::Plus, 1),
            '-' => push!(Token::Minus, 1),
            '*' => push!(Token::Star, 1),
            ':' if next == Some('=') => push!(Token::Assign, 2),
            ':' => push!(Token::Colon, 1),
            '=' if next == Some('=') => push!(Token::Eq, 2),
            '=' => push!(Token::Eq, 1),
            '!' if next == Some('=') => push!(Token::Ne, 2),
            '!' => push!(Token::Bang, 1),
            '<' if next == Some('=') => push!(Token::Le, 2),
            '<' => push!(Token::Lt, 1),
            '>' if next == Some('=') => push!(Token::Ge, 2),
            '>' => push!(Token::Gt, 1),
            '&' if next == Some('&') => push!(Token::AndAnd, 2),
            '|' if next == Some('|') => push!(Token::OrOr, 2),
            '?' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if j == start {
                    return Err(LexError {
                        message: "expected hole name after '?'".into(),
                        line,
                        col,
                    });
                }
                let name: String = chars[start..j].iter().collect();
                let len = j - i;
                push!(Token::Hole(name), len);
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let value = text.parse::<i64>().map_err(|_| LexError {
                    message: format!("integer literal out of range: {text}"),
                    line,
                    col,
                })?;
                let len = j - i;
                push!(Token::Int(value), len);
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let name: String = chars[start..j].iter().collect();
                let len = j - i;
                push!(Token::Ident(name), len);
            }
            _ => {
                return Err(LexError {
                    message: format!("unexpected character {c:?}"),
                    line,
                    col,
                })
            }
        }
    }
    Ok(out)
}
