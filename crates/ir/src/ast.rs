//! The template language of Section 2.1: statements with parallel
//! assignment, nondeterministic control flow, `assume`, and expressions
//! with array reads/writes, external calls, and unknown holes.

/// Index of a variable in its [`Program`]'s variable table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Identity of a loop, used by termination-constraint generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

/// Identity of an unknown expression hole.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EHoleId(pub u32);

/// Identity of an unknown predicate hole.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PHoleId(pub u32);

/// Variable and expression types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// Mathematical integer.
    Int,
    /// Integer array.
    IntArray,
    /// An abstract data type modelled by axioms (e.g. `Str`, `Angle`).
    Abstract(String),
}

/// A declared variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Source name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// Direction of a procedure parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Input only.
    In,
    /// Output only.
    Out,
    /// Both input and output (destructive update).
    InOut,
}

/// Signature of an external (library) function, modelled by axioms during
/// synthesis and by a host closure during concrete interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExternDecl {
    /// Function name.
    pub name: String,
    /// Argument types.
    pub args: Vec<Type>,
    /// Return type (`Type::Int`, abstract, or bool — see `returns_bool`).
    pub ret: Type,
    /// Whether the function is a boolean predicate.
    pub returns_bool: bool,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(VarId),
    /// Addition.
    Add(Box<Expr>, Box<Expr>),
    /// Subtraction.
    Sub(Box<Expr>, Box<Expr>),
    /// Multiplication.
    Mul(Box<Expr>, Box<Expr>),
    /// Array read `sel(a, i)`, written `a[i]`.
    Sel(Box<Expr>, Box<Expr>),
    /// Functional array write `upd(a, i, v)`.
    Upd(Box<Expr>, Box<Expr>, Box<Expr>),
    /// External function call.
    Call(String, Vec<Expr>),
    /// Unknown expression hole (to be instantiated from Δe).
    Hole(EHoleId),
}

/// Comparison operators of predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Predicates (guards and assumptions).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Constant.
    Bool(bool),
    /// Comparison of two expressions.
    Cmp(CmpOp, Expr, Expr),
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// Boolean external call.
    Call(String, Vec<Expr>),
    /// Unknown predicate hole (to be instantiated from subsets of Δp).
    Hole(PHoleId),
    /// Nondeterministic choice `*`.
    Star,
}

/// Statements. Sequencing is a `Vec<Stmt>` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Parallel assignment `x1, ..., xn := e1, ..., en`.
    Assign(Vec<(VarId, Expr)>),
    /// Conditional (sugar for nondeterministic choice + `assume` per §2.1).
    If(Pred, Vec<Stmt>, Vec<Stmt>),
    /// Loop (sugar for `while(*){assume(p); body}; assume(!p)`).
    While(LoopId, Pred, Vec<Stmt>),
    /// `assume(p)`.
    Assume(Pred),
    /// Program exit marker.
    Exit,
    /// No-op.
    Skip,
}

/// A whole procedure: the unit PINS works on.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Procedure name.
    pub name: String,
    /// All variables (parameters first, then locals).
    pub vars: Vec<VarDecl>,
    /// Parameter modes, parallel to the parameter prefix of `vars`.
    pub params: Vec<(VarId, Mode)>,
    /// External function signatures used by the body.
    pub externs: Vec<ExternDecl>,
    /// The body.
    pub body: Vec<Stmt>,
    /// Number of loops (loop ids are `0..num_loops`).
    pub num_loops: u32,
    /// Number of expression holes.
    pub num_eholes: u32,
    /// Number of predicate holes.
    pub num_pholes: u32,
    /// Source names of expression holes, indexed by [`EHoleId`].
    pub ehole_names: Vec<String>,
    /// Source names of predicate holes, indexed by [`PHoleId`].
    pub phole_names: Vec<String>,
}

impl Program {
    /// Looks up a variable by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// The declaration of `v`.
    pub fn var(&self, v: VarId) -> &VarDecl {
        &self.vars[v.0 as usize]
    }

    /// Input variables (modes `in` and `inout`), in declaration order.
    pub fn inputs(&self) -> Vec<VarId> {
        self.params
            .iter()
            .filter(|(_, m)| matches!(m, Mode::In | Mode::InOut))
            .map(|&(v, _)| v)
            .collect()
    }

    /// Output variables (modes `out` and `inout`), in declaration order.
    pub fn outputs(&self) -> Vec<VarId> {
        self.params
            .iter()
            .filter(|(_, m)| matches!(m, Mode::Out | Mode::InOut))
            .map(|&(v, _)| v)
            .collect()
    }

    /// The extern declaration for `name`.
    pub fn extern_by_name(&self, name: &str) -> Option<&ExternDecl> {
        self.externs.iter().find(|e| e.name == name)
    }

    /// `true` when the program is *closed*: no expression or predicate
    /// holes and no `*` guards anywhere in the body, so concrete
    /// interpretation cannot fail with `HoleInProgram`/`NondetGuard`. Used
    /// by differential-testing harnesses to decide which programs are
    /// runnable on both the concrete and symbolic semantics.
    pub fn is_closed(&self) -> bool {
        fn expr_closed(e: &Expr) -> bool {
            match e {
                Expr::Int(_) | Expr::Var(_) => true,
                Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Sel(a, b) => {
                    expr_closed(a) && expr_closed(b)
                }
                Expr::Upd(a, b, c) => expr_closed(a) && expr_closed(b) && expr_closed(c),
                Expr::Call(_, args) => args.iter().all(expr_closed),
                Expr::Hole(_) => false,
            }
        }
        fn pred_closed(p: &Pred) -> bool {
            match p {
                Pred::Bool(_) => true,
                Pred::Cmp(_, a, b) => expr_closed(a) && expr_closed(b),
                Pred::And(ps) | Pred::Or(ps) => ps.iter().all(pred_closed),
                Pred::Not(q) => pred_closed(q),
                Pred::Call(_, args) => args.iter().all(expr_closed),
                Pred::Hole(_) | Pred::Star => false,
            }
        }
        fn stmt_closed(s: &Stmt) -> bool {
            match s {
                Stmt::Assign(pairs) => pairs.iter().all(|(_, e)| expr_closed(e)),
                Stmt::If(c, t, e) => {
                    pred_closed(c) && t.iter().all(stmt_closed) && e.iter().all(stmt_closed)
                }
                Stmt::While(_, c, body) => pred_closed(c) && body.iter().all(stmt_closed),
                Stmt::Assume(c) => pred_closed(c),
                Stmt::Exit | Stmt::Skip => true,
            }
        }
        self.body.iter().all(stmt_closed)
    }

    /// Declares a fresh local variable, returning its id.
    pub fn add_local(&mut self, name: &str, ty: Type) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.to_owned(),
            ty,
        });
        id
    }

    /// Concatenates `self` with `other` (the inverse template), merging
    /// variable tables by name: variables of `other` that share a name with
    /// a variable of `self` refer to the same slot; others are appended.
    /// Returns the combined program together with the variable mapping for
    /// `other` and the loop-id offset of `other`'s loops.
    pub fn concat(&self, other: &Program) -> (Program, Vec<VarId>, u32) {
        let mut combined = self.clone();
        combined.name = format!("{};{}", self.name, other.name);
        let mut map: Vec<VarId> = Vec::with_capacity(other.vars.len());
        for v in &other.vars {
            if let Some(existing) = combined.var_by_name(&v.name) {
                assert_eq!(
                    combined.var(existing).ty,
                    v.ty,
                    "variable {} re-declared with a different type",
                    v.name
                );
                map.push(existing);
            } else {
                map.push(combined.add_local(&v.name, v.ty.clone()));
            }
        }
        for e in &other.externs {
            if combined.extern_by_name(&e.name).is_none() {
                combined.externs.push(e.clone());
            }
        }
        let loop_offset = combined.num_loops;
        let ehole_offset = combined.num_eholes;
        let phole_offset = combined.num_pholes;
        let remapped: Vec<Stmt> = other
            .body
            .iter()
            .map(|s| remap_stmt(s, &map, loop_offset, ehole_offset, phole_offset))
            .collect();
        combined.body.extend(remapped);
        combined.num_loops += other.num_loops;
        combined.num_eholes += other.num_eholes;
        combined.num_pholes += other.num_pholes;
        combined
            .ehole_names
            .extend(other.ehole_names.iter().cloned());
        combined
            .phole_names
            .extend(other.phole_names.iter().cloned());
        (combined, map, loop_offset)
    }
}

fn remap_expr(e: &Expr, map: &[VarId], eoff: u32) -> Expr {
    match e {
        Expr::Int(v) => Expr::Int(*v),
        Expr::Var(v) => Expr::Var(map[v.0 as usize]),
        Expr::Add(a, b) => Expr::Add(
            Box::new(remap_expr(a, map, eoff)),
            Box::new(remap_expr(b, map, eoff)),
        ),
        Expr::Sub(a, b) => Expr::Sub(
            Box::new(remap_expr(a, map, eoff)),
            Box::new(remap_expr(b, map, eoff)),
        ),
        Expr::Mul(a, b) => Expr::Mul(
            Box::new(remap_expr(a, map, eoff)),
            Box::new(remap_expr(b, map, eoff)),
        ),
        Expr::Sel(a, b) => Expr::Sel(
            Box::new(remap_expr(a, map, eoff)),
            Box::new(remap_expr(b, map, eoff)),
        ),
        Expr::Upd(a, b, c) => Expr::Upd(
            Box::new(remap_expr(a, map, eoff)),
            Box::new(remap_expr(b, map, eoff)),
            Box::new(remap_expr(c, map, eoff)),
        ),
        Expr::Call(f, args) => Expr::Call(
            f.clone(),
            args.iter().map(|a| remap_expr(a, map, eoff)).collect(),
        ),
        Expr::Hole(h) => Expr::Hole(EHoleId(h.0 + eoff)),
    }
}

fn remap_pred(p: &Pred, map: &[VarId], eoff: u32, poff: u32) -> Pred {
    match p {
        Pred::Bool(b) => Pred::Bool(*b),
        Pred::Cmp(op, a, b) => Pred::Cmp(*op, remap_expr(a, map, eoff), remap_expr(b, map, eoff)),
        Pred::And(ps) => Pred::And(ps.iter().map(|q| remap_pred(q, map, eoff, poff)).collect()),
        Pred::Or(ps) => Pred::Or(ps.iter().map(|q| remap_pred(q, map, eoff, poff)).collect()),
        Pred::Not(q) => Pred::Not(Box::new(remap_pred(q, map, eoff, poff))),
        Pred::Call(f, args) => Pred::Call(
            f.clone(),
            args.iter().map(|a| remap_expr(a, map, eoff)).collect(),
        ),
        Pred::Hole(h) => Pred::Hole(PHoleId(h.0 + poff)),
        Pred::Star => Pred::Star,
    }
}

fn remap_stmt(s: &Stmt, map: &[VarId], loff: u32, eoff: u32, poff: u32) -> Stmt {
    match s {
        Stmt::Assign(pairs) => Stmt::Assign(
            pairs
                .iter()
                .map(|(v, e)| (map[v.0 as usize], remap_expr(e, map, eoff)))
                .collect(),
        ),
        Stmt::If(p, t, e) => Stmt::If(
            remap_pred(p, map, eoff, poff),
            t.iter()
                .map(|s| remap_stmt(s, map, loff, eoff, poff))
                .collect(),
            e.iter()
                .map(|s| remap_stmt(s, map, loff, eoff, poff))
                .collect(),
        ),
        Stmt::While(id, p, body) => Stmt::While(
            LoopId(id.0 + loff),
            remap_pred(p, map, eoff, poff),
            body.iter()
                .map(|s| remap_stmt(s, map, loff, eoff, poff))
                .collect(),
        ),
        Stmt::Assume(p) => Stmt::Assume(remap_pred(p, map, eoff, poff)),
        Stmt::Exit => Stmt::Exit,
        Stmt::Skip => Stmt::Skip,
    }
}
