use std::collections::HashSet;

use pins_ir::{parse_expr_in, parse_pred_in, parse_program, Program};
use pins_smt::{SmtConfig, SmtSession};

use crate::*;

const SUM: &str = r#"
proc sum(in n: int, out s: int) {
  local i: int;
  assume(n >= 0);
  i := 0; s := 0;
  while (i < n) {
    s, i := s + i, i + 1;
  }
}
"#;

fn sum_program() -> Program {
    parse_program(SUM).unwrap()
}

#[test]
fn first_path_skips_the_loop() {
    let p = sum_program();
    let mut ctx = SymCtx::new(&p);
    let mut ex = Explorer::new(&p, ExploreConfig::default());
    let path = ex
        .explore_one(&mut ctx, &EmptyFiller, &HashSet::new())
        .unwrap();
    // exit-first: loop not taken; conjuncts say n>=0, i1=0, s1=0, !(i1<n)
    assert_eq!(path.conjuncts.len(), 4);
    // the final version map has i and s at version 1
    let i = p.var_by_name("i").unwrap();
    let s = p.var_by_name("s").unwrap();
    assert_eq!(version_of(&path.final_vmap, i), 1);
    assert_eq!(version_of(&path.final_vmap, s), 1);
}

#[test]
fn avoid_set_forces_new_paths() {
    let p = sum_program();
    let mut ctx = SymCtx::new(&p);
    let mut avoid = HashSet::new();
    let mut lengths = Vec::new();
    for _ in 0..3 {
        let mut ex = Explorer::new(&p, ExploreConfig::default());
        let path = ex.explore_one(&mut ctx, &EmptyFiller, &avoid).unwrap();
        assert!(avoid.insert(path.key), "duplicate path returned");
        lengths.push(path.conjuncts.len());
    }
    // progressively deeper paths (0, 1, 2 loop iterations)
    assert!(
        lengths[0] < lengths[1] && lengths[1] < lengths[2],
        "{lengths:?}"
    );
}

#[test]
fn path_condition_is_satisfiable() {
    let p = sum_program();
    let mut ctx = SymCtx::new(&p);
    let mut avoid = HashSet::new();
    let mut session = SmtSession::new(SmtConfig::default());
    for _ in 0..3 {
        let mut ex = Explorer::new(&p, ExploreConfig::default());
        let path = ex.explore_one(&mut ctx, &EmptyFiller, &avoid).unwrap();
        avoid.insert(path.key);
        let r = session.check_under(&mut ctx.arena, &path.conjuncts);
        assert!(r.is_sat(), "explored path must be feasible");
    }
}

#[test]
fn infeasible_branches_are_pruned() {
    let src = r#"
proc f(in n: int, out x: int) {
  assume(n > 5);
  if (n < 3) {
    x := 1;
  } else {
    x := 2;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let mut ctx = SymCtx::new(&p);
    let mut ex = Explorer::new(&p, ExploreConfig::default());
    let mut avoid = HashSet::new();
    let first = ex.explore_one(&mut ctx, &EmptyFiller, &avoid).unwrap();
    avoid.insert(first.key);
    // only the else branch is feasible: no second path exists
    let mut ex2 = Explorer::new(&p, ExploreConfig::default());
    assert!(ex2.explore_one(&mut ctx, &EmptyFiller, &avoid).is_none());
}

#[test]
fn enumerate_counts_paths() {
    // one loop, unroll bound k => k+1 complete paths (0..=k iterations)
    let p = sum_program();
    let mut ctx = SymCtx::new(&p);
    let cfg = ExploreConfig {
        max_unroll: 3,
        check_feasibility: false,
        ..ExploreConfig::default()
    };
    let mut ex = Explorer::new(&p, cfg);
    let paths = ex.enumerate(&mut ctx, &EmptyFiller, 1000);
    assert_eq!(paths.len(), 4);
}

#[test]
fn nested_loop_path_counts() {
    let src = r#"
proc f(in n: int, out x: int) {
  local i: int, j: int;
  i := 0;
  while (i < n) {
    j := 0;
    while (j < n) { j := j + 1; }
    i := i + 1;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let mut ctx = SymCtx::new(&p);
    let cfg = ExploreConfig {
        max_unroll: 2,
        check_feasibility: false,
        ..ExploreConfig::default()
    };
    let mut ex = Explorer::new(&p, cfg);
    let paths = ex.enumerate(&mut ctx, &EmptyFiller, 10_000);
    // outer 0 iters: 1; outer 1: inner 0..2 = 3; outer 2: 3*3 = 9 -> 13
    // (max_unroll counts total entries per loop id on a path, so the inner
    // loop budget is shared across outer iterations: outer-2 paths have
    // inner splits a+b<=2: (0,0),(0,1),(1,0),(1,1),(0,2),(2,0) = 6)
    // total = 1 + 3 + 6 = 10
    assert_eq!(paths.len(), 10);
}

#[test]
fn holes_appear_in_conditions_with_version_maps() {
    let src = r#"
proc t(in m: int, out x: int) {
  local i: int;
  i := ?e1;
  while (?p1) {
    i := i + 1;
  }
  x := i;
}
"#;
    let p = parse_program(src).unwrap();
    let mut ctx = SymCtx::new(&p);
    let cfg = ExploreConfig {
        check_feasibility: false,
        ..ExploreConfig::default()
    };
    let mut ex = Explorer::new(&p, cfg);
    let mut avoid = HashSet::new();
    let path1 = ex.explore_one(&mut ctx, &EmptyFiller, &avoid).unwrap();
    avoid.insert(path1.key);
    let mut ex2 = Explorer::new(
        &p,
        ExploreConfig {
            check_feasibility: false,
            ..Default::default()
        },
    );
    let path2 = ex2.explore_one(&mut ctx, &EmptyFiller, &avoid).unwrap();
    // the predicate hole occurs under at least two different version maps
    let occs = ctx.occurrences();
    let pred_occs: Vec<_> = occs
        .iter()
        .filter(|o| matches!(o.kind, HoleKind::Pred(_)))
        .collect();
    assert!(
        pred_occs.len() >= 2,
        "expected multiple versioned occurrences"
    );
    let _ = path2;
}

#[test]
fn filler_guides_execution_to_matching_paths() {
    let src = r#"
proc t(in n: int, out x: int) {
  assume(n = 3);
  if (?p1) {
    x := 1;
  } else {
    x := 2;
  }
}
"#;
    let p = parse_program(src).unwrap();
    let mut ctx = SymCtx::new(&p);
    // fill ?p1 with n < 0: the then-branch is infeasible under S
    let mut filler = MapFiller::default();
    filler
        .preds
        .insert(pins_ir::PHoleId(0), parse_pred_in(&p, "n < 0").unwrap());
    let cfg = ExploreConfig {
        exit_first: false,
        ..ExploreConfig::default()
    };
    let mut ex = Explorer::new(&p, cfg);
    let path = ex.explore_one(&mut ctx, &filler, &HashSet::new()).unwrap();
    // the substituted condition of the taken path must be satisfiable;
    // combined with assume(n=3), only the else branch works, whose
    // substituted form contains !(n < 0)
    let r = SmtSession::new(SmtConfig::default()).check_under(&mut ctx.arena, &path.substituted);
    assert!(r.is_sat());
    // x must end as 2 on this path: conjunct x@1 = 2 present
    let x = p.var_by_name("x").unwrap();
    let x1 = ctx.var_term(x, 1);
    let two = ctx.arena.mk_int(2);
    let expect = ctx.arena.mk_eq(x1, two);
    assert!(path.conjuncts.contains(&expect));
}

#[test]
fn apply_filler_translates_under_occurrence_vmap() {
    let src = r#"
proc t(in n: int, out x: int) {
  x := 5;
  x := ?e1;
}
"#;
    let p = parse_program(src).unwrap();
    let mut ctx = SymCtx::new(&p);
    let cfg = ExploreConfig {
        check_feasibility: false,
        ..ExploreConfig::default()
    };
    let mut ex = Explorer::new(&p, cfg);
    let path = ex
        .explore_one(&mut ctx, &EmptyFiller, &HashSet::new())
        .unwrap();
    // condition: x@1 = 5, x@2 = hole(e1 @ {x->1})
    let mut filler = MapFiller::default();
    filler
        .exprs
        .insert(pins_ir::EHoleId(0), parse_expr_in(&p, "x + 1").unwrap());
    let last = *path.conjuncts.last().unwrap();
    let substituted = apply_filler_term(&mut ctx, &p, last, &filler);
    // the candidate `x + 1` must be read at version 1 (value 5), so
    // x@2 = x@1 + 1; combined with x@1 = 5 and x@2 != 6 -> unsat
    let x = p.var_by_name("x").unwrap();
    let x2 = ctx.var_term(x, 2);
    let six = ctx.arena.mk_int(6);
    let ne = ctx.arena.mk_neq(x2, six);
    let first = path.conjuncts[0];
    let mut session = SmtSession::new(SmtConfig::default());
    assert!(session.is_unsat_under(&mut ctx.arena, &[first, substituted, ne]));
}

#[test]
fn loop_entry_prefixes_recorded() {
    let p = sum_program();
    let mut ctx = SymCtx::new(&p);
    let mut ex = Explorer::new(&p, ExploreConfig::default());
    let path = ex
        .explore_one(&mut ctx, &EmptyFiller, &HashSet::new())
        .unwrap();
    assert_eq!(path.loop_entries.len(), 1);
    let (lid, prefix, vmap) = &path.loop_entries[0];
    assert_eq!(lid.0, 0);
    // prefix covers assume(n>=0) and the initialisation assignments
    assert_eq!(*prefix, 3);
    let i = p.var_by_name("i").unwrap();
    assert_eq!(version_of(vmap, i), 1);
}

#[test]
fn exit_statement_ends_paths() {
    let src = r#"
proc f(in n: int, out x: int) {
  x := 1;
  exit;
  x := 2;
}
"#;
    let p = parse_program(src).unwrap();
    let mut ctx = SymCtx::new(&p);
    let mut ex = Explorer::new(&p, ExploreConfig::default());
    let path = ex
        .explore_one(&mut ctx, &EmptyFiller, &HashSet::new())
        .unwrap();
    assert_eq!(path.conjuncts.len(), 1); // only x@1 = 1
    let x = p.var_by_name("x").unwrap();
    assert_eq!(version_of(&path.final_vmap, x), 1);
}

#[test]
fn star_guards_branch_freely() {
    let src = r#"
proc f(out x: int) {
  if (*) { x := 1; } else { x := 2; }
}
"#;
    let p = parse_program(src).unwrap();
    let mut ctx = SymCtx::new(&p);
    let cfg = ExploreConfig {
        check_feasibility: false,
        ..ExploreConfig::default()
    };
    let mut ex = Explorer::new(&p, cfg);
    let paths = ex.enumerate(&mut ctx, &EmptyFiller, 100);
    assert_eq!(paths.len(), 2);
}
