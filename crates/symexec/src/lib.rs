//! The PINS symbolic executor (Figure 3 of the paper).
//!
//! Programs may contain *unknowns* — expression and predicate holes — whose
//! evaluation is deferred: an unknown evaluated under version map `V` is
//! recorded as the pair `(hole, V)` inside the path condition, so the
//! condition retains enough history to interpret the unknown at any point
//! (§2.2). A *solution* (candidate assignment of holes) guides the path
//! search: assumptions are checked for satisfiability under the solution
//! with the SMT solver, and previously explored paths (the set `F`) are
//! avoided.
//!
//! # Example
//!
//! ```
//! use pins_ir::parse_program;
//! use pins_symexec::{Explorer, ExploreConfig, EmptyFiller, SymCtx};
//! use std::collections::HashSet;
//!
//! let p = parse_program(
//!     "proc f(in n: int, out s: int) {
//!        local i: int;
//!        i := 0; s := 0;
//!        while (i < n) { s, i := s + i, i + 1; }
//!      }",
//! ).unwrap();
//! let mut ctx = SymCtx::new(&p);
//! let mut explorer = Explorer::new(&p, ExploreConfig::default());
//! let path = explorer
//!     .explore_one(&mut ctx, &EmptyFiller, &HashSet::new())
//!     .expect("some feasible path");
//! assert!(!path.conjuncts.is_empty());
//! ```

mod ctx;
mod explore;

pub use ctx::{sort_of, version_of, HoleKind, HoleOcc, SymCtx, VersionMap};
pub use explore::{
    apply_filler_term, sort_for_var, EmptyFiller, ExploreConfig, Explorer, HoleFiller, MapFiller,
    PathResult,
};

#[cfg(test)]
mod tests;
