//! Translation context: maps IR programs into logic terms under version
//! maps, tracking hole occurrences exactly as in Figure 3 of the paper
//! (an unknown evaluated under version map `V` becomes the pair `(hole, V)`).

use std::collections::{BTreeMap, HashMap};

use pins_ir::{CmpOp, EHoleId, Expr, PHoleId, Pred, Program, Type, VarId};
use pins_logic::{Sort, Symbol, TermArena, TermId};

/// A version map `V`: SSA-style version per variable (absent = version 0).
pub type VersionMap = BTreeMap<VarId, u32>;

/// Version of `v` under `vmap`.
pub fn version_of(vmap: &VersionMap, v: VarId) -> u32 {
    vmap.get(&v).copied().unwrap_or(0)
}

/// Which unknown an occurrence refers to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HoleKind {
    /// Expression hole.
    Expr(EHoleId),
    /// Predicate hole.
    Pred(PHoleId),
}

/// An unknown paired with the version map at its evaluation point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HoleOcc {
    /// The unknown.
    pub kind: HoleKind,
    /// The version map at the occurrence.
    pub vmap: VersionMap,
    /// The sort the occurrence must produce.
    pub sort: Sort,
}

/// Shared translation state for one synthesis session: the term arena, the
/// variable/function symbol tables, and the hole-occurrence registry.
#[derive(Debug, Clone)]
pub struct SymCtx {
    /// The term arena all formulas live in.
    pub arena: TermArena,
    var_syms: Vec<Symbol>,
    var_sorts: Vec<Sort>,
    occs: Vec<HoleOcc>,
    occ_ids: HashMap<HoleOcc, u32>,
}

impl SymCtx {
    /// Creates a context for `program`, declaring symbols for its variables
    /// and extern functions.
    pub fn new(program: &Program) -> Self {
        let mut arena = TermArena::new();
        let mut var_syms = Vec::with_capacity(program.vars.len());
        let mut var_sorts = Vec::with_capacity(program.vars.len());
        for v in &program.vars {
            var_syms.push(arena.sym(&v.name));
            var_sorts.push(sort_of(&mut arena, &v.ty));
        }
        for e in &program.externs {
            let args: Vec<Sort> = e.args.iter().map(|t| sort_of(&mut arena, t)).collect();
            let ret = if e.returns_bool {
                Sort::Bool
            } else {
                sort_of(&mut arena, &e.ret)
            };
            arena.declare_fun(&e.name, args, ret);
        }
        SymCtx {
            arena,
            var_syms,
            var_sorts,
            occs: Vec::new(),
            occ_ids: HashMap::new(),
        }
    }

    /// The sort of variable `v`.
    pub fn var_sort(&self, v: VarId) -> Sort {
        self.var_sorts[v.0 as usize]
    }

    /// The logic symbol of variable `v`.
    pub fn var_sym(&self, v: VarId) -> Symbol {
        self.var_syms[v.0 as usize]
    }

    /// The term for variable `v` at `version`.
    pub fn var_term(&mut self, v: VarId, version: u32) -> TermId {
        let sym = self.var_syms[v.0 as usize];
        let sort = self.var_sorts[v.0 as usize];
        self.arena.mk_var(sym, version, sort)
    }

    /// The term for variable `v` under `vmap`.
    pub fn var_at(&mut self, v: VarId, vmap: &VersionMap) -> TermId {
        self.var_term(v, version_of(vmap, v))
    }

    /// All hole occurrences registered so far.
    pub fn occurrences(&self) -> &[HoleOcc] {
        &self.occs
    }

    /// The occurrence with the given id.
    pub fn occurrence(&self, id: u32) -> &HoleOcc {
        &self.occs[id as usize]
    }

    fn register_occ(&mut self, occ: HoleOcc) -> TermId {
        let sort = occ.sort;
        let id = if let Some(&id) = self.occ_ids.get(&occ) {
            id
        } else {
            let id = self.occs.len() as u32;
            self.occ_ids.insert(occ.clone(), id);
            self.occs.push(occ);
            id
        };
        self.arena.mk_hole(id, sort)
    }

    /// Translates an expression under `vmap`. `expected` disambiguates the
    /// sort of holes appearing at this position.
    pub fn expr_term(
        &mut self,
        program: &Program,
        e: &Expr,
        vmap: &VersionMap,
        expected: Sort,
    ) -> TermId {
        match e {
            Expr::Int(v) => self.arena.mk_int(*v),
            Expr::Var(v) => self.var_at(*v, vmap),
            Expr::Add(a, b) => {
                let ta = self.expr_term(program, a, vmap, Sort::Int);
                let tb = self.expr_term(program, b, vmap, Sort::Int);
                self.arena.mk_add(ta, tb)
            }
            Expr::Sub(a, b) => {
                let ta = self.expr_term(program, a, vmap, Sort::Int);
                let tb = self.expr_term(program, b, vmap, Sort::Int);
                self.arena.mk_sub(ta, tb)
            }
            Expr::Mul(a, b) => {
                let ta = self.expr_term(program, a, vmap, Sort::Int);
                let tb = self.expr_term(program, b, vmap, Sort::Int);
                self.arena.mk_mul(ta, tb)
            }
            Expr::Sel(a, i) => {
                let ta = self.expr_term(program, a, vmap, Sort::IntArray);
                let ti = self.expr_term(program, i, vmap, Sort::Int);
                self.arena.mk_sel(ta, ti)
            }
            Expr::Upd(a, i, v) => {
                let ta = self.expr_term(program, a, vmap, Sort::IntArray);
                let ti = self.expr_term(program, i, vmap, Sort::Int);
                let tv = self.expr_term(program, v, vmap, Sort::Int);
                self.arena.mk_upd(ta, ti, tv)
            }
            Expr::Call(f, args) => {
                let decl = program
                    .extern_by_name(f)
                    .unwrap_or_else(|| panic!("undeclared extern {f}"))
                    .clone();
                let targs: Vec<TermId> = args
                    .iter()
                    .zip(&decl.args)
                    .map(|(a, ty)| {
                        let s = sort_of(&mut self.arena, ty);
                        self.expr_term(program, a, vmap, s)
                    })
                    .collect();
                let sym = self
                    .arena
                    .symbols()
                    .get(f)
                    .expect("extern declared in new()");
                self.arena.mk_app(sym, targs)
            }
            Expr::Hole(h) => self.register_occ(HoleOcc {
                kind: HoleKind::Expr(*h),
                vmap: vmap.clone(),
                sort: expected,
            }),
        }
    }

    /// Translates a predicate under `vmap`. `Pred::Star` becomes `true`
    /// (the choice itself is made by the executor).
    pub fn pred_term(&mut self, program: &Program, p: &Pred, vmap: &VersionMap) -> TermId {
        match p {
            Pred::Bool(b) => self.arena.mk_bool(*b),
            Pred::Star => self.arena.mk_true(),
            Pred::Cmp(op, a, b) => {
                let ta = self.expr_term(program, a, vmap, Sort::Int);
                let tb = self.expr_term(program, b, vmap, Sort::Int);
                match op {
                    CmpOp::Eq => self.arena.mk_eq(ta, tb),
                    CmpOp::Ne => self.arena.mk_neq(ta, tb),
                    CmpOp::Lt => self.arena.mk_lt(ta, tb),
                    CmpOp::Le => self.arena.mk_le(ta, tb),
                    CmpOp::Gt => self.arena.mk_gt(ta, tb),
                    CmpOp::Ge => self.arena.mk_ge(ta, tb),
                }
            }
            Pred::And(items) => {
                let ts: Vec<TermId> = items
                    .iter()
                    .map(|q| self.pred_term(program, q, vmap))
                    .collect();
                self.arena.mk_and(ts)
            }
            Pred::Or(items) => {
                let ts: Vec<TermId> = items
                    .iter()
                    .map(|q| self.pred_term(program, q, vmap))
                    .collect();
                self.arena.mk_or(ts)
            }
            Pred::Not(q) => {
                let t = self.pred_term(program, q, vmap);
                self.arena.mk_not(t)
            }
            Pred::Call(f, args) => {
                let decl = program
                    .extern_by_name(f)
                    .unwrap_or_else(|| panic!("undeclared extern {f}"))
                    .clone();
                let targs: Vec<TermId> = args
                    .iter()
                    .zip(&decl.args)
                    .map(|(a, ty)| {
                        let s = sort_of(&mut self.arena, ty);
                        self.expr_term(program, a, vmap, s)
                    })
                    .collect();
                let sym = self
                    .arena
                    .symbols()
                    .get(f)
                    .expect("extern declared in new()");
                self.arena.mk_app(sym, targs)
            }
            Pred::Hole(h) => self.register_occ(HoleOcc {
                kind: HoleKind::Pred(*h),
                vmap: vmap.clone(),
                sort: Sort::Bool,
            }),
        }
    }
}

/// Maps an IR type to a logic sort.
pub fn sort_of(arena: &mut TermArena, ty: &Type) -> Sort {
    match ty {
        Type::Int => Sort::Int,
        Type::IntArray => Sort::IntArray,
        Type::Abstract(name) => Sort::Unint(arena.sym(name)),
    }
}
