//! The symbolic executor of Figure 3: solution-guided backtracking path
//! search with SMT feasibility checks (Rule ASSUME) and explored-set
//! avoidance (Rule EXIT), plus bounded exhaustive enumeration used by the
//! termination-constraint generator, the bounded model checker, and the
//! path-count experiment.

use std::collections::{HashMap, HashSet};

use pins_budget::{Budget, StopReason};
use pins_ir::{EHoleId, Expr, LoopId, PHoleId, Pred, Program, Stmt, VarId};
use pins_logic::{collect_subterms, Sort, Term, TermId};
use pins_smt::{SmtConfig, SmtSession};
use pins_trace::{Counter, MetricsRegistry};

use crate::ctx::{version_of, HoleKind, SymCtx, VersionMap};

/// Supplies candidate instantiations for holes during guided execution.
///
/// A *solution* from the PINS `solve` step implements this; the executor
/// substitutes the candidates when checking path feasibility, exactly as
/// `S(p)` in Rule ASSUME of the paper. A partial filler leaves unmatched
/// holes symbolic (they act as unconstrained constants).
pub trait HoleFiller {
    /// Candidate for an expression hole.
    fn expr(&self, h: EHoleId) -> Option<Expr>;
    /// Candidate for a predicate hole.
    fn pred(&self, h: PHoleId) -> Option<Pred>;
}

/// Leaves every hole symbolic.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyFiller;

impl HoleFiller for EmptyFiller {
    fn expr(&self, _h: EHoleId) -> Option<Expr> {
        None
    }
    fn pred(&self, _h: PHoleId) -> Option<Pred> {
        None
    }
}

/// A map-backed filler (the concrete shape of a PINS solution).
#[derive(Debug, Clone, Default)]
pub struct MapFiller {
    /// Expression-hole assignments.
    pub exprs: HashMap<EHoleId, Expr>,
    /// Predicate-hole assignments.
    pub preds: HashMap<PHoleId, Pred>,
}

impl HoleFiller for MapFiller {
    fn expr(&self, h: EHoleId) -> Option<Expr> {
        self.exprs.get(&h).cloned()
    }
    fn pred(&self, h: PHoleId) -> Option<Pred> {
        self.preds.get(&h).cloned()
    }
}

/// Exploration parameters.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Maximum times each loop may be entered on a single path.
    pub max_unroll: u32,
    /// Overall statement budget per path search.
    pub max_steps: u64,
    /// Try the loop-exit branch before the enter branch (short paths first).
    pub exit_first: bool,
    /// Check feasibility with the SMT solver at each assumption.
    pub check_feasibility: bool,
    /// Axioms passed to feasibility checks.
    pub axioms: Vec<TermId>,
    /// SMT configuration for feasibility checks.
    pub smt: SmtConfig,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_unroll: 8,
            max_steps: 100_000,
            exit_first: true,
            check_feasibility: true,
            axioms: Vec::new(),
            smt: SmtConfig::default(),
        }
    }
}

/// The result of symbolically executing one path.
#[derive(Debug, Clone)]
pub struct PathResult {
    /// Path-condition conjuncts (may contain hole occurrences).
    pub conjuncts: Vec<TermId>,
    /// The same conjuncts with the guiding solution substituted.
    pub substituted: Vec<TermId>,
    /// Final version map `V'`.
    pub final_vmap: VersionMap,
    /// Per loop: (conjunct-prefix length, version map) at first entry to the
    /// loop *statement* on this path — the paper's `init` prefixes.
    pub loop_entries: Vec<(LoopId, usize, VersionMap)>,
    /// Canonical identity of the path (the interned conjunction).
    pub key: TermId,
}

impl PathResult {
    /// The final SSA version of `v` on this path (0 when the path never
    /// assigns it). `SymCtx::var_term(v, final_version(v))` is the term
    /// denoting `v`'s value at path exit — the handle differential
    /// harnesses use to compare symbolic exit states against concrete runs.
    pub fn final_version(&self, v: VarId) -> u32 {
        version_of(&self.final_vmap, v)
    }
}

#[derive(Clone)]
struct State<'p> {
    frames: Vec<(&'p [Stmt], usize)>,
    vmap: VersionMap,
    conjuncts: Vec<TermId>,
    substituted: Vec<TermId>,
    unrolls: HashMap<LoopId, u32>,
    loop_entries: Vec<(LoopId, usize, VersionMap)>,
}

enum Mode {
    /// Stop at the first complete admissible path.
    FindOne,
    /// Collect up to `limit` complete paths.
    Collect { limit: usize },
}

/// The symbolic executor.
pub struct Explorer<'p> {
    program: &'p Program,
    config: ExploreConfig,
    steps: u64,
    /// Persistent solver session for feasibility queries; repeated prefixes
    /// across backtracking hit the shared normalized-query cache.
    session: SmtSession,
    /// Shared cancellation/deadline budget, polled periodically between
    /// symbolic steps (feasibility queries poll it inside the solver).
    budget: Budget,
    /// Count of SMT feasibility queries issued (instrumentation).
    pub feasibility_queries: u64,
    /// Registry write-through for feasibility queries (detached until
    /// [`bind_metrics`](Self::bind_metrics)).
    feas_counter: Counter,
    /// Set when the last search stopped on the step budget rather than by
    /// exhausting the (bounded) path space.
    pub budget_hit: bool,
    /// Why the last search was interrupted by the shared budget, if it was.
    pub stop_reason: Option<StopReason>,
}

/// How many symbolic steps pass between budget polls (a power of two so the
/// modulus folds to a mask).
const BUDGET_POLL_MASK: u64 = 0x1FF;

impl<'p> Explorer<'p> {
    /// Creates an explorer over `program`.
    pub fn new(program: &'p Program, config: ExploreConfig) -> Self {
        let mut session = SmtSession::new(config.smt);
        for &ax in &config.axioms {
            session.assert_axiom(ax);
        }
        Explorer {
            program,
            config,
            steps: 0,
            session,
            budget: Budget::unlimited(),
            feasibility_queries: 0,
            feas_counter: Counter::detached(),
            budget_hit: false,
            stop_reason: None,
        }
    }

    /// Installs the shared budget for subsequent searches; the explorer's
    /// solver session inherits it so feasibility queries stop too.
    pub fn set_budget(&mut self, budget: Budget) {
        self.session.set_budget(budget.clone());
        self.budget = budget;
    }

    /// Binds this explorer's counters to `registry`: feasibility queries go
    /// to `explore.feasibility_queries`, and the internal solver session's
    /// traffic goes under `session_prefix` (e.g. `"feas"`), kept separate
    /// from the engine's own `smt.*` cells.
    pub fn bind_metrics(&mut self, registry: &MetricsRegistry, session_prefix: &str) {
        self.session.bind_metrics(registry, session_prefix);
        self.feas_counter = registry.counter("explore.feasibility_queries");
    }

    /// Installs the shared provenance context on the internal solver
    /// session, so feasibility queries are attributed to the engine's
    /// current benchmark/iteration/phase/path.
    pub fn set_provenance(&mut self, prov: pins_trace::ProvenanceCtx) {
        self.session.set_provenance(prov);
    }

    fn initial_state(&self) -> State<'p> {
        State {
            frames: vec![(self.program.body.as_slice(), 0)],
            vmap: VersionMap::new(),
            conjuncts: Vec::new(),
            substituted: Vec::new(),
            unrolls: HashMap::new(),
            loop_entries: Vec::new(),
        }
    }

    /// Finds one complete feasible path whose key is not in `avoid`,
    /// guided by `filler` (Algorithm 1, line 11). Returns `None` when the
    /// search space within bounds is exhausted.
    pub fn explore_one(
        &mut self,
        ctx: &mut SymCtx,
        filler: &dyn HoleFiller,
        avoid: &HashSet<TermId>,
    ) -> Option<PathResult> {
        self.steps = 0;
        self.budget_hit = false;
        self.stop_reason = None;
        let mut span = pins_trace::span("symexec.explore_one");
        let queries_before = self.feasibility_queries;
        let mut out = Vec::new();
        let state = self.initial_state();
        self.search(ctx, filler, avoid, state, &Mode::FindOne, &mut out);
        let found = out.pop();
        if span.is_active() {
            span.record_u64("steps", self.steps);
            span.record_u64(
                "feasibility_queries",
                self.feasibility_queries - queries_before,
            );
            span.record("found", found.is_some());
            span.record("budget_hit", self.budget_hit);
            span.record_u64("avoided_paths", avoid.len() as u64);
        }
        found
    }

    /// Enumerates complete paths (bounded by `max_unroll` and `limit`),
    /// with feasibility pruning only if configured. Used for termination
    /// constraints, BMC unrolling, and the path-count claim of §2.4.
    pub fn enumerate(
        &mut self,
        ctx: &mut SymCtx,
        filler: &dyn HoleFiller,
        limit: usize,
    ) -> Vec<PathResult> {
        self.steps = 0;
        self.budget_hit = false;
        self.stop_reason = None;
        let mut span = pins_trace::span("symexec.enumerate");
        let queries_before = self.feasibility_queries;
        let mut out = Vec::new();
        let avoid = HashSet::new();
        let state = self.initial_state();
        self.search(
            ctx,
            filler,
            &avoid,
            state,
            &Mode::Collect { limit },
            &mut out,
        );
        if span.is_active() {
            span.record_u64("steps", self.steps);
            span.record_u64(
                "feasibility_queries",
                self.feasibility_queries - queries_before,
            );
            span.record_u64("paths", out.len() as u64);
            span.record_u64("limit", limit as u64);
            span.record("budget_hit", self.budget_hit);
        }
        out
    }

    fn feasible(&mut self, ctx: &mut SymCtx, substituted: &[TermId]) -> bool {
        if !self.config.check_feasibility {
            return true;
        }
        self.feasibility_queries += 1;
        self.feas_counter.inc();
        !self
            .session
            .verdict_under(&mut ctx.arena, substituted)
            .is_unsat()
    }

    /// Substitutes hole occurrences in `t` using `filler` (the `S(p)` of
    /// Rule ASSUME), translating candidates under each occurrence's map.
    pub fn apply_filler(&self, ctx: &mut SymCtx, t: TermId, filler: &dyn HoleFiller) -> TermId {
        apply_filler_term(ctx, self.program, t, filler)
    }

    /// Returns `true` when the search should stop (found a path in
    /// `FindOne` mode, or hit the limit in `Collect` mode).
    fn search(
        &mut self,
        ctx: &mut SymCtx,
        filler: &dyn HoleFiller,
        avoid: &HashSet<TermId>,
        mut state: State<'p>,
        mode: &Mode,
        out: &mut Vec<PathResult>,
    ) -> bool {
        // advance deterministically until a choice point or path end
        loop {
            if self.steps >= self.config.max_steps {
                self.budget_hit = true;
                return true; // budget exhausted: stop the whole search
            }
            if self.steps & BUDGET_POLL_MASK == 0 {
                if let Err(reason) = self.budget.check() {
                    self.budget_hit = true;
                    self.stop_reason = Some(reason);
                    return true; // shared budget tripped: stop the search
                }
            }
            self.steps += 1;
            let Some(&(block, idx)) = state.frames.last() else {
                return self.finish(ctx, avoid, state, mode, out);
            };
            if idx >= block.len() {
                state.frames.pop();
                continue;
            }
            state.frames.last_mut().unwrap().1 += 1;
            match &block[idx] {
                Stmt::Skip => {}
                Stmt::Exit => state.frames.clear(),
                Stmt::Assign(pairs) => self.do_assign(ctx, filler, &mut state, pairs),
                Stmt::Assume(p) => {
                    if !self.do_assume(ctx, filler, &mut state, p, false) {
                        return false;
                    }
                }
                Stmt::If(p, then_b, else_b) => {
                    let mut branches: Vec<(bool, &'p [Stmt])> =
                        vec![(false, then_b.as_slice()), (true, else_b.as_slice())];
                    if self.config.exit_first {
                        branches.reverse();
                    }
                    for (negate, body) in branches {
                        let mut s2 = state.clone();
                        if self.do_assume(ctx, filler, &mut s2, p, negate) {
                            s2.frames.push((body, 0));
                            if self.search(ctx, filler, avoid, s2, mode, out) {
                                return true;
                            }
                        }
                    }
                    return false;
                }
                Stmt::While(id, p, body) => {
                    let entered = state.unrolls.get(id).copied().unwrap_or(0);
                    if !state.loop_entries.iter().any(|(l, _, _)| l == id) {
                        state
                            .loop_entries
                            .push((*id, state.conjuncts.len(), state.vmap.clone()));
                    }
                    let mut options: Vec<bool> = if entered < self.config.max_unroll {
                        vec![true, false] // enter, then exit
                    } else {
                        vec![false]
                    };
                    if self.config.exit_first {
                        options.reverse();
                    }
                    for enter in options {
                        let mut s2 = state.clone();
                        if enter {
                            if !self.do_assume(ctx, filler, &mut s2, p, false) {
                                continue;
                            }
                            *s2.unrolls.entry(*id).or_insert(0) += 1;
                            // after the body, re-run the While statement
                            let fi = s2.frames.len() - 1;
                            s2.frames[fi].1 = idx;
                            s2.frames.push((body.as_slice(), 0));
                        } else if !self.do_assume(ctx, filler, &mut s2, p, true) {
                            continue;
                        }
                        if self.search(ctx, filler, avoid, s2, mode, out) {
                            return true;
                        }
                    }
                    return false;
                }
            }
        }
    }

    fn finish(
        &mut self,
        ctx: &mut SymCtx,
        avoid: &HashSet<TermId>,
        state: State<'p>,
        mode: &Mode,
        out: &mut Vec<PathResult>,
    ) -> bool {
        let key = ctx.arena.mk_and(state.conjuncts.clone());
        if avoid.contains(&key) {
            return false; // Rule EXIT: path already explored
        }
        out.push(PathResult {
            conjuncts: state.conjuncts,
            substituted: state.substituted,
            final_vmap: state.vmap,
            loop_entries: state.loop_entries,
            key,
        });
        match mode {
            Mode::FindOne => true,
            Mode::Collect { limit } => out.len() >= *limit,
        }
    }

    fn do_assign(
        &mut self,
        ctx: &mut SymCtx,
        filler: &dyn HoleFiller,
        state: &mut State<'p>,
        pairs: &[(VarId, Expr)],
    ) {
        // Rule ASSN: evaluate RHS under the old map, bump versions, equate.
        let old = state.vmap.clone();
        let mut eqs = Vec::with_capacity(pairs.len());
        for (v, e) in pairs {
            let sort = ctx.var_sort(*v);
            let rhs = ctx.expr_term(self.program, e, &old, sort);
            let new_version = version_of(&state.vmap, *v) + 1;
            state.vmap.insert(*v, new_version);
            let lhs = ctx.var_term(*v, new_version);
            eqs.push(ctx.arena.mk_eq(lhs, rhs));
        }
        for eq in eqs {
            let sub = self.apply_filler(ctx, eq, filler);
            state.conjuncts.push(eq);
            state.substituted.push(sub);
        }
    }

    /// Conjoins `p` (negated if `negate`) and checks feasibility under the
    /// filler. Returns false when the extended path is infeasible.
    fn do_assume(
        &mut self,
        ctx: &mut SymCtx,
        filler: &dyn HoleFiller,
        state: &mut State<'p>,
        p: &Pred,
        negate: bool,
    ) -> bool {
        if matches!(p, Pred::Star) {
            return true; // free nondeterministic choice, no constraint
        }
        let mut t = ctx.pred_term(self.program, p, &state.vmap);
        if negate {
            t = ctx.arena.mk_not(t);
        }
        if t == ctx.arena.mk_true() {
            return true;
        }
        let sub = self.apply_filler(ctx, t, filler);
        if sub == ctx.arena.mk_false() {
            return false;
        }
        state.conjuncts.push(t);
        state.substituted.push(sub);
        let snapshot = state.substituted.clone();
        self.feasible(ctx, &snapshot)
    }
}

/// Substitutes hole occurrences in `t` via `filler`: each occurrence is
/// replaced by its candidate translated under the occurrence's version map.
pub fn apply_filler_term(
    ctx: &mut SymCtx,
    program: &Program,
    t: TermId,
    filler: &dyn HoleFiller,
) -> TermId {
    let mut holes: Vec<(TermId, u32)> = Vec::new();
    {
        let mut subs = HashSet::new();
        collect_subterms(&ctx.arena, t, &mut subs);
        for s in subs {
            if let Term::Hole(occ, _) = ctx.arena.term(s) {
                holes.push((s, *occ));
            }
        }
    }
    if holes.is_empty() {
        return t;
    }
    let mut map = HashMap::new();
    for (hole_term, occ_id) in holes {
        let occ = ctx.occurrence(occ_id).clone();
        let replacement = match occ.kind {
            HoleKind::Expr(h) => filler
                .expr(h)
                .map(|e| ctx.expr_term(program, &e, &occ.vmap, occ.sort)),
            HoleKind::Pred(h) => filler
                .pred(h)
                .map(|p| ctx.pred_term(program, &p, &occ.vmap)),
        };
        if let Some(r) = replacement {
            map.insert(hole_term, r);
        }
    }
    ctx.arena.substitute(t, &map)
}

/// The sort a candidate must have to fill holes assigned to variable `v`.
pub fn sort_for_var(ctx: &SymCtx, v: VarId) -> Sort {
    ctx.var_sort(v)
}
