//! A tiny deterministic PRNG for the PINS workspace.
//!
//! The engine needs randomness in exactly two low-stakes places — seeded
//! tie-breaking in `pickOne` and workload generation for the benchmark
//! suite — plus the randomized test corpora. Pulling in the external
//! `rand` crate for that broke the hermetic (no-network) tier-1 build, so
//! this crate provides the classic splitmix64 generator instead: 64 bits of
//! state, excellent equidistribution for this use, and byte-for-byte
//! reproducible across platforms.
//!
//! splitmix64 is the generator recommended for seeding by Vigna (2015); its
//! output function is a finalizing bijection, so every seed yields a full
//! period-2^64 sequence.
//!
//! # Example
//!
//! ```
//! use pins_prng::SplitMix64;
//!
//! let mut rng = SplitMix64::new(0x9142);
//! let a = rng.gen_range(0..10);
//! assert!((0..10).contains(&a));
//! let mut again = SplitMix64::new(0x9142);
//! assert_eq!(again.gen_range(0..10), a); // fully deterministic
//! ```

/// The splitmix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed is valid (including 0).
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `i64` in `range` (half-open). Uses rejection sampling, so
    /// the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.next_below(span) as i64)
    }

    /// A uniform `i64` in the inclusive `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn gen_range_inclusive(&mut self, range: std::ops::RangeInclusive<i64>) -> i64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range_inclusive on empty range");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.next_below(span + 1) as i64)
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is 0.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index(0)");
        self.next_below(n as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 bits of mantissa are plenty for test workloads
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }

    /// Uniform value in `0..bound` by rejection (no modulo bias).
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // reference outputs for seed 1234567 from Vigna's splitmix64.c
        let mut rng = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                6457827717110365317,
                3203168211198807973,
                9817491932198370423
            ]
        );
    }

    #[test]
    fn ranges_are_in_bounds_and_deterministic() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..7);
            assert!((-5..7).contains(&v));
            let w = rng.gen_range_inclusive(0..=3);
            assert!((0..=3).contains(&w));
            let i = rng.gen_index(9);
            assert!(i < 9);
        }
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<i64> = (0..64).map(|_| a.gen_range(0..100)).collect();
        let ys: Vec<i64> = (0..64).map(|_| b.gen_range(0..100)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SplitMix64::new(99);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_index(4)] += 1;
        }
        for &c in &counts {
            assert!(
                (800..1200).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(5);
        let mut v: Vec<i64> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
