//! Benches for Table 2's synthesis runs (the fast benchmarks; the slow ones
//! are measured by the `table2` binary with per-run budgets).

use pins_bench::microbench;
use pins_core::Pins;
use pins_suite::{benchmark, BenchmarkId};

fn main() {
    // only the sub-second benchmarks are statistically sampled here; the
    // rest are measured once per run by the `table2` binary
    for id in [
        BenchmarkId::SumI,
        BenchmarkId::LuDecomp,
        BenchmarkId::Serialize,
    ] {
        let b = benchmark(id);
        microbench::run(&pins_bench::slug(b.name()), 10, || {
            let mut session = b.session();
            let outcome = Pins::new(b.recommended_config())
                .run(&mut session)
                .expect("synthesis succeeds");
            assert!(!outcome.solutions.is_empty());
        });
    }
}
