//! Criterion benches for Table 2's synthesis runs (the fast benchmarks; the
//! slow ones are measured by the `table2` binary with per-run budgets).

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use pins_core::Pins;
use pins_suite::{benchmark, BenchmarkId};

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_synthesis");
    group.sample_size(10);
    // only the sub-second benchmarks are statistically sampled here; the
    // rest are measured once per run by the `table2` binary
    for id in [BenchmarkId::SumI, BenchmarkId::LuDecomp, BenchmarkId::Serialize] {
        let b = benchmark(id);
        group.bench_function(pins_bench::slug(b.name()), |bench| {
            bench.iter(|| {
                let mut session = b.session();
                let outcome = Pins::new(b.recommended_config())
                    .run(&mut session)
                    .expect("synthesis succeeds");
                assert!(!outcome.solutions.is_empty());
            });
        });
    }
    group.finish();
}

criterion_group!{
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench_synthesis
}
criterion_main!(benches);
