//! Micro-benchmarks of the solver substrates (Table 2's |SAT| and Table 4's
//! SMT-dominated profile rest on these).

use pins_bench::microbench;
use pins_logic::{Sort, TermArena};
use pins_sat::{Lit, SolveResult, Solver};
use pins_smt::{SmtConfig, SmtSession};

#[allow(clippy::needless_range_loop)] // j indexes every pigeon's row
fn pigeonhole(n: usize) -> SolveResult {
    let mut s = Solver::new();
    let p: Vec<Vec<_>> = (0..n)
        .map(|_| (0..n - 1).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&lits);
    }
    for j in 0..n - 1 {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    s.solve()
}

fn main() {
    microbench::run("sat_pigeonhole_7", 10, || {
        assert_eq!(pigeonhole(7), SolveResult::Unsat)
    });

    microbench::run("smt_array_chain", 10, || {
        let mut a = TermArena::new();
        let arr = a.sym("A");
        let mut t = a.mk_var(arr, 0, Sort::IntArray);
        for i in 0..8 {
            let idx = a.mk_int(i);
            let v = a.mk_int(i * 10);
            t = a.mk_upd(t, idx, v);
        }
        let probe = a.mk_int(3);
        let read = a.mk_sel(t, probe);
        let expect = a.mk_int(30);
        let ne = a.mk_neq(read, expect);
        let mut session = SmtSession::new(SmtConfig::default());
        assert!(session.check_under(&mut a, &[ne]).is_unsat());
    });

    microbench::run("smt_lia_system", 10, || {
        let mut a = TermArena::new();
        let vars: Vec<_> = (0..6)
            .map(|i| {
                let s = a.sym(&format!("x{i}"));
                a.mk_var(s, 0, Sort::Int)
            })
            .collect();
        let mut fs = Vec::new();
        for w in vars.windows(2) {
            let one = a.mk_int(1);
            let next = a.mk_add(w[0], one);
            fs.push(a.mk_le(next, w[1]));
        }
        let lo = a.mk_int(0);
        let hi = a.mk_int(4);
        fs.push(a.mk_ge(vars[0], lo));
        fs.push(a.mk_le(vars[5], hi));
        let mut session = SmtSession::new(SmtConfig::default());
        assert!(session.check_under(&mut a, &fs).is_unsat());
    });
}
