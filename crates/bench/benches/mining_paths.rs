//! Benches for Table 1 (mining) and the §2.4 path-count experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use pins_suite::{benchmark, BenchmarkId, ALL};
use pins_symexec::{EmptyFiller, ExploreConfig, Explorer, SymCtx};

fn bench_mining(c: &mut Criterion) {
    c.bench_function("table1_mining_all", |b| {
        b.iter(|| {
            for id in ALL {
                let bench = benchmark(id);
                let (mined, _mods) = bench.mined();
                assert!(mined.total() > 0);
            }
        })
    });
}

fn bench_paths(c: &mut Criterion) {
    c.bench_function("pathcount_runlength_unroll2", |b| {
        let bench = benchmark(BenchmarkId::InPlaceRl);
        let session = bench.session();
        b.iter(|| {
            let mut ctx = SymCtx::new(&session.composed);
            let cfg = ExploreConfig {
                max_unroll: 2,
                check_feasibility: false,
                max_steps: 10_000_000,
                ..ExploreConfig::default()
            };
            let mut ex = Explorer::new(&session.composed, cfg);
            let paths = ex.enumerate(&mut ctx, &EmptyFiller, 1_000_000);
            assert!(paths.len() > 50);
        })
    });
}

criterion_group!{
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench_mining, bench_paths
}
criterion_main!(benches);
