//! Benches for Table 1 (mining) and the §2.4 path-count experiment.

use pins_bench::microbench;
use pins_suite::{benchmark, BenchmarkId, ALL};
use pins_symexec::{EmptyFiller, ExploreConfig, Explorer, SymCtx};

fn main() {
    microbench::run("table1_mining_all", 10, || {
        for id in ALL {
            let bench = benchmark(id);
            let (mined, _mods) = bench.mined();
            assert!(mined.total() > 0);
        }
    });

    let bench = benchmark(BenchmarkId::InPlaceRl);
    let session = bench.session();
    microbench::run("pathcount_runlength_unroll2", 10, || {
        let mut ctx = SymCtx::new(&session.composed);
        let cfg = ExploreConfig {
            max_unroll: 2,
            check_feasibility: false,
            max_steps: 10_000_000,
            ..ExploreConfig::default()
        };
        let mut ex = Explorer::new(&session.composed, cfg);
        let paths = ex.enumerate(&mut ctx, &EmptyFiller, 1_000_000);
        assert!(paths.len() > 50);
    });
}
