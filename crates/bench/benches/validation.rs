//! Benches for Table 3/5's validation machinery: bounded model checking and
//! the CEGIS baseline on a fast benchmark.

use pins_bench::microbench;
use pins_bmc::{check_inverse, BmcConfig};
use pins_cegis::{synthesize, CegisConfig};
use pins_core::Pins;
use pins_suite::{benchmark, BenchmarkId};

fn main() {
    let b = benchmark(BenchmarkId::SumI);
    let mut session = b.session();
    let outcome = Pins::new(b.recommended_config()).run(&mut session).unwrap();
    let inverse = outcome.solutions[0].inverse.clone();

    microbench::run("table3_bmc_sum_i", 10, || {
        let r = check_inverse(
            &session,
            &inverse,
            BmcConfig {
                unroll: 5,
                input_bound: 4,
                ..BmcConfig::default()
            },
        );
        assert!(r.verified);
    });

    let env = b.extern_env();
    let battery: Vec<_> = (0..6)
        .flat_map(|seed| [0usize, 1, 2].map(|size| b.gen_input(seed, size)))
        .collect();
    microbench::run("table5_cegis_sum_i", 10, || {
        let r = synthesize(&session, &env, &battery, CegisConfig::default());
        assert!(r.solution.is_some());
    });
}
