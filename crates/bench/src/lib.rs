//! The benchmark harness: regenerates every table of the paper's evaluation
//! (Section 4) against this reproduction.
//!
//! One binary per table:
//!
//! | binary             | reproduces |
//! |--------------------|------------|
//! | `table1`           | Table 1 — template mining characteristics |
//! | `table2`           | Table 2 — PINS performance |
//! | `table3`           | Table 3 — validating the solutions |
//! | `table4`           | Table 4 — running-time breakdown |
//! | `table5`           | Table 5 — CBMC/Sketch (here: BMC/CEGIS) parameters |
//! | `ablation_pickone` | §2.3's pickOne-vs-random comparison |
//! | `pathcount`        | §2.4's path-explosion claim |
//!
//! Absolute numbers differ from the paper (2011 hardware + Z3 vs. this
//! from-scratch stack); EXPERIMENTS.md records the shape comparison.
//!
//! The numbers are only meaningful if the verdicts under them are sound:
//! `pins-fuzz` (crates/fuzz) differentially validates the whole solver
//! stack these tables exercise, and CI's `fuzz-smoke` job gates every
//! change on a zero-violation run — treat a perf win that only appears
//! alongside fuzz violations as a soundness bug, not a speedup.

use std::time::Duration;

use pins_core::{Pins, PinsError, PinsOutcome};
use pins_suite::{benchmark, Benchmark, BenchmarkId, ALL};
use pins_trace::MetricsRegistry;

/// Command-line options shared by the table binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Benchmarks to run (default: all).
    pub benchmarks: Vec<BenchmarkId>,
    /// Per-benchmark wall-clock budget override.
    pub budget: Option<Duration>,
    /// Fast mode: lighter budgets, for smoke runs.
    pub fast: bool,
    /// Verification worker-thread override (default: the engine's choice).
    pub workers: Option<usize>,
    /// Per-SMT-query wall-clock limit.
    pub query_ms: Option<u64>,
    /// Per-SMT-query step limit (conflicts + pivots + instantiation rounds).
    pub query_steps: Option<u64>,
    /// Disable the one-shot retry-at-doubled-budgets on `Unknown`.
    pub no_retry: bool,
    /// Print a per-benchmark phase breakdown and emit `BENCH_pins.json`
    /// (see [`profile`]).
    pub profile: bool,
    /// Path for the profile report (default `BENCH_pins.json`).
    pub bench_json: String,
    /// Stream structured trace events (JSON Lines) to this file.
    pub trace_out: Option<String>,
}

/// Parses `[--fast] [--budget SECS] [--workers N] [--query-ms MS]
/// [--query-steps N] [--no-retry] [--profile] [--bench-json FILE]
/// [--trace-out FILE] [name...]` from `std::env::args`.
pub fn parse_args() -> HarnessArgs {
    let mut benchmarks = Vec::new();
    let mut budget = None;
    let mut fast = false;
    let mut workers = None;
    let mut query_ms = None;
    let mut query_steps = None;
    let mut no_retry = false;
    let mut profile = false;
    let mut bench_json = "BENCH_pins.json".to_string();
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--no-retry" => no_retry = true,
            "--profile" => profile = true,
            "--bench-json" => {
                bench_json = args.next().expect("--bench-json takes a path");
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out takes a path"));
            }
            "--budget" => {
                let secs: u64 = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--budget takes seconds");
                budget = Some(Duration::from_secs(secs));
            }
            "--workers" => {
                workers = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--workers takes a count"),
                );
            }
            "--query-ms" => {
                query_ms = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--query-ms takes milliseconds"),
                );
            }
            "--query-steps" => {
                query_steps = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .expect("--query-steps takes a count"),
                );
            }
            name => {
                let id = ALL
                    .iter()
                    .copied()
                    .find(|&id| {
                        let b = benchmark(id);
                        b.name().eq_ignore_ascii_case(name) || slug(b.name()) == slug(name)
                    })
                    .unwrap_or_else(|| panic!("unknown benchmark {name}"));
                benchmarks.push(id);
            }
        }
    }
    if benchmarks.is_empty() {
        benchmarks = ALL.to_vec();
    }
    HarnessArgs {
        benchmarks,
        budget,
        fast,
        workers,
        query_ms,
        query_steps,
        no_retry,
        profile,
        bench_json,
        trace_out,
    }
}

/// Installs a JSONL trace recorder when `--trace-out` was given. Keep the
/// returned guard alive for the duration of the run; dropping it flushes and
/// uninstalls the recorder.
pub fn install_tracing(args: &HarnessArgs) -> Option<pins_trace::InstallGuard> {
    let path = args.trace_out.as_deref()?;
    let recorder = pins_trace::Recorder::jsonl_file(path)
        .unwrap_or_else(|e| panic!("--trace-out {path}: {e}"));
    Some(pins_trace::install(recorder))
}

/// A fully initialized harness: parsed arguments plus (when `--trace-out`
/// was given) the installed trace recorder. Every table binary starts with
/// [`init`]; the guard uninstalls and flushes the recorder when the harness
/// is dropped at the end of `main`, appending the `trace.summary`
/// completeness event `pins-report` checks for.
#[derive(Debug)]
pub struct Harness {
    /// The parsed command-line options.
    pub args: HarnessArgs,
    _trace: Option<pins_trace::InstallGuard>,
}

/// Parses the shared command-line flags and wires up `--trace-out` in one
/// step. This is the single place the `--trace-out`/`--profile`/
/// `--bench-json` plumbing lives; the table binaries all call it instead of
/// repeating the recorder setup.
pub fn init() -> Harness {
    let args = parse_args();
    let trace = install_tracing(&args);
    Harness {
        args,
        _trace: trace,
    }
}

/// The profile verdict string for a run result (`"solved"`,
/// `"no-solution"`, or `"budget-exhausted"`).
pub fn verdict_of(result: &Result<PinsOutcome, PinsError>) -> &'static str {
    match result {
        Ok(_) => "solved",
        Err(PinsError::NoSolution { .. }) => "no-solution",
        Err(PinsError::BudgetExhausted) => "budget-exhausted",
    }
}

/// Lower-cases and strips non-alphanumerics for lenient name matching.
pub fn slug(s: &str) -> String {
    s.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase()
}

/// Runs PINS on a benchmark with its recommended configuration, applying
/// harness overrides.
pub fn run_pins(b: &Benchmark, args: &HarnessArgs) -> Result<PinsOutcome, PinsError> {
    run_pins_with(b, args, &MetricsRegistry::new())
}

/// Like [`run_pins`] but records into a caller-owned [`MetricsRegistry`],
/// which keeps the phase timings and query counters readable even when the
/// run fails (the profile report needs them for unsolved rows too).
pub fn run_pins_with(
    b: &Benchmark,
    args: &HarnessArgs,
    metrics: &MetricsRegistry,
) -> Result<PinsOutcome, PinsError> {
    let mut session = b.session();
    let mut config = b.recommended_config();
    if let Some(budget) = args.budget {
        config.time_budget = Some(budget);
    } else if args.fast {
        config.time_budget = Some(Duration::from_secs(60));
    }
    if let Some(w) = args.workers {
        config.verify_workers = w;
    }
    // per-query solver budgets apply to both the verification session and
    // the symbolic executor's feasibility session
    if let Some(ms) = args.query_ms {
        config.smt.time_limit = Some(Duration::from_millis(ms));
        config.explore.smt.time_limit = Some(Duration::from_millis(ms));
    }
    if let Some(steps) = args.query_steps {
        config.smt.step_limit = Some(steps);
        config.explore.smt.step_limit = Some(steps);
    }
    if args.no_retry {
        config.smt.retry_unknown = false;
        config.explore.smt.retry_unknown = false;
    }
    let budget = pins_budget::Budget::with_limits(config.time_budget, None);
    Pins::new(config).run_with(&mut session, budget, metrics)
}

/// Formats a duration in seconds with two decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// The `--profile` report: per-benchmark phase breakdown plus a
/// machine-readable `BENCH_pins.json`.
pub mod profile {
    use std::fmt::Write as _;
    use std::time::Duration;

    use pins_core::PinsStats;
    use pins_trace::MetricsRegistry;

    /// One benchmark's profile: everything `BENCH_pins.json` records.
    #[derive(Debug, Clone)]
    pub struct ProfileRow {
        /// Benchmark display name.
        pub benchmark: String,
        /// `"solved"`, `"no-solution"`, or `"budget-exhausted"`.
        pub verdict: String,
        /// Total wall-clock milliseconds.
        pub wall_ms: f64,
        /// Phase name → milliseconds (`symexec`, `smt_reduction`, `sat`,
        /// `pickone`).
        pub phase_ms: Vec<(String, f64)>,
        /// Query counters: SMT validity queries, feasibility queries, cache
        /// hits, and cache misses.
        pub smt_queries: u64,
        /// SMT feasibility queries issued by symbolic execution.
        pub feasibility_queries: u64,
        /// Normalized-query cache hits on the engine session.
        pub cache_hits: u64,
        /// Normalized-query cache misses on the engine session.
        pub cache_misses: u64,
        /// Median SMT validity-query latency in microseconds (log-bucket
        /// midpoint from the `smt.query_ns` histogram; 0 when no queries).
        pub query_p50_us: f64,
        /// 90th-percentile SMT validity-query latency in microseconds.
        pub query_p90_us: f64,
        /// 99th-percentile SMT validity-query latency in microseconds.
        pub query_p99_us: f64,
    }

    fn ms(d: Duration) -> f64 {
        d.as_secs_f64() * 1e3
    }

    impl ProfileRow {
        /// Builds a row from the registry a run recorded into. Works for
        /// failed runs too: the registry holds everything up to the stop.
        pub fn from_registry(
            benchmark: &str,
            verdict: &str,
            registry: &MetricsRegistry,
        ) -> ProfileRow {
            let s = PinsStats::from_registry(registry);
            let lat = registry.histogram_snapshot("smt.query_ns");
            let us = |ns: u64| ns as f64 / 1e3;
            ProfileRow {
                benchmark: benchmark.to_string(),
                verdict: verdict.to_string(),
                wall_ms: ms(s.total_time),
                phase_ms: vec![
                    ("symexec".to_string(), ms(s.symexec_time)),
                    ("smt_reduction".to_string(), ms(s.smt_reduction_time)),
                    ("sat".to_string(), ms(s.sat_time)),
                    ("pickone".to_string(), ms(s.pickone_time)),
                ],
                smt_queries: s.smt_queries,
                feasibility_queries: s.feasibility_queries,
                cache_hits: s.smt_cache_hits,
                cache_misses: s.smt_cache_misses,
                query_p50_us: us(lat.p50()),
                query_p90_us: us(lat.p90()),
                query_p99_us: us(lat.p99()),
            }
        }

        /// One human-readable breakdown line per phase.
        pub fn print(&self) {
            let pct = |v: f64| {
                if self.wall_ms > 0.0 {
                    format!("{:.0}%", 100.0 * v / self.wall_ms)
                } else {
                    "-".to_string()
                }
            };
            print!("{:<14} [{}]", self.benchmark, self.verdict);
            for (name, v) in &self.phase_ms {
                print!("  {name} {:.1}ms ({})", v, pct(*v));
            }
            println!(
                "  wall {:.1}ms  queries {} smt / {} feas, cache {}/{}, \
                 query p50/p90/p99 {:.0}/{:.0}/{:.0}us",
                self.wall_ms,
                self.smt_queries,
                self.feasibility_queries,
                self.cache_hits,
                self.cache_misses,
                self.query_p50_us,
                self.query_p90_us,
                self.query_p99_us
            );
        }

        fn to_json(&self) -> String {
            let mut s = String::new();
            let esc = |v: &str| v.replace('\\', "\\\\").replace('"', "\\\"");
            write!(
                s,
                "{{\"benchmark\":\"{}\",\"verdict\":\"{}\",\"wall_ms\":{:.3},\"phase_ms\":{{",
                esc(&self.benchmark),
                esc(&self.verdict),
                self.wall_ms
            )
            .unwrap();
            for (i, (name, v)) in self.phase_ms.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                write!(s, "\"{}\":{:.3}", esc(name), v).unwrap();
            }
            write!(
                s,
                "}},\"smt_queries\":{},\"feasibility_queries\":{},\
                 \"cache_hits\":{},\"cache_misses\":{},\
                 \"query_p50_us\":{:.3},\"query_p90_us\":{:.3},\"query_p99_us\":{:.3}}}",
                self.smt_queries,
                self.feasibility_queries,
                self.cache_hits,
                self.cache_misses,
                self.query_p50_us,
                self.query_p90_us,
                self.query_p99_us
            )
            .unwrap();
            s
        }
    }

    /// Serializes the rows as a JSON array (the `BENCH_pins.json` schema).
    pub fn to_json(rows: &[ProfileRow]) -> String {
        let mut s = String::from("[");
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            s.push_str(&row.to_json());
        }
        s.push_str("\n]\n");
        s
    }

    /// Writes `BENCH_pins.json` and announces the path.
    pub fn write_json(path: &str, rows: &[ProfileRow]) {
        std::fs::write(path, to_json(rows)).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("profile: wrote {path} ({} rows)", rows.len());
    }
}

/// Minimal std-only micro-benchmark timer. The `benches/` targets used to be
/// criterion harnesses; criterion is an external dependency the hermetic
/// tier-1 build cannot resolve, so they now run on this.
pub mod microbench {
    use std::time::Instant;

    /// Times `f` for `iters` iterations after one warm-up call and prints
    /// total, mean, and min per-iteration wall-clock times.
    pub fn run<F: FnMut()>(name: &str, iters: usize, mut f: F) {
        f(); // warm-up
        let mut samples = Vec::with_capacity(iters);
        let total_start = Instant::now();
        for _ in 0..iters {
            let start = Instant::now();
            f();
            samples.push(start.elapsed());
        }
        let total = total_start.elapsed();
        let mean = total / iters as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "{name:<32} {iters:>4} iters  total {:>9.3?}  mean {:>9.3?}  min {:>9.3?}",
            total, mean, min
        );
    }
}

/// Paper-reported reference values used for side-by-side printing.
/// Values extracted from a scanned copy; entries the scan garbled are best
/// guesses and marked `~`.
pub mod paper {
    /// Table 2 rows: (name, search-space exponent, #solutions, iterations,
    /// seconds, |SAT|).
    pub const TABLE2: &[(&str, u32, u32, u32, f64, u32)] = &[
        ("In-place RL", 30, 1, 7, 36.16, 837),
        ("Run length", 25, 1, 7, 26.19, 668),
        ("LZ77", 25, 2, 6, 1810.31, 330),
        ("LZW", 31, 2, 4, 150.42, 373),
        ("Base64", 37, 4, 12, 1376.82, 598),
        ("UUEncode", 20, 1, 7, 34.00, 177),
        ("Pkt wrapper", 20, 1, 6, 132.32, 2161),
        ("Serialize", 11, 1, 14, 55.33, 69),
        ("Σi", 15, 1, 4, 1.07, 51),
        ("Vector shift", 16, 1, 3, 4.20, 187),
        ("Vector scale", 16, 1, 3, 4.41, 191),
        ("Vector rotate", 16, 1, 3, 39.51, 327),
        ("Permute count", 3, 1, 1, 8.44, 4),
        ("LU decomp", 5, 1, 1, 160.24, 10),
    ];

    /// Table 4 rows: (name, %symexec, %smt-reduction, %sat, %pickone).
    pub const TABLE4: &[(&str, f64, f64, f64, f64)] = &[
        ("In-place RL", 41.0, 51.0, 6.0, 2.0),
        ("Run length", 45.0, 45.0, 7.0, 3.0),
        ("LZ77", 98.0, 1.0, 0.1, 0.1),
        ("LZW", 68.0, 29.0, 1.0, 3.0),
        ("Base64", 42.0, 57.0, 1.0, 1.0),
        ("UUEncode", 84.0, 12.0, 1.0, 3.0),
        ("Pkt wrapper", 92.0, 7.0, 1.0, 1.0),
        ("Serialize", 96.0, 3.0, 1.0, 1.0),
        ("Σi", 50.0, 38.0, 4.0, 8.0),
        ("Vector shift", 21.0, 73.0, 2.0, 4.0),
        ("Vector scale", 21.0, 73.0, 2.0, 4.0),
        ("Vector rotate", 6.0, 93.0, 0.5, 0.5),
        ("Permute count", 96.0, 2.0, 0.5, 2.0),
        ("LU decomp", 88.0, 11.0, 0.1, 1.0),
    ];

    /// Table 1 rows: (name, LoC, mined, subset, mods, inverse LoC, axioms).
    pub const TABLE1: &[(&str, u32, u32, u32, u32, u32, u32)] = &[
        ("In-place RL", 12, 16, 14, 1, 10, 0),
        ("Run length", 12, 16, 10, 0, 10, 0),
        ("LZ77", 22, 16, 10, 3, 13, 0),
        ("LZW", 25, 20, 15, 4, 20, 15),
        ("Base64", 22, 13, 7, 1, 16, 3),
        ("UUEncode", 12, 10, 4, 7, 11, 3),
        ("Pkt wrapper", 10, 12, 12, 7, 16, 2),
        ("Serialize", 8, 8, 8, 1, 8, 6),
        ("Σi", 5, 8, 6, 2, 5, 0),
        ("Vector shift", 8, 11, 7, 0, 7, 0),
        ("Vector scale", 8, 9, 7, 2, 7, 1),
        ("Vector rotate", 8, 13, 7, 0, 7, 1),
        ("Permute count", 11, 12, 7, 2, 10, 0),
        ("LU decomp", 11, 14, 9, 0, 12, 2),
    ];
}
