//! Reproduces the §2.4 claim: even bounding every loop to 3 unrollings, the
//! run-length template composition has thousands of unique paths (the paper
//! counts 7,225), while PINS converges after a handful of directed ones —
//! the small path-bound hypothesis.

use pins_suite::{benchmark, BenchmarkId};
use pins_symexec::{EmptyFiller, ExploreConfig, Explorer, SymCtx};

fn main() {
    let b = benchmark(BenchmarkId::InPlaceRl);
    let session = b.session();
    let mut ctx = SymCtx::new(&session.composed);
    let cfg = ExploreConfig {
        max_unroll: 3,
        max_steps: 50_000_000,
        check_feasibility: false,
        ..ExploreConfig::default()
    };
    let mut ex = Explorer::new(&session.composed, cfg);
    let paths = ex.enumerate(&mut ctx, &EmptyFiller, 1_000_000);
    println!(
        "run-length composition, every loop bounded to 3 unrollings: {} syntactic paths",
        paths.len()
    );
    println!("(the paper counts 7,225 for its encoding; PINS explores ~7)");
}
