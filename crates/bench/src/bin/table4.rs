//! Regenerates Table 4: breakdown of PINS running time.
//!
//! With `--profile`, additionally prints a per-benchmark phase breakdown
//! (milliseconds + percentages, read back from the run's metrics registry)
//! and writes the machine-readable `BENCH_pins.json`; with `--trace-out
//! FILE`, streams every structured trace event of the run as JSON Lines.

use pins_bench::{init, paper, profile, run_pins_with, secs, slug, verdict_of};
use pins_suite::benchmark;
use pins_trace::MetricsRegistry;

fn main() {
    let harness = init();
    let args = harness.args.clone();
    let mut rows: Vec<profile::ProfileRow> = Vec::new();
    println!(
        "{:<14} {:>8} {:>8} {:>6} {:>8} {:>10}   (paper %: sym/smt/sat/pick)",
        "Benchmark", "Sym.Exe", "SMT Red.", "SAT", "pickOne", "Total(s)"
    );
    for id in args.benchmarks.clone() {
        let b = benchmark(id);
        let paper_row = paper::TABLE4.iter().find(|r| slug(r.0) == slug(b.name()));
        let paper_str = paper_row
            .map(|r| format!("{}/{}/{}/{}", r.1, r.2, r.3, r.4))
            .unwrap_or_default();
        let metrics = MetricsRegistry::new();
        let result = run_pins_with(&b, &args, &metrics);
        if args.profile {
            let verdict = verdict_of(&result);
            rows.push(profile::ProfileRow::from_registry(
                b.name(),
                verdict,
                &metrics,
            ));
        }
        match result {
            Ok(outcome) => {
                let s = outcome.stats();
                let total = s.total_time.as_secs_f64().max(1e-9);
                let pct =
                    |d: std::time::Duration| format!("{:.0}%", 100.0 * d.as_secs_f64() / total);
                println!(
                    "{:<14} {:>8} {:>8} {:>6} {:>8} {:>10}   ({paper_str})",
                    b.name(),
                    pct(s.symexec_time),
                    pct(s.smt_reduction_time),
                    pct(s.sat_time),
                    pct(s.pickone_time),
                    secs(s.total_time),
                );
                let per_worker = s
                    .worker_queries
                    .iter()
                    .map(|q| q.to_string())
                    .collect::<Vec<_>>()
                    .join("/");
                println!(
                    "{:<14} cache {} hit / {} miss, {} workers (queries {}), solver reused {}x",
                    "",
                    s.smt_cache_hits,
                    s.smt_cache_misses,
                    s.verify_workers,
                    if per_worker.is_empty() {
                        "-".to_string()
                    } else {
                        per_worker
                    },
                    s.sessions_reused,
                );
                let degradations = s.unknown_deadline
                    + s.unknown_cancelled
                    + s.unknown_step_limit
                    + s.unknown_overflow
                    + s.worker_panics
                    + s.sat_interrupts;
                if degradations > 0 || s.smt_retries > 0 {
                    println!(
                        "{:<14} degraded: {} deadline / {} cancelled / {} step-limit / \
                         {} overflow unknowns, {} worker panics, {} sat interrupts; \
                         {} retries ({} cache upgrades)",
                        "",
                        s.unknown_deadline,
                        s.unknown_cancelled,
                        s.unknown_step_limit,
                        s.unknown_overflow,
                        s.worker_panics,
                        s.sat_interrupts,
                        s.smt_retries,
                        s.smt_cache_upgrades,
                    );
                }
            }
            Err(e) => println!("{:<14} {e}   ({paper_str})", b.name()),
        }
    }
    if args.profile {
        println!("\n--- profile (per-phase wall clock) ---");
        for row in &rows {
            row.print();
        }
        profile::write_json(&args.bench_json, &rows);
    }
}
