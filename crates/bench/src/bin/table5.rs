//! Regenerates Table 5: the finitization parameters and formula sizes of
//! the BMC (CBMC stand-in) and CEGIS (Sketch stand-in) runs, on the
//! benchmarks the paper could run them on (the axiom-free ones).

use pins_bench::{init, run_pins, secs};
use pins_bmc::{check_inverse, BmcConfig};
use pins_cegis::{synthesize, CegisConfig};
use pins_suite::benchmark;

fn main() {
    let harness = init();
    let mut args = harness.args.clone();
    // the paper ran this table only on the axiom-free benchmarks
    args.benchmarks.retain(|&id| !benchmark(id).uses_axioms());
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "Benchmark", "BMC unrl", "BMC size", "BMC time", "CEGIS |SAT|", "CEGIS t"
    );
    for id in args.benchmarks.clone() {
        let b = benchmark(id);
        let outcome = match run_pins(&b, &args) {
            Ok(o) => o,
            Err(e) => {
                println!("{:<14} synthesis failed: {e}", b.name());
                continue;
            }
        };
        let session = b.session();
        let bmc_cfg = BmcConfig {
            unroll: 4,
            input_bound: 3,
            ..BmcConfig::default()
        };
        let bmc = check_inverse(&session, &outcome.solutions[0].inverse, bmc_cfg);
        let env = b.extern_env();
        let battery: Vec<_> = (0..24)
            .flat_map(|seed| [0usize, 1, 2, 3].map(|size| b.gen_input(seed, size)))
            .collect();
        let cegis_cfg = CegisConfig {
            time_budget: Some(std::time::Duration::from_secs(120)),
            ..CegisConfig::default()
        };
        let cegis = synthesize(&session, &env, &battery, cegis_cfg);
        println!(
            "{:<14} {:>10} {:>10} {:>12} {:>12} {:>10}",
            b.name(),
            bmc_cfg.unroll,
            bmc_cfg.input_bound,
            secs(bmc.time),
            cegis.sat_size,
            if cegis.solution.is_some() {
                secs(cegis.time)
            } else {
                "fail".into()
            },
        );
    }
}
