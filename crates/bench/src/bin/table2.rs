//! Regenerates Table 2: PINS performance (search space, solutions,
//! iterations, time, |SAT|).

use pins_bench::{init, paper, run_pins, secs, slug};
use pins_suite::benchmark;

fn main() {
    let harness = init();
    let args = harness.args.clone();
    println!(
        "{:<14} {:>9} {:>5} {:>6} {:>10} {:>7}   (paper: 2^x/sols/iters/secs/|SAT|)",
        "Benchmark", "Srch.Sp.", "Sols", "Iters", "Time(s)", "|SAT|"
    );
    for id in args.benchmarks.clone() {
        let b = benchmark(id);
        let paper_row = paper::TABLE2.iter().find(|r| slug(r.0) == slug(b.name()));
        let paper_str = paper_row
            .map(|r| format!("2^{}/{}/{}/{}/{}", r.1, r.2, r.3, r.4, r.5))
            .unwrap_or_default();
        match run_pins(&b, &args) {
            Ok(outcome) => {
                println!(
                    "{:<14} {:>9} {:>5} {:>6} {:>10} {:>7}   ({paper_str})",
                    b.name(),
                    format!("2^{:.0}", outcome.search_space_log2),
                    outcome.solutions.len(),
                    outcome.iterations,
                    secs(outcome.total_time),
                    outcome.sat_size,
                );
            }
            Err(e) => {
                println!("{:<14} {:>9} {e}   ({paper_str})", b.name(), "-");
            }
        }
    }
}
