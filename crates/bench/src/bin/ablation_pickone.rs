//! Reproduces the §2.3 ablation: the `infeasible`-count `pickOne` heuristic
//! versus uniformly random selection (the paper reports random is ~20%
//! slower overall).

use pins_bench::{init, secs};
use pins_core::Pins;
use pins_suite::{benchmark, BenchmarkId};

fn main() {
    let harness = init();
    let args = harness.args.clone();
    let ids = if args.benchmarks.len() == pins_suite::ALL.len() {
        // default: the fast benchmarks, several seeds
        vec![
            BenchmarkId::SumI,
            BenchmarkId::VectorShift,
            BenchmarkId::VectorScale,
            BenchmarkId::VectorRotate,
            BenchmarkId::Serialize,
        ]
    } else {
        args.benchmarks.clone()
    };
    let mut total_heur = 0.0;
    let mut total_rand = 0.0;
    println!(
        "{:<14} {:>12} {:>12}",
        "Benchmark", "pickOne(s)", "random(s)"
    );
    for id in ids {
        let b = benchmark(id);
        let mut heur = 0.0;
        let mut rnd = 0.0;
        for seed in 0..3u64 {
            for (random, acc) in [(false, &mut heur), (true, &mut rnd)] {
                let mut session = b.session();
                let mut config = b.recommended_config();
                config.pick_random = random;
                config.seed = seed.wrapping_mul(0x9e37).wrapping_add(17);
                if let Ok(outcome) = Pins::new(config).run(&mut session) {
                    *acc += outcome.total_time.as_secs_f64();
                }
            }
        }
        total_heur += heur;
        total_rand += rnd;
        println!(
            "{:<14} {:>12} {:>12}",
            b.name(),
            format!("{heur:.2}"),
            format!("{rnd:.2}")
        );
    }
    println!(
        "total: pickOne {} vs random {} -> random is {:+.0}%",
        secs(std::time::Duration::from_secs_f64(total_heur)),
        secs(std::time::Duration::from_secs_f64(total_rand)),
        100.0 * (total_rand - total_heur) / total_heur.max(1e-9)
    );
}
