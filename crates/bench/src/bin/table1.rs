//! Regenerates Table 1: template-mining characteristics.

use pins_bench::{init, paper, slug};
use pins_suite::benchmark;

fn main() {
    let harness = init();
    let args = harness.args.clone();
    println!(
        "{:<14} {:>4} {:>6} {:>7} {:>4} {:>8} {:>5}   (paper: mined/subset/mod/axms)",
        "Benchmark", "LoC", "Mined", "Subset", "Mod", "Inv.LoC", "Axms"
    );
    for id in args.benchmarks {
        let b = benchmark(id);
        let session = b.session();
        let (orig_loc, inv_loc) = b.loc();
        let (mined, mods) = b.mined();
        let subset = session.expr_candidates.len() + session.pred_candidates.len();
        let axms = session.axioms.len();
        let paper_row = paper::TABLE1.iter().find(|r| slug(r.0) == slug(b.name()));
        let paper_str = paper_row
            .map(|r| format!("{}/{}/{}/{}", r.2, r.3, r.4, r.6))
            .unwrap_or_default();
        println!(
            "{:<14} {:>4} {:>6} {:>7} {:>4} {:>8} {:>5}   ({paper_str})",
            b.name(),
            orig_loc,
            mined.total(),
            subset,
            mods,
            inv_loc,
            axms
        );
    }
}
