//! Regenerates Table 3: validating the synthesized inverses — manual
//! (concrete round-trip) correctness, generated tests, bounded model
//! checking, and the CEGIS (Sketch stand-in) comparison.

use pins_bench::{init, run_pins, secs};
use pins_bmc::{check_inverse, BmcConfig};
use pins_cegis::{synthesize, CegisConfig};
use pins_suite::benchmark;

fn main() {
    let harness = init();
    let args = harness.args.clone();
    println!(
        "{:<14} {:>9} {:>6} {:>12} {:>14}",
        "Benchmark", "Manual", "Tests", "BMC", "CEGIS"
    );
    for id in args.benchmarks.clone() {
        let b = benchmark(id);
        let outcome = match run_pins(&b, &args) {
            Ok(o) => o,
            Err(e) => {
                println!("{:<14} synthesis failed: {e}", b.name());
                continue;
            }
        };
        // "manual": concrete round-trip validation of each surviving solution
        let mut good = 0;
        for sol in &outcome.solutions {
            let ok = (0..4).all(|seed| {
                [1usize, 3, 5]
                    .iter()
                    .all(|&size| b.round_trip(&sol.inverse, seed, size).unwrap_or(false))
            });
            if ok {
                good += 1;
            }
        }
        let manual = format!("{good} of {}", outcome.solutions.len());
        // BMC on the first correct solution
        let session = b.session();
        let first = &outcome.solutions[0].inverse;
        let bmc_cfg = BmcConfig {
            unroll: 4,
            input_bound: 3,
            ..BmcConfig::default()
        };
        let bmc = check_inverse(&session, first, bmc_cfg);
        let bmc_str = if bmc.verified {
            secs(bmc.time)
        } else {
            format!("cex({})", secs(bmc.time))
        };
        // CEGIS with a bounded battery
        let env = b.extern_env();
        let battery: Vec<_> = (0..24)
            .flat_map(|seed| [0usize, 1, 2, 3].map(|size| b.gen_input(seed, size)))
            .collect();
        let cegis_cfg = CegisConfig {
            time_budget: Some(std::time::Duration::from_secs(120)),
            ..CegisConfig::default()
        };
        let cegis = synthesize(&session, &env, &battery, cegis_cfg);
        let cegis_str = match cegis.solution {
            Some(_) => secs(cegis.time),
            None => format!("fail:{}", cegis.failure.unwrap_or_default()),
        };
        println!(
            "{:<14} {:>9} {:>6} {:>12} {:>14}",
            b.name(),
            manual,
            outcome.tests.len(),
            bmc_str,
            cegis_str
        );
    }
}
