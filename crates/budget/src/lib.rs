//! Shared work budgets for the solver stack.
//!
//! A [`Budget`] is a cheaply cloneable handle combining a wall-clock
//! deadline, a step (work-unit) limit, and a cooperative cancellation flag.
//! Every long-running loop in the stack — CDCL conflicts, simplex pivots,
//! branch-and-bound nodes, e-matching rounds, path exploration — charges
//! steps against the budget and polls [`Budget::check`] at loop heads, so a
//! runaway query stops with a machine-readable [`StopReason`] instead of
//! hanging until an outer, coarser check notices.
//!
//! Budgets form a tree: [`Budget::child`] layers a tighter per-query limit
//! over a shared engine-wide budget. Charges propagate to ancestors, and a
//! stop anywhere on the ancestor chain stops the child, so cancelling the
//! root cancels every in-flight query that was derived from it.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why work was stopped before reaching a definitive verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// [`Budget::cancel`] was called (by a user, a sibling, or a supervisor).
    Cancelled,
    /// The step limit (conflicts/pivots/rounds/instances) was exhausted.
    StepLimit,
    /// Arithmetic left the exactly-representable range (LIA rational
    /// overflow). Produced by the theory layer, never by `Budget` itself.
    Overflow,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Deadline => write!(f, "deadline"),
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::StepLimit => write!(f, "step limit"),
            StopReason::Overflow => write!(f, "overflow"),
        }
    }
}

struct Inner {
    /// Absolute deadline, if any.
    deadline: Option<Instant>,
    /// Step allowance; `u64::MAX` means unlimited.
    step_limit: u64,
    cancelled: AtomicBool,
    steps: AtomicU64,
    /// Enclosing budget; charges propagate up and stops propagate down.
    parent: Option<Budget>,
}

/// A shared, cloneable work budget. See the crate docs.
///
/// Cloning shares state: a clone observes (and contributes to) the same
/// step counter and cancel flag. Use [`Budget::child`] for an independent
/// sub-allowance.
#[derive(Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl Budget {
    /// A budget that never stops on its own (it can still be cancelled).
    pub fn unlimited() -> Budget {
        Budget::with_limits(None, None)
    }

    /// A budget with a wall-clock deadline `d` from now.
    pub fn with_deadline(d: Duration) -> Budget {
        Budget::with_limits(Some(d), None)
    }

    /// A budget with an optional wall-clock limit and an optional step limit.
    pub fn with_limits(time: Option<Duration>, steps: Option<u64>) -> Budget {
        Budget {
            inner: Arc::new(Inner {
                deadline: time.map(|d| Instant::now() + d),
                step_limit: steps.unwrap_or(u64::MAX),
                cancelled: AtomicBool::new(false),
                steps: AtomicU64::new(0),
                parent: None,
            }),
        }
    }

    /// A sub-budget with its own (tighter) limits layered over `self`.
    /// Charges against the child also charge `self`, and the child stops as
    /// soon as either its own limits or any ancestor's are exhausted.
    pub fn child(&self, time: Option<Duration>, steps: Option<u64>) -> Budget {
        Budget {
            inner: Arc::new(Inner {
                deadline: time.map(|d| Instant::now() + d),
                step_limit: steps.unwrap_or(u64::MAX),
                cancelled: AtomicBool::new(false),
                steps: AtomicU64::new(0),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Requests cooperative cancellation of this budget and its descendants.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether `cancel` was called on this budget (not ancestors).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Records `n` units of work and reports whether the budget (or any
    /// ancestor) is now exhausted.
    pub fn charge(&self, n: u64) -> Result<(), StopReason> {
        self.inner.steps.fetch_add(n, Ordering::Relaxed);
        if let Some(parent) = &self.inner.parent {
            parent.inner.steps.fetch_add(n, Ordering::Relaxed);
        }
        self.check()
    }

    /// Polls the budget without charging work.
    pub fn check(&self) -> Result<(), StopReason> {
        let mut b = self;
        loop {
            let inner = &b.inner;
            if inner.cancelled.load(Ordering::Relaxed) {
                return Err(StopReason::Cancelled);
            }
            if inner.steps.load(Ordering::Relaxed) >= inner.step_limit {
                return Err(StopReason::StepLimit);
            }
            if let Some(deadline) = inner.deadline {
                if Instant::now() >= deadline {
                    return Err(StopReason::Deadline);
                }
            }
            match &inner.parent {
                Some(parent) => b = parent,
                None => return Ok(()),
            }
        }
    }

    /// Convenience: the stop reason if exhausted, else `None`.
    pub fn stopped(&self) -> Option<StopReason> {
        self.check().err()
    }

    /// Total steps charged so far (this budget only, not ancestors).
    pub fn steps(&self) -> u64 {
        self.inner.steps.load(Ordering::Relaxed)
    }

    /// Remaining wall-clock time, if a deadline is set.
    pub fn time_left(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Remaining step allowance (this budget only), if a step limit is set.
    pub fn steps_left(&self) -> Option<u64> {
        if self.inner.step_limit == u64::MAX {
            None
        } else {
            Some(self.inner.step_limit.saturating_sub(self.steps()))
        }
    }
}

impl Default for Budget {
    fn default() -> Budget {
        Budget::unlimited()
    }
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field("deadline", &self.inner.deadline)
            .field("step_limit", &self.inner.step_limit)
            .field("steps", &self.steps())
            .field("cancelled", &self.is_cancelled())
            .field("has_parent", &self.inner.parent.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_stops() {
        let b = Budget::unlimited();
        assert_eq!(b.charge(1_000_000), Ok(()));
        assert_eq!(b.check(), Ok(()));
        assert_eq!(b.stopped(), None);
    }

    #[test]
    fn step_limit_trips() {
        let b = Budget::with_limits(None, Some(10));
        assert_eq!(b.charge(9), Ok(()));
        assert_eq!(b.charge(1), Err(StopReason::StepLimit));
        assert_eq!(b.check(), Err(StopReason::StepLimit));
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = Budget::unlimited();
        let c = b.clone();
        b.cancel();
        assert_eq!(c.check(), Err(StopReason::Cancelled));
    }

    #[test]
    fn deadline_trips() {
        let b = Budget::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(b.check(), Err(StopReason::Deadline));
    }

    #[test]
    fn child_charges_propagate_to_parent() {
        let parent = Budget::with_limits(None, Some(10));
        let child = parent.child(None, Some(100));
        assert_eq!(child.charge(9), Ok(()));
        // the child's own limit is far away, but the parent's is exhausted
        assert_eq!(child.charge(1), Err(StopReason::StepLimit));
        assert_eq!(parent.steps(), 10);
    }

    #[test]
    fn child_limit_tighter_than_parent() {
        let parent = Budget::unlimited();
        let child = parent.child(None, Some(5));
        assert_eq!(child.charge(5), Err(StopReason::StepLimit));
        assert_eq!(parent.check(), Ok(()));
    }

    #[test]
    fn cancelling_parent_stops_child() {
        let parent = Budget::unlimited();
        let child = parent.child(None, None);
        parent.cancel();
        assert_eq!(child.check(), Err(StopReason::Cancelled));
        assert!(!child.is_cancelled(), "cancel flag lives on the parent");
    }

    #[test]
    fn cancel_beats_other_reasons() {
        let b = Budget::with_limits(None, Some(1));
        let _ = b.charge(5);
        b.cancel();
        assert_eq!(b.check(), Err(StopReason::Cancelled));
    }

    #[test]
    fn stop_reason_display() {
        assert_eq!(StopReason::Deadline.to_string(), "deadline");
        assert_eq!(StopReason::Overflow.to_string(), "overflow");
    }
}
