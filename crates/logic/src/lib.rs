//! Logic substrate for PINS: sorts, symbols, and hash-consed terms.
//!
//! Every formula that flows between the symbolic executor, the PINS engine
//! and the SMT solver is a [`TermId`] into a shared [`TermArena`]. The arena
//! interns structurally-equal terms, performs light normalisation at
//! construction (constant folding, neutral elements, flattening of `and`/`or`)
//! and records the [`Sort`] of every term.
//!
//! # Example
//!
//! ```
//! use pins_logic::{TermArena, Sort};
//!
//! let mut arena = TermArena::new();
//! let x = arena.sym("x");
//! let vx = arena.mk_var(x, 0, Sort::Int);
//! let one = arena.mk_int(1);
//! let sum = arena.mk_add(vx, one);
//! let zero = arena.mk_int(0);
//! let sum2 = arena.mk_add(sum, zero); // normalised: adding 0 is the identity
//! assert_eq!(sum, sum2);
//! assert_eq!(arena.sort(sum), Sort::Int);
//! ```

mod print;
mod sort;
mod symbol;
mod term;
mod visit;

pub use print::TermDisplay;
pub use sort::Sort;
pub use symbol::{Symbol, SymbolTable};
pub use term::{FunDecl, Term, TermArena, TermId, BOUND_VERSION};
pub use visit::{collect_apps, collect_subterms, collect_vars, VarKey};

#[cfg(test)]
mod tests;
