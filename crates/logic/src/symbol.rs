use std::collections::HashMap;
use std::fmt;

/// An interned identifier.
///
/// Symbols name program variables, uninterpreted functions, and
/// uninterpreted sorts. Interning makes comparison and hashing O(1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The raw index of this symbol in its [`SymbolTable`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// A bidirectional string interner.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    by_name: HashMap<String, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Symbol(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), s);
        s
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` does not belong to this table.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Generates a symbol guaranteed not to collide with any interned name,
    /// derived from `base`.
    pub fn fresh(&mut self, base: &str) -> Symbol {
        if self.by_name.contains_key(base) {
            let mut i = 0u32;
            loop {
                let cand = format!("{base}!{i}");
                if !self.by_name.contains_key(&cand) {
                    return self.intern(&cand);
                }
                i += 1;
            }
        } else {
            self.intern(base)
        }
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}
