//! S-expression pretty printing of terms for debugging and logging.

use std::fmt;

use crate::term::{Term, TermArena, TermId, BOUND_VERSION};

/// A display adapter printing a term as an s-expression.
///
/// ```
/// use pins_logic::{TermArena, Sort};
/// let mut a = TermArena::new();
/// let x = a.sym("x");
/// let vx = a.mk_var(x, 1, Sort::Int);
/// let one = a.mk_int(1);
/// let t = a.mk_add(vx, one);
/// assert_eq!(a.display(t).to_string(), "(+ x@1 1)");
/// ```
pub struct TermDisplay<'a> {
    arena: &'a TermArena,
    id: TermId,
}

impl TermArena {
    /// Returns a [`TermDisplay`] adapter for `id`.
    pub fn display(&self, id: TermId) -> TermDisplay<'_> {
        TermDisplay { arena: self, id }
    }
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_term(self.arena, self.id, f)
    }
}

fn write_list(
    arena: &TermArena,
    op: &str,
    kids: &[TermId],
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    write!(f, "({op}")?;
    for &k in kids {
        write!(f, " ")?;
        write_term(arena, k, f)?;
    }
    write!(f, ")")
}

fn write_term(arena: &TermArena, id: TermId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match arena.term(id) {
        Term::IntConst(v) => write!(f, "{v}"),
        Term::BoolConst(b) => write!(f, "{b}"),
        Term::Var { sym, version, .. } => {
            let name = arena.symbols().name(*sym);
            if *version == BOUND_VERSION {
                write!(f, "?{name}")
            } else {
                write!(f, "{name}@{version}")
            }
        }
        Term::Add(a, b) => write_list(arena, "+", &[*a, *b], f),
        Term::Sub(a, b) => write_list(arena, "-", &[*a, *b], f),
        Term::Mul(a, b) => write_list(arena, "*", &[*a, *b], f),
        Term::Sel(a, b) => write_list(arena, "sel", &[*a, *b], f),
        Term::Upd(a, b, c) => write_list(arena, "upd", &[*a, *b, *c], f),
        Term::App(g, args) => {
            let name = arena.symbols().name(*g).to_owned();
            write_list(arena, &name, args, f)
        }
        Term::Eq(a, b) => write_list(arena, "=", &[*a, *b], f),
        Term::Le(a, b) => write_list(arena, "<=", &[*a, *b], f),
        Term::Lt(a, b) => write_list(arena, "<", &[*a, *b], f),
        Term::Not(a) => write_list(arena, "not", &[*a], f),
        Term::And(kids) => write_list(arena, "and", kids, f),
        Term::Or(kids) => write_list(arena, "or", kids, f),
        Term::Ite(c, t, e) => write_list(arena, "ite", &[*c, *t, *e], f),
        Term::Forall(vars, body) => {
            write!(f, "(forall (")?;
            for (i, (sym, _)) in vars.iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write!(f, "?{}", arena.symbols().name(*sym))?;
            }
            write!(f, ") ")?;
            write_term(arena, *body, f)?;
            write!(f, ")")
        }
        Term::Hole(occ, _) => write!(f, "hole#{occ}"),
    }
}
