use crate::symbol::Symbol;

/// The sort (type) of a term.
///
/// PINS needs exactly four kinds of values: booleans for path conditions,
/// mathematical integers for program scalars, integer-indexed integer arrays
/// for program arrays, and uninterpreted sorts for abstract data types
/// modelled by axioms (strings, angles, serialised objects, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sort {
    /// Propositional sort of formulas and predicates.
    Bool,
    /// Unbounded mathematical integers.
    Int,
    /// Arrays from `Int` to `Int` (the `sel`/`upd` theory).
    IntArray,
    /// An uninterpreted sort named by a symbol, e.g. `Str` or `Angle`.
    Unint(Symbol),
}

impl Sort {
    /// Whether the sort is `Bool`.
    pub fn is_bool(self) -> bool {
        self == Sort::Bool
    }

    /// Whether the sort is `Int`.
    pub fn is_int(self) -> bool {
        self == Sort::Int
    }

    /// Whether the sort is the integer-array sort.
    pub fn is_array(self) -> bool {
        self == Sort::IntArray
    }
}
