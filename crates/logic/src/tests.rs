use std::collections::{HashMap, HashSet};

use crate::*;

fn setup() -> (TermArena, TermId, TermId) {
    let mut a = TermArena::new();
    let x = a.sym("x");
    let y = a.sym("y");
    let vx = a.mk_var(x, 0, Sort::Int);
    let vy = a.mk_var(y, 0, Sort::Int);
    (a, vx, vy)
}

#[test]
fn interning_dedupes() {
    let (mut a, vx, vy) = setup();
    let t1 = a.mk_add(vx, vy);
    let t2 = a.mk_add(vx, vy);
    assert_eq!(t1, t2);
}

#[test]
fn add_constant_folds() {
    let (mut a, vx, _) = setup();
    let two = a.mk_int(2);
    let three = a.mk_int(3);
    assert_eq!(a.mk_add(two, three), a.mk_int(5));
    let zero = a.mk_int(0);
    assert_eq!(a.mk_add(vx, zero), vx);
    assert_eq!(a.mk_add(zero, vx), vx);
}

#[test]
fn add_overflow_does_not_fold() {
    let mut a = TermArena::new();
    let big = a.mk_int(i64::MAX);
    let one = a.mk_int(1);
    let t = a.mk_add(big, one);
    assert!(matches!(a.term(t), Term::Add(..)));
}

#[test]
fn sub_laws() {
    let (mut a, vx, _) = setup();
    assert_eq!(a.mk_sub(vx, vx), a.mk_int(0));
    let zero = a.mk_int(0);
    assert_eq!(a.mk_sub(vx, zero), vx);
    let five = a.mk_int(5);
    let three = a.mk_int(3);
    assert_eq!(a.mk_sub(five, three), a.mk_int(2));
}

#[test]
fn mul_laws() {
    let (mut a, vx, _) = setup();
    let zero = a.mk_int(0);
    let one = a.mk_int(1);
    assert_eq!(a.mk_mul(vx, zero), zero);
    assert_eq!(a.mk_mul(one, vx), vx);
    let two = a.mk_int(2);
    let three = a.mk_int(3);
    assert_eq!(a.mk_mul(two, three), a.mk_int(6));
}

#[test]
fn eq_reflexive_and_const() {
    let (mut a, vx, vy) = setup();
    assert_eq!(a.mk_eq(vx, vx), a.mk_true());
    let two = a.mk_int(2);
    let three = a.mk_int(3);
    assert_eq!(a.mk_eq(two, three), a.mk_false());
    // canonical ordering means eq(x,y) == eq(y,x)
    assert_eq!(a.mk_eq(vx, vy), a.mk_eq(vy, vx));
}

#[test]
fn bool_eq_simplifies_against_constants() {
    let mut a = TermArena::new();
    let p = a.sym("p");
    let vp = a.mk_var(p, 0, Sort::Bool);
    let t = a.mk_true();
    let f = a.mk_false();
    assert_eq!(a.mk_eq(vp, t), vp);
    assert_eq!(a.mk_eq(vp, f), a.mk_not(vp));
}

#[test]
fn comparisons_fold() {
    let (mut a, vx, _) = setup();
    let two = a.mk_int(2);
    let three = a.mk_int(3);
    assert_eq!(a.mk_lt(two, three), a.mk_true());
    assert_eq!(a.mk_le(three, two), a.mk_false());
    assert_eq!(a.mk_lt(vx, vx), a.mk_false());
    assert_eq!(a.mk_le(vx, vx), a.mk_true());
}

#[test]
fn not_flips_inequalities() {
    let (mut a, vx, vy) = setup();
    let lt = a.mk_lt(vx, vy);
    let nlt = a.mk_not(lt);
    assert_eq!(nlt, a.mk_le(vy, vx));
    assert_eq!(a.mk_not(nlt), lt);
}

#[test]
fn and_or_flatten_and_absorb() {
    let (mut a, vx, vy) = setup();
    let p = a.mk_lt(vx, vy);
    let q = a.mk_le(vy, vx); // q == not p
    let t = a.mk_true();
    let f = a.mk_false();
    assert_eq!(a.mk_and(vec![p, t]), p);
    assert_eq!(a.mk_and(vec![p, f]), f);
    assert_eq!(a.mk_or(vec![p, f]), p);
    assert_eq!(a.mk_or(vec![p, t]), t);
    // complementary literals
    assert_eq!(a.mk_and(vec![p, q]), f);
    assert_eq!(a.mk_or(vec![p, q]), t);
    // nested flattening
    let pq = a.mk_eq(vx, vy);
    let inner = a.mk_and(vec![p, pq]);
    let outer = a.mk_and(vec![inner, pq]);
    assert_eq!(outer, inner);
}

#[test]
fn implies_desugars() {
    let (mut a, vx, vy) = setup();
    let p = a.mk_lt(vx, vy);
    let q = a.mk_eq(vx, vy);
    let imp = a.mk_implies(p, q);
    let np = a.mk_not(p);
    assert_eq!(imp, a.mk_or(vec![np, q]));
    assert_eq!(a.mk_implies(a.mk_false(), q), a.mk_true());
}

#[test]
fn sel_over_upd_folds() {
    let mut a = TermArena::new();
    let arr = a.sym("A");
    let va = a.mk_var(arr, 0, Sort::IntArray);
    let i0 = a.mk_int(0);
    let i1 = a.mk_int(1);
    let v = a.mk_int(42);
    let upd = a.mk_upd(va, i0, v);
    assert_eq!(a.mk_sel(upd, i0), v);
    let read_other = a.mk_sel(upd, i1);
    assert_eq!(read_other, a.mk_sel(va, i1));
}

#[test]
fn ite_simplifies() {
    let (mut a, vx, vy) = setup();
    let c = a.mk_lt(vx, vy);
    assert_eq!(a.mk_ite(a.mk_true(), vx, vy), vx);
    assert_eq!(a.mk_ite(a.mk_false(), vx, vy), vy);
    assert_eq!(a.mk_ite(c, vx, vx), vx);
}

#[test]
fn app_requires_declaration_and_sorts() {
    let mut a = TermArena::new();
    let str_sort = Sort::Unint(a.sym("Str"));
    let f = a.declare_fun("strlen", vec![str_sort], Sort::Int);
    let s = a.sym("s");
    let vs = a.mk_var(s, 0, str_sort);
    let app = a.mk_app(f, vec![vs]);
    assert_eq!(a.sort(app), Sort::Int);
}

#[test]
#[should_panic(expected = "arity mismatch")]
fn app_arity_checked() {
    let mut a = TermArena::new();
    let f = a.declare_fun("g", vec![Sort::Int], Sort::Int);
    a.mk_app(f, vec![]);
}

#[test]
fn substitution_replaces_and_renormalises() {
    let (mut a, vx, vy) = setup();
    let sum = a.mk_add(vx, vy);
    let zero = a.mk_int(0);
    let mut map = HashMap::new();
    map.insert(vy, zero);
    let out = a.substitute(sum, &map);
    assert_eq!(out, vx);
}

#[test]
fn substitution_in_formulas() {
    let (mut a, vx, vy) = setup();
    let lt = a.mk_lt(vx, vy);
    let two = a.mk_int(2);
    let three = a.mk_int(3);
    let mut map = HashMap::new();
    map.insert(vx, two);
    map.insert(vy, three);
    assert_eq!(a.substitute(lt, &map), a.mk_true());
}

#[test]
fn collect_vars_skips_bound() {
    let mut a = TermArena::new();
    let x = a.sym("x");
    let k = a.sym("k");
    let vx = a.mk_var(x, 2, Sort::Int);
    let bk = a.mk_bound(k, Sort::Int);
    let body = a.mk_lt(bk, vx);
    let q = a.mk_forall(vec![(k, Sort::Int)], body);
    let mut vars = HashSet::new();
    collect_vars(&a, q, &mut vars);
    assert_eq!(vars.len(), 1);
    let v = vars.iter().next().unwrap();
    assert_eq!(v.sym, x);
    assert_eq!(v.version, 2);
}

#[test]
fn display_round_trip_shapes() {
    let (mut a, vx, vy) = setup();
    let sum = a.mk_add(vx, vy);
    assert_eq!(a.display(sum).to_string(), "(+ x@0 y@0)");
    let lt = a.mk_lt(sum, vx);
    assert_eq!(a.display(lt).to_string(), "(< (+ x@0 y@0) x@0)");
}

#[test]
fn collect_subterms_complete() {
    let (mut a, vx, vy) = setup();
    let sum = a.mk_add(vx, vy);
    let lt = a.mk_lt(sum, vx);
    let mut subs = HashSet::new();
    collect_subterms(&a, lt, &mut subs);
    assert!(subs.contains(&lt) && subs.contains(&sum) && subs.contains(&vx) && subs.contains(&vy));
    assert_eq!(subs.len(), 4);
}

#[test]
fn hole_terms_are_opaque() {
    let mut a = TermArena::new();
    let h0 = a.mk_hole(0, Sort::Int);
    let h1 = a.mk_hole(1, Sort::Int);
    assert_ne!(h0, h1);
    assert_eq!(a.mk_hole(0, Sort::Int), h0);
    assert_eq!(a.display(h0).to_string(), "hole#0");
}

#[test]
fn fresh_symbols_never_collide() {
    let mut t = SymbolTable::new();
    let a = t.intern("x");
    let b = t.fresh("x");
    let c = t.fresh("x");
    assert_ne!(a, b);
    assert_ne!(b, c);
    assert_eq!(t.name(a), "x");
    assert_ne!(t.name(b), t.name(c));
}
