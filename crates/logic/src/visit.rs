//! Generic traversal utilities: substitution, free-variable and subterm
//! collection.

use std::collections::{HashMap, HashSet};

use crate::sort::Sort;
use crate::symbol::Symbol;
use crate::term::{Term, TermArena, TermId, BOUND_VERSION};

/// A (symbol, version) pair identifying a free variable occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarKey {
    /// Variable name.
    pub sym: Symbol,
    /// SSA version.
    pub version: u32,
    /// Sort.
    pub sort: Sort,
}

impl TermArena {
    /// Rebuilds `t` with every key of `map` replaced by its value, bottom-up,
    /// re-normalising along the way. Replacement is applied to whole subterms
    /// (keys are arbitrary `TermId`s, typically variables or holes).
    ///
    /// Quantifier-bound variables have the [`BOUND_VERSION`] sentinel and
    /// fresh symbols, so maps keyed on program variables can never capture.
    pub fn substitute(&mut self, t: TermId, map: &HashMap<TermId, TermId>) -> TermId {
        let mut memo: HashMap<TermId, TermId> = HashMap::new();
        self.subst_rec(t, map, &mut memo)
    }

    fn subst_rec(
        &mut self,
        t: TermId,
        map: &HashMap<TermId, TermId>,
        memo: &mut HashMap<TermId, TermId>,
    ) -> TermId {
        if let Some(&r) = map.get(&t) {
            return r;
        }
        if let Some(&r) = memo.get(&t) {
            return r;
        }
        let result = match self.term(t).clone() {
            Term::IntConst(_) | Term::BoolConst(_) | Term::Var { .. } | Term::Hole(..) => t,
            Term::Add(a, b) => {
                let (a, b) = (self.subst_rec(a, map, memo), self.subst_rec(b, map, memo));
                self.mk_add(a, b)
            }
            Term::Sub(a, b) => {
                let (a, b) = (self.subst_rec(a, map, memo), self.subst_rec(b, map, memo));
                self.mk_sub(a, b)
            }
            Term::Mul(a, b) => {
                let (a, b) = (self.subst_rec(a, map, memo), self.subst_rec(b, map, memo));
                self.mk_mul(a, b)
            }
            Term::Sel(a, b) => {
                let (a, b) = (self.subst_rec(a, map, memo), self.subst_rec(b, map, memo));
                self.mk_sel(a, b)
            }
            Term::Upd(a, b, c) => {
                let a = self.subst_rec(a, map, memo);
                let b = self.subst_rec(b, map, memo);
                let c = self.subst_rec(c, map, memo);
                self.mk_upd(a, b, c)
            }
            Term::App(f, args) => {
                let args = args
                    .into_iter()
                    .map(|a| self.subst_rec(a, map, memo))
                    .collect();
                self.mk_app(f, args)
            }
            Term::Eq(a, b) => {
                let (a, b) = (self.subst_rec(a, map, memo), self.subst_rec(b, map, memo));
                self.mk_eq(a, b)
            }
            Term::Le(a, b) => {
                let (a, b) = (self.subst_rec(a, map, memo), self.subst_rec(b, map, memo));
                self.mk_le(a, b)
            }
            Term::Lt(a, b) => {
                let (a, b) = (self.subst_rec(a, map, memo), self.subst_rec(b, map, memo));
                self.mk_lt(a, b)
            }
            Term::Not(a) => {
                let a = self.subst_rec(a, map, memo);
                self.mk_not(a)
            }
            Term::And(kids) => {
                let kids = kids
                    .into_iter()
                    .map(|k| self.subst_rec(k, map, memo))
                    .collect();
                self.mk_and(kids)
            }
            Term::Or(kids) => {
                let kids = kids
                    .into_iter()
                    .map(|k| self.subst_rec(k, map, memo))
                    .collect();
                self.mk_or(kids)
            }
            Term::Ite(c, a, b) => {
                let c = self.subst_rec(c, map, memo);
                let a = self.subst_rec(a, map, memo);
                let b = self.subst_rec(b, map, memo);
                self.mk_ite(c, a, b)
            }
            Term::Forall(vars, body) => {
                let body = self.subst_rec(body, map, memo);
                self.mk_forall(vars, body)
            }
        };
        memo.insert(t, result);
        result
    }
}

/// Collects the free variables of `t` (bound variables are skipped).
pub fn collect_vars(arena: &TermArena, t: TermId, out: &mut HashSet<VarKey>) {
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut stack = vec![t];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if let Term::Var { sym, version, sort } = *arena.term(id) {
            if version != BOUND_VERSION {
                out.insert(VarKey { sym, version, sort });
            }
        }
        stack.extend(arena.children(id));
    }
}

/// Collects every application subterm of function `f` inside `t`.
pub fn collect_apps(arena: &TermArena, t: TermId, f: Symbol, out: &mut Vec<TermId>) {
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut stack = vec![t];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if let Term::App(g, _) = arena.term(id) {
            if *g == f {
                out.push(id);
            }
        }
        stack.extend(arena.children(id));
    }
}

/// Collects every subterm of `t` (including `t` itself), deduplicated.
pub fn collect_subterms(arena: &TermArena, t: TermId, out: &mut HashSet<TermId>) {
    let mut stack = vec![t];
    while let Some(id) = stack.pop() {
        if !out.insert(id) {
            continue;
        }
        stack.extend(arena.children(id));
    }
}
