use std::collections::HashMap;

use crate::sort::Sort;
use crate::symbol::{Symbol, SymbolTable};

/// A handle to an interned term in a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Raw index of the term inside its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Version number used for variables bound by a quantifier.
///
/// Bound variables carry this sentinel so that free-variable collection and
/// version-map reasoning never confuse them with program variables.
pub const BOUND_VERSION: u32 = u32::MAX;

/// The structure of a term.
///
/// Terms are created through the `mk_*` constructors on [`TermArena`], which
/// normalise and intern them; the enum itself is exposed for pattern matching
/// via [`TermArena::term`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// An integer literal.
    IntConst(i64),
    /// A boolean literal.
    BoolConst(bool),
    /// A (versioned) variable. The version is the SSA-style index assigned by
    /// the symbolic executor; version 0 denotes the initial value.
    Var {
        /// The variable's name.
        sym: Symbol,
        /// The SSA version, or [`BOUND_VERSION`] for quantifier-bound variables.
        version: u32,
        /// The variable's sort.
        sort: Sort,
    },
    /// Integer addition.
    Add(TermId, TermId),
    /// Integer subtraction.
    Sub(TermId, TermId),
    /// Integer multiplication (non-linear occurrences are handled by the SMT
    /// layer as an axiomatised uninterpreted function).
    Mul(TermId, TermId),
    /// Array read `sel(a, i)`.
    Sel(TermId, TermId),
    /// Functional array write `upd(a, i, v)`.
    Upd(TermId, TermId, TermId),
    /// Application of an uninterpreted function.
    App(Symbol, Vec<TermId>),
    /// Equality (on `Int`, `IntArray`, uninterpreted sorts, or `Bool`, where
    /// it is logical equivalence).
    Eq(TermId, TermId),
    /// Integer `<=`.
    Le(TermId, TermId),
    /// Integer `<`.
    Lt(TermId, TermId),
    /// Logical negation.
    Not(TermId),
    /// N-ary conjunction (flattened, deduplicated, sorted).
    And(Vec<TermId>),
    /// N-ary disjunction (flattened, deduplicated, sorted).
    Or(Vec<TermId>),
    /// If-then-else on a non-boolean sort.
    Ite(TermId, TermId, TermId),
    /// Universal quantification. Bound variables occur in the body as
    /// [`Term::Var`] with version [`BOUND_VERSION`].
    Forall(Vec<(Symbol, Sort)>, TermId),
    /// An unknown-occurrence placeholder: an expression or predicate hole of
    /// the synthesis template, paired (externally, by occurrence id) with the
    /// version map at which it was evaluated.
    Hole(u32, Sort),
}

/// The declared signature of an uninterpreted function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunDecl {
    /// Function name.
    pub name: Symbol,
    /// Argument sorts.
    pub args: Vec<Sort>,
    /// Result sort.
    pub ret: Sort,
}

/// The hash-consing arena that owns all terms and the symbol table.
#[derive(Debug, Clone)]
pub struct TermArena {
    terms: Vec<Term>,
    sorts: Vec<Sort>,
    intern: HashMap<Term, TermId>,
    symbols: SymbolTable,
    fun_decls: HashMap<Symbol, FunDecl>,
    true_id: TermId,
    false_id: TermId,
}

impl Default for TermArena {
    fn default() -> Self {
        Self::new()
    }
}

impl TermArena {
    /// Creates an arena pre-populated with `true` and `false`.
    pub fn new() -> Self {
        let mut arena = TermArena {
            terms: Vec::new(),
            sorts: Vec::new(),
            intern: HashMap::new(),
            symbols: SymbolTable::new(),
            fun_decls: HashMap::new(),
            true_id: TermId(0),
            false_id: TermId(0),
        };
        arena.true_id = arena.insert(Term::BoolConst(true), Sort::Bool);
        arena.false_id = arena.insert(Term::BoolConst(false), Sort::Bool);
        arena
    }

    fn insert(&mut self, term: Term, sort: Sort) -> TermId {
        if let Some(&id) = self.intern.get(&term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.intern.insert(term.clone(), id);
        self.terms.push(term);
        self.sorts.push(sort);
        id
    }

    /// The structure of term `id`.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// The sort of term `id`.
    pub fn sort(&self, id: TermId) -> Sort {
        self.sorts[id.0 as usize]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the arena holds only the two boolean constants.
    pub fn is_empty(&self) -> bool {
        self.terms.len() <= 2
    }

    /// Access to the symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Mutable access to the symbol table.
    pub fn symbols_mut(&mut self) -> &mut SymbolTable {
        &mut self.symbols
    }

    /// Interns a symbol name (shorthand for `symbols_mut().intern`).
    pub fn sym(&mut self, name: &str) -> Symbol {
        self.symbols.intern(name)
    }

    /// Declares an uninterpreted function. Re-declaring with an identical
    /// signature is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `name` was previously declared with a different signature.
    pub fn declare_fun(&mut self, name: &str, args: Vec<Sort>, ret: Sort) -> Symbol {
        let sym = self.symbols.intern(name);
        let decl = FunDecl {
            name: sym,
            args,
            ret,
        };
        if let Some(existing) = self.fun_decls.get(&sym) {
            assert_eq!(
                existing, &decl,
                "function {name} re-declared with a different signature"
            );
        } else {
            self.fun_decls.insert(sym, decl);
        }
        sym
    }

    /// The declaration of an uninterpreted function, if declared.
    pub fn fun_decl(&self, sym: Symbol) -> Option<&FunDecl> {
        self.fun_decls.get(&sym)
    }

    /// All declared uninterpreted functions.
    pub fn fun_decls(&self) -> impl Iterator<Item = &FunDecl> {
        self.fun_decls.values()
    }

    // ----- leaf constructors -------------------------------------------------

    /// The constant `true`.
    pub fn mk_true(&self) -> TermId {
        self.true_id
    }

    /// The constant `false`.
    pub fn mk_false(&self) -> TermId {
        self.false_id
    }

    /// A boolean literal.
    pub fn mk_bool(&self, b: bool) -> TermId {
        if b {
            self.true_id
        } else {
            self.false_id
        }
    }

    /// An integer literal.
    pub fn mk_int(&mut self, v: i64) -> TermId {
        self.insert(Term::IntConst(v), Sort::Int)
    }

    /// A versioned variable.
    pub fn mk_var(&mut self, sym: Symbol, version: u32, sort: Sort) -> TermId {
        self.insert(Term::Var { sym, version, sort }, sort)
    }

    /// A quantifier-bound variable (version [`BOUND_VERSION`]).
    pub fn mk_bound(&mut self, sym: Symbol, sort: Sort) -> TermId {
        self.mk_var(sym, BOUND_VERSION, sort)
    }

    /// A hole-occurrence placeholder of the given sort.
    pub fn mk_hole(&mut self, occurrence: u32, sort: Sort) -> TermId {
        self.insert(Term::Hole(occurrence, sort), sort)
    }

    // ----- arithmetic --------------------------------------------------------

    fn int_val(&self, id: TermId) -> Option<i64> {
        match self.term(id) {
            Term::IntConst(v) => Some(*v),
            _ => None,
        }
    }

    /// `a + b`, with constant folding and `x + 0 = x`.
    pub fn mk_add(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_int() && self.sort(b).is_int());
        match (self.int_val(a), self.int_val(b)) {
            (Some(x), Some(y)) => {
                if let Some(z) = x.checked_add(y) {
                    return self.mk_int(z);
                }
            }
            (Some(0), _) => return b,
            (_, Some(0)) => return a,
            _ => {}
        }
        // commutative canonicalisation improves sharing downstream
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.insert(Term::Add(a, b), Sort::Int)
    }

    /// `a - b`, with constant folding, `x - 0 = x` and `x - x = 0`.
    pub fn mk_sub(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_int() && self.sort(b).is_int());
        if a == b {
            return self.mk_int(0);
        }
        match (self.int_val(a), self.int_val(b)) {
            (Some(x), Some(y)) => {
                if let Some(z) = x.checked_sub(y) {
                    return self.mk_int(z);
                }
            }
            (_, Some(0)) => return a,
            _ => {}
        }
        self.insert(Term::Sub(a, b), Sort::Int)
    }

    /// `-a`.
    pub fn mk_neg(&mut self, a: TermId) -> TermId {
        let zero = self.mk_int(0);
        self.mk_sub(zero, a)
    }

    /// `a * b`, with constant folding and unit/zero laws.
    pub fn mk_mul(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_int() && self.sort(b).is_int());
        match (self.int_val(a), self.int_val(b)) {
            (Some(x), Some(y)) => {
                if let Some(z) = x.checked_mul(y) {
                    return self.mk_int(z);
                }
            }
            (Some(0), _) | (_, Some(0)) => return self.mk_int(0),
            (Some(1), _) => return b,
            (_, Some(1)) => return a,
            _ => {}
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.insert(Term::Mul(a, b), Sort::Int)
    }

    // ----- arrays ------------------------------------------------------------

    /// `sel(a, i)` with read-over-write folding when indices are syntactically
    /// equal or provably distinct constants.
    pub fn mk_sel(&mut self, a: TermId, i: TermId) -> TermId {
        debug_assert!(self.sort(a).is_array() && self.sort(i).is_int());
        if let Term::Upd(base, j, v) = self.term(a).clone() {
            if i == j {
                return v;
            }
            if let (Some(x), Some(y)) = (self.int_val(i), self.int_val(j)) {
                if x != y {
                    return self.mk_sel(base, i);
                }
            }
        }
        self.insert(Term::Sel(a, i), Sort::Int)
    }

    /// `upd(a, i, v)`.
    pub fn mk_upd(&mut self, a: TermId, i: TermId, v: TermId) -> TermId {
        debug_assert!(self.sort(a).is_array() && self.sort(i).is_int() && self.sort(v).is_int());
        self.insert(Term::Upd(a, i, v), Sort::IntArray)
    }

    // ----- uninterpreted functions -------------------------------------------

    /// An application `f(args)` of a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if `f` is undeclared or the argument sorts mismatch.
    pub fn mk_app(&mut self, f: Symbol, args: Vec<TermId>) -> TermId {
        let decl = self
            .fun_decls
            .get(&f)
            .unwrap_or_else(|| panic!("undeclared function {}", self.symbols.name(f)))
            .clone();
        assert_eq!(
            decl.args.len(),
            args.len(),
            "arity mismatch applying {}",
            self.symbols.name(f)
        );
        for (expected, &arg) in decl.args.iter().zip(&args) {
            assert_eq!(
                *expected,
                self.sort(arg),
                "sort mismatch applying {}",
                self.symbols.name(f)
            );
        }
        self.insert(Term::App(f, args), decl.ret)
    }

    // ----- relations ----------------------------------------------------------

    /// `a = b` (equivalence on booleans), canonically ordered, with folding.
    pub fn mk_eq(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert_eq!(
            self.sort(a),
            self.sort(b),
            "equality between different sorts"
        );
        if a == b {
            return self.mk_true();
        }
        if let (Some(x), Some(y)) = (self.int_val(a), self.int_val(b)) {
            return self.mk_bool(x == y);
        }
        if let (Term::BoolConst(x), Term::BoolConst(y)) = (self.term(a), self.term(b)) {
            return self.mk_bool(x == y);
        }
        // `phi = true` is `phi`; `phi = false` is `not phi`.
        if self.sort(a).is_bool() {
            if a == self.true_id {
                return b;
            }
            if b == self.true_id {
                return a;
            }
            if a == self.false_id {
                return self.mk_not(b);
            }
            if b == self.false_id {
                return self.mk_not(a);
            }
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        self.insert(Term::Eq(lo, hi), Sort::Bool)
    }

    /// `a <= b` with constant folding.
    pub fn mk_le(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_int() && self.sort(b).is_int());
        if a == b {
            return self.mk_true();
        }
        if let (Some(x), Some(y)) = (self.int_val(a), self.int_val(b)) {
            return self.mk_bool(x <= y);
        }
        self.insert(Term::Le(a, b), Sort::Bool)
    }

    /// `a < b` with constant folding.
    pub fn mk_lt(&mut self, a: TermId, b: TermId) -> TermId {
        debug_assert!(self.sort(a).is_int() && self.sort(b).is_int());
        if a == b {
            return self.mk_false();
        }
        if let (Some(x), Some(y)) = (self.int_val(a), self.int_val(b)) {
            return self.mk_bool(x < y);
        }
        self.insert(Term::Lt(a, b), Sort::Bool)
    }

    /// `a >= b`.
    pub fn mk_ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_le(b, a)
    }

    /// `a > b`.
    pub fn mk_gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_lt(b, a)
    }

    /// `a != b`.
    pub fn mk_neq(&mut self, a: TermId, b: TermId) -> TermId {
        let eq = self.mk_eq(a, b);
        self.mk_not(eq)
    }

    // ----- boolean structure ----------------------------------------------------

    /// `not a`, with double-negation elimination and inequality flipping
    /// (`not (a < b)` becomes `b <= a`, keeping the atom set small).
    pub fn mk_not(&mut self, a: TermId) -> TermId {
        debug_assert!(self.sort(a).is_bool());
        match self.term(a).clone() {
            Term::BoolConst(b) => self.mk_bool(!b),
            Term::Not(inner) => inner,
            Term::Lt(x, y) => self.mk_le(y, x),
            Term::Le(x, y) => self.mk_lt(y, x),
            _ => self.insert(Term::Not(a), Sort::Bool),
        }
    }

    fn mk_nary(&mut self, items: Vec<TermId>, conj: bool) -> TermId {
        let (unit, absorb) = if conj {
            (self.true_id, self.false_id)
        } else {
            (self.false_id, self.true_id)
        };
        let mut flat: Vec<TermId> = Vec::with_capacity(items.len());
        let mut stack: Vec<TermId> = items;
        stack.reverse();
        while let Some(t) = stack.pop() {
            if t == unit {
                continue;
            }
            if t == absorb {
                return absorb;
            }
            match (self.term(t), conj) {
                (Term::And(kids), true) | (Term::Or(kids), false) => {
                    for &k in kids.iter().rev() {
                        stack.push(k);
                    }
                }
                _ => flat.push(t),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // complementary-literal check
        for &t in &flat {
            let neg = self.mk_not(t);
            if flat.binary_search(&neg).is_ok() {
                return absorb;
            }
        }
        match flat.len() {
            0 => unit,
            1 => flat[0],
            _ => {
                let node = if conj {
                    Term::And(flat)
                } else {
                    Term::Or(flat)
                };
                self.insert(node, Sort::Bool)
            }
        }
    }

    /// N-ary conjunction, flattened and deduplicated.
    pub fn mk_and(&mut self, items: Vec<TermId>) -> TermId {
        self.mk_nary(items, true)
    }

    /// Binary conjunction.
    pub fn mk_and2(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_and(vec![a, b])
    }

    /// N-ary disjunction, flattened and deduplicated.
    pub fn mk_or(&mut self, items: Vec<TermId>) -> TermId {
        self.mk_nary(items, false)
    }

    /// Binary disjunction.
    pub fn mk_or2(&mut self, a: TermId, b: TermId) -> TermId {
        self.mk_or(vec![a, b])
    }

    /// `a => b`, encoded as `not a \/ b`.
    pub fn mk_implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.mk_not(a);
        self.mk_or(vec![na, b])
    }

    /// `ite(c, t, e)`. On boolean sort this is expanded into clauses; on other
    /// sorts it is kept as a term (eliminated by the SMT preprocessor).
    pub fn mk_ite(&mut self, c: TermId, t: TermId, e: TermId) -> TermId {
        debug_assert!(self.sort(c).is_bool());
        debug_assert_eq!(self.sort(t), self.sort(e));
        if c == self.true_id {
            return t;
        }
        if c == self.false_id {
            return e;
        }
        if t == e {
            return t;
        }
        if self.sort(t).is_bool() {
            let pos = self.mk_implies(c, t);
            let neg = self.mk_or(vec![c, e]);
            return self.mk_and(vec![pos, neg]);
        }
        let sort = self.sort(t);
        self.insert(Term::Ite(c, t, e), sort)
    }

    /// Universal quantification over `vars` (which must appear in the body as
    /// bound variables, i.e. with version [`BOUND_VERSION`]).
    pub fn mk_forall(&mut self, vars: Vec<(Symbol, Sort)>, body: TermId) -> TermId {
        debug_assert!(self.sort(body).is_bool());
        if vars.is_empty() || body == self.true_id || body == self.false_id {
            return body;
        }
        self.insert(Term::Forall(vars, body), Sort::Bool)
    }

    /// The direct children of a term, in order.
    pub fn children(&self, id: TermId) -> Vec<TermId> {
        match self.term(id) {
            Term::IntConst(_) | Term::BoolConst(_) | Term::Var { .. } | Term::Hole(..) => vec![],
            Term::Add(a, b)
            | Term::Sub(a, b)
            | Term::Mul(a, b)
            | Term::Sel(a, b)
            | Term::Eq(a, b)
            | Term::Le(a, b)
            | Term::Lt(a, b) => vec![*a, *b],
            Term::Upd(a, b, c) | Term::Ite(a, b, c) => vec![*a, *b, *c],
            Term::App(_, args) => args.clone(),
            Term::Not(a) => vec![*a],
            Term::And(kids) | Term::Or(kids) => kids.clone(),
            Term::Forall(_, body) => vec![*body],
        }
    }
}
