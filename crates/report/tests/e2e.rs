//! End-to-end: a real traced PINS run → JSONL on disk → `pins-report`
//! (library and binary) producing an attribution table with provenance,
//! plus the `--diff` gate's exit-code contract.

use std::path::PathBuf;
use std::process::Command;

use pins_bench::{profile::ProfileRow, run_pins_with, verdict_of, HarnessArgs};
use pins_report::{analyze::Analysis, bench, diff, ingest::Trace};
use pins_suite::{benchmark, BenchmarkId};
use pins_trace::MetricsRegistry;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pins_report_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn fast_args() -> HarnessArgs {
    HarnessArgs {
        benchmarks: vec![BenchmarkId::SumI],
        budget: None,
        fast: true,
        workers: None,
        query_ms: None,
        query_steps: None,
        no_retry: false,
        profile: true,
        bench_json: String::new(),
        trace_out: None,
    }
}

#[test]
fn traced_run_yields_provenance_attribution_and_percentiles() {
    let trace_path = temp_path("sumi.jsonl");
    let bench_path = temp_path("sumi_bench.json");
    let b = benchmark(BenchmarkId::SumI);
    // provenance tags queries with the program name the engine sees, not
    // the table display name
    let program = b.session().original.name.clone();

    // run Σi with the recorder installed, exactly like `table4 --trace-out`
    let registry = MetricsRegistry::new();
    let args = fast_args();
    let result = {
        let recorder = pins_trace::Recorder::jsonl_file(&trace_path).unwrap();
        let _guard = pins_trace::install(recorder);
        run_pins_with(&b, &args, &registry)
    };
    let row = ProfileRow::from_registry(b.name(), verdict_of(&result), &registry);
    std::fs::write(&bench_path, pins_bench::profile::to_json(&[row])).unwrap();
    assert!(result.is_ok(), "Σi should solve in fast mode: {result:?}");

    // library-level: ingest is complete and attribution carries provenance
    let trace = Trace::from_file(trace_path.to_str().unwrap()).unwrap();
    assert!(
        !trace.stats.incomplete(),
        "in-process trace must be gap-free: {:?}",
        trace.stats
    );
    assert_eq!(trace.stats.declared_dropped, Some(0));

    let analysis = Analysis::from_trace(&trace, 10);
    let origins: Vec<&(String, String)> = analysis.attribution.keys().collect();
    assert!(
        origins.iter().any(|(bench, _)| bench == &program),
        "queries must be attributed to {program}: {origins:?}"
    );
    assert!(
        origins.iter().any(|(_, phase)| phase == "solve"),
        "the verification phase must appear: {origins:?}"
    );
    assert!(!analysis.top_queries.is_empty());
    let top = &analysis.top_queries[0];
    assert_eq!(top.bench, program);
    assert_ne!(top.phase, "?");

    let smt = &analysis.layers["smt.query"];
    assert!(smt.count > 0);
    assert!(smt.p50_us <= smt.p90_us && smt.p90_us <= smt.p99_us);
    assert!(analysis.layers.contains_key("pins.run"));
    assert!(analysis
        .folded
        .keys()
        .any(|stack| stack.starts_with("pins.run;") && stack.ends_with("smt.query")));

    // binary-level: the CLI renders the same data and exits 0
    let out = Command::new(env!("CARGO_BIN_EXE_pins-report"))
        .arg(&trace_path)
        .arg("--bench-json")
        .arg(&bench_path)
        .arg("--folded")
        .arg("-")
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("cost attribution"), "{stdout}");
    assert!(stdout.contains("most expensive queries"), "{stdout}");
    assert!(stdout.contains("latency percentiles"), "{stdout}");
    assert!(stdout.contains(b.name()), "{stdout}");
    assert!(stdout.contains("smt.query"), "{stdout}");
}

#[test]
fn diff_gate_exit_codes_match_the_contract() {
    let base = temp_path("base.json");
    let same = temp_path("same.json");
    let worse = temp_path("worse.json");
    let baseline = r#"[
      {"benchmark":"Σi","verdict":"solved","wall_ms":1000.0,"smt_queries":100},
      {"benchmark":"Vector shift","verdict":"solved","wall_ms":2000.0,"smt_queries":200}
    ]"#;
    let regressed = r#"[
      {"benchmark":"Σi","verdict":"solved","wall_ms":1600.0,"smt_queries":100},
      {"benchmark":"Vector shift","verdict":"solved","wall_ms":2000.0,"smt_queries":200}
    ]"#;
    std::fs::write(&base, baseline).unwrap();
    std::fs::write(&same, baseline).unwrap();
    std::fs::write(&worse, regressed).unwrap();
    let run = |old: &PathBuf, new: &PathBuf| {
        Command::new(env!("CARGO_BIN_EXE_pins-report"))
            .args(["--diff", old.to_str().unwrap(), new.to_str().unwrap()])
            .args(["--threshold", "20"])
            .output()
            .unwrap()
    };

    let ok = run(&base, &same);
    assert_eq!(ok.status.code(), Some(0), "identical runs must pass");
    assert!(String::from_utf8_lossy(&ok.stdout).contains("OK: no regressions"));

    let fail = run(&base, &worse);
    assert_eq!(
        fail.status.code(),
        Some(1),
        "a +60% wall regression must fail"
    );
    assert!(String::from_utf8_lossy(&fail.stdout).contains("REGRESSION"));

    let missing = temp_path("does_not_exist.json");
    let usage = run(&base, &missing);
    assert_eq!(usage.status.code(), Some(2), "IO errors are exit 2");

    // the library agrees with the binary
    let report = diff::diff(
        &bench::parse(baseline).unwrap(),
        &bench::parse(regressed).unwrap(),
        20.0,
    );
    assert!(report.has_regressions());
}
