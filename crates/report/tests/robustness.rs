//! Randomized robustness test: the ingester must survive arbitrary
//! corruption of a trace stream — truncation, garbage, unknown kinds,
//! dropped lines — without panicking, and its ledger must account for
//! every input line.

use pins_prng::SplitMix64;
use pins_report::{Analysis, Trace};

/// Builds a well-formed synthetic trace of `n` events.
fn well_formed(rng: &mut SplitMix64, n: usize) -> Vec<String> {
    let phases = ["solve", "pickone", "symexec", "bmc", "cegis"];
    let mut lines = Vec::with_capacity(n);
    for i in 0..n {
        let seq = i + 1;
        let line = match rng.gen_index(4) {
            0 => format!(
                "{{\"seq\":{seq},\"t_us\":{},\"thread\":0,\"kind\":\"span_start\",\
                 \"name\":\"smt.query\",\"span\":{seq}}}",
                i * 10
            ),
            1 => format!(
                "{{\"seq\":{seq},\"t_us\":{},\"thread\":0,\"kind\":\"span_end\",\
                 \"name\":\"smt.query\",\"span\":{seq},\"dur_us\":{},\
                 \"fields\":{{\"bench\":\"Σi\",\"phase\":\"{}\",\"iter\":{}}}}}",
                i * 10,
                rng.gen_range(1..100_000),
                phases[rng.gen_index(phases.len())],
                rng.gen_range(0..20),
            ),
            2 => format!(
                "{{\"seq\":{seq},\"t_us\":{},\"thread\":1,\"kind\":\"count\",\
                 \"name\":\"smt.cache_hits\",\"fields\":{{\"n\":{}}}}}",
                i * 10,
                rng.gen_range(1..5),
            ),
            _ => format!(
                "{{\"seq\":{seq},\"t_us\":{},\"thread\":0,\"kind\":\"point\",\
                 \"name\":\"cegis.cex\",\"fields\":{{\"bench\":\"Σi\",\"round\":{}}}}}",
                i * 10,
                rng.gen_range(1..8),
            ),
        };
        lines.push(line);
    }
    lines
}

/// Truncates a string at a random char boundary.
fn truncate_random(rng: &mut SplitMix64, s: &str) -> String {
    let mut cut = rng.gen_index(s.len() + 1);
    while cut < s.len() && !s.is_char_boundary(cut) {
        cut += 1;
    }
    s[..cut].to_string()
}

#[test]
fn corrupted_traces_never_panic_and_every_line_is_accounted_for() {
    let garbage = [
        "not json at all",
        "{\"seq\":",
        "[1,2,3]",
        "null",
        "{}",
        "{\"seq\":0,\"kind\":\"count\",\"name\":\"bad-seq\"}",
        "{\"seq\":5,\"kind\":\"count\"}",
        "\u{1}\u{2}binary\u{3}",
    ];
    for trial in 0..50 {
        let mut rng = SplitMix64::new(0x9e3779b97f4a7c15 ^ trial);
        let mut lines = well_formed(&mut rng, 40);
        // corrupt: drop, truncate, garbage-insert, or unknown-kind rewrite
        let mut corrupted = Vec::new();
        for line in lines.drain(..) {
            match rng.gen_index(10) {
                0 => {} // drop the line entirely (creates a seq gap)
                1 => corrupted.push(truncate_random(&mut rng, &line)),
                2 => {
                    corrupted.push(garbage[rng.gen_index(garbage.len())].to_string());
                    corrupted.push(line);
                }
                3 => corrupted.push(line.replace("\"kind\":\"count\"", "\"kind\":\"mystery\"")),
                _ => corrupted.push(line),
            }
        }
        // always truncate the final line mid-byte: a crashed writer's tail
        if let Some(last) = corrupted.pop() {
            corrupted.push(truncate_random(&mut rng, &last));
        }
        let text = corrupted.join("\n");

        let trace = Trace::parse(&text);
        let s = &trace.stats;
        assert_eq!(
            s.parsed + s.skipped_lines + s.unknown_kinds,
            s.lines,
            "trial {trial}: every non-empty line must be parsed or counted"
        );
        assert_eq!(trace.events.len() as u64, s.parsed);
        // the analysis must also digest whatever survived without panicking
        let analysis = Analysis::from_trace(&trace, 5);
        assert!(analysis.top_queries.len() <= 5);
        if s.incomplete() {
            assert!(s.completeness_warning().is_some());
        }
    }
}

#[test]
fn empty_and_whitespace_only_inputs_are_fine() {
    for text in ["", "\n\n\n", "   \n\t\n"] {
        let trace = Trace::parse(text);
        assert_eq!(trace.stats.lines, 0);
        assert!(trace.events.is_empty());
        assert!(!trace.stats.incomplete());
    }
}
