//! `pins-report --xray`: the solver-forensics report.
//!
//! Aggregates the pins-xray instrumentation out of a trace into the
//! go/no-go numbers for the backtrackable-theory rearchitecture (ROADMAP
//! item 1):
//!
//! * **Incrementality scoreboard** — per benchmark: how many queries sit
//!   within an assertion-set delta of `k` atoms from their predecessor, how
//!   many are pure extensions (the warm-start sweet spot), and the
//!   projected solver time a warm start could save (uncached query time
//!   scaled by the shared-prefix fraction).
//! * **Miss-cause breakdown** — the `smt.cache.miss` taxonomy (first-seen /
//!   config-mismatch / budget-retry / near-miss) summed over the run.
//! * **Top-K unsat cores** — cores by content id, ranked by how often the
//!   same core refuted a query; a handful of hot cores means refutations
//!   are structural and cacheable, a long tail means they are not.
//!
//! All inputs are `smt.query` span fields and `smt.cache.miss` points, so
//! the report works on any trace from an instrumented run — no separate
//! artifact format.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::ingest::{Kind, Trace};

/// Default assertion-set delta bound for the scoreboard's "within delta-k"
/// column (mirrors the session's near-miss bound).
pub const DEFAULT_DELTA_K: u64 = 4;

/// Per-benchmark incrementality aggregates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchXray {
    /// All `smt.query` spans attributed to this benchmark.
    pub queries: u64,
    /// Queries answered from the normalized-query cache.
    pub cached: u64,
    /// Queries the incrementality audit measured (all but each session's
    /// first).
    pub audited: u64,
    /// Audited queries whose assertion-set delta to the predecessor is at
    /// most `delta_k`.
    pub within_delta_k: u64,
    /// Audited queries that only extended the predecessor (nothing
    /// removed).
    pub pure_extensions: u64,
    /// Microseconds spent on uncached (actually solved) queries.
    pub solve_us: u64,
    /// Projected microseconds a warm-started solver could save: uncached
    /// query time scaled by the shared-prefix fraction, summed.
    pub projected_warm_us: u64,
}

/// One unsat core aggregated by content id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreStat {
    /// Content id (hex) — stable across runs, sessions, and arenas.
    pub id: String,
    /// How many `Unsat` verdicts carried this core.
    pub count: u64,
    /// Member count.
    pub size: u64,
    /// Whether the core came from conflict analysis (vs. the fallback
    /// over-approximation).
    pub exact: bool,
}

/// The full forensics report.
#[derive(Debug, Clone, Default)]
pub struct XrayReport {
    /// The delta bound the scoreboard was computed against.
    pub delta_k: u64,
    /// Benchmark → incrementality aggregates.
    pub benchmarks: BTreeMap<String, BenchXray>,
    /// Miss cause → count, from `smt.cache.miss` points.
    pub miss_causes: BTreeMap<String, u64>,
    /// Cores descending by frequency (full list; renderers truncate).
    pub cores: Vec<CoreStat>,
}

impl XrayReport {
    /// Builds the report in one pass over the trace.
    pub fn from_trace(trace: &Trace, delta_k: u64) -> XrayReport {
        let mut out = XrayReport {
            delta_k,
            ..XrayReport::default()
        };
        let mut cores: BTreeMap<String, CoreStat> = BTreeMap::new();
        for ev in &trace.events {
            match ev.kind {
                Kind::Point if ev.name == "smt.cache.miss" => {
                    let cause = ev.field_str("cause").unwrap_or("?").to_string();
                    *out.miss_causes.entry(cause).or_default() += 1;
                }
                Kind::SpanEnd if ev.name == "smt.query" => {
                    let bench = ev.field_str("bench").unwrap_or("?").to_string();
                    let b = out.benchmarks.entry(bench).or_default();
                    b.queries += 1;
                    let cached = matches!(
                        ev.fields.get("cached"),
                        Some(j) if j == &pins_trace::json::Json::Bool(true)
                    );
                    b.cached += cached as u64;
                    // audit fields are present from each session's second
                    // query on
                    if let (Some(added), Some(removed)) =
                        (ev.field_num("delta_added"), ev.field_num("delta_removed"))
                    {
                        b.audited += 1;
                        if (added + removed) as u64 <= delta_k {
                            b.within_delta_k += 1;
                        }
                        if removed == 0.0 {
                            b.pure_extensions += 1;
                        }
                    }
                    if !cached {
                        let dur = ev.dur_us.unwrap_or(0);
                        b.solve_us += dur;
                        let shared = ev.field_num("shared_prefix").unwrap_or(0.0);
                        let atoms = ev.field_num("atoms").unwrap_or(0.0);
                        if atoms > 0.0 {
                            b.projected_warm_us += (dur as f64 * shared / atoms) as u64;
                        }
                    }
                    if let Some(id) = ev.field_str("core_id") {
                        let stat = cores.entry(id.to_string()).or_insert(CoreStat {
                            id: id.to_string(),
                            count: 0,
                            size: ev.field_num("core_size").unwrap_or(0.0) as u64,
                            exact: !matches!(
                                ev.fields.get("core_exact"),
                                Some(pins_trace::json::Json::Bool(false))
                            ),
                        });
                        stat.count += 1;
                    }
                }
                _ => {}
            }
        }
        out.cores = cores.into_values().collect();
        out.cores
            .sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.id.cmp(&b.id)));
        out
    }

    /// Whether the trace carried no xray instrumentation at all.
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }

    /// Totals over all benchmarks.
    fn totals(&self) -> BenchXray {
        let mut t = BenchXray::default();
        for b in self.benchmarks.values() {
            t.queries += b.queries;
            t.cached += b.cached;
            t.audited += b.audited;
            t.within_delta_k += b.within_delta_k;
            t.pure_extensions += b.pure_extensions;
            t.solve_us += b.solve_us;
            t.projected_warm_us += b.projected_warm_us;
        }
        t
    }

    /// The machine-readable form CI archives and schema-checks.
    pub fn to_json(&self, top_k: usize) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"delta_k\": {},", self.delta_k);
        s.push_str("  \"benchmarks\": [\n");
        for (i, (name, b)) in self.benchmarks.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"benchmark\": \"{}\", \"queries\": {}, \"cached\": {}, \
                 \"audited\": {}, \"within_delta_k\": {}, \"pure_extensions\": {}, \
                 \"solve_us\": {}, \"projected_warm_us\": {}}}",
                esc(name),
                b.queries,
                b.cached,
                b.audited,
                b.within_delta_k,
                b.pure_extensions,
                b.solve_us,
                b.projected_warm_us
            );
            s.push_str(if i + 1 < self.benchmarks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ],\n  \"miss_causes\": {");
        for (i, (cause, n)) in self.miss_causes.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": {}", esc(cause), n);
        }
        s.push_str("},\n  \"cores\": [\n");
        let shown = self.cores.iter().take(top_k).collect::<Vec<_>>();
        for (i, c) in shown.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"id\": \"{}\", \"count\": {}, \"size\": {}, \"exact\": {}}}",
                esc(&c.id),
                c.count,
                c.size,
                c.exact
            );
            s.push_str(if i + 1 < shown.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.0}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Renders the human-readable report: scoreboard, miss breakdown, top-K
/// cores.
pub fn render(report: &XrayReport, top_k: usize) -> String {
    let mut s = String::new();
    if report.is_empty() {
        let _ = writeln!(
            s,
            "no smt.query spans found — was the run traced with xray instrumentation?"
        );
        return s;
    }

    let _ = writeln!(
        s,
        "== incrementality scoreboard (delta-k = {}) ==",
        report.delta_k
    );
    let _ = writeln!(
        s,
        "{:<24} {:>8} {:>8} {:>8} {:>7} {:>9} {:>10} {:>10} {:>8}",
        "benchmark",
        "queries",
        "cached",
        "audited",
        "<=dk",
        "pure-ext",
        "solve",
        "warmable",
        "save"
    );
    let totals = report.totals();
    for (name, b) in report
        .benchmarks
        .iter()
        .map(|(n, b)| (n.as_str(), b))
        .chain(std::iter::once(("TOTAL", &totals)))
    {
        let _ = writeln!(
            s,
            "{:<24} {:>8} {:>8} {:>8} {:>7} {:>9} {:>10} {:>10} {:>8}",
            name,
            b.queries,
            b.cached,
            b.audited,
            pct(b.within_delta_k, b.audited),
            pct(b.pure_extensions, b.audited),
            fmt_us(b.solve_us),
            fmt_us(b.projected_warm_us),
            pct(b.projected_warm_us, b.solve_us),
        );
    }
    let _ = writeln!(s);

    let _ = writeln!(s, "== cache-miss causes ==");
    let total_misses: u64 = report.miss_causes.values().sum();
    if total_misses == 0 {
        let _ = writeln!(s, "(no misses recorded)");
    } else {
        for (cause, n) in &report.miss_causes {
            let _ = writeln!(s, "{:<20} {:>8} {:>6}", cause, n, pct(*n, total_misses));
        }
    }
    let _ = writeln!(s);

    let _ = writeln!(s, "== top {} unsat cores by frequency ==", top_k);
    if report.cores.is_empty() {
        let _ = writeln!(s, "(no unsat cores recorded)");
    } else {
        let _ = writeln!(
            s,
            "{:<6} {:<18} {:>6} {:>6} {:>7}",
            "rank", "core_id", "hits", "size", "exact"
        );
        for (i, c) in report.cores.iter().take(top_k).enumerate() {
            let _ = writeln!(
                s,
                "{:<6} {:<18} {:>6} {:>6} {:>7}",
                i + 1,
                c.id,
                c.count,
                c.size,
                if c.exact { "yes" } else { "no" }
            );
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::Trace;

    fn demo_trace() -> Trace {
        Trace::parse(concat!(
            // query 1: first of the session — no audit fields, a first-seen miss
            r#"{"seq":1,"t_us":0,"thread":0,"kind":"point","name":"smt.cache.miss","fields":{"cause":"first_seen","near_delta":0,"atoms":3}}"#,
            "\n",
            r#"{"seq":2,"t_us":1,"thread":0,"kind":"span_end","name":"smt.query","span":1,"dur_us":100,"fields":{"bench":"Σi","phase":"solve","atoms":3,"cached":false,"verdict":"sat"}}"#,
            "\n",
            // query 2: pure extension within delta-k, unsat with a core
            r#"{"seq":3,"t_us":2,"thread":0,"kind":"point","name":"smt.cache.miss","fields":{"cause":"near_miss","near_delta":1,"atoms":4}}"#,
            "\n",
            r#"{"seq":4,"t_us":3,"thread":0,"kind":"span_end","name":"smt.query","span":2,"dur_us":200,"fields":{"bench":"Σi","phase":"solve","atoms":4,"shared_prefix":3,"delta_added":1,"delta_removed":0,"cached":false,"verdict":"unsat","core_size":2,"core_id":"00000000deadbeef","core_exact":true}}"#,
            "\n",
            // query 3: cache hit replaying the same core, big delta
            r#"{"seq":5,"t_us":4,"thread":0,"kind":"span_end","name":"smt.query","span":3,"dur_us":5,"fields":{"bench":"Vector shift","phase":"pickone","atoms":9,"shared_prefix":0,"delta_added":9,"delta_removed":4,"cached":true,"verdict":"unsat","core_size":2,"core_id":"00000000deadbeef","core_exact":true}}"#,
            "\n",
        ))
    }

    #[test]
    fn scoreboard_counts_audited_and_delta_k_queries() {
        let r = XrayReport::from_trace(&demo_trace(), 4);
        let b = &r.benchmarks["Σi"];
        assert_eq!((b.queries, b.cached, b.audited), (2, 0, 1));
        assert_eq!((b.within_delta_k, b.pure_extensions), (1, 1));
        assert_eq!(b.solve_us, 300);
        // query 2 is warmable for 200us * 3/4
        assert_eq!(b.projected_warm_us, 150);
        let v = &r.benchmarks["Vector shift"];
        assert_eq!((v.queries, v.cached, v.audited), (1, 1, 1));
        assert_eq!(v.within_delta_k, 0, "delta 13 > k=4");
        assert_eq!(v.solve_us, 0, "cache hits cost no solver time");
    }

    #[test]
    fn miss_causes_and_cores_aggregate() {
        let r = XrayReport::from_trace(&demo_trace(), 4);
        assert_eq!(r.miss_causes["first_seen"], 1);
        assert_eq!(r.miss_causes["near_miss"], 1);
        assert_eq!(r.cores.len(), 1);
        let c = &r.cores[0];
        assert_eq!(
            (c.id.as_str(), c.count, c.size, c.exact),
            ("00000000deadbeef", 2, 2, true)
        );
    }

    #[test]
    fn rendered_report_has_all_three_sections() {
        let r = XrayReport::from_trace(&demo_trace(), 4);
        let text = render(&r, 10);
        assert!(text.contains("incrementality scoreboard"), "{text}");
        assert!(text.contains("cache-miss causes"), "{text}");
        assert!(text.contains("unsat cores by frequency"), "{text}");
        assert!(text.contains("TOTAL"), "{text}");
        assert!(text.contains("00000000deadbeef"), "{text}");
    }

    #[test]
    fn json_output_parses_back_and_is_non_empty() {
        let r = XrayReport::from_trace(&demo_trace(), 4);
        let text = r.to_json(10);
        let v = pins_trace::json::parse(&text).expect("self-emitted JSON must parse");
        let benches = match v.get("benchmarks") {
            Some(pins_trace::json::Json::Arr(items)) => items.len(),
            other => panic!("benchmarks must be an array, got {other:?}"),
        };
        assert_eq!(benches, 2);
        assert_eq!(v.get("delta_k").and_then(|j| j.as_num()), Some(4.0));
        let cores = match v.get("cores") {
            Some(pins_trace::json::Json::Arr(items)) => items.len(),
            other => panic!("cores must be an array, got {other:?}"),
        };
        assert_eq!(cores, 1);
    }

    #[test]
    fn empty_traces_render_a_diagnostic_not_a_panic() {
        let r = XrayReport::from_trace(&Trace::default(), 4);
        assert!(r.is_empty());
        let text = render(&r, 10);
        assert!(text.contains("no smt.query spans"));
        // JSON stays schema-valid even when empty
        let v = pins_trace::json::parse(&r.to_json(10)).expect("valid JSON");
        assert!(matches!(
            v.get("benchmarks"),
            Some(pins_trace::json::Json::Arr(_))
        ));
    }
}
