//! Ingestion and rendering of `pins-fuzz` JSONL reports.
//!
//! The fuzzer emits three deterministic line kinds — `fuzz.meta` (run
//! parameters), `fuzz.violation` (one per surviving finding, with the
//! replayable decision tape), and `fuzz.summary` (per-oracle counts). This
//! module turns such a file into the same kind of human-readable report the
//! trace analyzer produces, including the exact `pins-fuzz --oracle NAME
//! --tape HEX` command that reproduces each finding.

use pins_trace::json::{parse, Json};

/// One `fuzz.violation` line.
#[derive(Debug, Clone)]
pub struct FuzzViolation {
    /// Iteration the finding surfaced at.
    pub iter: u64,
    /// Oracle that flagged it.
    pub oracle: String,
    /// Per-iteration seed.
    pub seed: u64,
    /// Replay tape (shrunk if shrinking succeeded, original otherwise).
    pub tape: String,
    /// The violation messages.
    pub messages: Vec<String>,
}

/// Per-oracle counters from the `fuzz.summary` line.
#[derive(Debug, Clone, Default)]
pub struct FuzzOracleRow {
    /// Oracle name.
    pub oracle: String,
    /// Iterations that checked the property and passed.
    pub passed: u64,
    /// Inconclusive iterations (nothing definitive to compare).
    pub skipped: u64,
    /// Iterations that produced a violation.
    pub violations: u64,
}

/// A parsed fuzz report.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Master seed of the run, from `fuzz.meta`.
    pub seed: Option<u64>,
    /// Requested iteration count, from `fuzz.meta`.
    pub iters: Option<u64>,
    /// Completed iterations, from `fuzz.summary`.
    pub completed: Option<u64>,
    /// Violations, in emission order.
    pub violations: Vec<FuzzViolation>,
    /// Per-oracle counters, in emission order.
    pub per_oracle: Vec<FuzzOracleRow>,
    /// Lines that failed to parse or had an unexpected shape.
    pub skipped_lines: u64,
}

impl FuzzReport {
    /// Whether the run surfaced any oracle violation.
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty()
    }
}

fn num(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_num).map(|n| n as u64)
}

/// Parses a fuzz JSONL report. Unknown kinds and malformed lines are
/// counted in [`FuzzReport::skipped_lines`], mirroring the trace ingester's
/// skip-and-count policy.
pub fn parse_report(text: &str) -> FuzzReport {
    let mut r = FuzzReport::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = parse(line) else {
            r.skipped_lines += 1;
            continue;
        };
        match v.get("kind").and_then(Json::as_str) {
            Some("fuzz.meta") => {
                r.seed = num(&v, "seed");
                r.iters = num(&v, "iters");
            }
            Some("fuzz.violation") => {
                let messages = match v.get("violations") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .filter_map(|m| m.as_str().map(str::to_owned))
                        .collect(),
                    _ => Vec::new(),
                };
                let tape = v
                    .get("shrunk_tape")
                    .and_then(Json::as_str)
                    .or_else(|| v.get("tape").and_then(Json::as_str))
                    .unwrap_or_default()
                    .to_owned();
                r.violations.push(FuzzViolation {
                    iter: num(&v, "iter").unwrap_or(0),
                    oracle: v
                        .get("oracle")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_owned(),
                    seed: num(&v, "seed").unwrap_or(0),
                    tape,
                    messages,
                });
            }
            Some("fuzz.summary") => {
                r.completed = num(&v, "iters");
                if let Some(Json::Obj(per)) = v.get("per_oracle") {
                    for (name, counts) in per {
                        r.per_oracle.push(FuzzOracleRow {
                            oracle: name.clone(),
                            passed: num(counts, "passed").unwrap_or(0),
                            skipped: num(counts, "skipped").unwrap_or(0),
                            violations: num(counts, "violations").unwrap_or(0),
                        });
                    }
                }
            }
            _ => r.skipped_lines += 1,
        }
    }
    r
}

/// Renders the report for the terminal.
pub fn render(r: &FuzzReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "== differential fuzz report ==");
    let _ = writeln!(
        out,
        "seed {}  iterations {} requested / {} completed",
        r.seed.map_or("?".to_owned(), |s| s.to_string()),
        r.iters.map_or("?".to_owned(), |s| s.to_string()),
        r.completed.map_or("?".to_owned(), |s| s.to_string()),
    );
    if !r.per_oracle.is_empty() {
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>9} {:>11}",
            "oracle", "passed", "skipped", "violations"
        );
        for row in &r.per_oracle {
            let _ = writeln!(
                out,
                "{:<16} {:>9} {:>9} {:>11}",
                row.oracle, row.passed, row.skipped, row.violations
            );
        }
    }
    if r.violations.is_empty() {
        let _ = writeln!(out, "no oracle violations");
    } else {
        for vio in &r.violations {
            let _ = writeln!(
                out,
                "VIOLATION iter={} oracle={} seed={}",
                vio.iter, vio.oracle, vio.seed
            );
            for m in &vio.messages {
                let _ = writeln!(out, "  {m}");
            }
            let _ = writeln!(
                out,
                "  replay: pins-fuzz --oracle {} --tape {}",
                vio.oracle, vio.tape
            );
        }
    }
    if r.skipped_lines > 0 {
        let _ = writeln!(out, "({} unrecognized lines skipped)", r.skipped_lines);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"kind\":\"fuzz.meta\",\"version\":1,\"seed\":42,\"iters\":100,\"oracle\":null}\n",
        "{\"kind\":\"fuzz.violation\",\"iter\":7,\"oracle\":\"model-eval\",\"seed\":9,",
        "\"tape\":\"1.2.3\",\"shrunk_tape\":\"1.2\",\"violations\":[\"model falsifies assert #0\"]}\n",
        "{\"kind\":\"fuzz.summary\",\"iters\":100,\"passed\":95,\"skipped\":4,\"violations\":1,",
        "\"per_oracle\":{\"model-eval\":{\"passed\":15,\"skipped\":1,\"violations\":1}}}\n",
    );

    #[test]
    fn parses_all_three_kinds() {
        let r = parse_report(SAMPLE);
        assert_eq!(r.seed, Some(42));
        assert_eq!(r.iters, Some(100));
        assert_eq!(r.completed, Some(100));
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].tape, "1.2", "shrunk tape wins");
        assert_eq!(r.per_oracle.len(), 1);
        assert_eq!(r.per_oracle[0].passed, 15);
        assert!(r.has_violations());
        assert_eq!(r.skipped_lines, 0);
    }

    #[test]
    fn renders_replay_command_and_skips_garbage() {
        let text = format!("{SAMPLE}not json at all\n{{\"kind\":\"span_start\"}}\n");
        let r = parse_report(&text);
        assert_eq!(r.skipped_lines, 2);
        let rendered = render(&r);
        assert!(rendered.contains("pins-fuzz --oracle model-eval --tape 1.2"));
        assert!(rendered.contains("model falsifies assert #0"));
        assert!(rendered.contains("2 unrecognized lines skipped"));
    }

    #[test]
    fn clean_run_renders_no_violations() {
        let clean = "{\"kind\":\"fuzz.summary\",\"iters\":10,\"passed\":10,\"skipped\":0,\
                     \"violations\":0,\"per_oracle\":{}}";
        let r = parse_report(clean);
        assert!(!r.has_violations());
        assert!(render(&r).contains("no oracle violations"));
    }
}
