//! `pins-report` — trace analysis and regression gating for PINS runs.
//!
//! The harness binaries stream structured events with `--trace-out` and
//! write a machine-readable profile with `--profile`; this crate turns
//! those artifacts into answers:
//!
//! * **Cost attribution** — where did solver time go, by benchmark ×
//!   engine phase, with the top-K most expensive queries and their full
//!   provenance (iteration, path, CEGIS round)?
//! * **Latency percentiles** — exact p50/p90/p99 per span layer
//!   (`smt.query`, `symexec.explore_one`, `bmc.discharge`, ...).
//! * **Folded stacks** — `a;b;c weight` lines consumable by inferno /
//!   speedscope flame-graph tooling, weighted by span *self* time.
//! * **Regression gating** — `--diff OLD NEW` compares two
//!   `BENCH_pins.json` reports against a relative threshold and exits
//!   non-zero on regressions; CI runs it against a committed baseline.
//! * **Solver forensics** — `--xray` renders the incrementality
//!   scoreboard, cache-miss-cause breakdown, and top-K unsat cores from
//!   the pins-xray instrumentation (see [`xray`]), optionally archiving
//!   the machine-readable form with `--xray-json`.
//!
//! Ingestion is deliberately paranoid: traces from crashed or concurrent
//! runs are expected, so malformed lines are counted and skipped (see
//! [`ingest::IngestStats`]) and reports lead with a completeness warning
//! when anything was lost.
//!
//! # Example
//!
//! ```
//! use pins_report::{analyze::Analysis, ingest::Trace};
//!
//! let trace = Trace::parse(
//!     "{\"seq\":1,\"t_us\":5,\"thread\":0,\"kind\":\"span_end\",\
//!      \"name\":\"smt.query\",\"span\":1,\"dur_us\":42,\
//!      \"fields\":{\"bench\":\"Σi\",\"phase\":\"solve\"}}",
//! );
//! let analysis = Analysis::from_trace(&trace, 10);
//! let cost = &analysis.attribution[&("Σi".into(), "solve".into())];
//! assert_eq!((cost.queries, cost.total_us), (1, 42));
//! ```

pub mod analyze;
pub mod bench;
pub mod diff;
pub mod fuzz;
pub mod ingest;
pub mod render;
pub mod xray;

pub use analyze::{Analysis, LayerLatency, OriginCost, TopQuery};
pub use bench::BenchRow;
pub use diff::{diff, DiffReport, Severity};
pub use fuzz::{parse_report as parse_fuzz_report, FuzzReport};
pub use ingest::{IngestStats, Trace, TraceEvent};
pub use xray::{BenchXray, CoreStat, XrayReport};
