//! Turns a parsed trace into the report's aggregates: per-origin cost
//! attribution, exact per-layer latency percentiles, the top-K most
//! expensive queries with their provenance, and folded stacks for flame
//! tooling.

use std::collections::BTreeMap;

use crate::ingest::{Kind, Trace, TraceEvent};

/// Cost bucket for one `(benchmark, phase)` origin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OriginCost {
    /// Number of `smt.query` spans attributed here.
    pub queries: u64,
    /// Total query wall time in microseconds.
    pub total_us: u64,
    /// Query-cache hits among those queries.
    pub cache_hits: u64,
}

/// One expensive query, provenance attached.
#[derive(Debug, Clone)]
pub struct TopQuery {
    /// Query wall time in microseconds.
    pub dur_us: u64,
    /// Benchmark (or program under BMC) the query belongs to.
    pub bench: String,
    /// Engine phase that issued it.
    pub phase: String,
    /// `pins.iteration` number at issue time (0 outside the loop).
    pub iter: u64,
    /// 1-based path id, when the query concerned a specific path.
    pub path: u64,
    /// CEGIS counterexample round, when inside CEGIS.
    pub cegis_round: u64,
    /// Solver verdict string, when recorded.
    pub verdict: String,
    /// Whether the normalized-query cache answered it.
    pub cached: bool,
}

/// Exact latency percentiles over one span layer (one span name).
#[derive(Debug, Clone, Default)]
pub struct LayerLatency {
    /// Number of completed spans.
    pub count: u64,
    /// Total microseconds across them.
    pub total_us: u64,
    /// Median duration in microseconds.
    pub p50_us: u64,
    /// 90th percentile duration.
    pub p90_us: u64,
    /// 99th percentile duration.
    pub p99_us: u64,
    /// Slowest span seen.
    pub max_us: u64,
}

impl LayerLatency {
    fn from_durations(mut durs: Vec<u64>) -> LayerLatency {
        durs.sort_unstable();
        let total = durs.iter().sum();
        let pick = |q: f64| {
            // nearest-rank on the sorted sample: exact, not bucketed
            let rank = ((durs.len() as f64) * q).ceil() as usize;
            durs[rank.clamp(1, durs.len()) - 1]
        };
        LayerLatency {
            count: durs.len() as u64,
            total_us: total,
            p50_us: pick(0.50),
            p90_us: pick(0.90),
            p99_us: pick(0.99),
            max_us: *durs.last().unwrap(),
        }
    }
}

/// Everything the reports print, computed in one pass over the trace.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// `(benchmark, phase)` → attributed query cost, sorted by key.
    pub attribution: BTreeMap<(String, String), OriginCost>,
    /// The most expensive `smt.query` spans, descending by duration.
    pub top_queries: Vec<TopQuery>,
    /// Span name → exact latency percentiles.
    pub layers: BTreeMap<String, LayerLatency>,
    /// Folded stacks (`a;b;c weight` lines, weight = self time in µs),
    /// aggregated and sorted by stack string.
    pub folded: BTreeMap<String, u64>,
    /// Counter name → summed increments.
    pub counters: BTreeMap<String, u64>,
    /// CEGIS counterexample rounds observed per benchmark.
    pub cegis_rounds: BTreeMap<String, u64>,
}

struct SpanInfo {
    name_and_parent: Option<(String, u64)>,
    children_us: u64,
}

impl Analysis {
    /// Runs the whole analysis. `top_k` bounds [`Analysis::top_queries`].
    pub fn from_trace(trace: &Trace, top_k: usize) -> Analysis {
        let mut out = Analysis::default();
        let mut durations: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        // span id → info; populated from span_end events, which carry the
        // recorded fields and duration (starts only mark tree shape)
        let mut spans: BTreeMap<u64, SpanInfo> = BTreeMap::new();

        for ev in &trace.events {
            match ev.kind {
                Kind::Count => {
                    let n = ev.field_num("n").unwrap_or(1.0) as u64;
                    *out.counters.entry(ev.name.clone()).or_default() += n;
                }
                Kind::Point => {
                    if ev.name == "cegis.cex" {
                        let bench = ev.field_str("bench").unwrap_or("?").to_string();
                        let round = ev.field_num("round").unwrap_or(0.0) as u64;
                        let slot = out.cegis_rounds.entry(bench).or_default();
                        *slot = (*slot).max(round);
                    }
                }
                Kind::SpanStart => {}
                Kind::SpanEnd => {
                    let dur = ev.dur_us.unwrap_or(0);
                    durations.entry(ev.name.as_str()).or_default().push(dur);
                    spans.insert(
                        ev.span,
                        SpanInfo {
                            name_and_parent: Some((ev.name.clone(), ev.parent)),
                            children_us: spans.get(&ev.span).map_or(0, |s| s.children_us),
                        },
                    );
                    if ev.parent != 0 {
                        spans
                            .entry(ev.parent)
                            .or_insert(SpanInfo {
                                name_and_parent: None,
                                children_us: 0,
                            })
                            .children_us += dur;
                    }
                    if ev.name == "smt.query" {
                        out.note_query(ev, dur);
                    }
                }
            }
        }

        for (name, durs) in durations {
            out.layers
                .insert(name.to_string(), LayerLatency::from_durations(durs));
        }
        out.fold_stacks(trace, &spans);
        out.top_queries.sort_by_key(|q| std::cmp::Reverse(q.dur_us));
        out.top_queries.truncate(top_k);
        out
    }

    fn note_query(&mut self, ev: &TraceEvent, dur: u64) {
        let bench = ev.field_str("bench").unwrap_or("?").to_string();
        let phase = ev.field_str("phase").unwrap_or("none").to_string();
        let cached =
            matches!(ev.fields.get("cached"), Some(j) if j == &pins_trace::json::Json::Bool(true));
        let cost = self
            .attribution
            .entry((bench.clone(), phase.clone()))
            .or_default();
        cost.queries += 1;
        cost.total_us += dur;
        cost.cache_hits += cached as u64;
        self.top_queries.push(TopQuery {
            dur_us: dur,
            bench,
            phase,
            iter: ev.field_num("iter").unwrap_or(0.0) as u64,
            path: ev.field_num("path").unwrap_or(0.0) as u64,
            cegis_round: ev.field_num("cegis_round").unwrap_or(0.0) as u64,
            verdict: ev.field_str("verdict").unwrap_or("?").to_string(),
            cached,
        });
    }

    /// Builds inferno/speedscope-compatible folded stacks. Each span
    /// contributes its *self* time (duration minus direct children) under
    /// the `root;...;leaf` stack reconstructed from parent links.
    fn fold_stacks(&mut self, trace: &Trace, spans: &BTreeMap<u64, SpanInfo>) {
        for ev in &trace.events {
            if ev.kind != Kind::SpanEnd {
                continue;
            }
            let dur = ev.dur_us.unwrap_or(0);
            let children = spans.get(&ev.span).map_or(0, |s| s.children_us);
            let self_us = dur.saturating_sub(children);
            let mut stack = vec![ev.name.as_str()];
            let mut cursor = ev.parent;
            // parent chains are short; the depth cap only guards corrupt input
            for _ in 0..64 {
                if cursor == 0 {
                    break;
                }
                match spans.get(&cursor).and_then(|s| s.name_and_parent.as_ref()) {
                    Some((name, parent)) => {
                        stack.push(name.as_str());
                        cursor = *parent;
                    }
                    None => break,
                }
            }
            stack.reverse();
            *self.folded.entry(stack.join(";")).or_default() += self_us;
        }
    }

    /// The folded stacks as text, one `stack weight` line each.
    pub fn folded_text(&self) -> String {
        let mut s = String::new();
        for (stack, weight) in &self.folded {
            s.push_str(stack);
            s.push(' ');
            s.push_str(&weight.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::Trace;

    fn demo_trace() -> Trace {
        // pins.run(1) > pins.iteration(2) > two smt.query spans (3, 4)
        Trace::parse(concat!(
            r#"{"seq":1,"t_us":0,"thread":0,"kind":"span_start","name":"pins.run","span":1}"#,
            "\n",
            r#"{"seq":2,"t_us":1,"thread":0,"kind":"span_start","name":"pins.iteration","span":2,"parent":1}"#,
            "\n",
            r#"{"seq":3,"t_us":2,"thread":0,"kind":"span_end","name":"smt.query","span":3,"parent":2,"dur_us":100,"fields":{"bench":"Σi","phase":"solve","iter":1,"verdict":"unsat","cached":false}}"#,
            "\n",
            r#"{"seq":4,"t_us":3,"thread":0,"kind":"span_end","name":"smt.query","span":4,"parent":2,"dur_us":40,"fields":{"bench":"Σi","phase":"pickone","iter":1,"path":2,"verdict":"sat","cached":true}}"#,
            "\n",
            r#"{"seq":5,"t_us":4,"thread":0,"kind":"count","name":"smt.queries","fields":{"n":2}}"#,
            "\n",
            r#"{"seq":6,"t_us":5,"thread":0,"kind":"span_end","name":"pins.iteration","span":2,"parent":1,"dur_us":200}"#,
            "\n",
            r#"{"seq":7,"t_us":6,"thread":0,"kind":"span_end","name":"pins.run","span":1,"dur_us":300}"#,
            "\n",
        ))
    }

    #[test]
    fn attribution_groups_by_bench_and_phase() {
        let a = Analysis::from_trace(&demo_trace(), 10);
        let solve = &a.attribution[&("Σi".to_string(), "solve".to_string())];
        assert_eq!(
            (solve.queries, solve.total_us, solve.cache_hits),
            (1, 100, 0)
        );
        let pick = &a.attribution[&("Σi".to_string(), "pickone".to_string())];
        assert_eq!((pick.queries, pick.total_us, pick.cache_hits), (1, 40, 1));
        assert_eq!(a.counters["smt.queries"], 2);
    }

    #[test]
    fn top_queries_are_sorted_and_carry_provenance() {
        let a = Analysis::from_trace(&demo_trace(), 1);
        assert_eq!(a.top_queries.len(), 1);
        let q = &a.top_queries[0];
        assert_eq!(q.dur_us, 100);
        assert_eq!(q.bench, "Σi");
        assert_eq!(q.phase, "solve");
        assert_eq!(q.iter, 1);
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let l = LayerLatency::from_durations((1..=100).collect());
        assert_eq!(l.p50_us, 50);
        assert_eq!(l.p90_us, 90);
        assert_eq!(l.p99_us, 99);
        assert_eq!(l.max_us, 100);
        let single = LayerLatency::from_durations(vec![7]);
        assert_eq!((single.p50_us, single.p99_us), (7, 7));
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let a = Analysis::from_trace(&demo_trace(), 10);
        // iteration self = 200 - (100 + 40); run self = 300 - 200
        assert_eq!(a.folded["pins.run"], 100);
        assert_eq!(a.folded["pins.run;pins.iteration"], 60);
        assert_eq!(a.folded["pins.run;pins.iteration;smt.query"], 140);
        let text = a.folded_text();
        assert!(text.contains("pins.run;pins.iteration;smt.query 140\n"));
    }
}
