//! Plain-text rendering of the analysis and diff reports.

use std::fmt::Write as _;

use crate::analyze::Analysis;
use crate::bench::BenchRow;
use crate::diff::{DiffReport, Severity};
use crate::ingest::IngestStats;

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

/// Renders the full trace-analysis report: completeness warning,
/// cost-attribution table, top-K queries, and per-layer percentiles.
pub fn analysis_report(analysis: &Analysis, stats: &IngestStats, bench: &[BenchRow]) -> String {
    let mut s = String::new();
    if let Some(warning) = stats.completeness_warning() {
        writeln!(s, "{warning}").unwrap();
        writeln!(s).unwrap();
    }
    writeln!(
        s,
        "ingested {} events ({} lines)",
        stats.parsed, stats.lines
    )
    .unwrap();
    writeln!(s).unwrap();

    if !analysis.attribution.is_empty() {
        writeln!(s, "== cost attribution (benchmark x phase) ==").unwrap();
        writeln!(
            s,
            "{:<24} {:<10} {:>8} {:>12} {:>10} {:>8}",
            "benchmark", "phase", "queries", "total", "mean", "cached"
        )
        .unwrap();
        for ((bench, phase), cost) in &analysis.attribution {
            let mean = cost.total_us.checked_div(cost.queries).unwrap_or(0);
            writeln!(
                s,
                "{:<24} {:<10} {:>8} {:>12} {:>10} {:>8}",
                bench,
                phase,
                cost.queries,
                fmt_us(cost.total_us),
                fmt_us(mean),
                cost.cache_hits
            )
            .unwrap();
        }
        writeln!(s).unwrap();
    }

    if !analysis.top_queries.is_empty() {
        writeln!(
            s,
            "== top {} most expensive queries ==",
            analysis.top_queries.len()
        )
        .unwrap();
        for (i, q) in analysis.top_queries.iter().enumerate() {
            let mut origin = format!("{} / {}", q.bench, q.phase);
            if q.iter != 0 {
                write!(origin, " iter {}", q.iter).unwrap();
            }
            if q.path != 0 {
                write!(origin, " path {}", q.path).unwrap();
            }
            if q.cegis_round != 0 {
                write!(origin, " cex-round {}", q.cegis_round).unwrap();
            }
            writeln!(
                s,
                "{:>3}. {:>10}  {}  [{}{}]",
                i + 1,
                fmt_us(q.dur_us),
                origin,
                q.verdict,
                if q.cached { ", cached" } else { "" }
            )
            .unwrap();
        }
        writeln!(s).unwrap();
    }

    if !analysis.layers.is_empty() {
        writeln!(s, "== latency percentiles per layer ==").unwrap();
        writeln!(
            s,
            "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "span", "count", "p50", "p90", "p99", "max"
        )
        .unwrap();
        for (name, l) in &analysis.layers {
            writeln!(
                s,
                "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
                name,
                l.count,
                fmt_us(l.p50_us),
                fmt_us(l.p90_us),
                fmt_us(l.p99_us),
                fmt_us(l.max_us)
            )
            .unwrap();
        }
        writeln!(s).unwrap();
    }

    if !analysis.cegis_rounds.is_empty() {
        writeln!(s, "== CEGIS counterexample rounds ==").unwrap();
        for (bench, rounds) in &analysis.cegis_rounds {
            writeln!(s, "{bench:<24} {rounds}").unwrap();
        }
        writeln!(s).unwrap();
    }

    if !bench.is_empty() {
        writeln!(s, "== profile summary (BENCH_pins.json) ==").unwrap();
        writeln!(
            s,
            "{:<24} {:<16} {:>10} {:>8} {:>24}",
            "benchmark", "verdict", "wall", "queries", "query p50/p90/p99 (us)"
        )
        .unwrap();
        for row in bench {
            writeln!(
                s,
                "{:<24} {:<16} {:>10} {:>8} {:>24}",
                row.benchmark,
                row.verdict,
                format!("{:.1}ms", row.wall_ms),
                row.smt_queries,
                format!(
                    "{:.0}/{:.0}/{:.0}",
                    row.query_p50_us, row.query_p90_us, row.query_p99_us
                )
            )
            .unwrap();
        }
    }
    s
}

/// Renders the regression diff. Lists every changed metric, with
/// regressions called out and a one-line verdict at the end.
pub fn diff_report(report: &DiffReport, threshold_pct: f64) -> String {
    let mut s = String::new();
    writeln!(s, "== regression diff (threshold {threshold_pct}%) ==").unwrap();
    writeln!(
        s,
        "{:<24} {:<12} {:>14} {:>14} {:>9}  status",
        "benchmark", "metric", "baseline", "candidate", "delta"
    )
    .unwrap();
    for e in &report.entries {
        let delta = match (e.delta_pct, e.severity) {
            (Some(p), _) => format!("{p:+.1}%"),
            // zero-baseline regression: growth from nothing has no finite
            // percentage
            (None, Severity::Regression) => "+inf%".to_string(),
            (None, _) => "-".to_string(),
        };
        let status = match e.severity {
            Severity::Regression => "REGRESSION",
            Severity::Improvement => "improved",
            Severity::Unchanged => "ok",
        };
        writeln!(
            s,
            "{:<24} {:<12} {:>14} {:>14} {:>9}  {}",
            e.benchmark, e.metric, e.old, e.new, delta, status
        )
        .unwrap();
    }
    if !report.unmatched.is_empty() {
        writeln!(
            s,
            "WARNING: {} benchmark(s) present in only one report — their \
             metrics were NOT gated:",
            report.unmatched.len()
        )
        .unwrap();
        for u in &report.unmatched {
            writeln!(s, "  {u}").unwrap();
        }
    }
    let n = report.regressions().count();
    if n > 0 {
        writeln!(
            s,
            "FAIL: {n} regression(s) past the {threshold_pct}% threshold"
        )
        .unwrap();
    } else {
        writeln!(s, "OK: no regressions past the {threshold_pct}% threshold").unwrap();
    }
    s
}
