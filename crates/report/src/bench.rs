//! Reader for the `BENCH_pins.json` profile report the harness emits with
//! `--profile`. Tolerant of older files: every member except the benchmark
//! name is optional and defaults to zero/empty, so diffing a new run
//! against a baseline written before a field existed still works.

use pins_trace::json::{self, Json};

/// One benchmark's profile row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchRow {
    /// Benchmark display name (the diff join key).
    pub benchmark: String,
    /// `"solved"`, `"no-solution"`, or `"budget-exhausted"`.
    pub verdict: String,
    /// Total wall-clock milliseconds.
    pub wall_ms: f64,
    /// Phase name → milliseconds.
    pub phase_ms: Vec<(String, f64)>,
    /// SMT validity queries.
    pub smt_queries: u64,
    /// Feasibility queries from symbolic execution.
    pub feasibility_queries: u64,
    /// Normalized-query cache hits.
    pub cache_hits: u64,
    /// Normalized-query cache misses.
    pub cache_misses: u64,
    /// Median query latency (µs), 0 when absent.
    pub query_p50_us: f64,
    /// 90th-percentile query latency (µs).
    pub query_p90_us: f64,
    /// 99th-percentile query latency (µs).
    pub query_p99_us: f64,
}

/// Parses a `BENCH_pins.json` document (a JSON array of row objects).
/// Rows missing a benchmark name are dropped; missing members default.
pub fn parse(text: &str) -> Result<Vec<BenchRow>, String> {
    let v = json::parse(text)?;
    let arr = match v {
        Json::Arr(items) => items,
        _ => return Err("expected a JSON array of benchmark rows".to_string()),
    };
    let mut rows = Vec::new();
    for item in arr {
        let benchmark = match item.get("benchmark").and_then(Json::as_str) {
            Some(name) => name.to_string(),
            None => continue,
        };
        let num = |key: &str| item.get(key).and_then(Json::as_num).unwrap_or(0.0);
        let mut phase_ms = Vec::new();
        if let Some(Json::Obj(m)) = item.get("phase_ms") {
            for (name, v) in m {
                phase_ms.push((name.clone(), v.as_num().unwrap_or(0.0)));
            }
        }
        rows.push(BenchRow {
            benchmark,
            verdict: item
                .get("verdict")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            wall_ms: num("wall_ms"),
            phase_ms,
            smt_queries: num("smt_queries") as u64,
            feasibility_queries: num("feasibility_queries") as u64,
            cache_hits: num("cache_hits") as u64,
            cache_misses: num("cache_misses") as u64,
            query_p50_us: num("query_p50_us"),
            query_p90_us: num("query_p90_us"),
            query_p99_us: num("query_p99_us"),
        });
    }
    Ok(rows)
}

/// Reads and parses a profile report from disk.
pub fn read(path: &str) -> Result<Vec<BenchRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_rows_and_defaults_missing_members() {
        let rows = parse(
            r#"[
              {"benchmark":"Σi","verdict":"solved","wall_ms":12.5,
               "phase_ms":{"symexec":6.0,"sat":1.0},
               "smt_queries":40,"query_p50_us":96.0},
              {"benchmark":"Old row"},
              {"not_a_row":true}
            ]"#,
        )
        .unwrap();
        assert_eq!(rows.len(), 2, "nameless rows are dropped");
        assert_eq!(rows[0].benchmark, "Σi");
        assert_eq!(rows[0].smt_queries, 40);
        assert_eq!(rows[0].phase_ms.len(), 2);
        assert_eq!(rows[1].wall_ms, 0.0);
        assert_eq!(rows[1].query_p99_us, 0.0);
    }

    #[test]
    fn rejects_non_arrays() {
        assert!(parse("{\"benchmark\":\"x\"}").is_err());
        assert!(parse("not json").is_err());
    }
}
