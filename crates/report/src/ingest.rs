//! Robust JSONL trace ingestion.
//!
//! Trace files come from crashed runs, concurrent writers, and future
//! recorder versions, so the reader never trusts its input: a truncated
//! last line, interleaved garbage, or an unknown event kind is *skipped and
//! counted*, never a panic or a hard error. [`IngestStats`] records exactly
//! what was dropped so reports can carry a completeness warning instead of
//! silently presenting partial data as the whole run.

use std::collections::BTreeMap;

use pins_trace::json::{self, Json};

/// The event kinds the analyzer understands (the `kind` tag of each JSONL
/// record). Unknown tags are counted in [`IngestStats::unknown_kinds`] and
/// the record is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A span was opened.
    SpanStart,
    /// A span was closed; `dur_us` carries its duration.
    SpanEnd,
    /// A named counter was bumped.
    Count,
    /// A point-in-time observation.
    Point,
}

/// One parsed trace event. Mirrors the recorder's JSONL schema; optional
/// members default to 0 / empty when absent.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// 1-based gap-free sequence number assigned by the recorder.
    pub seq: u64,
    /// Microseconds since the recorder's epoch.
    pub t_us: u64,
    /// Emitting thread slot.
    pub thread: u64,
    /// What kind of record this is.
    pub kind: Kind,
    /// Span or counter name.
    pub name: String,
    /// Span id (0 when not a span event).
    pub span: u64,
    /// Enclosing span id on the emitting thread (0 at top level).
    pub parent: u64,
    /// Span duration in microseconds (span-end events only).
    pub dur_us: Option<u64>,
    /// Structured payload.
    pub fields: BTreeMap<String, Json>,
}

impl TraceEvent {
    /// A field as a number, if present and numeric.
    pub fn field_num(&self, key: &str) -> Option<f64> {
        self.fields.get(key).and_then(Json::as_num)
    }

    /// A field as a string, if present and a string.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        self.fields.get(key).and_then(Json::as_str)
    }
}

/// What ingestion saw, including everything it had to drop.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Non-empty input lines.
    pub lines: u64,
    /// Lines that parsed into a usable event.
    pub parsed: u64,
    /// Lines dropped: malformed JSON, non-objects, or missing/invalid
    /// required members (truncated tail lines land here).
    pub skipped_lines: u64,
    /// Structurally valid records with an unrecognized `kind` tag.
    pub unknown_kinds: u64,
    /// Gaps in the recorder's sequence numbering — events lost between
    /// writing and reading (or dropped lines).
    pub seq_gaps: u64,
    /// `emitted` total declared by the final `trace.summary` event, if seen.
    pub declared_emitted: Option<u64>,
    /// `dropped` total declared by the final `trace.summary` event, if seen.
    pub declared_dropped: Option<u64>,
}

impl IngestStats {
    /// True when any evidence of missing data exists: recorder-side drops,
    /// reader-side skips, or sequence gaps.
    pub fn incomplete(&self) -> bool {
        self.skipped_lines > 0
            || self.unknown_kinds > 0
            || self.seq_gaps > 0
            || self.declared_dropped.unwrap_or(0) > 0
    }

    /// One-line completeness warning, or `None` when the trace is whole.
    pub fn completeness_warning(&self) -> Option<String> {
        if !self.incomplete() {
            return None;
        }
        let mut parts = Vec::new();
        if let Some(d) = self.declared_dropped.filter(|&d| d > 0) {
            parts.push(format!("{d} events dropped by the recorder"));
        }
        if self.skipped_lines > 0 {
            parts.push(format!("{} unparseable lines skipped", self.skipped_lines));
        }
        if self.unknown_kinds > 0 {
            parts.push(format!(
                "{} unknown event kinds skipped",
                self.unknown_kinds
            ));
        }
        if self.seq_gaps > 0 {
            parts.push(format!("{} sequence gaps", self.seq_gaps));
        }
        Some(format!(
            "warning: trace is incomplete ({}); numbers below undercount the run",
            parts.join(", ")
        ))
    }
}

/// A parsed trace: the surviving events plus the ingestion ledger.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in file order.
    pub events: Vec<TraceEvent>,
    /// What ingestion dropped or flagged.
    pub stats: IngestStats,
}

impl Trace {
    /// Parses JSONL text. Infallible by design: anything unreadable is
    /// counted in [`IngestStats`] and skipped.
    pub fn parse(text: &str) -> Trace {
        let mut trace = Trace::default();
        let mut last_seq: Option<u64> = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            trace.stats.lines += 1;
            let ev = match parse_line(line) {
                Ok(ev) => ev,
                Err(LineError::Malformed) => {
                    trace.stats.skipped_lines += 1;
                    continue;
                }
                Err(LineError::UnknownKind) => {
                    trace.stats.unknown_kinds += 1;
                    continue;
                }
            };
            if let Some(prev) = last_seq {
                if ev.seq > prev + 1 {
                    trace.stats.seq_gaps += ev.seq - prev - 1;
                }
            }
            last_seq = Some(ev.seq);
            if ev.kind == Kind::Point && ev.name == "trace.summary" {
                trace.stats.declared_emitted = ev.field_num("emitted").map(|n| n as u64);
                trace.stats.declared_dropped = ev.field_num("dropped").map(|n| n as u64);
            }
            trace.stats.parsed += 1;
            trace.events.push(ev);
        }
        trace
    }

    /// Reads and parses a JSONL file. IO failure is the only hard error.
    pub fn from_file(path: &str) -> Result<Trace, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Ok(Trace::parse(&text))
    }

    /// Merges another trace into this one (multi-file ingestion). Events
    /// keep file order; stats are summed and summary declarations added.
    pub fn absorb(&mut self, other: Trace) {
        self.events.extend(other.events);
        let s = &mut self.stats;
        let o = other.stats;
        s.lines += o.lines;
        s.parsed += o.parsed;
        s.skipped_lines += o.skipped_lines;
        s.unknown_kinds += o.unknown_kinds;
        s.seq_gaps += o.seq_gaps;
        s.declared_emitted = merge_decl(s.declared_emitted, o.declared_emitted);
        s.declared_dropped = merge_decl(s.declared_dropped, o.declared_dropped);
    }
}

fn merge_decl(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (None, None) => None,
        (x, y) => Some(x.unwrap_or(0) + y.unwrap_or(0)),
    }
}

enum LineError {
    Malformed,
    UnknownKind,
}

fn parse_line(line: &str) -> Result<TraceEvent, LineError> {
    let v = json::parse(line).map_err(|_| LineError::Malformed)?;
    let obj = match &v {
        Json::Obj(m) => m,
        _ => return Err(LineError::Malformed),
    };
    let num = |key: &str| v.get(key).and_then(Json::as_num);
    let seq = num("seq")
        .filter(|n| *n >= 1.0)
        .ok_or(LineError::Malformed)? as u64;
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or(LineError::Malformed)?
        .to_string();
    let kind = match v.get("kind").and_then(Json::as_str) {
        Some("span_start") => Kind::SpanStart,
        Some("span_end") => Kind::SpanEnd,
        Some("count") => Kind::Count,
        Some("point") => Kind::Point,
        Some(_) => return Err(LineError::UnknownKind),
        None => return Err(LineError::Malformed),
    };
    let fields = match obj.get("fields") {
        Some(Json::Obj(m)) => m.clone(),
        Some(_) => return Err(LineError::Malformed),
        None => BTreeMap::new(),
    };
    Ok(TraceEvent {
        seq,
        t_us: num("t_us").unwrap_or(0.0) as u64,
        thread: num("thread").unwrap_or(0.0) as u64,
        kind,
        name,
        span: num("span").unwrap_or(0.0) as u64,
        parent: num("parent").unwrap_or(0.0) as u64,
        dur_us: num("dur_us").map(|n| n as u64),
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_lines_and_summary() {
        let text = r#"
{"seq":1,"t_us":10,"thread":0,"kind":"span_start","name":"pins.run","span":1}
{"seq":2,"t_us":90,"thread":0,"kind":"span_end","name":"pins.run","span":1,"dur_us":80,"fields":{"benchmark":"Σi"}}
{"seq":3,"t_us":95,"thread":0,"kind":"point","name":"trace.summary","fields":{"emitted":3,"dropped":0}}
"#;
        let t = Trace::parse(text);
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.stats.parsed, 3);
        assert_eq!(t.stats.skipped_lines, 0);
        assert_eq!(t.stats.seq_gaps, 0);
        assert_eq!(t.stats.declared_emitted, Some(3));
        assert_eq!(t.stats.declared_dropped, Some(0));
        assert!(!t.stats.incomplete());
        assert_eq!(t.events[1].dur_us, Some(80));
        assert_eq!(t.events[1].field_str("benchmark"), Some("Σi"));
    }

    #[test]
    fn truncated_and_garbage_lines_are_counted_not_fatal() {
        let text = concat!(
            "{\"seq\":1,\"t_us\":1,\"thread\":0,\"kind\":\"count\",\"name\":\"a\"}\n",
            "not json at all\n",
            "{\"seq\":3,\"t_us\":2,\"thread\":0,\"kind\":\"count\",\"name\":\"b\"}\n",
            "{\"seq\":4,\"t_us\":3,\"thread\":0,\"kind\":\"cou", // truncated tail
        );
        let t = Trace::parse(text);
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.stats.skipped_lines, 2);
        assert_eq!(t.stats.seq_gaps, 1, "seq 2 was the garbage line");
        assert!(t.stats.incomplete());
        assert!(t.stats.completeness_warning().unwrap().contains("skipped"));
    }

    #[test]
    fn unknown_kinds_are_skipped_with_their_own_counter() {
        let text = concat!(
            "{\"seq\":1,\"t_us\":1,\"thread\":0,\"kind\":\"count\",\"name\":\"a\"}\n",
            "{\"seq\":2,\"t_us\":2,\"thread\":0,\"kind\":\"hologram\",\"name\":\"z\"}\n",
        );
        let t = Trace::parse(text);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.stats.unknown_kinds, 1);
        assert!(t.stats.incomplete());
    }

    #[test]
    fn recorder_declared_drops_flag_incompleteness() {
        let text = "{\"seq\":1,\"t_us\":1,\"thread\":0,\"kind\":\"point\",\
                    \"name\":\"trace.summary\",\"fields\":{\"emitted\":9,\"dropped\":4}}\n";
        let t = Trace::parse(text);
        assert_eq!(t.stats.declared_dropped, Some(4));
        let warning = t.stats.completeness_warning().unwrap();
        assert!(warning.contains("4 events dropped"), "{warning}");
    }
}
