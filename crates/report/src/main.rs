//! The `pins-report` command-line tool.
//!
//! ```text
//! pins-report TRACE.jsonl...            analyze one or more trace files
//!   --bench-json FILE                   also summarize a profile report
//!   --top K                             top-K expensive queries (default 10)
//!   --folded FILE                       write folded stacks ('-' = stdout)
//!
//! pins-report --diff OLD.json NEW.json  regression-gate two profile reports
//!   --threshold PCT                     allowed growth in % (default 20)
//!
//! pins-report --fuzz REPORT.jsonl       summarize a pins-fuzz report
//!
//! pins-report --xray TRACE.jsonl...     solver forensics from a trace
//!   --delta-k N                         scoreboard delta bound (default 4)
//!   --xray-json FILE                    also write the JSON artifact
//!   --top K                             top-K unsat cores (default 10)
//! ```
//!
//! Exit codes: `0` success / no regressions or violations, `1` regressions
//! or fuzz violations found, `2` usage or IO error.

use pins_report::{analyze::Analysis, bench, diff, fuzz, ingest::Trace, render, xray};

struct Cli {
    traces: Vec<String>,
    bench_json: Option<String>,
    top: usize,
    folded: Option<String>,
    diff: Option<(String, String)>,
    threshold: f64,
    fuzz: Option<String>,
    xray: bool,
    delta_k: u64,
    xray_json: Option<String>,
}

const USAGE: &str = "usage: pins-report [--bench-json FILE] [--top K] [--folded FILE] TRACE.jsonl...\n       pins-report --diff OLD.json NEW.json [--threshold PCT]\n       pins-report --fuzz REPORT.jsonl\n       pins-report --xray [--delta-k N] [--xray-json FILE] [--top K] TRACE.jsonl...";

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        traces: Vec::new(),
        bench_json: None,
        top: 10,
        folded: None,
        diff: None,
        threshold: 20.0,
        fuzz: None,
        xray: false,
        delta_k: pins_report::xray::DEFAULT_DELTA_K,
        xray_json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--bench-json" => {
                cli.bench_json = Some(args.next().ok_or("--bench-json takes a path")?);
            }
            "--top" => {
                cli.top = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--top takes a count")?;
            }
            "--folded" => {
                cli.folded = Some(args.next().ok_or("--folded takes a path (or '-')")?);
            }
            "--threshold" => {
                cli.threshold = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threshold takes a percentage")?;
            }
            "--diff" => {
                let old = args.next().ok_or("--diff takes OLD and NEW paths")?;
                let new = args.next().ok_or("--diff takes OLD and NEW paths")?;
                cli.diff = Some((old, new));
            }
            "--fuzz" => {
                cli.fuzz = Some(args.next().ok_or("--fuzz takes a report path")?);
            }
            "--xray" => cli.xray = true,
            "--delta-k" => {
                cli.delta_k = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--delta-k takes an atom count")?;
            }
            "--xray-json" => {
                cli.xray_json = Some(args.next().ok_or("--xray-json takes a path")?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag {flag}\n{USAGE}"));
            }
            path => cli.traces.push(path.to_string()),
        }
    }
    if cli.diff.is_none() && cli.fuzz.is_none() && cli.traces.is_empty() && cli.bench_json.is_none()
    {
        return Err(USAGE.to_string());
    }
    Ok(cli)
}

fn run(cli: &Cli) -> Result<i32, String> {
    if let Some(path) = &cli.fuzz {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let report = fuzz::parse_report(&text);
        print!("{}", fuzz::render(&report));
        return Ok(if report.has_violations() { 1 } else { 0 });
    }

    if let Some((old_path, new_path)) = &cli.diff {
        let old = bench::read(old_path)?;
        let new = bench::read(new_path)?;
        let report = diff::diff(&old, &new, cli.threshold);
        print!("{}", render::diff_report(&report, cli.threshold));
        return Ok(if report.has_regressions() { 1 } else { 0 });
    }

    let mut trace = Trace::default();
    for path in &cli.traces {
        trace.absorb(Trace::from_file(path)?);
    }

    if cli.xray {
        let report = xray::XrayReport::from_trace(&trace, cli.delta_k);
        print!("{}", xray::render(&report, cli.top));
        if let Some(path) = &cli.xray_json {
            let text = report.to_json(cli.top);
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote xray JSON to {path}");
        }
        return Ok(0);
    }

    let bench_rows = match &cli.bench_json {
        Some(path) => bench::read(path)?,
        None => Vec::new(),
    };
    let analysis = Analysis::from_trace(&trace, cli.top);
    print!(
        "{}",
        render::analysis_report(&analysis, &trace.stats, &bench_rows)
    );
    if let Some(path) = &cli.folded {
        let text = analysis.folded_text();
        if path == "-" {
            print!("{text}");
        } else {
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote folded stacks to {path}");
        }
    }
    Ok(0)
}

fn main() {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match run(&cli) {
        Ok(code) => std::process::exit(code),
        Err(msg) => {
            eprintln!("pins-report: {msg}");
            std::process::exit(2);
        }
    }
}
