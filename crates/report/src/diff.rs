//! Baseline-vs-candidate regression comparison over two `BENCH_pins.json`
//! reports. This is the CI gate: `pins-report --diff OLD NEW` exits
//! non-zero when any benchmark regressed past the threshold.

use crate::bench::BenchRow;

/// Severity of one observed change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Past the threshold — fails the gate.
    Regression,
    /// Got meaningfully better; informational.
    Improvement,
    /// Within the threshold, or below the noise floor.
    Unchanged,
}

/// One per-benchmark, per-metric comparison.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Benchmark name.
    pub benchmark: String,
    /// Metric compared (`wall_ms`, `smt_queries`, `verdict`, ...).
    pub metric: &'static str,
    /// Baseline value rendered for display.
    pub old: String,
    /// Candidate value rendered for display.
    pub new: String,
    /// Relative change in percent (`+25.0` = 25% worse), when numeric.
    pub delta_pct: Option<f64>,
    /// How the change is classified.
    pub severity: Severity,
}

/// The full comparison: every entry plus overall verdict helpers.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All compared metrics, benchmark order preserved from the baseline.
    pub entries: Vec<DiffEntry>,
    /// Benchmarks present in only one of the two reports.
    pub unmatched: Vec<String>,
}

impl DiffReport {
    /// True when any metric regressed (the gate should fail).
    pub fn has_regressions(&self) -> bool {
        self.entries
            .iter()
            .any(|e| e.severity == Severity::Regression)
    }

    /// The regression entries only.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries
            .iter()
            .filter(|e| e.severity == Severity::Regression)
    }
}

/// Noise floors: a metric must move by at least this much *absolutely*
/// before the relative threshold applies. CI machines jitter; a 3 ms → 5 ms
/// swing on a trivial benchmark is not a 66% regression worth failing on.
const WALL_MS_FLOOR: f64 = 100.0;
const QUERY_FLOOR: f64 = 16.0;

/// Compares candidate rows against baseline rows. `threshold_pct` is the
/// allowed relative growth (e.g. `20.0` = +20%); `wall_ms` and
/// `smt_queries` past it regress, as does any verdict downgrade
/// (solved → anything else regresses regardless of timing).
pub fn diff(old: &[BenchRow], new: &[BenchRow], threshold_pct: f64) -> DiffReport {
    let mut report = DiffReport::default();
    for o in old {
        let Some(n) = new.iter().find(|n| n.benchmark == o.benchmark) else {
            report
                .unmatched
                .push(format!("{} (baseline only)", o.benchmark));
            continue;
        };
        compare_verdict(&mut report, o, n);
        compare_num(
            &mut report,
            &o.benchmark,
            "wall_ms",
            o.wall_ms,
            n.wall_ms,
            threshold_pct,
            WALL_MS_FLOOR,
        );
        compare_num(
            &mut report,
            &o.benchmark,
            "smt_queries",
            o.smt_queries as f64,
            n.smt_queries as f64,
            threshold_pct,
            QUERY_FLOOR,
        );
    }
    for n in new {
        if !old.iter().any(|o| o.benchmark == n.benchmark) {
            report
                .unmatched
                .push(format!("{} (candidate only)", n.benchmark));
        }
    }
    report
}

fn compare_verdict(report: &mut DiffReport, o: &BenchRow, n: &BenchRow) {
    let severity = if o.verdict == n.verdict {
        Severity::Unchanged
    } else if o.verdict == "solved" {
        Severity::Regression
    } else if n.verdict == "solved" {
        Severity::Improvement
    } else {
        Severity::Unchanged
    };
    report.entries.push(DiffEntry {
        benchmark: o.benchmark.clone(),
        metric: "verdict",
        old: o.verdict.clone(),
        new: n.verdict.clone(),
        delta_pct: None,
        severity,
    });
}

fn compare_num(
    report: &mut DiffReport,
    benchmark: &str,
    metric: &'static str,
    old: f64,
    new: f64,
    threshold_pct: f64,
    floor: f64,
) {
    let delta_pct = if old > 0.0 {
        Some(100.0 * (new - old) / old)
    } else {
        None
    };
    let past_floor = (new - old).abs() >= floor;
    let severity = match delta_pct {
        Some(pct) if past_floor && pct > threshold_pct => Severity::Regression,
        Some(pct) if past_floor && pct < -threshold_pct => Severity::Improvement,
        // zero baseline: there is no percentage to divide by, but cost
        // appearing from nothing past the noise floor is a regression, not
        // a silent pass
        None if past_floor && new > old => Severity::Regression,
        _ => Severity::Unchanged,
    };
    report.entries.push(DiffEntry {
        benchmark: benchmark.to_string(),
        metric,
        old: format!("{old:.1}"),
        new: format!("{new:.1}"),
        delta_pct,
        severity,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, verdict: &str, wall_ms: f64, queries: u64) -> BenchRow {
        BenchRow {
            benchmark: name.to_string(),
            verdict: verdict.to_string(),
            wall_ms,
            smt_queries: queries,
            ..BenchRow::default()
        }
    }

    #[test]
    fn identical_runs_have_no_regressions() {
        let rows = vec![row("Σi", "solved", 900.0, 120)];
        let report = diff(&rows, &rows.clone(), 20.0);
        assert!(!report.has_regressions());
        assert!(report.unmatched.is_empty());
    }

    #[test]
    fn wall_time_regression_past_threshold_and_floor_fails() {
        let old = vec![row("Σi", "solved", 1000.0, 120)];
        let new = vec![row("Σi", "solved", 1500.0, 120)];
        let report = diff(&old, &new, 20.0);
        assert!(report.has_regressions());
        let r = report.regressions().next().unwrap();
        assert_eq!(r.metric, "wall_ms");
        assert!((r.delta_pct.unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn small_absolute_jitter_is_ignored_even_at_high_percentages() {
        // 3ms → 5ms is +66% but far below the noise floor
        let old = vec![row("Σi", "solved", 3.0, 120)];
        let new = vec![row("Σi", "solved", 5.0, 120)];
        assert!(!diff(&old, &new, 20.0).has_regressions());
    }

    #[test]
    fn query_count_growth_regresses() {
        let old = vec![row("Σi", "solved", 1000.0, 100)];
        let new = vec![row("Σi", "solved", 1000.0, 150)];
        let report = diff(&old, &new, 20.0);
        assert!(report.has_regressions());
        assert_eq!(report.regressions().next().unwrap().metric, "smt_queries");
    }

    #[test]
    fn verdict_downgrade_always_regresses() {
        let old = vec![row("Σi", "solved", 1000.0, 100)];
        let new = vec![row("Σi", "budget-exhausted", 500.0, 50)];
        let report = diff(&old, &new, 20.0);
        assert!(report.has_regressions());
        assert_eq!(report.regressions().next().unwrap().metric, "verdict");
    }

    /// Regression test: a zero-baseline metric that grows past the noise
    /// floor must fail the gate, not divide by zero or silently pass.
    #[test]
    fn growth_from_a_zero_baseline_regresses_instead_of_passing_silently() {
        let old = vec![row("Σi", "solved", 0.0, 0)];
        let new = vec![row("Σi", "solved", 500.0, 200)];
        let report = diff(&old, &new, 20.0);
        let metrics: Vec<&str> = report.regressions().map(|r| r.metric).collect();
        assert!(metrics.contains(&"wall_ms"), "got {metrics:?}");
        assert!(metrics.contains(&"smt_queries"), "got {metrics:?}");
        for r in report.regressions() {
            assert_eq!(r.delta_pct, None, "no finite percentage from zero");
        }
        // the rendered row must show the undefined delta, not panic or "-"
        let text = crate::render::diff_report(&report, 20.0);
        assert!(text.contains("+inf%"), "rendered:\n{text}");
    }

    /// Zero-baseline growth below the noise floor stays unchanged.
    #[test]
    fn zero_baseline_jitter_below_the_floor_is_ignored() {
        let old = vec![row("Σi", "solved", 0.0, 0)];
        let new = vec![row("Σi", "solved", 50.0, 10)];
        assert!(!diff(&old, &new, 20.0).has_regressions());
    }

    /// Unmatched benchmarks must surface as a prominent warning in the
    /// rendered report, not a footnote that is easy to miss.
    #[test]
    fn unmatched_benchmarks_render_a_warning() {
        let old = vec![row("Σi", "solved", 1000.0, 100)];
        let new = vec![
            row("Σi", "solved", 1000.0, 100),
            row("Vector shift", "solved", 100.0, 10),
        ];
        let report = diff(&old, &new, 20.0);
        let text = crate::render::diff_report(&report, 20.0);
        assert!(
            text.contains("WARNING") && text.contains("NOT gated"),
            "rendered:\n{text}"
        );
        assert!(text.contains("Vector shift (candidate only)"));
    }

    #[test]
    fn improvements_and_unmatched_rows_do_not_fail_the_gate() {
        let old = vec![row("Σi", "no-solution", 2000.0, 400)];
        let new = vec![
            row("Σi", "solved", 800.0, 100),
            row("Vector shift", "solved", 100.0, 10),
        ];
        let report = diff(&old, &new, 20.0);
        assert!(!report.has_regressions());
        assert_eq!(report.unmatched, vec!["Vector shift (candidate only)"]);
    }
}
