//! The differential oracles: each consumes a decision stream, generates an
//! input, exercises one cross-layer agreement property of the solver stack,
//! and reports any definitive disagreement as a violation.
//!
//! All oracles are deterministic for a fixed tape: SMT configurations use
//! step limits (never wall-clock limits), retries are disabled, and caches
//! are private per run — so a `(oracle, tape)` pair replays identically on
//! any machine, which is what makes shrunk artifacts and CI smoke runs
//! trustworthy.

use std::collections::HashMap;
use std::sync::Arc;

use pins_budget::Budget;
use pins_ir::{run as interp_run, ExternEnv, InterpError, Store, Value};
use pins_ir::{Mode, Type, VarId};
use pins_logic::TermId;
use pins_smt::{CoreSlot, QueryCache, Smt, SmtConfig, SmtResult, SmtSession, Verdict};
use pins_symexec::{EmptyFiller, ExploreConfig, Explorer, SymCtx};

use crate::eval::{check_model, enumerate_sat};
use crate::genf::{gen_formula, FormulaConfig, GenFormula};
use crate::genp::{gen_program, ProgramConfig};
use crate::tape::Decisions;

/// The seven differential oracles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// `Sat` verdicts: the returned model must satisfy the formula under an
    /// independent evaluator (including EUF congruence of the assignment).
    ModelEval,
    /// `Unsat` verdicts: small-domain exhaustive enumeration must not find
    /// a satisfying assignment.
    EnumUnsat,
    /// Cached `SmtSession` verdicts must agree with recomputation and with
    /// a fresh one-shot solver (cache-key soundness).
    Cache,
    /// Serial and forked-parallel query verdicts over the same query list
    /// must agree elementwise.
    Parallel,
    /// Concrete `interp` runs vs symbolic path conditions discharged
    /// through the SMT solver: exactly one feasible path, same exit state.
    InterpSymexec,
    /// Budget-degraded runs must never contradict an unbudgeted run.
    Budget,
    /// Every extracted unsat core must itself be unsat when its members are
    /// re-solved fresh (core-tracking soundness).
    Core,
}

/// All oracles, in the round-robin order the driver uses.
pub const ALL_ORACLES: [OracleKind; 7] = [
    OracleKind::ModelEval,
    OracleKind::EnumUnsat,
    OracleKind::Cache,
    OracleKind::Parallel,
    OracleKind::InterpSymexec,
    OracleKind::Budget,
    OracleKind::Core,
];

impl OracleKind {
    /// Stable name used in reports, artifacts, and `--oracle`.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::ModelEval => "model-eval",
            OracleKind::EnumUnsat => "enum-unsat",
            OracleKind::Cache => "cache",
            OracleKind::Parallel => "parallel",
            OracleKind::InterpSymexec => "interp-symexec",
            OracleKind::Budget => "budget",
            OracleKind::Core => "core",
        }
    }

    /// Parses a [`OracleKind::name`].
    pub fn from_name(s: &str) -> Option<OracleKind> {
        ALL_ORACLES.into_iter().find(|o| o.name() == s)
    }
}

/// The outcome of one oracle run.
#[derive(Debug, Clone, Default)]
pub struct OracleOutcome {
    /// Definitive cross-layer disagreements; empty means the run passed.
    pub violations: Vec<String>,
    /// The run was inconclusive (e.g. everything degraded to `Unknown`, or
    /// path enumeration hit its bound): no property was checked.
    pub skipped: bool,
    /// One-word outcome summary for the report (deterministic).
    pub detail: String,
}

impl OracleOutcome {
    fn pass(detail: impl Into<String>) -> OracleOutcome {
        OracleOutcome {
            violations: Vec::new(),
            skipped: false,
            detail: detail.into(),
        }
    }

    fn skip(detail: impl Into<String>) -> OracleOutcome {
        OracleOutcome {
            violations: Vec::new(),
            skipped: true,
            detail: detail.into(),
        }
    }

    fn fail(violations: Vec<String>, detail: impl Into<String>) -> OracleOutcome {
        OracleOutcome {
            violations,
            skipped: false,
            detail: detail.into(),
        }
    }
}

/// The deterministic SMT configuration every oracle uses: step-limited
/// (never wall-clock), no Unknown-retry — identical verdicts on any host.
pub fn fuzz_smt_config() -> SmtConfig {
    SmtConfig {
        time_limit: None,
        step_limit: Some(500_000),
        retry_unknown: false,
        ..SmtConfig::default()
    }
}

fn verdict_name(v: Verdict) -> &'static str {
    match v {
        Verdict::Unsat => "unsat",
        Verdict::Sat { complete: true } => "sat",
        Verdict::Sat { complete: false } => "sat-incomplete",
        Verdict::Unknown { .. } => "unknown",
    }
}

/// Runs one oracle on one decision stream.
pub fn run_oracle(kind: OracleKind, d: &mut Decisions) -> OracleOutcome {
    match kind {
        OracleKind::ModelEval => model_eval(d),
        OracleKind::EnumUnsat => enum_unsat(d),
        OracleKind::Cache => cache_soundness(d),
        OracleKind::Parallel => parallel_agreement(d),
        OracleKind::InterpSymexec => interp_vs_symexec(d),
        OracleKind::Budget => budget_compat(d),
        OracleKind::Core => core_soundness(d),
    }
}

fn solve_fresh(f: &mut GenFormula) -> SmtResult {
    let mut smt = Smt::new(fuzz_smt_config());
    for &a in &f.asserts {
        smt.assert_term(&mut f.arena, a);
    }
    smt.check(&mut f.arena)
}

// ---------------------------------------------------------------------------
// 1. model-eval
// ---------------------------------------------------------------------------

fn model_eval(d: &mut Decisions) -> OracleOutcome {
    let mut f = gen_formula(d, FormulaConfig::default());
    match solve_fresh(&mut f) {
        SmtResult::Sat(model) if model.complete => {
            let res = check_model(&f.arena, &f.asserts, &model);
            if res.ok() {
                OracleOutcome::pass("sat")
            } else {
                let mut v: Vec<String> = res
                    .falsified
                    .iter()
                    .map(|i| format!("model falsifies assert #{i}"))
                    .collect();
                v.extend(res.euf_conflicts);
                OracleOutcome::fail(v, "sat")
            }
        }
        SmtResult::Sat(_) => OracleOutcome::skip("sat-incomplete"),
        SmtResult::Unsat => OracleOutcome::pass("unsat"),
        SmtResult::Unknown(_) => OracleOutcome::skip("unknown"),
    }
}

// ---------------------------------------------------------------------------
// 2. enum-unsat
// ---------------------------------------------------------------------------

fn enum_unsat(d: &mut Decisions) -> OracleOutcome {
    let mut f = gen_formula(
        d,
        FormulaConfig {
            enumerable: true,
            ..FormulaConfig::default()
        },
    );
    let result = solve_fresh(&mut f);
    match result {
        SmtResult::Unsat => {
            if let Some((ints, bools)) =
                enumerate_sat(&f.arena, &f.asserts, &f.int_vars, &f.bool_vars)
            {
                OracleOutcome::fail(
                    vec![format!(
                        "solver says unsat but enumeration found ints={ints:?} bools={bools:?}"
                    )],
                    "unsat",
                )
            } else {
                OracleOutcome::pass("unsat")
            }
        }
        SmtResult::Sat(model) if model.complete => {
            // free extra coverage: the model must also check out
            let res = check_model(&f.arena, &f.asserts, &model);
            if res.ok() {
                OracleOutcome::pass("sat")
            } else {
                OracleOutcome::fail(
                    res.falsified
                        .iter()
                        .map(|i| format!("enumerable model falsifies assert #{i}"))
                        .collect(),
                    "sat",
                )
            }
        }
        SmtResult::Sat(_) => OracleOutcome::skip("sat-incomplete"),
        SmtResult::Unknown(_) => OracleOutcome::skip("unknown"),
    }
}

// ---------------------------------------------------------------------------
// 3. cache
// ---------------------------------------------------------------------------

fn cache_soundness(d: &mut Decisions) -> OracleOutcome {
    let mut f = gen_formula(d, FormulaConfig::default());
    let cache = Arc::new(QueryCache::new());
    let mut s1 = SmtSession::with_cache(fuzz_smt_config(), Arc::clone(&cache));
    let v1 = s1.verdict_under(&mut f.arena, &f.asserts);
    let mut s2 = SmtSession::with_cache(fuzz_smt_config(), Arc::clone(&cache));
    let v2 = s2.verdict_under(&mut f.arena, &f.asserts);
    let vf = Verdict::of(&solve_fresh(&mut f));
    let mut violations = Vec::new();
    if !v1.agrees_with(v2) {
        violations.push(format!(
            "cached verdict {} disagrees with first computation {}",
            verdict_name(v2),
            verdict_name(v1)
        ));
    }
    if !v1.agrees_with(vf) {
        violations.push(format!(
            "session verdict {} disagrees with fresh solver {}",
            verdict_name(v1),
            verdict_name(vf)
        ));
    }
    if cache.hits() == 0 && v1.is_definitive() {
        violations.push("identical repeat query missed the cache".to_owned());
    }
    if violations.is_empty() {
        OracleOutcome::pass(verdict_name(v1))
    } else {
        OracleOutcome::fail(violations, verdict_name(v1))
    }
}

// ---------------------------------------------------------------------------
// 4. parallel
// ---------------------------------------------------------------------------

fn parallel_agreement(d: &mut Decisions) -> OracleOutcome {
    let mut f = gen_formula(d, FormulaConfig::default());
    let workers = 2 + d.choose(2) as usize;
    // one query per assert prefix: re-checks under growing assumption sets,
    // the same shape the engine's constraint verification issues
    let queries: Vec<Vec<TermId>> = (0..f.asserts.len())
        .map(|i| f.asserts[..=i].to_vec())
        .collect();

    let mut serial_session = SmtSession::with_cache(fuzz_smt_config(), Arc::new(QueryCache::new()));
    let serial: Vec<Verdict> = queries
        .iter()
        .map(|q| serial_session.verdict_under(&mut f.arena, q))
        .collect();

    let base = SmtSession::with_cache(fuzz_smt_config(), Arc::new(QueryCache::new()));
    let parallel: Vec<Verdict> = {
        let mut out: Vec<Option<Verdict>> = vec![None; queries.len()];
        let chunks: Vec<Vec<usize>> = (0..workers)
            .map(|w| (w..queries.len()).step_by(workers).collect())
            .collect();
        let results: Vec<Vec<(usize, Verdict)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| {
                    let mut session = base.fork();
                    let mut arena = f.arena.clone();
                    let queries = &queries;
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|&i| (i, session.verdict_under(&mut arena, &queries[i])))
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for chunk in results {
            for (i, v) in chunk {
                out[i] = Some(v);
            }
        }
        out.into_iter().map(|v| v.unwrap()).collect()
    };

    let violations: Vec<String> = serial
        .iter()
        .zip(&parallel)
        .enumerate()
        .filter(|(_, (s, p))| !s.agrees_with(**p))
        .map(|(i, (s, p))| {
            format!(
                "query #{i}: serial {} vs parallel {}",
                verdict_name(*s),
                verdict_name(*p)
            )
        })
        .collect();
    let detail = verdict_name(*serial.last().expect("at least one assert"));
    if violations.is_empty() {
        OracleOutcome::pass(detail)
    } else {
        OracleOutcome::fail(violations, detail)
    }
}

// ---------------------------------------------------------------------------
// 5. interp-symexec
// ---------------------------------------------------------------------------

fn interp_vs_symexec(d: &mut Decisions) -> OracleOutcome {
    // arrays are excluded here: the interpreter's sparse default-0 cells and
    // an unconstrained symbolic array only agree given extensional bindings,
    // which a finite assumption set cannot express
    let program = gen_program(
        d,
        ProgramConfig {
            allow_arrays: false,
            ..ProgramConfig::default()
        },
    );
    let int_vars: Vec<VarId> = program
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.ty == Type::Int)
        .map(|(i, _)| VarId(i as u32))
        .collect();
    // concrete initial state: drawn values for inputs, 0 elsewhere (the
    // interpreter's own defaulting rule)
    let mut initial: HashMap<VarId, i64> = int_vars.iter().map(|&v| (v, 0)).collect();
    for &(v, m) in &program.params {
        if matches!(m, Mode::In | Mode::InOut) && program.var(v).ty == Type::Int {
            initial.insert(v, d.int_in(-8, 8));
        }
    }
    let store: Store = initial.iter().map(|(&v, &x)| (v, Value::Int(x))).collect();
    let env = ExternEnv::new();
    let concrete = interp_run(&program, &store, &env, 10_000);

    let mut ctx = SymCtx::new(&program);
    let mut explorer = Explorer::new(
        &program,
        ExploreConfig {
            max_unroll: 5,
            check_feasibility: false,
            smt: fuzz_smt_config(),
            ..ExploreConfig::default()
        },
    );
    const PATH_LIMIT: usize = 128;
    let paths = explorer.enumerate(&mut ctx, &EmptyFiller, PATH_LIMIT);
    if explorer.budget_hit || paths.len() >= PATH_LIMIT {
        return OracleOutcome::skip("path-bound");
    }

    // bind every variable's initial (version-0) term to its concrete value
    let binding: Vec<TermId> = int_vars
        .iter()
        .map(|&v| {
            let vt = ctx.var_term(v, 0);
            let c = ctx.arena.mk_int(initial[&v]);
            ctx.arena.mk_eq(vt, c)
        })
        .collect();

    let mut session = SmtSession::with_cache(fuzz_smt_config(), Arc::new(QueryCache::new()));
    let mut sat_paths = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        let mut assumptions = binding.clone();
        assumptions.extend_from_slice(&path.substituted);
        match session.verdict_under(&mut ctx.arena, &assumptions) {
            Verdict::Sat { complete: true } => sat_paths.push(i),
            Verdict::Unsat => {}
            _ => return OracleOutcome::skip("unknown-path"),
        }
    }

    match concrete {
        Ok(exit_store) => {
            if sat_paths.len() != 1 {
                return OracleOutcome::fail(
                    vec![format!(
                        "concrete run succeeded but {} of {} symbolic paths are feasible \
                         under the input binding (expected exactly 1)",
                        sat_paths.len(),
                        paths.len()
                    )],
                    "run-ok",
                );
            }
            let path = &paths[sat_paths[0]];
            // the feasible path must entail the concrete exit values
            for &out in &program.outputs() {
                if program.var(out).ty != Type::Int {
                    continue;
                }
                let got = match exit_store.get(&out) {
                    Some(Value::Int(x)) => *x,
                    _ => continue,
                };
                let final_t = ctx.var_term(out, path.final_version(out));
                let c = ctx.arena.mk_int(got);
                let eq = ctx.arena.mk_eq(final_t, c);
                let ne = ctx.arena.mk_not(eq);
                let mut assumptions = binding.clone();
                assumptions.extend_from_slice(&path.substituted);
                assumptions.push(ne);
                match session.verdict_under(&mut ctx.arena, &assumptions) {
                    Verdict::Unsat => {}
                    Verdict::Sat { complete: true } => {
                        return OracleOutcome::fail(
                            vec![format!(
                                "symbolic exit value of `{}` can differ from concrete {}",
                                program.var(out).name,
                                got
                            )],
                            "run-ok",
                        );
                    }
                    _ => return OracleOutcome::skip("unknown-exit"),
                }
            }
            OracleOutcome::pass("run-ok")
        }
        Err(InterpError::AssumeViolated) => {
            if sat_paths.is_empty() {
                OracleOutcome::pass("assume-violated")
            } else {
                OracleOutcome::fail(
                    vec![format!(
                        "concrete run violated an assume but {} symbolic path(s) are \
                         feasible under the input binding",
                        sat_paths.len()
                    )],
                    "assume-violated",
                )
            }
        }
        Err(_) => OracleOutcome::skip("interp-error"),
    }
}

// ---------------------------------------------------------------------------
// 6. budget
// ---------------------------------------------------------------------------

fn budget_compat(d: &mut Decisions) -> OracleOutcome {
    let mut f = gen_formula(d, FormulaConfig::default());
    let full = Verdict::of(&solve_fresh(&mut f));
    let steps = 50 + d.choose(2_000);
    let mut limited = Smt::new(fuzz_smt_config());
    limited.set_budget(Budget::with_limits(None, Some(steps)));
    for &a in &f.asserts {
        limited.assert_term(&mut f.arena, a);
    }
    let degraded = Verdict::of(&limited.check(&mut f.arena));
    if full.agrees_with(degraded) {
        OracleOutcome::pass(verdict_name(full))
    } else {
        OracleOutcome::fail(
            vec![format!(
                "budgeted run ({steps} steps) says {} but unbudgeted run says {}",
                verdict_name(degraded),
                verdict_name(full)
            )],
            verdict_name(full),
        )
    }
}

// ---------------------------------------------------------------------------
// 7. core
// ---------------------------------------------------------------------------

fn core_soundness(d: &mut Decisions) -> OracleOutcome {
    let mut f = gen_formula(d, FormulaConfig::default());
    let mut session = SmtSession::with_cache(fuzz_smt_config(), Arc::new(QueryCache::new()));
    let v = session.verdict_under(&mut f.arena, &f.asserts);
    if !v.is_unsat() {
        return OracleOutcome::skip(verdict_name(v));
    }
    let core = match session.last_unsat_core() {
        Some(c) => c.clone(),
        None => {
            return OracleOutcome::fail(
                vec!["unsat verdict carried no core with tracking on".to_owned()],
                "unsat",
            )
        }
    };
    // generated formulas have no axioms, so unsatisfiability must come from
    // the asserted formulas themselves: an empty core is a tracking bug
    if core.is_empty() {
        return OracleOutcome::fail(
            vec!["empty core for an axiom-free unsat query".to_owned()],
            "unsat",
        );
    }
    let mut members: Vec<TermId> = Vec::with_capacity(core.len());
    for m in &core.members {
        match m.slot {
            CoreSlot::Assumption(i) if i < f.asserts.len() => members.push(f.asserts[i]),
            slot => {
                return OracleOutcome::fail(
                    vec![format!(
                        "core member resolves to a nonexistent slot {slot:?}"
                    )],
                    "unsat",
                )
            }
        }
    }
    // the defining property: the members alone must re-solve to unsat.
    // Budget-degraded re-solves are inconclusive, not violations.
    let mut smt = Smt::new(fuzz_smt_config());
    for &t in &members {
        smt.assert_term(&mut f.arena, t);
    }
    match smt.check(&mut f.arena) {
        SmtResult::Unsat => OracleOutcome::pass(if core.exact {
            "unsat"
        } else {
            "unsat-fallback"
        }),
        SmtResult::Sat(m) if m.complete => OracleOutcome::fail(
            vec![format!(
                "core of {} member(s) re-solves to sat (exact={})",
                core.len(),
                core.exact
            )],
            "unsat",
        ),
        SmtResult::Sat(_) => OracleOutcome::skip("core-sat-incomplete"),
        SmtResult::Unknown(_) => OracleOutcome::skip("core-unknown"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_names_roundtrip() {
        for o in ALL_ORACLES {
            assert_eq!(OracleKind::from_name(o.name()), Some(o));
        }
        assert_eq!(OracleKind::from_name("nope"), None);
    }

    #[test]
    fn every_oracle_passes_on_a_spread_of_seeds() {
        for (i, oracle) in ALL_ORACLES.into_iter().enumerate() {
            for seed in 0..25u64 {
                let mut d = Decisions::record(seed * 31 + i as u64);
                let out = run_oracle(oracle, &mut d);
                assert!(
                    out.violations.is_empty(),
                    "{} seed {seed}: {:?}",
                    oracle.name(),
                    out.violations
                );
            }
        }
    }

    #[test]
    fn oracle_outcomes_replay_identically_from_the_tape() {
        for (i, oracle) in ALL_ORACLES.into_iter().enumerate() {
            let mut rec = Decisions::record(1000 + i as u64);
            let first = run_oracle(oracle, &mut rec);
            let tape = rec.tape();
            let mut rep = Decisions::replay(&tape);
            let second = run_oracle(oracle, &mut rep);
            assert_eq!(first.violations, second.violations, "{}", oracle.name());
            assert_eq!(first.skipped, second.skipped, "{}", oracle.name());
            assert_eq!(first.detail, second.detail, "{}", oracle.name());
        }
    }
}
