//! Deterministic JSONL reporting.
//!
//! One line per event, no timestamps, no durations, no host-dependent
//! fields — the same `(seed, iters)` pair produces a byte-identical report
//! on any machine, which CI exploits by diffing two runs. The line shape
//! (`{"kind": ...}`) matches the trace events `pins-report` ingests, so the
//! report can be fed to the same tooling (unknown kinds are counted and
//! skipped, violations are surfaced verbatim).

use std::fmt::Write as _;

use crate::{Finding, FuzzSummary};

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the meta line (run parameters).
pub fn meta_line(seed: u64, iters: u64, oracle: Option<&str>) -> String {
    let oracle_field = match oracle {
        Some(o) => format!("\"{}\"", esc(o)),
        None => "null".to_owned(),
    };
    format!("{{\"kind\":\"fuzz.meta\",\"version\":1,\"seed\":{seed},\"iters\":{iters},\"oracle\":{oracle_field}}}")
}

/// Renders one violation line.
pub fn finding_line(f: &Finding) -> String {
    let viols: Vec<String> = f
        .violations
        .iter()
        .map(|v| format!("\"{}\"", esc(v)))
        .collect();
    format!(
        "{{\"kind\":\"fuzz.violation\",\"iter\":{},\"oracle\":\"{}\",\"seed\":{},\"tape\":\"{}\",\"shrunk_tape\":{},\"violations\":[{}]}}",
        f.iter,
        esc(f.oracle),
        f.seed,
        esc(&f.tape),
        match &f.shrunk_tape {
            Some(t) => format!("\"{}\"", esc(t)),
            None => "null".to_owned(),
        },
        viols.join(",")
    )
}

/// Renders the summary line.
pub fn summary_line(s: &FuzzSummary) -> String {
    let mut per = String::new();
    for (i, (name, counts)) in s.per_oracle.iter().enumerate() {
        if i > 0 {
            per.push(',');
        }
        let _ = write!(
            per,
            "\"{}\":{{\"passed\":{},\"skipped\":{},\"violations\":{}}}",
            esc(name),
            counts.passed,
            counts.skipped,
            counts.violations
        );
    }
    format!(
        "{{\"kind\":\"fuzz.summary\",\"iters\":{},\"passed\":{},\"skipped\":{},\"violations\":{},\"per_oracle\":{{{}}}}}",
        s.iters, s.passed, s.skipped, s.findings.len(), per
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn lines_are_valid_json() {
        // parse with the in-tree minimal JSON parser to keep the report
        // consumable by pins-report's ingest layer
        let line = meta_line(42, 1000, None);
        let v = pins_trace::json::parse(&line).expect("meta parses");
        assert_eq!(
            v.get("kind").and_then(|k| k.as_str()),
            Some("fuzz.meta"),
            "{line}"
        );
        let f = Finding {
            iter: 3,
            oracle: "cache",
            seed: 42,
            tape: "a.b".to_owned(),
            shrunk_tape: Some("a".to_owned()),
            violations: vec!["verdict \"flip\"".to_owned()],
        };
        let line = finding_line(&f);
        let v = pins_trace::json::parse(&line).expect("finding parses");
        assert_eq!(v.get("iter").and_then(|x| x.as_num()), Some(3.0));
    }
}
