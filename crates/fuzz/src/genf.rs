//! Deterministic generator of quantifier-free SMT formulas over Int, Bool
//! and IntArray with EUF applications and functional array stores — the
//! input space of the solver-level oracles.
//!
//! Two dialects share one skeleton:
//!
//! * the **full** dialect exercises everything the DPLL(T) core supports in
//!   the quantifier-free fragment: array `sel`/`upd` chains, uninterpreted
//!   `f`/`g` applications, integer `ite`, and occasional i64-boundary
//!   constants (which must degrade to `Unknown(Overflow)`, never to a wrong
//!   verdict);
//! * the **enumerable** dialect restricts leaves to a handful of integer and
//!   boolean variables and small constants, so satisfiability over a small
//!   domain is decidable by exhaustive enumeration — the reference oracle
//!   for `Unsat` answers.

use pins_logic::{Sort, TermArena, TermId};

use crate::tape::Decisions;

/// Limits for one generated formula.
#[derive(Debug, Clone, Copy)]
pub struct FormulaConfig {
    /// Restrict to the exhaustively-enumerable fragment (no arrays, no EUF,
    /// no ite, constants in the enumeration domain).
    pub enumerable: bool,
    /// Maximum assertion count (at least 1 is always generated).
    pub max_asserts: u64,
    /// Maximum expression depth.
    pub max_depth: u32,
}

impl Default for FormulaConfig {
    fn default() -> Self {
        FormulaConfig {
            enumerable: false,
            max_asserts: 5,
            max_depth: 4,
        }
    }
}

/// A generated formula: the arena it lives in plus the asserted conjuncts
/// and the variable terms the enumeration oracle ranges over.
pub struct GenFormula {
    /// The arena owning every term below.
    pub arena: TermArena,
    /// The asserted boolean conjuncts.
    pub asserts: Vec<TermId>,
    /// Integer variable terms (version 0).
    pub int_vars: Vec<TermId>,
    /// Boolean variable terms (version 0).
    pub bool_vars: Vec<TermId>,
    /// Array variable terms (version 0); empty in the enumerable dialect.
    pub array_vars: Vec<TermId>,
}

/// Constants the enumerable dialect draws from; the enumeration domain in
/// [`crate::eval::enumerate_sat`] must cover at least this span plus slack.
pub const ENUM_CONSTS: [i64; 7] = [-3, -2, -1, 0, 1, 2, 3];

/// Extreme LIA constants occasionally injected by the full dialect.
const BOUNDARY_CONSTS: [i64; 6] = [
    i64::MAX,
    i64::MIN,
    i64::MAX - 1,
    i64::MIN + 1,
    1 << 40,
    -(1 << 40),
];

struct Gen<'d> {
    d: &'d mut Decisions,
    config: FormulaConfig,
    arena: TermArena,
    int_vars: Vec<TermId>,
    bool_vars: Vec<TermId>,
    array_vars: Vec<TermId>,
    funs: Vec<(pins_logic::Symbol, usize)>,
}

impl Gen<'_> {
    fn int_const(&mut self) -> i64 {
        if !self.config.enumerable && self.d.chance(1, 12) {
            *self.d.pick(&BOUNDARY_CONSTS)
        } else {
            *self.d.pick(&ENUM_CONSTS)
        }
    }

    fn int_term(&mut self, depth: u32) -> TermId {
        let leaf_only = depth == 0;
        let full = !self.config.enumerable;
        // 0..2 leaves; 2.. composites (skipped at depth 0)
        let n_kinds = if leaf_only {
            2
        } else if full {
            8
        } else {
            5
        };
        match self.d.choose(n_kinds) {
            0 => {
                let c = self.int_const();
                self.arena.mk_int(c)
            }
            1 => *self.d.pick(&self.int_vars.clone()),
            2 => {
                let a = self.int_term(depth - 1);
                let b = self.int_term(depth - 1);
                self.arena.mk_add(a, b)
            }
            3 => {
                let a = self.int_term(depth - 1);
                let b = self.int_term(depth - 1);
                self.arena.mk_sub(a, b)
            }
            4 => {
                // multiplication by a constant stays linear; the full
                // dialect occasionally multiplies two terms to exercise the
                // axiomatised nonlinear path
                let a = self.int_term(depth - 1);
                let b = if full && self.d.chance(1, 4) {
                    self.int_term(depth - 1)
                } else {
                    let c = self.int_const();
                    self.arena.mk_int(c)
                };
                self.arena.mk_mul(a, b)
            }
            5 => {
                let a = self.array_term(depth - 1);
                let i = self.int_term(depth - 1);
                self.arena.mk_sel(a, i)
            }
            6 => {
                if self.funs.is_empty() {
                    return *self.d.pick(&self.int_vars.clone());
                }
                let (f, arity) = *self.d.pick(&self.funs.clone());
                let args: Vec<TermId> = (0..arity).map(|_| self.int_term(depth - 1)).collect();
                self.arena.mk_app(f, args)
            }
            _ => {
                let c = self.bool_term(depth - 1);
                let t = self.int_term(depth - 1);
                let e = self.int_term(depth - 1);
                self.arena.mk_ite(c, t, e)
            }
        }
    }

    fn array_term(&mut self, depth: u32) -> TermId {
        if depth == 0 || self.d.chance(1, 2) {
            *self.d.pick(&self.array_vars.clone())
        } else {
            let a = self.array_term(depth - 1);
            let i = self.int_term(depth - 1);
            let v = self.int_term(depth - 1);
            self.arena.mk_upd(a, i, v)
        }
    }

    fn bool_term(&mut self, depth: u32) -> TermId {
        let leaf_only = depth == 0;
        let n_kinds = if leaf_only { 2 } else { 7 };
        match self.d.choose(n_kinds) {
            0 => {
                if self.bool_vars.is_empty() {
                    let b = self.d.chance(1, 2);
                    return self.arena.mk_bool(b);
                }
                *self.d.pick(&self.bool_vars.clone())
            }
            1 => {
                let b = self.d.chance(1, 2);
                self.arena.mk_bool(b)
            }
            2 | 3 => {
                let a = self.int_term(depth - 1);
                let b = self.int_term(depth - 1);
                match self.d.choose(3) {
                    0 => self.arena.mk_le(a, b),
                    1 => self.arena.mk_lt(a, b),
                    _ => self.arena.mk_eq(a, b),
                }
            }
            4 => {
                let a = self.bool_term(depth - 1);
                self.arena.mk_not(a)
            }
            _ => {
                let n = 2 + self.d.choose(2);
                let kids: Vec<TermId> = (0..n).map(|_| self.bool_term(depth - 1)).collect();
                if self.d.chance(1, 2) {
                    self.arena.mk_and(kids)
                } else {
                    self.arena.mk_or(kids)
                }
            }
        }
    }
}

/// Generates one formula from the decision stream.
pub fn gen_formula(d: &mut Decisions, config: FormulaConfig) -> GenFormula {
    let mut arena = TermArena::new();
    let n_ints = 1 + d.choose(3);
    let n_bools = d.choose(3);
    let int_vars: Vec<TermId> = (0..n_ints)
        .map(|i| {
            let s = arena.sym(&format!("x{i}"));
            arena.mk_var(s, 0, Sort::Int)
        })
        .collect();
    let bool_vars: Vec<TermId> = (0..n_bools)
        .map(|i| {
            let s = arena.sym(&format!("b{i}"));
            arena.mk_var(s, 0, Sort::Bool)
        })
        .collect();
    let mut array_vars = Vec::new();
    let mut funs = Vec::new();
    if !config.enumerable {
        let n_arrays = 1 + d.choose(2);
        for i in 0..n_arrays {
            let s = arena.sym(&format!("a{i}"));
            array_vars.push(arena.mk_var(s, 0, Sort::IntArray));
        }
        if d.chance(2, 3) {
            let f = arena.declare_fun("f", vec![Sort::Int], Sort::Int);
            funs.push((f, 1));
        }
        if d.chance(1, 2) {
            let g = arena.declare_fun("g", vec![Sort::Int, Sort::Int], Sort::Int);
            funs.push((g, 2));
        }
    }
    let mut gen = Gen {
        d,
        config,
        arena,
        int_vars,
        bool_vars,
        array_vars,
        funs,
    };
    let n_asserts = 1 + gen.d.choose(config.max_asserts);
    let asserts: Vec<TermId> = (0..n_asserts)
        .map(|_| {
            let depth = 1 + gen.d.choose(config.max_depth as u64) as u32;
            gen.bool_term(depth)
        })
        .collect();
    GenFormula {
        arena: gen.arena,
        asserts,
        int_vars: gen.int_vars,
        bool_vars: gen.bool_vars,
        array_vars: gen.array_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Decisions;

    #[test]
    fn generation_is_deterministic_and_replayable() {
        for seed in 0..50u64 {
            let mut rec = Decisions::record(seed);
            let f1 = gen_formula(&mut rec, FormulaConfig::default());
            let tape = rec.tape();
            let mut rep = Decisions::replay(&tape);
            let f2 = gen_formula(&mut rep, FormulaConfig::default());
            assert_eq!(f1.asserts.len(), f2.asserts.len(), "seed {seed}");
            // term ids are deterministic under identical construction order
            assert_eq!(f1.asserts, f2.asserts, "seed {seed}");
            assert_eq!(f1.arena.len(), f2.arena.len(), "seed {seed}");
        }
    }

    #[test]
    fn enumerable_dialect_has_no_arrays_or_funs() {
        for seed in 0..50u64 {
            let mut d = Decisions::record(seed);
            let f = gen_formula(
                &mut d,
                FormulaConfig {
                    enumerable: true,
                    ..FormulaConfig::default()
                },
            );
            assert!(f.array_vars.is_empty());
            assert!(f.arena.fun_decls().next().is_none());
        }
    }
}
