//! Greedy delta-reduction over decision tapes.
//!
//! A failing input is a `(oracle, tape)` pair. Shrinking never needs to
//! understand the generated object: it deletes chunks of the tape (larger
//! first) and zeroes surviving entries, re-running the oracle after each
//! edit and keeping any edit that still fails. Replay clamps out-of-bound
//! entries and pads exhausted tapes with 0 — the minimal choice — so every
//! candidate tape is valid by construction and the process only moves
//! toward structurally smaller inputs.

use crate::oracles::{run_oracle, OracleKind};
use crate::tape::{Decisions, Tape};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimized tape (normalized by replay).
    pub tape: Tape,
    /// Violations reported by the minimized tape.
    pub violations: Vec<String>,
    /// Oracle executions spent shrinking.
    pub attempts: usize,
}

/// Replays `tape` against `kind`; returns the normalized tape and its
/// violations when the run still fails.
fn try_tape(kind: OracleKind, tape: &Tape) -> Option<(Tape, Vec<String>)> {
    let mut d = Decisions::replay(tape);
    let out = run_oracle(kind, &mut d);
    if out.violations.is_empty() {
        None
    } else {
        Some((d.tape(), out.violations))
    }
}

/// Minimizes a failing tape by greedy delta-reduction, spending at most
/// `max_attempts` oracle executions. The input tape must fail; the result
/// is the smallest failing tape found (possibly the input itself).
pub fn shrink(kind: OracleKind, tape: &Tape, max_attempts: usize) -> Shrunk {
    let mut attempts = 0usize;
    let (mut best, mut violations) = match try_tape(kind, tape) {
        Some(r) => r,
        None => {
            // flaky input (should not happen: oracles are deterministic);
            // return it unshrunk
            return Shrunk {
                tape: tape.clone(),
                violations: Vec::new(),
                attempts: 1,
            };
        }
    };
    attempts += 1;

    // pass 1: chunk deletion, halving chunk size
    let mut improved = true;
    while improved && attempts < max_attempts {
        improved = false;
        let mut chunk = (best.choices.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < best.choices.len() && attempts < max_attempts {
                let mut candidate = best.clone();
                let end = (i + chunk).min(candidate.choices.len());
                candidate.choices.drain(i..end);
                attempts += 1;
                if let Some((norm, v)) = try_tape(kind, &candidate) {
                    if norm.choices.len() <= best.choices.len() {
                        best = norm;
                        violations = v;
                        improved = true;
                        continue; // same index now covers the next chunk
                    }
                }
                i += chunk;
            }
            if chunk == 1 || attempts >= max_attempts {
                break;
            }
            chunk /= 2;
        }

        // pass 2: zero and halve surviving entries
        let mut i = 0;
        while i < best.choices.len() && attempts < max_attempts {
            if best.choices[i] != 0 {
                let mut candidate = best.clone();
                candidate.choices[i] = 0;
                attempts += 1;
                if let Some((norm, v)) = try_tape(kind, &candidate) {
                    best = norm;
                    violations = v;
                    improved = true;
                    i += 1;
                    continue;
                }
                if best.choices[i] > 1 {
                    let mut candidate = best.clone();
                    candidate.choices[i] /= 2;
                    attempts += 1;
                    if let Some((norm, v)) = try_tape(kind, &candidate) {
                        best = norm;
                        violations = v;
                        improved = true;
                    }
                }
            }
            i += 1;
        }
    }

    Shrunk {
        tape: best,
        violations,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // the shrinker is oracle-agnostic, so unit-test the mechanics against a
    // synthetic predicate by reusing its internal moves through a tiny
    // local harness rather than a real oracle
    fn greedy_min<F: Fn(&Tape) -> bool>(fails: F, tape: &Tape) -> Tape {
        let mut best = tape.clone();
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..best.choices.len() {
                let mut c = best.clone();
                c.choices.remove(i);
                if fails(&c) {
                    best = c;
                    improved = true;
                    break;
                }
                if best.choices[i] != 0 {
                    let mut c = best.clone();
                    c.choices[i] = 0;
                    if fails(&c) {
                        best = c;
                        improved = true;
                        break;
                    }
                }
            }
        }
        best
    }

    #[test]
    fn greedy_reduction_reaches_a_local_minimum() {
        // failure condition: tape contains an entry >= 7
        let fails = |t: &Tape| t.choices.iter().any(|&c| c >= 7);
        let start = Tape {
            choices: vec![3, 9, 0, 12, 5, 1],
        };
        let min = greedy_min(fails, &start);
        assert!(fails(&min));
        // a single large entry survives; everything else is gone
        assert_eq!(min.choices.len(), 1);
        assert!(min.choices[0] >= 7);
    }
}
