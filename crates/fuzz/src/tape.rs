//! Decision tapes: the replayable randomness substrate of every generator.
//!
//! Generators never touch a PRNG directly; they draw bounded choices from a
//! [`Decisions`] stream. In *record* mode the stream draws from a seeded
//! [`SplitMix64`] and logs every choice; in *replay* mode it reads the
//! logged choices back (padding with 0 — the minimal choice — when the tape
//! runs out). Because every generator decision is a tape entry, a failing
//! input is fully described by `(oracle, tape)`, shrinking is greedy
//! delta-reduction over the tape, and a shrunk artifact replays
//! byte-identically on any machine.

use pins_prng::SplitMix64;

/// A recorded sequence of bounded choices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tape {
    /// The choices, in draw order. Entry `i` is the value (already reduced
    /// into its bound) of the `i`-th draw.
    pub choices: Vec<u64>,
}

impl Tape {
    /// Renders the tape as a compact dot-separated hex string, the format
    /// accepted by `pins-fuzz --tape`.
    pub fn to_hex(&self) -> String {
        if self.choices.is_empty() {
            return "-".to_owned();
        }
        let parts: Vec<String> = self.choices.iter().map(|c| format!("{c:x}")).collect();
        parts.join(".")
    }

    /// Parses the format produced by [`Tape::to_hex`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn from_hex(s: &str) -> Result<Tape, String> {
        let s = s.trim();
        if s.is_empty() || s == "-" {
            return Ok(Tape::default());
        }
        let mut choices = Vec::new();
        for part in s.split('.') {
            let v = u64::from_str_radix(part, 16)
                .map_err(|e| format!("bad tape entry {part:?}: {e}"))?;
            choices.push(v);
        }
        Ok(Tape { choices })
    }
}

enum Source {
    /// Fresh draws from a seeded generator.
    Record(SplitMix64),
    /// Reads from a fixed tape; exhausted entries read as 0.
    Replay { tape: Vec<u64>, pos: usize },
}

/// A stream of bounded decisions, recording everything it hands out.
pub struct Decisions {
    source: Source,
    recorded: Vec<u64>,
}

impl Decisions {
    /// A recording stream seeded with `seed`.
    pub fn record(seed: u64) -> Decisions {
        Decisions {
            source: Source::Record(SplitMix64::new(seed)),
            recorded: Vec::new(),
        }
    }

    /// A replaying stream over `tape`. Choices beyond the tape's end are 0,
    /// and every choice is clamped into its bound, so any tape (including a
    /// shrunk or truncated one) replays without panicking.
    pub fn replay(tape: &Tape) -> Decisions {
        Decisions {
            source: Source::Replay {
                tape: tape.choices.clone(),
                pos: 0,
            },
            recorded: Vec::new(),
        }
    }

    /// The normalized tape of everything drawn so far. Replaying this tape
    /// reproduces the exact same generation, by construction.
    pub fn tape(&self) -> Tape {
        Tape {
            choices: self.recorded.clone(),
        }
    }

    /// A uniform choice in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics when `bound` is 0.
    pub fn choose(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "choose(0)");
        let v = match &mut self.source {
            Source::Record(rng) => {
                if bound == 1 {
                    0
                } else {
                    rng.gen_index(bound as usize) as u64
                }
            }
            Source::Replay { tape, pos } => {
                let raw = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                // clamp (not mod) so zeroing a tape entry always yields the
                // minimal choice, which is what the shrinker relies on
                raw.min(bound - 1)
            }
        };
        self.recorded.push(v);
        v
    }

    /// A choice from a slice.
    ///
    /// # Panics
    ///
    /// Panics when `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let i = self.choose(items.len() as u64) as usize;
        &items[i]
    }

    /// `true` with probability `num`/`den` (entry 0 on the tape means
    /// `false`, so shrinking drives optional structure away).
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.choose(den) < num
    }

    /// A signed value in `lo..=hi` (stored on the tape as an offset from
    /// `lo`, so 0 shrinks to the range minimum).
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            // the only full-range caller draws two halves instead
            return self.choose(u64::MAX) as i64;
        }
        lo.wrapping_add(self.choose(span + 1) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_is_identical() {
        let mut rec = Decisions::record(42);
        let drawn: Vec<u64> = (1..20u64).map(|b| rec.choose(b)).collect();
        let tape = rec.tape();
        let mut rep = Decisions::replay(&tape);
        let replayed: Vec<u64> = (1..20u64).map(|b| rep.choose(b)).collect();
        assert_eq!(drawn, replayed);
        assert_eq!(rep.tape(), tape);
    }

    #[test]
    fn truncated_tape_pads_with_minimal_choices() {
        let mut rec = Decisions::record(7);
        for _ in 0..10 {
            rec.choose(100);
        }
        let mut tape = rec.tape();
        tape.choices.truncate(3);
        let mut rep = Decisions::replay(&tape);
        let vals: Vec<u64> = (0..10).map(|_| rep.choose(100)).collect();
        assert_eq!(&vals[3..], &[0; 7]);
    }

    #[test]
    fn hex_roundtrip() {
        let tape = Tape {
            choices: vec![0, 1, 255, u64::MAX],
        };
        assert_eq!(Tape::from_hex(&tape.to_hex()).unwrap(), tape);
        assert_eq!(Tape::from_hex("-").unwrap(), Tape::default());
        assert!(Tape::from_hex("xyz.3").is_err());
    }

    #[test]
    fn clamping_keeps_choices_in_bounds() {
        let tape = Tape {
            choices: vec![u64::MAX, 500, 3],
        };
        let mut rep = Decisions::replay(&tape);
        assert_eq!(rep.choose(4), 3);
        assert_eq!(rep.choose(10), 9);
        assert_eq!(rep.choose(2), 1);
    }
}
