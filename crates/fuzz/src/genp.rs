//! Deterministic generator of **closed** IR programs in the guarded-command
//! language: no holes, no `*` guards, no externs, so every generated program
//! can be run by the concrete interpreter, printed and re-parsed, and
//! symbolically executed.
//!
//! Shape constraints keep the differential oracles sound and cheap:
//!
//! * loops are counter-bounded (`c := 0; while (c < K) { ...; c := c + 1 }`
//!   with `K ≤ 3`), never nested, at most two per program — so concrete runs
//!   terminate well inside their fuel and path enumeration stays small;
//! * constants are small and multiplication is by constants only, so
//!   concrete (wrapping `i64`) and symbolic (mathematical integer)
//!   semantics coincide on every reachable value;
//! * `And`/`Or` predicates always carry ≥ 2 children and loop ids number in
//!   textual order — the printer/parser normal form, so
//!   `parse(print(p)) == p` is expected to hold structurally.

use pins_ir::{CmpOp, Expr, LoopId, Mode, Pred, Program, Stmt, Type, VarId};

use crate::tape::Decisions;

/// Limits for one generated program.
#[derive(Debug, Clone, Copy)]
pub struct ProgramConfig {
    /// Maximum number of (top-level, non-nested) loops.
    pub max_loops: u64,
    /// Allow an `inout` array parameter with `sel`/store statements.
    pub allow_arrays: bool,
}

impl Default for ProgramConfig {
    fn default() -> Self {
        ProgramConfig {
            max_loops: 2,
            allow_arrays: true,
        }
    }
}

/// Small constants appearing in generated programs. Bounded so that loop
/// iteration counts × constant growth can never wrap an `i64` (the concrete
/// interpreter wraps; the symbolic semantics does not).
const CONSTS: [i64; 8] = [0, 1, 2, 3, 4, 5, 6, 8];

const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

struct Gen<'d> {
    d: &'d mut Decisions,
    /// Int-sorted variables readable in expressions.
    int_vars: Vec<VarId>,
    /// Int-sorted variables writable by generated assignments (excludes
    /// loop counters, which only their own loop mutates).
    int_writable: Vec<VarId>,
    /// The array parameter, when present.
    array_var: Option<VarId>,
    next_loop: u32,
}

impl Gen<'_> {
    fn int_expr(&mut self, depth: u32) -> Expr {
        let has_arr = self.array_var.is_some();
        let n_kinds = if depth == 0 {
            2
        } else if has_arr {
            6
        } else {
            5
        };
        match self.d.choose(n_kinds) {
            0 => Expr::Int(*self.d.pick(&CONSTS)),
            1 => Expr::Var(*self.d.pick(&self.int_vars)),
            2 => Expr::Add(
                Box::new(self.int_expr(depth - 1)),
                Box::new(self.int_expr(depth - 1)),
            ),
            3 => Expr::Sub(
                Box::new(self.int_expr(depth - 1)),
                Box::new(self.int_expr(depth - 1)),
            ),
            4 => Expr::Mul(
                Box::new(self.int_expr(depth - 1)),
                Box::new(Expr::Int(*self.d.pick(&CONSTS))),
            ),
            _ => Expr::Sel(
                Box::new(Expr::Var(self.array_var.unwrap())),
                Box::new(self.int_expr(depth - 1)),
            ),
        }
    }

    fn cmp(&mut self) -> Pred {
        let op = *self.d.pick(&CMP_OPS);
        let a = self.int_expr(1);
        let b = self.int_expr(1);
        Pred::Cmp(op, a, b)
    }

    fn pred(&mut self) -> Pred {
        match self.d.choose(4) {
            0 | 1 => self.cmp(),
            2 => Pred::Not(Box::new(self.cmp())),
            _ => {
                // printer/parser normal form requires >= 2 children
                let kids = vec![self.cmp(), self.cmp()];
                if self.d.chance(1, 2) {
                    Pred::And(kids)
                } else {
                    Pred::Or(kids)
                }
            }
        }
    }

    fn assign(&mut self) -> Stmt {
        if self.int_writable.len() >= 2 && self.d.chance(1, 4) {
            // parallel assignment to two distinct targets
            let i = self.d.choose(self.int_writable.len() as u64) as usize;
            let mut j = self.d.choose((self.int_writable.len() - 1) as u64) as usize;
            if j >= i {
                j += 1;
            }
            let e1 = self.int_expr(2);
            let e2 = self.int_expr(2);
            Stmt::Assign(vec![(self.int_writable[i], e1), (self.int_writable[j], e2)])
        } else {
            let v = *self.d.pick(&self.int_writable);
            let e = self.int_expr(2);
            Stmt::Assign(vec![(v, e)])
        }
    }

    fn array_store(&mut self) -> Stmt {
        let a = self.array_var.unwrap();
        let i = self.int_expr(1);
        let v = self.int_expr(1);
        Stmt::Assign(vec![(
            a,
            Expr::Upd(Box::new(Expr::Var(a)), Box::new(i), Box::new(v)),
        )])
    }

    /// One statement inside a straight-line region; `in_loop` suppresses
    /// `exit` (exits inside loops make path accounting noisier for no extra
    /// coverage).
    fn simple_stmt(&mut self, in_loop: bool) -> Stmt {
        let has_arr = self.array_var.is_some();
        match self.d.choose(10) {
            0..=3 => self.assign(),
            4 | 5 => {
                let c = self.pred();
                let then_b = vec![self.assign()];
                let else_b = if self.d.chance(1, 2) {
                    vec![self.assign()]
                } else {
                    Vec::new()
                };
                Stmt::If(c, then_b, else_b)
            }
            6 => {
                if has_arr {
                    self.array_store()
                } else {
                    self.assign()
                }
            }
            7 => Stmt::Assume(self.cmp()),
            8 => Stmt::Skip,
            _ => {
                if !in_loop && self.d.chance(1, 3) {
                    Stmt::Exit
                } else {
                    self.assign()
                }
            }
        }
    }

    fn loop_stmt(&mut self, counter: VarId) -> Stmt {
        let id = LoopId(self.next_loop);
        self.next_loop += 1;
        let bound = 1 + self.d.choose(3) as i64;
        let n_body = 1 + self.d.choose(2);
        let mut body: Vec<Stmt> = (0..n_body).map(|_| self.simple_stmt(true)).collect();
        body.push(Stmt::Assign(vec![(
            counter,
            Expr::Add(Box::new(Expr::Var(counter)), Box::new(Expr::Int(1))),
        )]));
        let guard = Pred::Cmp(CmpOp::Lt, Expr::Var(counter), Expr::Int(bound));
        Stmt::While(id, guard, body)
    }
}

/// Generates one closed program from the decision stream.
pub fn gen_program(d: &mut Decisions, config: ProgramConfig) -> Program {
    let mut p = Program {
        name: "p".to_owned(),
        ..Program::default()
    };
    // parameters first: 1-2 int inputs, one int output, optional array inout
    let n_in = 1 + d.choose(2);
    for i in 0..n_in {
        let v = p.add_local(&format!("i{i}"), Type::Int);
        p.params.push((v, Mode::In));
    }
    let out = p.add_local("o0", Type::Int);
    p.params.push((out, Mode::Out));
    let array_var = if config.allow_arrays && d.chance(1, 3) {
        let v = p.add_local("a0", Type::IntArray);
        p.params.push((v, Mode::InOut));
        Some(v)
    } else {
        None
    };
    // locals: optional temp, then one counter per loop — all declared up
    // front so the printed `local` line matches the var-table order
    let n_loops = d.choose(config.max_loops + 1);
    let tmp = if d.chance(1, 2) {
        Some(p.add_local("t0", Type::Int))
    } else {
        None
    };
    let counters: Vec<VarId> = (0..n_loops)
        .map(|j| p.add_local(&format!("c{j}"), Type::Int))
        .collect();

    let int_vars: Vec<VarId> = p
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.ty == Type::Int)
        .map(|(i, _)| VarId(i as u32))
        .collect();
    let int_writable: Vec<VarId> = int_vars
        .iter()
        .copied()
        .filter(|v| !counters.contains(v))
        .collect();
    let _ = tmp;

    let mut gen = Gen {
        d,
        int_vars,
        int_writable,
        array_var,
        next_loop: 0,
    };

    let mut body = Vec::new();
    let n_pre = 1 + gen.d.choose(2);
    for _ in 0..n_pre {
        body.push(gen.simple_stmt(false));
    }
    for &c in &counters {
        body.push(Stmt::Assign(vec![(c, Expr::Int(0))]));
        body.push(gen.loop_stmt(c));
        if gen.d.chance(1, 2) {
            body.push(gen.simple_stmt(false));
        }
    }
    // the output is always defined on every path that reaches the end
    let final_e = gen.int_expr(2);
    body.push(Stmt::Assign(vec![(out, final_e)]));

    p.body = body;
    p.num_loops = gen.next_loop;
    debug_assert!(is_var_table_consistent(&p));
    p
}

fn is_var_table_consistent(p: &Program) -> bool {
    p.params.iter().all(|&(v, _)| (v.0 as usize) < p.vars.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Decisions;
    use pins_ir::{parse_program, program_to_string};

    #[test]
    fn generated_programs_are_closed_and_deterministic() {
        for seed in 0..100u64 {
            let mut rec = Decisions::record(seed);
            let p1 = gen_program(&mut rec, ProgramConfig::default());
            assert!(p1.is_closed(), "seed {seed}");
            let tape = rec.tape();
            let mut rep = Decisions::replay(&tape);
            let p2 = gen_program(&mut rep, ProgramConfig::default());
            assert_eq!(p1, p2, "seed {seed}: replay diverged");
        }
    }

    #[test]
    fn printer_parser_roundtrip_on_generated_programs() {
        for seed in 0..300u64 {
            let mut d = Decisions::record(seed);
            let p = gen_program(&mut d, ProgramConfig::default());
            let text = program_to_string(&p);
            let reparsed = parse_program(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{text}"));
            assert_eq!(p, reparsed, "seed {seed}: roundtrip mismatch\n{text}");
        }
    }
}
