//! Independent reference semantics used by the oracles.
//!
//! Two deliberately separate implementations:
//!
//! * [`check_model`] — a three-valued structural evaluator that checks a
//!   solver-returned [`Model`] against the asserted formula **without**
//!   reusing [`Model::eval_bool`]'s logic. It propagates `Unknown` for
//!   anything the model does not pin down (so a sparse-but-correct model is
//!   never reported as wrong) and cross-checks EUF congruence: two
//!   applications of the same function on equal evaluated arguments must be
//!   assigned equal values.
//! * [`enumerate_sat`] — exhaustive enumeration of all assignments over a
//!   small integer domain, total on the generator's *enumerable* dialect.
//!   Finding a satisfying assignment there refutes an `Unsat` verdict
//!   outright.

use std::collections::HashMap;

use pins_logic::{Symbol, Term, TermArena, TermId};
use pins_smt::Model;

/// Three-valued evaluation result.
#[derive(Debug, Clone, PartialEq, Eq)]
enum V {
    Int(i64),
    Bool(bool),
    /// A functional array view: the base (non-`Upd`) array term plus the
    /// writes applied on top of it, in application order.
    Arr(TermId, Vec<(i64, i64)>),
    /// Not determined by the model (or out of `i64` range).
    Unknown,
}

/// Outcome of checking a model against a formula.
#[derive(Debug, Default)]
pub struct ModelCheck {
    /// Asserts that evaluated definitively to `false` under the model.
    pub falsified: Vec<usize>,
    /// EUF congruence conflicts: same function, equal argument values,
    /// different assigned results.
    pub euf_conflicts: Vec<String>,
}

impl ModelCheck {
    /// No definitive contradiction was found.
    pub fn ok(&self) -> bool {
        self.falsified.is_empty() && self.euf_conflicts.is_empty()
    }
}

struct Evaluator<'a> {
    arena: &'a TermArena,
    model: &'a Model,
    /// Congruence table: (function, evaluated args) -> (assigned value,
    /// witness term).
    apps: HashMap<(Symbol, Vec<i64>), (i64, TermId)>,
    euf_conflicts: Vec<String>,
}

impl Evaluator<'_> {
    fn eval(&mut self, t: TermId) -> V {
        match self.arena.term(t) {
            Term::IntConst(v) => V::Int(*v),
            Term::BoolConst(b) => V::Bool(*b),
            Term::Var { sort, .. } => {
                if sort.is_int() {
                    match self.model.ints.get(&t) {
                        Some(&v) => V::Int(v),
                        None => V::Unknown,
                    }
                } else if sort.is_bool() {
                    match self.model.bools.get(&t) {
                        Some(&v) => V::Bool(v),
                        None => V::Unknown,
                    }
                } else {
                    V::Arr(t, Vec::new())
                }
            }
            Term::Add(a, b) => self.int2(*a, *b, i64::checked_add),
            Term::Sub(a, b) => self.int2(*a, *b, i64::checked_sub),
            Term::Mul(a, b) => self.int2(*a, *b, i64::checked_mul),
            Term::Sel(a, i) => {
                let arr = self.eval(*a);
                let idx = self.eval(*i);
                match (arr, idx) {
                    (V::Arr(base, writes), V::Int(idx)) => {
                        // last write wins
                        if let Some(&(_, v)) = writes.iter().rev().find(|&&(wi, _)| wi == idx) {
                            return V::Int(v);
                        }
                        if let Some(entries) = self.model.arrays.get(&base) {
                            if let Some(&(_, v)) = entries.iter().find(|&&(ei, _)| ei == idx) {
                                return V::Int(v);
                            }
                        }
                        // unconstrained cell: fall back to the solver's own
                        // value for this very sel term, if any
                        self.claimed_int(t)
                    }
                    _ => self.claimed_int(t),
                }
            }
            Term::Upd(a, i, v) => {
                let arr = self.eval(*a);
                let idx = self.eval(*i);
                let val = self.eval(*v);
                match (arr, idx, val) {
                    (V::Arr(base, mut writes), V::Int(idx), V::Int(val)) => {
                        writes.push((idx, val));
                        V::Arr(base, writes)
                    }
                    // a store at an undetermined index poisons the whole view
                    _ => V::Unknown,
                }
            }
            Term::App(f, args) => {
                let claimed = self.claimed_int(t);
                let vals: Option<Vec<i64>> = args
                    .iter()
                    .map(|&a| match self.eval(a) {
                        V::Int(v) => Some(v),
                        _ => None,
                    })
                    .collect();
                if let (Some(vals), V::Int(cv)) = (vals, &claimed) {
                    let key = (*f, vals);
                    match self.apps.get(&key) {
                        Some(&(prev, witness)) if prev != *cv => {
                            self.euf_conflicts.push(format!(
                                "congruence violation: {}({:?}) = {} at {:?} but {} at {:?}",
                                self.arena.symbols().name(*f),
                                key.1,
                                prev,
                                witness,
                                cv,
                                t,
                            ));
                        }
                        Some(_) => {}
                        None => {
                            self.apps.insert(key, (*cv, t));
                        }
                    }
                }
                claimed
            }
            Term::Eq(a, b) => {
                let x = self.eval(*a);
                let y = self.eval(*b);
                match (x, y) {
                    (V::Int(x), V::Int(y)) => V::Bool(x == y),
                    (V::Bool(x), V::Bool(y)) => V::Bool(x == y),
                    (V::Arr(b1, w1), V::Arr(b2, w2)) if b1 == b2 && w1 == w2 => V::Bool(true),
                    _ => V::Unknown,
                }
            }
            Term::Le(a, b) => self.cmp(*a, *b, |x, y| x <= y),
            Term::Lt(a, b) => self.cmp(*a, *b, |x, y| x < y),
            Term::Not(a) => match self.eval(*a) {
                V::Bool(b) => V::Bool(!b),
                _ => V::Unknown,
            },
            Term::And(kids) => {
                let mut unknown = false;
                for &k in kids {
                    match self.eval(k) {
                        V::Bool(false) => return V::Bool(false),
                        V::Bool(true) => {}
                        _ => unknown = true,
                    }
                }
                if unknown {
                    V::Unknown
                } else {
                    V::Bool(true)
                }
            }
            Term::Or(kids) => {
                let mut unknown = false;
                for &k in kids {
                    match self.eval(k) {
                        V::Bool(true) => return V::Bool(true),
                        V::Bool(false) => {}
                        _ => unknown = true,
                    }
                }
                if unknown {
                    V::Unknown
                } else {
                    V::Bool(false)
                }
            }
            Term::Ite(c, a, b) => match self.eval(*c) {
                V::Bool(true) => self.eval(*a),
                V::Bool(false) => self.eval(*b),
                _ => {
                    let x = self.eval(*a);
                    let y = self.eval(*b);
                    if x != V::Unknown && x == y {
                        x
                    } else {
                        V::Unknown
                    }
                }
            },
            Term::Forall(..) | Term::Hole(..) => V::Unknown,
        }
    }

    fn claimed_int(&self, t: TermId) -> V {
        match self.model.ints.get(&t) {
            Some(&v) => V::Int(v),
            None => V::Unknown,
        }
    }

    fn int2(&mut self, a: TermId, b: TermId, op: fn(i64, i64) -> Option<i64>) -> V {
        match (self.eval(a), self.eval(b)) {
            (V::Int(x), V::Int(y)) => match op(x, y) {
                Some(v) => V::Int(v),
                None => V::Unknown,
            },
            _ => V::Unknown,
        }
    }

    fn cmp(&mut self, a: TermId, b: TermId, op: fn(i64, i64) -> bool) -> V {
        match (self.eval(a), self.eval(b)) {
            (V::Int(x), V::Int(y)) => V::Bool(op(x, y)),
            _ => V::Unknown,
        }
    }
}

/// Checks a (complete) model against `asserts`. Only definitive
/// contradictions are reported; `Unknown` sub-results are accepted.
pub fn check_model(arena: &TermArena, asserts: &[TermId], model: &Model) -> ModelCheck {
    let mut ev = Evaluator {
        arena,
        model,
        apps: HashMap::new(),
        euf_conflicts: Vec::new(),
    };
    let mut out = ModelCheck::default();
    for (i, &a) in asserts.iter().enumerate() {
        if ev.eval(a) == V::Bool(false) {
            out.falsified.push(i);
        }
    }
    out.euf_conflicts = ev.euf_conflicts;
    out
}

/// The symmetric integer domain enumeration ranges over: covers the
/// generator's enumerable constants ([-3, 3]) plus one step of slack.
pub const ENUM_DOMAIN: std::ops::RangeInclusive<i64> = -4..=4;

/// Exhaustively enumerates assignments of `int_vars` over [`ENUM_DOMAIN`]
/// and `bool_vars` over {false, true}; returns a satisfying assignment for
/// the conjunction of `asserts`, if any exists in the domain.
///
/// Total only on the enumerable dialect (no arrays / EUF / ite); returns
/// `None` both when no in-domain assignment satisfies the formula and is
/// never called on formulas where evaluation could be partial.
pub fn enumerate_sat(
    arena: &TermArena,
    asserts: &[TermId],
    int_vars: &[TermId],
    bool_vars: &[TermId],
) -> Option<(Vec<i64>, Vec<bool>)> {
    let dom: Vec<i64> = ENUM_DOMAIN.collect();
    let n_i = int_vars.len();
    let n_b = bool_vars.len();
    let total: u64 = (dom.len() as u64)
        .checked_pow(n_i as u32)
        .and_then(|x| x.checked_mul(1u64 << n_b))?;
    let mut binding: HashMap<TermId, V2> = HashMap::new();
    'outer: for idx in 0..total {
        let mut rest = idx;
        for &v in int_vars {
            binding.insert(v, V2::Int(dom[(rest % dom.len() as u64) as usize]));
            rest /= dom.len() as u64;
        }
        for &b in bool_vars {
            binding.insert(b, V2::Bool(rest % 2 == 1));
            rest /= 2;
        }
        for &a in asserts {
            if eval_total(arena, a, &binding) != Some(V2::Bool(true)) {
                continue 'outer;
            }
        }
        let ints = int_vars
            .iter()
            .map(|v| match binding[v] {
                V2::Int(x) => x,
                V2::Bool(_) => unreachable!(),
            })
            .collect();
        let bools = bool_vars
            .iter()
            .map(|v| match binding[v] {
                V2::Bool(x) => x,
                V2::Int(_) => unreachable!(),
            })
            .collect();
        return Some((ints, bools));
    }
    None
}

/// A ground value for [`enumerate_sat`]'s total evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum V2 {
    Int(i64),
    Bool(bool),
}

fn eval_total(arena: &TermArena, t: TermId, binding: &HashMap<TermId, V2>) -> Option<V2> {
    let int = |t| match eval_total(arena, t, binding)? {
        V2::Int(v) => Some(v),
        V2::Bool(_) => None,
    };
    let boolean = |t| match eval_total(arena, t, binding)? {
        V2::Bool(v) => Some(v),
        V2::Int(_) => None,
    };
    Some(match arena.term(t) {
        Term::IntConst(v) => V2::Int(*v),
        Term::BoolConst(b) => V2::Bool(*b),
        Term::Var { .. } => return binding.get(&t).copied(),
        Term::Add(a, b) => V2::Int(int(*a)?.checked_add(int(*b)?)?),
        Term::Sub(a, b) => V2::Int(int(*a)?.checked_sub(int(*b)?)?),
        Term::Mul(a, b) => V2::Int(int(*a)?.checked_mul(int(*b)?)?),
        Term::Eq(a, b) => {
            if arena.sort(*a).is_int() {
                V2::Bool(int(*a)? == int(*b)?)
            } else {
                V2::Bool(boolean(*a)? == boolean(*b)?)
            }
        }
        Term::Le(a, b) => V2::Bool(int(*a)? <= int(*b)?),
        Term::Lt(a, b) => V2::Bool(int(*a)? < int(*b)?),
        Term::Not(a) => V2::Bool(!boolean(*a)?),
        Term::And(kids) => {
            for &k in kids {
                if !boolean(k)? {
                    return Some(V2::Bool(false));
                }
            }
            V2::Bool(true)
        }
        Term::Or(kids) => {
            for &k in kids {
                if boolean(k)? {
                    return Some(V2::Bool(true));
                }
            }
            V2::Bool(false)
        }
        Term::Ite(c, a, b) => {
            if boolean(*c)? {
                return eval_total(arena, *a, binding);
            }
            return eval_total(arena, *b, binding);
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pins_logic::Sort;

    #[test]
    fn enumeration_finds_the_only_solution() {
        let mut arena = TermArena::new();
        let xs = arena.sym("x");
        let x = arena.mk_var(xs, 0, Sort::Int);
        let three = arena.mk_int(3);
        let a = arena.mk_eq(x, three);
        let (ints, _) = enumerate_sat(&arena, &[a], &[x], &[]).expect("x=3 is in the domain");
        assert_eq!(ints, vec![3]);
    }

    #[test]
    fn enumeration_reports_unsat_in_domain() {
        let mut arena = TermArena::new();
        let xs = arena.sym("x");
        let x = arena.mk_var(xs, 0, Sort::Int);
        let lo = arena.mk_int(1);
        let a1 = arena.mk_lt(x, lo);
        let hi = arena.mk_int(2);
        let a2 = arena.mk_lt(hi, x);
        assert!(enumerate_sat(&arena, &[a1, a2], &[x], &[]).is_none());
    }

    #[test]
    fn model_check_accepts_a_correct_model_and_rejects_a_wrong_one() {
        let mut arena = TermArena::new();
        let xs = arena.sym("x");
        let x = arena.mk_var(xs, 0, Sort::Int);
        let five = arena.mk_int(5);
        let a = arena.mk_eq(x, five);
        let mut good = Model {
            complete: true,
            ..Model::default()
        };
        good.ints.insert(x, 5);
        assert!(check_model(&arena, &[a], &good).ok());
        let mut bad = good.clone();
        bad.ints.insert(x, 4);
        let res = check_model(&arena, &[a], &bad);
        assert_eq!(res.falsified, vec![0]);
    }

    #[test]
    fn euf_congruence_conflict_is_detected() {
        let mut arena = TermArena::new();
        let f = arena.declare_fun("f", vec![Sort::Int], Sort::Int);
        let xs = arena.sym("x");
        let ys = arena.sym("y");
        let x = arena.mk_var(xs, 0, Sort::Int);
        let y = arena.mk_var(ys, 0, Sort::Int);
        let fx = arena.mk_app(f, vec![x]);
        let fy = arena.mk_app(f, vec![y]);
        let asserts = [arena.mk_le(fx, fy)];
        let mut m = Model {
            complete: true,
            ..Model::default()
        };
        // x == y but f(x) != f(y): congruence violation
        m.ints.insert(x, 1);
        m.ints.insert(y, 1);
        m.ints.insert(fx, 7);
        m.ints.insert(fy, 9);
        let res = check_model(&arena, &asserts, &m);
        assert_eq!(res.euf_conflicts.len(), 1);
    }
}
