//! `pins-fuzz`: differential fuzzing and cross-validation for the whole
//! PINS solver stack.
//!
//! The crate is built around three ideas:
//!
//! 1. **Decision tapes** ([`tape`]): generators draw every choice from a
//!    replayable stream, so any input — formula or program — is fully
//!    described by a `(oracle, tape)` pair and can be replayed or shrunk
//!    without ever serializing the object itself.
//! 2. **Differential oracles** ([`oracles`]): each oracle checks that two
//!    independent routes through the stack agree — model evaluation vs SAT
//!    verdicts, exhaustive enumeration vs UNSAT verdicts, cache vs
//!    recomputation, serial vs forked-parallel sessions, the concrete
//!    interpreter vs symbolic execution discharged through SMT, and
//!    budget-degraded runs vs complete runs. Non-definitive results
//!    (`Unknown`, incomplete `Sat`) are compatible with anything; only
//!    definitive disagreements are violations.
//! 3. **Greedy tape shrinking** ([`shrink`]): failing tapes are
//!    delta-reduced against the same oracle, and the minimized artifact is
//!    emitted in the JSONL report for replay via `pins-fuzz --oracle O
//!    --tape T`.
//!
//! The [`run`] driver round-robins oracles over per-iteration seeds derived
//! from a master seed, so `--iters N --seed S` is deterministic and
//! byte-identical across runs and machines (reports carry no timestamps).

pub mod eval;
pub mod genf;
pub mod genp;
pub mod oracles;
pub mod report;
pub mod shrink;
pub mod tape;

use std::time::Instant;

use pins_prng::SplitMix64;

pub use oracles::{fuzz_smt_config, run_oracle, OracleKind, OracleOutcome, ALL_ORACLES};
pub use shrink::{shrink, Shrunk};
pub use tape::{Decisions, Tape};

/// Options for a fuzzing run.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of iterations (each iteration runs one oracle once).
    pub iters: u64,
    /// Master seed; per-iteration seeds derive from it.
    pub seed: u64,
    /// Restrict to a single oracle (otherwise round-robin over all seven).
    pub oracle: Option<OracleKind>,
    /// Wall-clock bound for the whole run, in milliseconds. Checked between
    /// iterations; when it trips, the run stops early (the report then
    /// reflects the completed prefix only).
    pub budget_ms: Option<u64>,
    /// Shrink failing tapes before reporting.
    pub shrink: bool,
    /// Cap on oracle executions spent shrinking one finding.
    pub max_shrink_attempts: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            iters: 1000,
            seed: 0,
            oracle: None,
            budget_ms: None,
            shrink: true,
            max_shrink_attempts: 2000,
        }
    }
}

/// One oracle violation, with its replay artifacts.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Iteration index that produced it.
    pub iter: u64,
    /// Oracle name ([`OracleKind::name`]).
    pub oracle: &'static str,
    /// Per-iteration seed.
    pub seed: u64,
    /// The original (normalized) failing tape, hex-encoded.
    pub tape: String,
    /// The shrunk tape, when shrinking ran.
    pub shrunk_tape: Option<String>,
    /// Violation messages from the (shrunk, when available) run.
    pub violations: Vec<String>,
}

/// Per-oracle outcome counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleCounts {
    /// Runs that checked their property and found agreement.
    pub passed: u64,
    /// Inconclusive runs (nothing definitive to compare).
    pub skipped: u64,
    /// Runs that found a definitive disagreement.
    pub violations: u64,
}

/// The result of a whole fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzSummary {
    /// Iterations actually executed (may be below the request under
    /// `budget_ms`).
    pub iters: u64,
    /// Total conclusive, passing runs.
    pub passed: u64,
    /// Total inconclusive runs.
    pub skipped: u64,
    /// All findings, in iteration order.
    pub findings: Vec<Finding>,
    /// Counters per oracle name, in [`ALL_ORACLES`] order (restricted runs
    /// carry just the one entry).
    pub per_oracle: Vec<(&'static str, OracleCounts)>,
}

impl FuzzSummary {
    /// Renders the full JSONL report (meta line, one line per finding, and
    /// a summary line).
    pub fn to_jsonl(&self, seed: u64, requested_iters: u64, oracle: Option<OracleKind>) -> String {
        let mut out = String::new();
        out.push_str(&report::meta_line(
            seed,
            requested_iters,
            oracle.map(|o| o.name()),
        ));
        out.push('\n');
        for f in &self.findings {
            out.push_str(&report::finding_line(f));
            out.push('\n');
        }
        out.push_str(&report::summary_line(self));
        out.push('\n');
        out
    }
}

/// The per-iteration seed stream: a [`SplitMix64`] over the master seed, so
/// iteration `i`'s seed does not depend on how earlier iterations consumed
/// their own streams.
pub fn iteration_seed(master: u64, iter: u64) -> u64 {
    let mut s = SplitMix64::new(master.wrapping_add(iter.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    s.next_u64()
}

/// Runs the fuzzing loop.
pub fn run(options: &FuzzOptions) -> FuzzSummary {
    let started = Instant::now();
    let oracles: Vec<OracleKind> = match options.oracle {
        Some(o) => vec![o],
        None => ALL_ORACLES.to_vec(),
    };
    let mut per: Vec<(&'static str, OracleCounts)> = oracles
        .iter()
        .map(|o| (o.name(), OracleCounts::default()))
        .collect();
    let mut summary = FuzzSummary::default();
    for iter in 0..options.iters {
        if let Some(ms) = options.budget_ms {
            if started.elapsed().as_millis() as u64 >= ms {
                break;
            }
        }
        let slot = (iter % oracles.len() as u64) as usize;
        let oracle = oracles[slot];
        let seed = iteration_seed(options.seed, iter);
        let mut d = Decisions::record(seed);
        let outcome = run_oracle(oracle, &mut d);
        summary.iters += 1;
        let counts = &mut per[slot].1;
        if !outcome.violations.is_empty() {
            counts.violations += 1;
            let tape = d.tape();
            let (shrunk_tape, violations) = if options.shrink {
                let s = shrink(oracle, &tape, options.max_shrink_attempts);
                if s.violations.is_empty() {
                    (None, outcome.violations)
                } else {
                    (Some(s.tape.to_hex()), s.violations)
                }
            } else {
                (None, outcome.violations)
            };
            summary.findings.push(Finding {
                iter,
                oracle: oracle.name(),
                seed,
                tape: tape.to_hex(),
                shrunk_tape,
                violations,
            });
        } else if outcome.skipped {
            counts.skipped += 1;
            summary.skipped += 1;
        } else {
            counts.passed += 1;
            summary.passed += 1;
        }
    }
    summary.per_oracle = per;
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_deterministic_and_clean() {
        let opts = FuzzOptions {
            iters: 60,
            seed: 42,
            ..FuzzOptions::default()
        };
        let a = run(&opts);
        let b = run(&opts);
        assert_eq!(a.iters, 60);
        assert!(
            a.findings.is_empty(),
            "unexpected violations: {:?}",
            a.findings
        );
        assert_eq!(a.to_jsonl(42, 60, None), b.to_jsonl(42, 60, None));
        // every oracle ran and some runs were conclusive
        assert_eq!(a.per_oracle.len(), ALL_ORACLES.len());
        assert!(a.passed > 0);
    }

    #[test]
    fn single_oracle_restriction_is_respected() {
        let opts = FuzzOptions {
            iters: 12,
            seed: 7,
            oracle: Some(OracleKind::Cache),
            ..FuzzOptions::default()
        };
        let s = run(&opts);
        assert_eq!(s.per_oracle.len(), 1);
        assert_eq!(s.per_oracle[0].0, "cache");
        let c = s.per_oracle[0].1;
        assert_eq!(c.passed + c.skipped + c.violations, 12);
    }

    #[test]
    fn budget_ms_stops_early() {
        let opts = FuzzOptions {
            iters: u64::MAX,
            seed: 1,
            budget_ms: Some(50),
            ..FuzzOptions::default()
        };
        let s = run(&opts);
        assert!(s.iters < u64::MAX);
    }
}
