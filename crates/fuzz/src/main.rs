//! The `pins-fuzz` binary: differential fuzzing driver and replay tool.
//!
//! ```text
//! pins-fuzz --iters 10000 --seed 42 [--oracle NAME] [--budget-ms N]
//!           [--report PATH] [--no-shrink]
//! pins-fuzz --oracle NAME --tape HEX        # replay one artifact
//! ```
//!
//! Exit codes: 0 — no violations; 1 — violations found; 2 — usage error.

use std::process::ExitCode;

use pins_fuzz::{run, run_oracle, Decisions, FuzzOptions, OracleKind, Tape, ALL_ORACLES};

struct Args {
    options: FuzzOptions,
    report: Option<String>,
    replay_tape: Option<Tape>,
}

fn usage() -> String {
    let names: Vec<&str> = ALL_ORACLES.iter().map(|o| o.name()).collect();
    format!(
        "usage: pins-fuzz [--iters N] [--seed N] [--oracle NAME] [--budget-ms N]\n\
         \x20                [--report PATH] [--no-shrink]\n\
         \x20      pins-fuzz --oracle NAME --tape HEX\n\
         oracles: {}",
        names.join(", ")
    )
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut options = FuzzOptions {
        iters: 10_000,
        ..FuzzOptions::default()
    };
    let mut report = None;
    let mut replay_tape = None;
    let mut i = 0;
    while i < argv.len() {
        let arg = argv[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            argv.get(*i)
                .cloned()
                .ok_or_else(|| format!("{arg} requires a value"))
        };
        match arg {
            "--iters" => {
                options.iters = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--seed" => {
                options.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--budget-ms" => {
                options.budget_ms = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e| format!("--budget-ms: {e}"))?,
                );
            }
            "--oracle" => {
                let name = value(&mut i)?;
                options.oracle = Some(
                    OracleKind::from_name(&name).ok_or_else(|| format!("unknown oracle {name}"))?,
                );
            }
            "--report" => report = Some(value(&mut i)?),
            "--tape" => replay_tape = Some(Tape::from_hex(&value(&mut i)?)?),
            "--no-shrink" => options.shrink = false,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument {other}\n{}", usage())),
        }
        i += 1;
    }
    if replay_tape.is_some() && options.oracle.is_none() {
        return Err("--tape requires --oracle".to_owned());
    }
    Ok(Args {
        options,
        report,
        replay_tape,
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    // replay mode: run the one artifact and print its outcome
    if let Some(tape) = args.replay_tape {
        let oracle = args.options.oracle.expect("checked in parse_args");
        let mut d = Decisions::replay(&tape);
        let out = run_oracle(oracle, &mut d);
        if out.violations.is_empty() {
            println!(
                "{}: {} ({})",
                oracle.name(),
                if out.skipped { "skipped" } else { "pass" },
                out.detail
            );
            return ExitCode::SUCCESS;
        }
        println!("{}: VIOLATION ({})", oracle.name(), out.detail);
        for v in &out.violations {
            println!("  {v}");
        }
        return ExitCode::from(1);
    }

    let summary = run(&args.options);
    let jsonl = summary.to_jsonl(args.options.seed, args.options.iters, args.options.oracle);
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }

    println!(
        "pins-fuzz: {} iterations, {} passed, {} skipped, {} violation(s)",
        summary.iters,
        summary.passed,
        summary.skipped,
        summary.findings.len()
    );
    for (name, c) in &summary.per_oracle {
        println!(
            "  {name:<16} passed {:<8} skipped {:<8} violations {}",
            c.passed, c.skipped, c.violations
        );
    }
    for f in &summary.findings {
        println!(
            "VIOLATION iter={} oracle={} seed={}\n  replay: pins-fuzz --oracle {} --tape {}",
            f.iter,
            f.oracle,
            f.seed,
            f.oracle,
            f.shrunk_tape.as_deref().unwrap_or(&f.tape)
        );
        for v in &f.violations {
            println!("  {v}");
        }
    }
    if summary.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
