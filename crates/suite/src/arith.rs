//! The arithmetic benchmarks: Σi, vector shift/scale/rotate, permutation
//! counting, and LU decomposition.

use std::time::Duration;

use pins_core::{AxiomDef, PinsConfig};
use pins_ir::{ExternDecl, Type};

use crate::defs::{no_axioms, RawDef, SpecSrc};

pub(crate) fn sum_i() -> RawDef {
    RawDef {
        name: "Σi",
        group: "arithmetic",
        original: r#"
proc sum_i(in n: int, out s: int) {
  local i: int;
  assume(n >= 0);
  i := 0; s := 0;
  while (i < n) {
    i := i + 1;
    s := s + i;
  }
}
"#,
        template: r#"
proc sum_i_inv(in s: int, out nI: int) {
  local sI: int;
  nI := ?e1;
  sI := ?e2;
  while (?p1) {
    nI := ?e3;
    sI := ?e4;
  }
}
"#,
        delta_e: &[
            "0",
            "s",
            "nI + 1",
            "nI - 1",
            "sI + nI",
            "sI - nI",
            "sI + nI + 1",
        ],
        delta_p: &["sI < s", "0 <= nI", "nI <= sI"],
        spec: &[SpecSrc::IntEq("n", "nI")],
        axioms: no_axioms,
        rename: &[("i", "nI"), ("s", "sI")],
        keep: &["s"],
        has_axioms: false,
        tune: |_c: &mut PinsConfig| {},
    }
}

pub(crate) fn vector_shift() -> RawDef {
    RawDef {
        name: "Vector shift",
        group: "arithmetic",
        original: r#"
proc vshift(inout X: int[], inout Y: int[], in n: int, in dx: int, in dy: int) {
  local i: int;
  assume(n >= 0);
  i := 0;
  while (i < n) {
    X[i] := X[i] + dx;
    Y[i] := Y[i] + dy;
    i := i + 1;
  }
}
"#,
        template: r#"
proc vshift_inv(in X: int[], in Y: int[], in n: int, in dx: int, in dy: int, out XI: int[], out YI: int[], out iI: int) {
  iI := ?e1;
  while (?p1) {
    XI := ?e2;
    YI := ?e3;
    iI := ?e4;
  }
}
"#,
        delta_e: &[
            "0",
            "n",
            "iI + 1",
            "iI - 1",
            "upd(XI, iI, X[iI] - dx)",
            "upd(XI, iI, X[iI] + dx)",
            "upd(YI, iI, Y[iI] - dy)",
            "upd(YI, iI, Y[iI] + dy)",
        ],
        delta_p: &["iI < n", "0 <= iI"],
        spec: &[
            SpecSrc::ArrayEq("X", "XI", "n"),
            SpecSrc::ArrayEq("Y", "YI", "n"),
        ],
        axioms: no_axioms,
        rename: &[("i", "iI"), ("X", "XI"), ("Y", "YI")],
        keep: &["n", "dx", "dy", "X", "Y"],
        has_axioms: false,
        tune: |_c: &mut PinsConfig| {},
    }
}

fn scale_axioms(externs: &[ExternDecl]) -> Vec<AxiomDef> {
    vec![AxiomDef::parse(
        externs,
        &[("a", Type::Int), ("b", Type::Int)],
        "b = 0 || mul(mul(a, b), div(1, b)) = a",
    )]
}

pub(crate) fn vector_scale() -> RawDef {
    RawDef {
        name: "Vector scale",
        group: "arithmetic",
        original: r#"
extern mul(int, int): int;
extern div(int, int): int;
proc vscale(inout X: int[], in n: int, in f: int) {
  local i: int;
  assume(n >= 0);
  assume(f != 0);
  i := 0;
  while (i < n) {
    X[i] := mul(X[i], f);
    i := i + 1;
  }
}
"#,
        template: r#"
extern mul(int, int): int;
extern div(int, int): int;
proc vscale_inv(in X: int[], in n: int, in f: int, out XI: int[], out iI: int) {
  iI := ?e1;
  while (?p1) {
    XI := ?e2;
    iI := ?e3;
  }
}
"#,
        delta_e: &[
            "0",
            "n",
            "iI + 1",
            "iI - 1",
            "upd(XI, iI, mul(X[iI], div(1, f)))",
            "upd(XI, iI, mul(X[iI], f))",
            "upd(XI, iI, X[iI])",
        ],
        delta_p: &["iI < n", "0 <= iI"],
        spec: &[SpecSrc::ArrayEq("X", "XI", "n")],
        axioms: scale_axioms,
        rename: &[("i", "iI"), ("X", "XI")],
        keep: &["n", "f", "X"],
        has_axioms: true,
        tune: |_c: &mut PinsConfig| {},
    }
}

fn rotate_axioms(externs: &[ExternDecl]) -> Vec<AxiomDef> {
    let angle = Type::Abstract("Angle".into());
    vec![
        AxiomDef::parse(
            externs,
            &[("x", Type::Int), ("y", Type::Int), ("t", angle.clone())],
            "urotx(rotx(x, y, t), roty(x, y, t), t) = x",
        ),
        AxiomDef::parse(
            externs,
            &[("x", Type::Int), ("y", Type::Int), ("t", angle)],
            "uroty(rotx(x, y, t), roty(x, y, t), t) = y",
        ),
    ]
}

pub(crate) fn vector_rotate() -> RawDef {
    RawDef {
        name: "Vector rotate",
        group: "arithmetic",
        original: r#"
extern rotx(int, int, Angle): int;
extern roty(int, int, Angle): int;
extern urotx(int, int, Angle): int;
extern uroty(int, int, Angle): int;
proc vrotate(inout X: int[], inout Y: int[], in n: int, in t: Angle) {
  local i: int;
  assume(n >= 0);
  i := 0;
  while (i < n) {
    X[i], Y[i] := rotx(X[i], Y[i], t), roty(X[i], Y[i], t);
    i := i + 1;
  }
}
"#,
        template: r#"
extern rotx(int, int, Angle): int;
extern roty(int, int, Angle): int;
extern urotx(int, int, Angle): int;
extern uroty(int, int, Angle): int;
proc vrotate_inv(in X: int[], in Y: int[], in n: int, in t: Angle, out XI: int[], out YI: int[], out iI: int) {
  iI := ?e1;
  while (?p1) {
    XI := ?e2;
    YI := ?e3;
    iI := ?e4;
  }
}
"#,
        delta_e: &[
            "0",
            "n",
            "iI + 1",
            "iI - 1",
            "upd(XI, iI, urotx(X[iI], Y[iI], t))",
            "upd(XI, iI, rotx(X[iI], Y[iI], t))",
            "upd(YI, iI, uroty(X[iI], Y[iI], t))",
            "upd(YI, iI, roty(X[iI], Y[iI], t))",
        ],
        delta_p: &["iI < n", "0 <= iI"],
        spec: &[
            SpecSrc::ArrayEq("X", "XI", "n"),
            SpecSrc::ArrayEq("Y", "YI", "n"),
        ],
        axioms: rotate_axioms,
        rename: &[("i", "iI"), ("X", "XI"), ("Y", "YI")],
        keep: &["n", "t", "X", "Y"],
        has_axioms: true,
        tune: |_c: &mut PinsConfig| {},
    }
}

pub(crate) fn permute_count() -> RawDef {
    RawDef {
        name: "Permute count",
        group: "arithmetic",
        original: r#"
proc permcount(in p: int[], in n: int, out c: int[]) {
  local i: int, j: int, cnt: int;
  assume(n >= 0);
  i := 0;
  while (i < n) {
    cnt := 0; j := 0;
    while (j < i) {
      if (p[j] < p[i]) {
        cnt := cnt + 1;
      }
      j := j + 1;
    }
    c[i] := cnt;
    i := i + 1;
  }
}
"#,
        template: r#"
proc permcount_inv(in c: int[], in n: int, out pI: int[], out iI: int) {
  local jI: int;
  iI := ?e1;
  while (iI < n) {
    pI := ?e2;
    jI := ?e3;
    while (jI < iI) {
      if (?p1) {
        pI := ?e4;
      }
      jI := ?e5;
    }
    iI := ?e6;
  }
}
"#,
        delta_e: &[
            "0",
            "1",
            "jI + 1",
            "iI + 1",
            "c[iI]",
            "c[jI]",
            "upd(pI, iI, c[iI])",
            "upd(pI, jI, pI[jI] + 1)",
            "upd(pI, jI, pI[jI] - 1)",
            "upd(pI, iI, c[jI])",
        ],
        delta_p: &["pI[jI] >= pI[iI]", "pI[jI] < pI[iI]", "pI[jI] >= c[iI]"],
        spec: &[SpecSrc::ArrayEq("p", "pI", "n")],
        axioms: no_axioms,
        rename: &[("i", "iI"), ("j", "jI"), ("p", "pI")],
        keep: &["c", "n"],
        has_axioms: false,
        tune: |c: &mut PinsConfig| {
            c.max_iterations = 40;
            c.explore.max_unroll = 3;
            c.explore.max_steps = 30_000;
            c.time_budget = Some(Duration::from_secs(1800));
        },
    }
}

fn lu_axioms(externs: &[ExternDecl]) -> Vec<AxiomDef> {
    vec![AxiomDef::parse(
        externs,
        &[("x", Type::Int), ("y", Type::Int)],
        "y = 0 || mul(div(x, y), y) = x",
    )]
}

pub(crate) fn lu_decomp() -> RawDef {
    RawDef {
        name: "LU decomp",
        group: "arithmetic",
        original: r#"
extern mul(int, int): int;
extern div(int, int): int;
proc lu2(inout a: int, inout b: int, inout c: int, inout d: int) {
  assume(a != 0);
  c := div(c, a);
  d := d - mul(c, b);
}
"#,
        template: r#"
extern mul(int, int): int;
extern div(int, int): int;
proc lu2_inv(in a: int, in b: int, in c: int, in d: int, out aI: int, out bI: int, out cI: int, out dI: int) {
  aI := ?e1;
  bI := ?e2;
  cI := ?e3;
  dI := ?e4;
}
"#,
        delta_e: &[
            "a",
            "b",
            "c",
            "d",
            "mul(c, a)",
            "mul(c, b)",
            "d + mul(c, b)",
            "d - mul(c, b)",
            "div(c, a)",
        ],
        delta_p: &[],
        spec: &[
            SpecSrc::IntEq("a", "aI"),
            SpecSrc::IntEq("b", "bI"),
            SpecSrc::IntEq("c", "cI"),
            SpecSrc::IntEq("d", "dI"),
        ],
        axioms: lu_axioms,
        rename: &[("a", "aI"), ("b", "bI"), ("c", "cI"), ("d", "dI")],
        keep: &["a", "b", "c", "d"],
        has_axioms: true,
        tune: |_c: &mut PinsConfig| {},
    }
}
