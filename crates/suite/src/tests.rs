use pins_core::{Pins, PinsConfig};
use pins_ir::{program_to_string, run, Value};

use crate::*;

#[test]
fn all_sessions_build() {
    for id in ALL {
        let b = benchmark(id);
        let session = b.session();
        assert!(
            session.composed.num_eholes > 0,
            "{}: template must contain holes",
            b.name()
        );
        // every expression hole must have at least one candidate of its type
        let domains = pins_core::build_domains(&session, pins_core::DomainConfig::default());
        for (h, dom) in domains.exprs.iter().enumerate() {
            if (h as u32) < session.composed.num_eholes {
                assert!(
                    !dom.is_empty(),
                    "{}: hole ?{} has an empty candidate domain",
                    b.name(),
                    session.composed.ehole_names[h]
                );
            }
        }
    }
}

#[test]
fn loc_in_paper_range() {
    for id in ALL {
        let b = benchmark(id);
        let (orig, inv) = b.loc();
        assert!(
            (3..=40).contains(&orig),
            "{}: original LoC {orig} out of expected range",
            b.name()
        );
        assert!(
            (3..=25).contains(&inv),
            "{}: template LoC {inv} out of expected range",
            b.name()
        );
    }
}

#[test]
fn mining_produces_candidates_for_all() {
    for id in ALL {
        let b = benchmark(id);
        let (mined, _mods) = b.mined();
        assert!(
            mined.total() >= 4,
            "{}: mining produced only {} candidates",
            b.name(),
            mined.total()
        );
    }
}

#[test]
fn forward_programs_run_on_generated_inputs() {
    for id in ALL {
        let b = benchmark(id);
        let session = b.session();
        let env = b.extern_env();
        for seed in 0..3 {
            let inputs = b.gen_input(seed, 5);
            run(&session.original, &inputs, &env, 1_000_000)
                .unwrap_or_else(|e| panic!("{}: forward run failed with {e}", b.name()));
        }
    }
}

#[test]
fn runlength_forward_semantics() {
    let b = benchmark(BenchmarkId::InPlaceRl);
    let session = b.session();
    let env = b.extern_env();
    let p = &session.original;
    let mut inputs = pins_ir::Store::new();
    inputs.insert(p.var_by_name("A").unwrap(), Value::arr_from(&[5, 5, 7]));
    inputs.insert(p.var_by_name("n").unwrap(), Value::Int(3));
    let out = run(p, &inputs, &env, 100_000).unwrap();
    let m = out[&p.var_by_name("m").unwrap()].as_int().unwrap();
    assert_eq!(m, 2);
    assert_eq!(
        out[&p.var_by_name("A").unwrap()].arr_prefix(m).unwrap(),
        vec![5, 7]
    );
    assert_eq!(
        out[&p.var_by_name("N").unwrap()].arr_prefix(m).unwrap(),
        vec![2, 1]
    );
}

#[test]
fn lzw_forward_round_trips_by_hand() {
    let b = benchmark(BenchmarkId::Lzw);
    let session = b.session();
    let env = b.extern_env();
    let p = &session.original;
    let mut inputs = pins_ir::Store::new();
    inputs.insert(
        p.var_by_name("A").unwrap(),
        Value::arr_from(&[1, 0, 1, 0, 1, 0]),
    );
    inputs.insert(p.var_by_name("n").unwrap(), Value::Int(6));
    let out = run(p, &inputs, &env, 100_000).unwrap();
    let k = out[&p.var_by_name("k").unwrap()].as_int().unwrap();
    let codes = out[&p.var_by_name("B").unwrap()].arr_prefix(k).unwrap();
    let lits = out[&p.var_by_name("C").unwrap()].arr_prefix(k).unwrap();
    // decode by hand with the LZ78 rule
    let mut dict: Vec<Vec<i64>> = vec![vec![]];
    let mut decoded = Vec::new();
    for (code, lit) in codes.iter().zip(&lits) {
        let mut w = dict[*code as usize].clone();
        decoded.extend(w.iter().copied());
        decoded.push(*lit);
        w.push(*lit);
        dict.push(w);
    }
    assert_eq!(decoded, vec![1, 0, 1, 0, 1, 0]);
}

#[test]
fn lz77_forward_round_trips_by_hand() {
    let b = benchmark(BenchmarkId::Lz77);
    let session = b.session();
    let env = b.extern_env();
    let p = &session.original;
    let data = vec![1, 1, 1, 0, 1, 1, 0];
    let mut inputs = pins_ir::Store::new();
    inputs.insert(p.var_by_name("A").unwrap(), Value::arr_from(&data));
    inputs.insert(p.var_by_name("n").unwrap(), Value::Int(data.len() as i64));
    let out = run(p, &inputs, &env, 1_000_000).unwrap();
    let k = out[&p.var_by_name("k").unwrap()].as_int().unwrap();
    let offs = out[&p.var_by_name("P").unwrap()].arr_prefix(k).unwrap();
    let lens = out[&p.var_by_name("L").unwrap()].arr_prefix(k).unwrap();
    let lits = out[&p.var_by_name("C").unwrap()].arr_prefix(k).unwrap();
    // decode by hand: copy `len` symbols from `off` back, then the literal
    let mut decoded: Vec<i64> = Vec::new();
    for i in 0..k as usize {
        for _ in 0..lens[i] {
            let src = decoded.len() - offs[i] as usize;
            decoded.push(decoded[src]);
        }
        decoded.push(lits[i]);
    }
    assert_eq!(decoded, data);
}

#[test]
fn permute_count_forward_matches_definition() {
    let b = benchmark(BenchmarkId::PermuteCount);
    let session = b.session();
    let env = b.extern_env();
    let p = &session.original;
    let perm = vec![2, 0, 1];
    let mut inputs = pins_ir::Store::new();
    inputs.insert(p.var_by_name("p").unwrap(), Value::arr_from(&perm));
    inputs.insert(p.var_by_name("n").unwrap(), Value::Int(3));
    let out = run(p, &inputs, &env, 100_000).unwrap();
    let c = out[&p.var_by_name("c").unwrap()].arr_prefix(3).unwrap();
    assert_eq!(c, vec![0, 0, 1]);
}

// ---- end-to-end synthesis for the fast benchmarks ----

fn synthesize_and_check(id: BenchmarkId, sizes: &[usize]) {
    let b = benchmark(id);
    let mut session = b.session();
    let config = b.recommended_config();
    let outcome = Pins::new(config)
        .run(&mut session)
        .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", b.name()));
    assert!(
        !outcome.solutions.is_empty() && outcome.solutions.len() <= 6,
        "{}: {} solutions survived",
        b.name(),
        outcome.solutions.len()
    );
    // at least one surviving solution passes concrete round trips
    let mut correct = 0;
    'sols: for sol in &outcome.solutions {
        for &size in sizes {
            for seed in 0..4 {
                match b.round_trip(&sol.inverse, seed, size) {
                    Ok(true) => {}
                    _ => continue 'sols,
                }
            }
        }
        correct += 1;
    }
    assert!(
        correct >= 1,
        "{}: no surviving solution is a concrete inverse:\n{}",
        b.name(),
        program_to_string(&outcome.solutions[0].inverse)
    );
}

#[test]
fn synthesize_sum_i() {
    synthesize_and_check(BenchmarkId::SumI, &[0, 1, 5]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis is slow without optimizations; run with --release"
)]
fn synthesize_vector_shift() {
    synthesize_and_check(BenchmarkId::VectorShift, &[0, 1, 4]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis is slow without optimizations; run with --release"
)]
fn synthesize_vector_scale() {
    synthesize_and_check(BenchmarkId::VectorScale, &[0, 2, 4]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis is slow without optimizations; run with --release"
)]
fn synthesize_vector_rotate() {
    synthesize_and_check(BenchmarkId::VectorRotate, &[0, 2, 4]);
}

#[test]
fn synthesize_lu_decomp() {
    synthesize_and_check(BenchmarkId::LuDecomp, &[1]);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis is slow without optimizations; run with --release"
)]
fn synthesize_serialize() {
    synthesize_and_check(BenchmarkId::Serialize, &[0, 1, 4]);
}

#[test]
fn recommended_configs_have_budgets_for_heavy_benchmarks() {
    for id in [BenchmarkId::Lz77, BenchmarkId::Lzw, BenchmarkId::InPlaceRl] {
        let c = benchmark(id).recommended_config();
        assert!(c.time_budget.is_some());
    }
    let _ = PinsConfig::default();
}
