//! Executable host semantics for the benchmarks' extern functions — the
//! concrete counterpart of the axioms used during synthesis.

use pins_ir::{ExternEnv, InterpError, Value};

use crate::BenchmarkId;

fn int_arg(args: &[Value], i: usize) -> Result<i64, InterpError> {
    args.get(i)
        .ok_or_else(|| InterpError::TypeError("missing argument".into()))?
        .as_int()
}

fn seq_arg(args: &[Value], i: usize) -> Result<Vec<Value>, InterpError> {
    match args.get(i) {
        Some(Value::Seq(items)) => Ok(items.clone()),
        other => Err(InterpError::TypeError(format!(
            "expected seq, got {other:?}"
        ))),
    }
}

fn register_radix(env: &mut ExternEnv) {
    env.register("hi", |args| {
        Ok(Value::Int(int_arg(args, 0)?.div_euclid(16)))
    });
    env.register("lo", |args| {
        Ok(Value::Int(int_arg(args, 0)?.rem_euclid(16)))
    });
    env.register("combine", |args| {
        Ok(Value::Int(16 * int_arg(args, 0)? + int_arg(args, 1)?))
    });
}

fn register_muldiv(env: &mut ExternEnv) {
    env.register("mul", |args| {
        Ok(Value::Int(
            int_arg(args, 0)?.wrapping_mul(int_arg(args, 1)?),
        ))
    });
    env.register("div", |args| {
        let (x, y) = (int_arg(args, 0)?, int_arg(args, 1)?);
        if y == 0 {
            return Err(InterpError::TypeError("division by zero".into()));
        }
        Ok(Value::Int(x / y))
    });
}

/// Quarter-turn trigonometry: angles are 0..=3, cos/sin are exact integers.
fn cos_sin(t: i64) -> (i64, i64) {
    match t.rem_euclid(4) {
        0 => (1, 0),
        1 => (0, 1),
        2 => (-1, 0),
        _ => (0, -1),
    }
}

fn register_rotation(env: &mut ExternEnv) {
    env.register("rotx", |args| {
        let (x, y, t) = (int_arg(args, 0)?, int_arg(args, 1)?, int_arg(args, 2)?);
        let (c, s) = cos_sin(t);
        Ok(Value::Int(x * c - y * s))
    });
    env.register("roty", |args| {
        let (x, y, t) = (int_arg(args, 0)?, int_arg(args, 1)?, int_arg(args, 2)?);
        let (c, s) = cos_sin(t);
        Ok(Value::Int(x * s + y * c))
    });
    env.register("urotx", |args| {
        let (x, y, t) = (int_arg(args, 0)?, int_arg(args, 1)?, int_arg(args, 2)?);
        let (c, s) = cos_sin(t);
        Ok(Value::Int(x * c + y * s))
    });
    env.register("uroty", |args| {
        let (x, y, t) = (int_arg(args, 0)?, int_arg(args, 1)?, int_arg(args, 2)?);
        let (c, s) = cos_sin(t);
        Ok(Value::Int(y * c - x * s))
    });
}

/// Strings are `Value::Seq` of ints; dictionaries are sequences of strings
/// where a string's code is its index (entry 0 is the empty string).
fn register_lzw(env: &mut ExternEnv) {
    env.register("empty", |_| Ok(Value::Seq(Vec::new())));
    env.register("appendc", |args| {
        let mut s = seq_arg(args, 0)?;
        s.push(Value::Int(int_arg(args, 1)?));
        Ok(Value::Seq(s))
    });
    env.register("strlen", |args| {
        Ok(Value::Int(seq_arg(args, 0)?.len() as i64))
    });
    env.register("charat", |args| {
        let s = seq_arg(args, 0)?;
        let i = int_arg(args, 1)?;
        s.get(i as usize)
            .cloned()
            .ok_or_else(|| InterpError::TypeError(format!("charat out of range: {i}")))
    });
    env.register("dinit", |_| Ok(Value::Seq(vec![Value::Seq(Vec::new())])));
    env.register("dhas", |args| {
        let d = seq_arg(args, 0)?;
        let s = args[1].clone();
        Ok(Value::Bool(d.contains(&s)))
    });
    env.register("dcode", |args| {
        let d = seq_arg(args, 0)?;
        let s = args[1].clone();
        d.iter()
            .position(|e| *e == s)
            .map(|i| Value::Int(i as i64))
            .ok_or_else(|| InterpError::TypeError("dcode of unknown string".into()))
    });
    env.register("dadd", |args| {
        let mut d = seq_arg(args, 0)?;
        d.push(args[1].clone());
        Ok(Value::Seq(d))
    });
    env.register("dget", |args| {
        let d = seq_arg(args, 0)?;
        let i = int_arg(args, 1)?;
        d.get(i as usize)
            .cloned()
            .ok_or_else(|| InterpError::TypeError(format!("dget out of range: {i}")))
    });
}

/// Objects are `Value::Seq` of field values.
fn register_obj(env: &mut ExternEnv) {
    env.register("obj0", |_| Ok(Value::Seq(Vec::new())));
    env.register("addf", |args| {
        let mut o = seq_arg(args, 0)?;
        o.push(Value::Int(int_arg(args, 1)?));
        Ok(Value::Seq(o))
    });
    env.register("nf", |args| Ok(Value::Int(seq_arg(args, 0)?.len() as i64)));
    env.register("fv", |args| {
        let o = seq_arg(args, 0)?;
        let i = int_arg(args, 1)?;
        o.get(i as usize)
            .cloned()
            .ok_or_else(|| InterpError::TypeError(format!("fv out of range: {i}")))
    });
}

/// Builds the extern environment for a benchmark.
pub(crate) fn env_for(id: BenchmarkId) -> ExternEnv {
    let mut env = ExternEnv::new();
    match id {
        BenchmarkId::Lzw => register_lzw(&mut env),
        BenchmarkId::Base64 | BenchmarkId::UuEncode => register_radix(&mut env),
        BenchmarkId::Serialize => register_obj(&mut env),
        BenchmarkId::VectorScale | BenchmarkId::LuDecomp => register_muldiv(&mut env),
        BenchmarkId::VectorRotate => register_rotation(&mut env),
        _ => {}
    }
    env
}

/// Calls a host extern directly (used by concrete spec checking).
pub(crate) fn host_call(env: &ExternEnv, f: &str, args: &[Value]) -> Option<Value> {
    env.try_call(f, args).ok()
}
