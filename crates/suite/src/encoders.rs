//! The format-conversion benchmarks: Base64, UUEncode, packet wrapper, and
//! the object serializer.

use std::time::Duration;

use pins_core::{AxiomDef, PinsConfig};
use pins_ir::{ExternDecl, Type};

use crate::defs::{no_axioms, RawDef, SpecSrc};

fn radix_axioms(externs: &[ExternDecl]) -> Vec<AxiomDef> {
    vec![AxiomDef::parse(
        externs,
        &[("x", Type::Int)],
        "combine(hi(x), lo(x)) = x",
    )]
}

pub(crate) fn base64() -> RawDef {
    RawDef {
        name: "Base64",
        group: "encoder",
        original: r#"
extern hi(int): int;
extern lo(int): int;
extern combine(int, int): int;
proc base64(in A: int[], in n: int, out B: int[], out j: int) {
  local i: int;
  assume(n >= 0);
  i := 0; j := 0;
  while (i < n) {
    B[j] := hi(A[i]);
    B[j + 1] := lo(A[i]);
    i, j := i + 1, j + 2;
  }
}
"#,
        template: r#"
extern hi(int): int;
extern lo(int): int;
extern combine(int, int): int;
proc base64_inv(in B: int[], in j: int, out AI: int[], out iI: int) {
  local jI: int;
  iI, jI := ?e1, ?e2;
  while (?p1) {
    AI := ?e3;
    iI, jI := ?e4, ?e5;
  }
}
"#,
        delta_e: &[
            "0",
            "1",
            "iI + 1",
            "iI - 1",
            "jI + 1",
            "jI + 2",
            "jI - 2",
            "j",
            "upd(AI, iI, combine(B[jI], B[jI + 1]))",
            "upd(AI, iI, combine(B[jI + 1], B[jI]))",
            "upd(AI, jI, combine(B[jI], B[jI + 1]))",
            "upd(AI, iI, B[jI])",
        ],
        delta_p: &["jI < j", "iI < j", "0 <= jI"],
        spec: &[SpecSrc::IntEq("n", "iI"), SpecSrc::ArrayEq("A", "AI", "n")],
        axioms: radix_axioms,
        rename: &[("i", "iI"), ("j", "jI"), ("A", "AI")],
        keep: &["B", "j"],
        has_axioms: true,
        tune: |c: &mut PinsConfig| {
            c.max_iterations = 48;
            c.explore.max_unroll = 4;
            c.explore.max_steps = 30_000;
            c.time_budget = Some(Duration::from_secs(1800));
        },
    }
}

pub(crate) fn uuencode() -> RawDef {
    RawDef {
        name: "UUEncode",
        group: "encoder",
        original: r#"
extern hi(int): int;
extern lo(int): int;
extern combine(int, int): int;
proc uuencode(in A: int[], in n: int, out B: int[], out j: int) {
  local i: int;
  assume(n >= 0);
  B[0] := n;
  i := 0; j := 1;
  while (i < n) {
    B[j] := hi(A[i]);
    B[j + 1] := lo(A[i]);
    i, j := i + 1, j + 2;
  }
  B[j] := 96;
  j := j + 1;
}
"#,
        template: r#"
extern hi(int): int;
extern lo(int): int;
extern combine(int, int): int;
proc uuencode_inv(in B: int[], out AI: int[], out iI: int) {
  local nI: int, jI: int;
  nI := ?e1;
  iI, jI := ?e2, ?e3;
  while (?p1) {
    AI := ?e4;
    iI, jI := ?e5, ?e6;
  }
}
"#,
        delta_e: &[
            "B[0]",
            "0",
            "1",
            "2",
            "iI + 1",
            "jI + 2",
            "jI + 1",
            "nI",
            "upd(AI, iI, combine(B[jI], B[jI + 1]))",
            "upd(AI, iI, combine(B[jI + 1], B[jI]))",
            "upd(AI, jI, B[iI])",
        ],
        delta_p: &["iI < nI", "jI < nI", "iI < jI"],
        spec: &[SpecSrc::IntEq("n", "iI"), SpecSrc::ArrayEq("A", "AI", "n")],
        axioms: radix_axioms,
        rename: &[("i", "iI"), ("j", "jI"), ("n", "nI"), ("A", "AI")],
        keep: &["B"],
        has_axioms: true,
        tune: |c: &mut PinsConfig| {
            c.max_iterations = 48;
            c.explore.max_unroll = 4;
            c.explore.max_steps = 30_000;
            c.time_budget = Some(Duration::from_secs(1800));
        },
    }
}

pub(crate) fn pkt_wrapper() -> RawDef {
    RawDef {
        name: "Pkt wrapper",
        group: "encoder",
        original: r#"
proc pktwrap(in L: int[], in D: int[], in f: int, out P: int[], out k: int, out d: int) {
  local t: int, s: int;
  assume(f >= 0);
  t := 0; k := 0; d := 0;
  while (t < f) {
    P[k] := L[t];
    k := k + 1;
    s := 0;
    while (s < L[t]) {
      P[k] := D[d];
      k, d, s := k + 1, d + 1, s + 1;
    }
    t := t + 1;
  }
}
"#,
        template: r#"
proc pktwrap_inv(in P: int[], in k: int, in f: int, out LI: int[], out DI: int[], out tI: int, out dI: int) {
  local kI: int, sI: int;
  tI, kI, dI := ?e1, ?e2, ?e3;
  while (?p1) {
    LI := ?e4;
    kI := ?e5;
    sI := ?e6;
    while (?p2) {
      DI := ?e7;
      kI, dI, sI := ?e8, ?e9, ?e10;
    }
    tI := ?e11;
  }
}
"#,
        delta_e: &[
            "0",
            "1",
            "tI + 1",
            "kI + 1",
            "sI + 1",
            "dI + 1",
            "P[kI]",
            "LI[tI]",
            "upd(LI, tI, P[kI])",
            "upd(DI, dI, P[kI])",
            "upd(LI, kI, P[tI])",
            "upd(DI, sI, P[kI])",
        ],
        delta_p: &["tI < f", "sI < LI[tI]", "kI < k", "sI < P[kI]"],
        spec: &[
            SpecSrc::IntEq("f", "tI"),
            SpecSrc::ArrayEq("L", "LI", "f"),
            SpecSrc::IntEqFinal("d", "dI"),
            SpecSrc::ArrayEqFinalLen("D", "DI", "d"),
        ],
        axioms: no_axioms,
        rename: &[
            ("t", "tI"),
            ("k", "kI"),
            ("s", "sI"),
            ("d", "dI"),
            ("L", "LI"),
            ("D", "DI"),
        ],
        keep: &["P", "k", "f"],
        has_axioms: false,
        tune: |c: &mut PinsConfig| {
            c.max_iterations = 48;
            c.explore.max_unroll = 4;
            c.explore.max_steps = 30_000;
            c.time_budget = Some(Duration::from_secs(1800));
        },
    }
}

fn serialize_axioms(externs: &[ExternDecl]) -> Vec<AxiomDef> {
    let obj = Type::Abstract("Obj".into());
    vec![
        AxiomDef::parse(externs, &[], "nf(obj0()) = 0"),
        AxiomDef::parse(
            externs,
            &[("o", obj.clone()), ("v", Type::Int)],
            "nf(addf(o, v)) = nf(o) + 1",
        ),
        AxiomDef::parse(
            externs,
            &[("o", obj.clone()), ("v", Type::Int)],
            "fv(addf(o, v), nf(o)) = v",
        ),
        AxiomDef::parse(
            externs,
            &[("o", obj.clone()), ("v", Type::Int), ("i", Type::Int)],
            "!(0 <= i && i < nf(o)) || fv(addf(o, v), i) = fv(o, i)",
        ),
        AxiomDef::parse(externs, &[("o", obj)], "nf(o) >= 0"),
    ]
}

pub(crate) fn serialize() -> RawDef {
    RawDef {
        name: "Serialize",
        group: "encoder",
        original: r#"
extern nf(Obj): int;
extern fv(Obj, int): int;
extern obj0(): Obj;
extern addf(Obj, int): Obj;
proc serialize(in o: Obj, out S: int[], out m: int) {
  local i: int, n: int;
  n := nf(o);
  i := 0; m := 0;
  while (i < n) {
    S[m] := fv(o, i);
    i, m := i + 1, m + 1;
  }
}
"#,
        template: r#"
extern nf(Obj): int;
extern fv(Obj, int): int;
extern obj0(): Obj;
extern addf(Obj, int): Obj;
proc serialize_inv(in S: int[], in m: int, out oI: Obj) {
  local kI: int;
  oI := ?e1;
  kI := ?e2;
  while (?p1) {
    oI := ?e3;
    kI := ?e4;
  }
}
"#,
        delta_e: &[
            "0",
            "1",
            "kI + 1",
            "kI - 1",
            "m",
            "obj0()",
            "addf(oI, S[kI])",
            "oI",
        ],
        delta_p: &["kI < m", "0 <= kI"],
        spec: &[SpecSrc::ObsEq("o", "oI", "nf", "fv")],
        axioms: serialize_axioms,
        rename: &[("i", "kI"), ("m", "kI"), ("o", "oI")],
        keep: &["S", "m"],
        has_axioms: true,
        tune: |c: &mut PinsConfig| {
            c.max_iterations = 40;
            c.explore.max_unroll = 4;
            c.explore.max_steps = 30_000;
            c.time_budget = Some(Duration::from_secs(1800));
        },
    }
}
