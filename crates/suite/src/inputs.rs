//! Random workload generation for the benchmarks' original programs.

use pins_prng::SplitMix64;

use pins_ir::{Store, Value};

use crate::{benchmark, BenchmarkId};

fn set(store: &mut Store, program: &pins_ir::Program, name: &str, value: Value) {
    let v = program
        .var_by_name(name)
        .unwrap_or_else(|| panic!("input generator names unknown variable {name}"));
    store.insert(v, value);
}

/// Generates a concrete input store for benchmark `id` of roughly the given
/// size, deterministically from `seed`.
pub(crate) fn gen(id: BenchmarkId, seed: u64, size: usize) -> Store {
    let mut rng = SplitMix64::new(seed);
    let program = benchmark(id).session().original;
    let mut store = Store::new();
    let n = size as i64;
    match id {
        BenchmarkId::InPlaceRl | BenchmarkId::RunLength => {
            // small alphabet so runs form
            let data: Vec<i64> = (0..n).map(|_| rng.gen_range(0..3)).collect();
            set(&mut store, &program, "A", Value::arr_from(&data));
            set(&mut store, &program, "n", Value::Int(n));
        }
        BenchmarkId::Lz77 => {
            let data: Vec<i64> = (0..n).map(|_| rng.gen_range(0..2)).collect();
            set(&mut store, &program, "A", Value::arr_from(&data));
            set(&mut store, &program, "n", Value::Int(n));
        }
        BenchmarkId::Lzw => {
            let n = n.max(1);
            let data: Vec<i64> = (0..n).map(|_| rng.gen_range(0..2)).collect();
            set(&mut store, &program, "A", Value::arr_from(&data));
            set(&mut store, &program, "n", Value::Int(n));
        }
        BenchmarkId::Base64 | BenchmarkId::UuEncode => {
            let data: Vec<i64> = (0..n).map(|_| rng.gen_range(0..256)).collect();
            set(&mut store, &program, "A", Value::arr_from(&data));
            set(&mut store, &program, "n", Value::Int(n));
        }
        BenchmarkId::PktWrapper => {
            let f = (size as i64).min(4);
            let lens: Vec<i64> = (0..f).map(|_| rng.gen_range(0..3)).collect();
            let total: i64 = lens.iter().sum();
            let data: Vec<i64> = (0..total).map(|_| rng.gen_range(0..100)).collect();
            set(&mut store, &program, "L", Value::arr_from(&lens));
            set(&mut store, &program, "D", Value::arr_from(&data));
            set(&mut store, &program, "f", Value::Int(f));
        }
        BenchmarkId::Serialize => {
            let fields: Vec<Value> = (0..n).map(|_| Value::Int(rng.gen_range(0..100))).collect();
            set(&mut store, &program, "o", Value::Seq(fields));
        }
        BenchmarkId::SumI => {
            set(&mut store, &program, "n", Value::Int(n));
        }
        BenchmarkId::VectorShift => {
            let xs: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
            let ys: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
            set(&mut store, &program, "X", Value::arr_from(&xs));
            set(&mut store, &program, "Y", Value::arr_from(&ys));
            set(&mut store, &program, "n", Value::Int(n));
            set(
                &mut store,
                &program,
                "dx",
                Value::Int(rng.gen_range(-10..10)),
            );
            set(
                &mut store,
                &program,
                "dy",
                Value::Int(rng.gen_range(-10..10)),
            );
        }
        BenchmarkId::VectorScale => {
            let xs: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
            set(&mut store, &program, "X", Value::arr_from(&xs));
            set(&mut store, &program, "n", Value::Int(n));
            // the concrete mul/div host works over integers, so only the
            // exactly-invertible factors are generated
            let f = if rng.gen_bool(0.5) { 1 } else { -1 };
            set(&mut store, &program, "f", Value::Int(f));
        }
        BenchmarkId::VectorRotate => {
            let xs: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
            let ys: Vec<i64> = (0..n).map(|_| rng.gen_range(-50..50)).collect();
            set(&mut store, &program, "X", Value::arr_from(&xs));
            set(&mut store, &program, "Y", Value::arr_from(&ys));
            set(&mut store, &program, "n", Value::Int(n));
            set(&mut store, &program, "t", Value::Int(rng.gen_range(0..4)));
        }
        BenchmarkId::PermuteCount => {
            let mut perm: Vec<i64> = (0..n).collect();
            for i in (1..perm.len()).rev() {
                let j = rng.gen_index(i + 1);
                perm.swap(i, j);
            }
            set(&mut store, &program, "p", Value::arr_from(&perm));
            set(&mut store, &program, "n", Value::Int(n));
        }
        BenchmarkId::LuDecomp => {
            let a = *[1, 2, -1, 3]
                .iter()
                .filter(|&&v| v != 0)
                .nth(rng.gen_index(4))
                .unwrap();
            let l = rng.gen_range(-5..5);
            set(&mut store, &program, "a", Value::Int(a));
            set(
                &mut store,
                &program,
                "b",
                Value::Int(rng.gen_range(-10..10)),
            );
            set(&mut store, &program, "c", Value::Int(l * a));
            set(
                &mut store,
                &program,
                "d",
                Value::Int(rng.gen_range(-10..10)),
            );
        }
    }
    store
}
