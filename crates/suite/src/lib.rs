//! The 14 inversion benchmarks of the paper's evaluation (Section 4):
//! compressors (in-place run-length, run-length, LZ77, LZW-style dictionary
//! coding), format encoders (Base64, UUEncode, packet wrapper, serializer)
//! and arithmetic programs (Σi, vector shift/scale/rotate, permutation
//! counting, LU decomposition).
//!
//! Each [`Benchmark`] carries the original program, the inverse template,
//! the curated candidate sets Δe/Δp, the identity specification, the library
//! axioms, the mining rename map (for Table 1's accounting), executable
//! extern semantics for concrete validation, and a workload generator.
//!
//! # Example
//!
//! ```
//! use pins_suite::{benchmark, BenchmarkId};
//!
//! let b = benchmark(BenchmarkId::SumI);
//! let session = b.session();
//! assert!(session.composed.num_eholes > 0);
//! ```

mod arith;
mod compressors;
mod defs;
mod encoders;
mod externs;
mod inputs;

use pins_core::{PinsConfig, Session, Spec, SpecItem};
use pins_ir::{
    parse_expr_in, parse_pred_in, run, ExternEnv, InterpError, Program, Stmt, Store, Value,
};
use pins_mining::{mine, MinedSets};

pub(crate) use defs::{RawDef, SpecSrc};

/// Identifies one of the 14 benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BenchmarkId {
    /// In-place run-length encoding (Figures 1 and 2 of the paper).
    InPlaceRl,
    /// Run-length encoding into separate output arrays.
    RunLength,
    /// LZ77 sliding-window compression.
    Lz77,
    /// Dictionary compression with a string ADT (LZ78-style; see DESIGN.md).
    Lzw,
    /// Binary-to-printable encoding (radix split).
    Base64,
    /// UUEncode: radix split plus header and footer.
    UuEncode,
    /// Packet wrapper: length-prefixed field flattening.
    PktWrapper,
    /// Object serializer over an abstract object ADT.
    Serialize,
    /// Σi: iterative triangular sum.
    SumI,
    /// Vector translation on the plane.
    VectorShift,
    /// Vector scaling (mul/div ADT with axioms).
    VectorScale,
    /// Vector rotation (abstract rotation with trig-derived axioms).
    VectorRotate,
    /// Dijkstra's permutation-counting program (EWD671).
    PermuteCount,
    /// LU decomposition (Doolittle, 2x2 scalar form) and its re-multiplication.
    LuDecomp,
}

/// All benchmarks in the paper's presentation order.
pub const ALL: [BenchmarkId; 14] = [
    BenchmarkId::InPlaceRl,
    BenchmarkId::RunLength,
    BenchmarkId::Lz77,
    BenchmarkId::Lzw,
    BenchmarkId::Base64,
    BenchmarkId::UuEncode,
    BenchmarkId::PktWrapper,
    BenchmarkId::Serialize,
    BenchmarkId::SumI,
    BenchmarkId::VectorShift,
    BenchmarkId::VectorScale,
    BenchmarkId::VectorRotate,
    BenchmarkId::PermuteCount,
    BenchmarkId::LuDecomp,
];

/// A fully-specified inversion benchmark.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Which benchmark this is.
    pub id: BenchmarkId,
    raw: RawDef,
}

/// Returns the benchmark definition for `id`.
pub fn benchmark(id: BenchmarkId) -> Benchmark {
    Benchmark {
        id,
        raw: defs::raw(id),
    }
}

impl Benchmark {
    /// Display name (matches the paper's Table 1 rows).
    pub fn name(&self) -> &'static str {
        self.raw.name
    }

    /// Benchmark group: `"compressor"`, `"encoder"`, or `"arithmetic"`.
    pub fn group(&self) -> &'static str {
        self.raw.group
    }

    /// Whether the benchmark relies on library axioms.
    pub fn uses_axioms(&self) -> bool {
        self.raw.has_axioms
    }

    /// Builds the synthesis session: composed program, curated candidates,
    /// spec, and axioms.
    pub fn session(&self) -> Session {
        let mut session = Session::from_sources(self.raw.original, self.raw.template);
        let composed = session.composed.clone();
        session.expr_candidates = self
            .raw
            .delta_e
            .iter()
            .map(|src| {
                parse_expr_in(&composed, src)
                    .unwrap_or_else(|e| panic!("{}: bad Δe entry {src:?}: {e}", self.raw.name))
            })
            .collect();
        session.pred_candidates = self
            .raw
            .delta_p
            .iter()
            .map(|src| {
                parse_pred_in(&composed, src)
                    .unwrap_or_else(|e| panic!("{}: bad Δp entry {src:?}: {e}", self.raw.name))
            })
            .collect();
        session.spec = build_spec(&composed, self.raw.spec);
        let externs = session.composed.externs.clone();
        session.axioms = (self.raw.axioms)(&externs);
        session
    }

    /// Convenience: builds the session by value.
    pub fn into_session(self) -> Session {
        self.session()
    }

    /// Host implementations for the benchmark's extern functions.
    pub fn extern_env(&self) -> ExternEnv {
        externs::env_for(self.id)
    }

    /// Generates a random concrete input store for the original program.
    pub fn gen_input(&self, seed: u64, size: usize) -> Store {
        inputs::gen(self.id, seed, size)
    }

    /// A PINS configuration tuned for this benchmark (budgets scale with
    /// the benchmark's difficulty, mirroring the paper's wide time range).
    pub fn recommended_config(&self) -> PinsConfig {
        let mut config = PinsConfig::default();
        (self.raw.tune)(&mut config);
        config
    }

    /// Runs template mining (§3) and returns the mined sets together with
    /// the modification count of the curated candidates (Table 1 columns).
    pub fn mined(&self) -> (MinedSets, usize) {
        let session = self.session();
        let mined = mine(
            &session.original,
            &session.composed,
            self.raw.rename,
            self.raw.keep,
        );
        let mods = mined.modifications(&session.expr_candidates, &session.pred_candidates);
        (mined, mods)
    }

    /// Lines of code of the original program and of the inverse template,
    /// using the paper's convention (guards count one line; a parallel
    /// assignment to k variables counts k lines).
    pub fn loc(&self) -> (usize, usize) {
        let session = self.session();
        (
            loc_of_stmts(&session.original.body),
            loc_of_stmts(&session.template.body),
        )
    }

    /// Checks a synthesized inverse by a concrete round trip: run the
    /// original on a generated input, feed its results to the inverse, and
    /// compare against the specification.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors (e.g. a diverging wrong inverse runs
    /// out of fuel).
    pub fn round_trip(
        &self,
        inverse: &Program,
        seed: u64,
        size: usize,
    ) -> Result<bool, InterpError> {
        let session = self.session();
        let env = self.extern_env();
        let inputs = self.gen_input(seed, size);
        let mid = run(&session.original, &inputs, &env, 1_000_000)?;
        // build the inverse's inputs from the original's final store
        let mut inv_inputs = Store::new();
        for &(v, mode) in &inverse.params {
            if matches!(mode, pins_ir::Mode::In | pins_ir::Mode::InOut) {
                let name = &inverse.var(v).name;
                if let Some(ov) = session.original.var_by_name(name) {
                    if let Some(val) = mid.get(&ov) {
                        inv_inputs.insert(v, val.clone());
                    }
                }
            }
        }
        let out = run(inverse, &inv_inputs, &env, 1_000_000)?;
        Ok(check_spec_concrete(
            &session,
            self.raw.spec,
            &inputs,
            &mid,
            inverse,
            &out,
            &env,
        ))
    }
}

fn build_spec(composed: &Program, items: &[SpecSrc]) -> Spec {
    let var = |name: &str| {
        composed
            .var_by_name(name)
            .unwrap_or_else(|| panic!("spec names unknown variable {name}"))
    };
    Spec {
        items: items
            .iter()
            .map(|s| match s {
                SpecSrc::IntEq(i, o) => SpecItem::IntEq {
                    input: var(i),
                    output: var(o),
                },
                SpecSrc::ArrayEq(i, o, n) => SpecItem::ArrayEq {
                    input: var(i),
                    output: var(o),
                    len: var(n),
                },
                SpecSrc::AbsEq(i, o) => SpecItem::AbsEq {
                    input: var(i),
                    output: var(o),
                },
                SpecSrc::IntEqFinal(l, r) => SpecItem::IntEqFinal {
                    left: var(l),
                    right: var(r),
                },
                SpecSrc::ArrayEqFinalLen(i, o, n) => SpecItem::ArrayEqFinalLen {
                    input: var(i),
                    output: var(o),
                    len: var(n),
                },
                SpecSrc::ObsEq(i, o, lf, of) => SpecItem::ObsEq {
                    input: var(i),
                    output: var(o),
                    len_fun: (*lf).to_owned(),
                    obs_fun: (*of).to_owned(),
                },
            })
            .collect(),
    }
}

fn loc_of_stmts(stmts: &[Stmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign(pairs) => pairs.len(),
            Stmt::Assume(_) | Stmt::Exit | Stmt::Skip => 1,
            Stmt::If(_, t, e) => 1 + loc_of_stmts(t) + loc_of_stmts(e),
            Stmt::While(_, _, b) => 1 + loc_of_stmts(b),
        })
        .sum()
}

/// Concretely evaluates the specification after a round trip.
fn check_spec_concrete(
    session: &Session,
    items: &[SpecSrc],
    orig_inputs: &Store,
    mid: &Store,
    inverse: &Program,
    out: &Store,
    env: &ExternEnv,
) -> bool {
    let orig = &session.original;
    let oval = |name: &str, store: &Store| -> Option<Value> {
        orig.var_by_name(name).and_then(|v| store.get(&v).cloned())
    };
    let ival = |name: &str| -> Option<Value> {
        inverse.var_by_name(name).and_then(|v| out.get(&v).cloned())
    };
    for item in items {
        let ok = match item {
            SpecSrc::IntEq(i, o) | SpecSrc::AbsEq(i, o) => oval(i, orig_inputs) == ival(o),
            SpecSrc::ArrayEq(i, o, n) => {
                let n = oval(n, orig_inputs)
                    .and_then(|v| v.as_int().ok())
                    .unwrap_or(0);
                match (oval(i, orig_inputs), ival(o)) {
                    (Some(a), Some(b)) => a.arr_prefix(n) == b.arr_prefix(n),
                    _ => false,
                }
            }
            SpecSrc::IntEqFinal(l, r) => oval(l, mid) == ival(r),
            SpecSrc::ArrayEqFinalLen(i, o, n) => {
                let n = oval(n, mid).and_then(|v| v.as_int().ok()).unwrap_or(0);
                match (oval(i, orig_inputs), ival(o)) {
                    (Some(a), Some(b)) => a.arr_prefix(n) == b.arr_prefix(n),
                    _ => false,
                }
            }
            SpecSrc::ObsEq(i, o, len_fun, obs_fun) => match (oval(i, orig_inputs), ival(o)) {
                (Some(a), Some(b)) => {
                    match (
                        externs::host_call(env, len_fun, std::slice::from_ref(&a)),
                        externs::host_call(env, len_fun, std::slice::from_ref(&b)),
                    ) {
                        (Some(Value::Int(la)), Some(Value::Int(lb))) if la == lb => {
                            (0..la).all(|j| {
                                externs::host_call(env, obs_fun, &[a.clone(), Value::Int(j)])
                                    == externs::host_call(env, obs_fun, &[b.clone(), Value::Int(j)])
                            })
                        }
                        _ => false,
                    }
                }
                _ => false,
            },
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests;
