//! Raw benchmark definitions and the dispatcher.

use pins_core::{AxiomDef, PinsConfig};
use pins_ir::ExternDecl;

use crate::BenchmarkId;

/// Specification items by variable name (resolved against the composed
/// program when a session is built).
#[derive(Debug, Clone, Copy)]
pub(crate) enum SpecSrc {
    /// `input@0 = output@final`.
    IntEq(&'static str, &'static str),
    /// `forall k in [0, len@0): input@0[k] = output@final[k]`.
    ArrayEq(&'static str, &'static str, &'static str),
    /// Equality at an uninterpreted sort.
    #[allow(dead_code)]
    AbsEq(&'static str, &'static str),
    /// Both sides read at the final version map.
    IntEqFinal(&'static str, &'static str),
    /// Array equality with the bound read at the final map.
    ArrayEqFinalLen(&'static str, &'static str, &'static str),
    /// Observational ADT equality through `len_fun`/`obs_fun` externs.
    ObsEq(&'static str, &'static str, &'static str, &'static str),
}

/// A static benchmark definition.
#[derive(Debug, Clone)]
pub(crate) struct RawDef {
    pub name: &'static str,
    pub group: &'static str,
    pub original: &'static str,
    pub template: &'static str,
    pub delta_e: &'static [&'static str],
    pub delta_p: &'static [&'static str],
    pub spec: &'static [SpecSrc],
    pub axioms: fn(&[ExternDecl]) -> Vec<AxiomDef>,
    pub rename: &'static [(&'static str, &'static str)],
    pub keep: &'static [&'static str],
    pub has_axioms: bool,
    pub tune: fn(&mut PinsConfig),
}

pub(crate) fn no_axioms(_externs: &[ExternDecl]) -> Vec<AxiomDef> {
    Vec::new()
}

pub(crate) fn raw(id: BenchmarkId) -> RawDef {
    match id {
        BenchmarkId::InPlaceRl => crate::compressors::in_place_rl(),
        BenchmarkId::RunLength => crate::compressors::run_length(),
        BenchmarkId::Lz77 => crate::compressors::lz77(),
        BenchmarkId::Lzw => crate::compressors::lzw(),
        BenchmarkId::Base64 => crate::encoders::base64(),
        BenchmarkId::UuEncode => crate::encoders::uuencode(),
        BenchmarkId::PktWrapper => crate::encoders::pkt_wrapper(),
        BenchmarkId::Serialize => crate::encoders::serialize(),
        BenchmarkId::SumI => crate::arith::sum_i(),
        BenchmarkId::VectorShift => crate::arith::vector_shift(),
        BenchmarkId::VectorScale => crate::arith::vector_scale(),
        BenchmarkId::VectorRotate => crate::arith::vector_rotate(),
        BenchmarkId::PermuteCount => crate::arith::permute_count(),
        BenchmarkId::LuDecomp => crate::arith::lu_decomp(),
    }
}
