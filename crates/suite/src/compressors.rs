//! The compressor benchmarks: in-place run-length, run-length, LZ77, and
//! the LZW-style dictionary coder.

use std::time::Duration;

use pins_core::{AxiomDef, PinsConfig};
use pins_ir::{ExternDecl, Type};

use crate::defs::{no_axioms, RawDef, SpecSrc};

pub(crate) fn in_place_rl() -> RawDef {
    RawDef {
        name: "In-place RL",
        group: "compressor",
        original: r#"
proc runlength(inout A: int[], in n: int, out N: int[], out m: int) {
  local i: int, r: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) {
    r := 1;
    while (i + 1 < n && A[i] = A[i + 1]) {
      r, i := r + 1, i + 1;
    }
    A[m] := A[i];
    N[m] := r;
    m, i := m + 1, i + 1;
  }
}
"#,
        template: r#"
proc rl_inv(in A: int[], in N: int[], in m: int, out AI: int[], out iI: int) {
  local mI: int, rI: int;
  iI, mI := ?e1, ?e2;
  while (?p1) {
    rI := ?e3;
    while (?p2) {
      rI, iI, AI := ?e4, ?e5, ?e6;
    }
    mI := ?e7;
  }
}
"#,
        delta_e: &[
            "0",
            "1",
            "mI + 1",
            "mI - 1",
            "rI + 1",
            "rI - 1",
            "iI + 1",
            "iI - 1",
            "N[mI]",
            "upd(AI, mI, A[iI])",
            "upd(AI, iI, A[mI])",
        ],
        delta_p: &["AI[iI] = AI[iI + 1]", "mI < m", "rI > 0"],
        spec: &[SpecSrc::IntEq("n", "iI"), SpecSrc::ArrayEq("A", "AI", "n")],
        axioms: no_axioms,
        rename: &[("i", "iI"), ("m", "mI"), ("r", "rI"), ("A", "AI")],
        keep: &["N", "m", "A"],
        has_axioms: false,
        tune: |c: &mut PinsConfig| {
            c.max_iterations = 48;
            c.explore.max_unroll = 3;
            c.explore.max_steps = 30_000;
            c.time_budget = Some(Duration::from_secs(1800));
        },
    }
}

pub(crate) fn run_length() -> RawDef {
    RawDef {
        name: "Run length",
        group: "compressor",
        original: r#"
proc runlength2(in A: int[], in n: int, out B: int[], out N: int[], out m: int) {
  local i: int, r: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) {
    r := 1;
    while (i + 1 < n && A[i] = A[i + 1]) {
      r, i := r + 1, i + 1;
    }
    B[m] := A[i];
    N[m] := r;
    m, i := m + 1, i + 1;
  }
}
"#,
        template: r#"
proc rl2_inv(in B: int[], in N: int[], in m: int, out AI: int[], out iI: int) {
  local mI: int, rI: int;
  iI, mI := ?e1, ?e2;
  while (?p1) {
    rI := ?e3;
    while (?p2) {
      rI, iI, AI := ?e4, ?e5, ?e6;
    }
    mI := ?e7;
  }
}
"#,
        delta_e: &[
            "0",
            "1",
            "mI + 1",
            "mI - 1",
            "rI + 1",
            "rI - 1",
            "iI + 1",
            "iI - 1",
            "N[mI]",
            "upd(AI, iI, B[mI])",
            "upd(AI, mI, B[iI])",
        ],
        delta_p: &["mI < m", "rI > 0", "iI < m"],
        spec: &[SpecSrc::IntEq("n", "iI"), SpecSrc::ArrayEq("A", "AI", "n")],
        axioms: no_axioms,
        rename: &[
            ("i", "iI"),
            ("m", "mI"),
            ("r", "rI"),
            ("A", "AI"),
            ("B", "AI"),
        ],
        keep: &["N", "m", "B"],
        has_axioms: false,
        tune: |c: &mut PinsConfig| {
            c.max_iterations = 48;
            c.explore.max_unroll = 3;
            c.explore.max_steps = 30_000;
            c.time_budget = Some(Duration::from_secs(1800));
        },
    }
}

pub(crate) fn lz77() -> RawDef {
    RawDef {
        name: "LZ77",
        group: "compressor",
        original: r#"
proc lz77(in A: int[], in n: int, out P: int[], out L: int[], out C: int[], out k: int) {
  local i: int, j: int, r: int, len: int, off: int;
  assume(n >= 0);
  i := 0; k := 0;
  while (i < n) {
    off := 0; len := 0; j := 0;
    while (j < i) {
      r := 0;
      while (i + r < n - 1 && A[j + r] = A[i + r]) {
        r := r + 1;
      }
      if (len < r) {
        len := r; off := i - j;
      }
      j := j + 1;
    }
    P[k] := off;
    L[k] := len;
    i := i + len;
    C[k] := A[i];
    i, k := i + 1, k + 1;
  }
}
"#,
        template: r#"
proc lz77_inv(in P: int[], in L: int[], in C: int[], in k: int, out AI: int[], out iI: int) {
  local kI: int, cI: int;
  iI, kI := ?e1, ?e2;
  while (?p1) {
    cI := ?e3;
    while (?p2) {
      AI, iI, cI := ?e4, ?e5, ?e6;
    }
    AI := ?e7;
    iI, kI := ?e8, ?e9;
  }
}
"#,
        delta_e: &[
            "0",
            "1",
            "kI + 1",
            "iI + 1",
            "iI - 1",
            "cI - 1",
            "cI + 1",
            "L[kI]",
            "P[kI]",
            "upd(AI, iI, AI[iI - P[kI]])",
            "upd(AI, iI, C[kI])",
            "upd(AI, iI, AI[iI + P[kI]])",
            "upd(AI, kI, C[kI])",
        ],
        delta_p: &["kI < k", "cI > 0"],
        spec: &[SpecSrc::IntEq("n", "iI"), SpecSrc::ArrayEq("A", "AI", "n")],
        axioms: no_axioms,
        rename: &[("i", "iI"), ("k", "kI"), ("r", "cI"), ("A", "AI")],
        keep: &["P", "L", "C", "k"],
        has_axioms: false,
        tune: |c: &mut PinsConfig| {
            c.max_iterations = 48;
            c.explore.max_unroll = 3;
            c.explore.max_steps = 30_000;
            c.time_budget = Some(Duration::from_secs(3600));
        },
    }
}

fn lzw_axioms(externs: &[ExternDecl]) -> Vec<AxiomDef> {
    let str_t = Type::Abstract("Str".into());
    let dict_t = Type::Abstract("Dict".into());
    vec![
        AxiomDef::parse(externs, &[], "strlen(empty()) = 0"),
        AxiomDef::parse(
            externs,
            &[("s", str_t.clone()), ("c", Type::Int)],
            "strlen(appendc(s, c)) = strlen(s) + 1",
        ),
        AxiomDef::parse(
            externs,
            &[("s", str_t.clone()), ("c", Type::Int)],
            "charat(appendc(s, c), strlen(s)) = c",
        ),
        AxiomDef::parse(
            externs,
            &[("s", str_t.clone()), ("c", Type::Int), ("i", Type::Int)],
            "!(0 <= i && i < strlen(s)) || charat(appendc(s, c), i) = charat(s, i)",
        ),
        AxiomDef::parse(
            externs,
            &[("d", dict_t), ("s", str_t.clone())],
            "dget(d, dcode(d, s)) = s",
        ),
        AxiomDef::parse(externs, &[("s", str_t)], "strlen(s) >= 0"),
    ]
}

pub(crate) fn lzw() -> RawDef {
    RawDef {
        name: "LZW",
        group: "compressor",
        original: r#"
extern empty(): Str;
extern appendc(Str, int): Str;
extern strlen(Str): int;
extern charat(Str, int): int;
extern dinit(): Dict;
extern dhas(Dict, Str): bool;
extern dcode(Dict, Str): int;
extern dadd(Dict, Str): Dict;
extern dget(Dict, int): Str;
proc lzw(in A: int[], in n: int, out B: int[], out C: int[], out k: int) {
  local d: Dict, w: Str, i: int;
  assume(n >= 1);
  d := dinit(); i := 0; k := 0;
  while (i < n) {
    w := empty();
    while (i < n - 1 && dhas(d, appendc(w, A[i]))) {
      w := appendc(w, A[i]);
      i := i + 1;
    }
    B[k] := dcode(d, w);
    C[k] := A[i];
    d := dadd(d, appendc(w, A[i]));
    i, k := i + 1, k + 1;
  }
}
"#,
        template: r#"
extern empty(): Str;
extern appendc(Str, int): Str;
extern strlen(Str): int;
extern charat(Str, int): int;
extern dinit(): Dict;
extern dhas(Dict, Str): bool;
extern dcode(Dict, Str): int;
extern dadd(Dict, Str): Dict;
extern dget(Dict, int): Str;
proc lzw_inv(in B: int[], in C: int[], in k: int, out AI: int[], out iI: int) {
  local dI: Dict, wI: Str, kI: int, tI: int;
  dI := dinit();
  iI, kI := ?e1, ?e2;
  while (?p1) {
    wI := ?e3;
    tI := ?e4;
    while (?p2) {
      AI, iI, tI := ?e5, ?e6, ?e7;
    }
    AI := ?e8;
    dI := ?e9;
    iI, kI := ?e10, ?e11;
  }
}
"#,
        delta_e: &[
            "0",
            "1",
            "kI + 1",
            "iI + 1",
            "tI + 1",
            "tI - 1",
            "dget(dI, B[kI])",
            "dget(dI, C[kI])",
            "empty()",
            "appendc(wI, C[kI])",
            "dadd(dI, appendc(wI, C[kI]))",
            "dadd(dI, wI)",
            "dI",
            "upd(AI, iI, charat(wI, tI))",
            "upd(AI, iI, C[kI])",
            "upd(AI, tI, charat(wI, iI))",
        ],
        delta_p: &["kI < k", "tI < strlen(wI)", "iI < k"],
        spec: &[SpecSrc::IntEq("n", "iI"), SpecSrc::ArrayEq("A", "AI", "n")],
        axioms: lzw_axioms,
        rename: &[
            ("i", "iI"),
            ("k", "kI"),
            ("w", "wI"),
            ("d", "dI"),
            ("A", "AI"),
        ],
        keep: &["B", "C", "k"],
        has_axioms: true,
        tune: |c: &mut PinsConfig| {
            c.max_iterations = 48;
            c.explore.max_unroll = 3;
            c.explore.max_steps = 30_000;
            c.time_budget = Some(Duration::from_secs(3600));
        },
    }
}
