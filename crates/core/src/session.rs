//! Synthesis sessions: the composed program `P ; T`, the identity
//! specification, the candidate sets, and the library axioms.

use pins_ir::{
    parse_pred_in, parse_program, CmpOp, Expr, ExternDecl, LoopId, PHoleId, Pred, Program, Stmt,
    Type, VarId,
};
use pins_logic::{Sort, TermArena, TermId};
use pins_symexec::{sort_of, SymCtx, VersionMap};

/// One item of the inversion specification: an input of `P` must be
/// reproduced by an output of the inverse template `T`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecItem {
    /// Integer equality: `input@0 = output@V'`.
    IntEq {
        /// The original input.
        input: VarId,
        /// The reconstructing output.
        output: VarId,
    },
    /// Element-wise array equality on `[0, len@0)`:
    /// `forall k. 0 <= k < len@0 => input@0[k] = output@V'[k]`.
    ArrayEq {
        /// The original input array.
        input: VarId,
        /// The reconstructing output array.
        output: VarId,
        /// The input holding the relevant length.
        len: VarId,
    },
    /// Equality at an uninterpreted sort: `input@0 = output@V'`.
    AbsEq {
        /// The original input.
        input: VarId,
        /// The reconstructing output.
        output: VarId,
    },
    /// Equality of two variables both read at the end of execution (used
    /// when the original program computes a length the template must match,
    /// e.g. the flattened-data cursor of the packet wrapper; sound when the
    /// template never writes the left variable).
    IntEqFinal {
        /// A variable of the original program, read at the final map.
        left: VarId,
        /// The template output, read at the final map.
        right: VarId,
    },
    /// Element-wise array equality on `[0, len@V')` where the bound is read
    /// at the *final* version map.
    ArrayEqFinalLen {
        /// The original input array (read at version 0).
        input: VarId,
        /// The reconstructing output array (read at the final map).
        output: VarId,
        /// The variable holding the relevant length, read at the final map.
        len: VarId,
    },
    /// Observational equality of abstract values: the reconstructed object
    /// need not be the same term, but all observations must agree:
    /// `len_fun(in@0) = len_fun(out@V')` and
    /// `forall j. 0 <= j < len_fun(in@0) => obs_fun(in@0, j) = obs_fun(out@V', j)`.
    ObsEq {
        /// The original input.
        input: VarId,
        /// The reconstructing output.
        output: VarId,
        /// Unary extern returning the observation count.
        len_fun: String,
        /// Binary extern observing element `j`.
        obs_fun: String,
    },
}

/// The inversion specification (the paper's identity function requirement,
/// derived from `in(...)` of `P` and `out(...)` of `T`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Spec {
    /// The items, conjoined.
    pub items: Vec<SpecItem>,
}

impl Spec {
    /// Builds the specification formula with outputs read at `final_vmap`.
    pub fn to_term(&self, ctx: &mut SymCtx, final_vmap: &VersionMap) -> TermId {
        let mut parts = Vec::new();
        for item in &self.items {
            match item {
                SpecItem::IntEq { input, output } | SpecItem::AbsEq { input, output } => {
                    let a = ctx.var_term(*input, 0);
                    let b = ctx.var_at(*output, final_vmap);
                    parts.push(ctx.arena.mk_eq(a, b));
                }
                SpecItem::IntEqFinal { left, right } => {
                    let a = ctx.var_at(*left, final_vmap);
                    let b = ctx.var_at(*right, final_vmap);
                    parts.push(ctx.arena.mk_eq(a, b));
                }
                SpecItem::ArrayEqFinalLen { input, output, len } => {
                    let a0 = ctx.var_term(*input, 0);
                    let bv = ctx.var_at(*output, final_vmap);
                    let n = ctx.var_at(*len, final_vmap);
                    let k = ctx.arena.symbols_mut().fresh("k");
                    let bk = ctx.arena.mk_bound(k, Sort::Int);
                    let zero = ctx.arena.mk_int(0);
                    let lo = ctx.arena.mk_le(zero, bk);
                    let hi = ctx.arena.mk_lt(bk, n);
                    let range = ctx.arena.mk_and(vec![lo, hi]);
                    let sa = ctx.arena.mk_sel(a0, bk);
                    let sb = ctx.arena.mk_sel(bv, bk);
                    let eq = ctx.arena.mk_eq(sa, sb);
                    let body = ctx.arena.mk_implies(range, eq);
                    parts.push(ctx.arena.mk_forall(vec![(k, Sort::Int)], body));
                }
                SpecItem::ObsEq {
                    input,
                    output,
                    len_fun,
                    obs_fun,
                } => {
                    let a0 = ctx.var_term(*input, 0);
                    let bv = ctx.var_at(*output, final_vmap);
                    let len_sym = ctx
                        .arena
                        .symbols()
                        .get(len_fun)
                        .expect("len_fun declared as extern");
                    let obs_sym = ctx
                        .arena
                        .symbols()
                        .get(obs_fun)
                        .expect("obs_fun declared as extern");
                    let len_in = ctx.arena.mk_app(len_sym, vec![a0]);
                    let len_out = ctx.arena.mk_app(len_sym, vec![bv]);
                    parts.push(ctx.arena.mk_eq(len_in, len_out));
                    let j = ctx.arena.symbols_mut().fresh("j");
                    let bj = ctx.arena.mk_bound(j, Sort::Int);
                    let zero = ctx.arena.mk_int(0);
                    let lo = ctx.arena.mk_le(zero, bj);
                    let hi = ctx.arena.mk_lt(bj, len_in);
                    let range = ctx.arena.mk_and(vec![lo, hi]);
                    let oa = ctx.arena.mk_app(obs_sym, vec![a0, bj]);
                    let ob = ctx.arena.mk_app(obs_sym, vec![bv, bj]);
                    let eq = ctx.arena.mk_eq(oa, ob);
                    let body = ctx.arena.mk_implies(range, eq);
                    parts.push(ctx.arena.mk_forall(vec![(j, Sort::Int)], body));
                }
                SpecItem::ArrayEq { input, output, len } => {
                    let a0 = ctx.var_term(*input, 0);
                    let bv = ctx.var_at(*output, final_vmap);
                    let n0 = ctx.var_term(*len, 0);
                    let k = ctx.arena.symbols_mut().fresh("k");
                    let bk = ctx.arena.mk_bound(k, Sort::Int);
                    let zero = ctx.arena.mk_int(0);
                    let lo = ctx.arena.mk_le(zero, bk);
                    let hi = ctx.arena.mk_lt(bk, n0);
                    let range = ctx.arena.mk_and(vec![lo, hi]);
                    let sa = ctx.arena.mk_sel(a0, bk);
                    let sb = ctx.arena.mk_sel(bv, bk);
                    let eq = ctx.arena.mk_eq(sa, sb);
                    let body = ctx.arena.mk_implies(range, eq);
                    parts.push(ctx.arena.mk_forall(vec![(k, Sort::Int)], body));
                }
            }
        }
        ctx.arena.mk_and(parts)
    }
}

/// A quantified library axiom, stored as data: bound variables plus a
/// predicate over a scratch program that declares them (and the externs).
#[derive(Debug, Clone)]
pub struct AxiomDef {
    scratch: Program,
    bound: Vec<VarId>,
    body: Pred,
}

impl AxiomDef {
    /// Parses an axiom. `vars` are the universally quantified variables;
    /// `body_src` is a DSL predicate over them (externs from `externs`).
    ///
    /// # Panics
    ///
    /// Panics on parse errors — axioms are library-author input.
    pub fn parse(externs: &[ExternDecl], vars: &[(&str, Type)], body_src: &str) -> AxiomDef {
        let mut scratch = Program {
            name: "axiom".into(),
            externs: externs.to_vec(),
            ..Program::default()
        };
        let bound: Vec<VarId> = vars
            .iter()
            .map(|(name, ty)| scratch.add_local(name, ty.clone()))
            .collect();
        let body = parse_pred_in(&scratch, body_src)
            .unwrap_or_else(|e| panic!("bad axiom {body_src:?}: {e}"));
        AxiomDef {
            scratch,
            bound,
            body,
        }
    }

    /// Translates the axiom into a closed `forall` term in `arena`.
    pub fn to_term(&self, arena: &mut TermArena) -> TermId {
        for e in &self.scratch.externs {
            let args: Vec<Sort> = e.args.iter().map(|t| sort_of(arena, t)).collect();
            let ret = if e.returns_bool {
                Sort::Bool
            } else {
                sort_of(arena, &e.ret)
            };
            arena.declare_fun(&e.name, args, ret);
        }
        let binders: Vec<(pins_logic::Symbol, Sort)> = self
            .bound
            .iter()
            .map(|&v| {
                let decl = self.scratch.var(v);
                let sym = arena.sym(&decl.name);
                (sym, sort_of(arena, &decl.ty))
            })
            .collect();
        let body = ax_pred(arena, &self.scratch, &self.bound, &self.body);
        arena.mk_forall(binders, body)
    }
}

fn ax_expr(arena: &mut TermArena, p: &Program, bound: &[VarId], e: &Expr) -> TermId {
    match e {
        Expr::Int(v) => arena.mk_int(*v),
        Expr::Var(v) => {
            let decl = p.var(*v);
            let sym = arena.sym(&decl.name);
            let sort = sort_of(arena, &decl.ty);
            debug_assert!(bound.contains(v), "axiom references unbound variable");
            arena.mk_bound(sym, sort)
        }
        Expr::Add(a, b) => {
            let (ta, tb) = (ax_expr(arena, p, bound, a), ax_expr(arena, p, bound, b));
            arena.mk_add(ta, tb)
        }
        Expr::Sub(a, b) => {
            let (ta, tb) = (ax_expr(arena, p, bound, a), ax_expr(arena, p, bound, b));
            arena.mk_sub(ta, tb)
        }
        Expr::Mul(a, b) => {
            let (ta, tb) = (ax_expr(arena, p, bound, a), ax_expr(arena, p, bound, b));
            arena.mk_mul(ta, tb)
        }
        Expr::Sel(a, i) => {
            let (ta, ti) = (ax_expr(arena, p, bound, a), ax_expr(arena, p, bound, i));
            arena.mk_sel(ta, ti)
        }
        Expr::Upd(a, i, v) => {
            let ta = ax_expr(arena, p, bound, a);
            let ti = ax_expr(arena, p, bound, i);
            let tv = ax_expr(arena, p, bound, v);
            arena.mk_upd(ta, ti, tv)
        }
        Expr::Call(f, args) => {
            let targs: Vec<TermId> = args.iter().map(|a| ax_expr(arena, p, bound, a)).collect();
            let sym = arena.sym(f);
            arena.mk_app(sym, targs)
        }
        Expr::Hole(_) => panic!("axioms cannot contain holes"),
    }
}

fn ax_pred(arena: &mut TermArena, p: &Program, bound: &[VarId], pr: &Pred) -> TermId {
    match pr {
        Pred::Bool(b) => arena.mk_bool(*b),
        Pred::Cmp(op, a, b) => {
            let (ta, tb) = (ax_expr(arena, p, bound, a), ax_expr(arena, p, bound, b));
            match op {
                CmpOp::Eq => arena.mk_eq(ta, tb),
                CmpOp::Ne => arena.mk_neq(ta, tb),
                CmpOp::Lt => arena.mk_lt(ta, tb),
                CmpOp::Le => arena.mk_le(ta, tb),
                CmpOp::Gt => arena.mk_gt(ta, tb),
                CmpOp::Ge => arena.mk_ge(ta, tb),
            }
        }
        Pred::And(items) => {
            let ts: Vec<TermId> = items.iter().map(|q| ax_pred(arena, p, bound, q)).collect();
            arena.mk_and(ts)
        }
        Pred::Or(items) => {
            let ts: Vec<TermId> = items.iter().map(|q| ax_pred(arena, p, bound, q)).collect();
            arena.mk_or(ts)
        }
        Pred::Not(q) => {
            let t = ax_pred(arena, p, bound, q);
            arena.mk_not(t)
        }
        Pred::Call(f, args) => {
            let targs: Vec<TermId> = args.iter().map(|a| ax_expr(arena, p, bound, a)).collect();
            let sym = arena.sym(f);
            arena.mk_app(sym, targs)
        }
        Pred::Hole(_) | Pred::Star => panic!("axioms cannot contain holes or `*`"),
    }
}

/// A full synthesis problem: everything the engine needs.
#[derive(Debug, Clone)]
pub struct Session {
    /// The composed program `P ; T`.
    pub composed: Program,
    /// `composed.body[..split]` is the original program's body.
    pub split: usize,
    /// The original program `P` alone (used by validation and baselines).
    pub original: Program,
    /// The inverse template `T` alone, pre-composition (for reporting).
    pub template: Program,
    /// The inversion specification.
    pub spec: Spec,
    /// Candidate expressions Δe, over the composed program's variables.
    pub expr_candidates: Vec<Expr>,
    /// Candidate predicates Δp, over the composed program's variables.
    pub pred_candidates: Vec<Pred>,
    /// Library axioms.
    pub axioms: Vec<AxiomDef>,
    /// Loops of the template part, with their guard holes (termination
    /// constraints are generated for these).
    pub template_loops: Vec<(LoopId, PHoleId)>,
}

impl Session {
    /// Composes `original` with the inverse `template` and records the
    /// template's loops.
    pub fn compose(original: Program, template: Program) -> Session {
        let (composed, _map, loop_off) = original.concat(&template);
        let split = original.body.len();
        let mut template_loops = Vec::new();
        collect_template_loops(&composed.body[split..], loop_off, &mut template_loops);
        Session {
            composed,
            split,
            original,
            template,
            spec: Spec::default(),
            expr_candidates: Vec::new(),
            pred_candidates: Vec::new(),
            axioms: Vec::new(),
            template_loops,
        }
    }

    /// Parses `original_src` and `template_src` and composes them.
    ///
    /// # Panics
    ///
    /// Panics on parse errors (benchmark definitions are static inputs).
    pub fn from_sources(original_src: &str, template_src: &str) -> Session {
        let original =
            parse_program(original_src).unwrap_or_else(|e| panic!("bad original program: {e}"));
        let template =
            parse_program(template_src).unwrap_or_else(|e| panic!("bad template program: {e}"));
        Session::compose(original, template)
    }

    /// Translates all axioms into `arena`.
    pub fn axiom_terms(&self, arena: &mut TermArena) -> Vec<TermId> {
        self.axioms.iter().map(|a| a.to_term(arena)).collect()
    }

    /// The body of the inverse template inside the composed program.
    pub fn template_body(&self) -> &[Stmt] {
        &self.composed.body[self.split..]
    }
}

fn collect_template_loops(stmts: &[Stmt], _off: u32, out: &mut Vec<(LoopId, PHoleId)>) {
    for s in stmts {
        match s {
            Stmt::While(id, guard, body) => {
                if let Pred::Hole(h) = guard {
                    out.push((*id, *h));
                }
                collect_template_loops(body, _off, out);
            }
            Stmt::If(_, t, e) => {
                collect_template_loops(t, _off, out);
                collect_template_loops(e, _off, out);
            }
            _ => {}
        }
    }
}
