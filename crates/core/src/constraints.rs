//! Constraint generation: `safepath` (§2.3 "Safety constraints"),
//! `bounded`/`decrease` termination constraints, and the lazily-added
//! `init` invariant constraints.

use pins_ir::{Expr, LoopId, Pred, Stmt};
use pins_logic::{Sort, TermId};
use pins_symexec::{EmptyFiller, ExploreConfig, Explorer, PathResult, SymCtx, VersionMap};

use crate::domains::HoleDomains;
use crate::session::{Session, Spec};

/// Why a constraint exists (used in reporting and debugging).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintLabel {
    /// A path must satisfy the specification.
    SafePath,
    /// The loop guard bounds the ranking function from below.
    Bounded(LoopId),
    /// The ranking function decreases across the loop body.
    Decrease(LoopId),
    /// The dynamic invariant is maintained by the loop body.
    InvMaintain(LoopId),
    /// The dynamic invariant holds on a path prefix reaching the loop.
    InvInit(LoopId),
}

/// A universally quantified implication `forall X: (/\ hyps) => goal`,
/// with unknowns occurring as hole terms.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Hypothesis conjuncts.
    pub hyps: Vec<TermId>,
    /// Conclusion.
    pub goal: TermId,
    /// Provenance.
    pub label: ConstraintLabel,
}

/// Locates the body of loop `id` in `program`.
fn find_loop_body(stmts: &[Stmt], id: LoopId) -> Option<&Vec<Stmt>> {
    for s in stmts {
        match s {
            Stmt::While(l, _, body) => {
                if *l == id {
                    return Some(body);
                }
                if let Some(b) = find_loop_body(body, id) {
                    return Some(b);
                }
            }
            Stmt::If(_, t, e) => {
                if let Some(b) = find_loop_body(t, id).or_else(|| find_loop_body(e, id)) {
                    return Some(b);
                }
            }
            _ => {}
        }
    }
    None
}

/// Generates the `terminate(P)` constraints of §2.3 for every template
/// loop: `bounded(l)` plus, per loop-body path, `decrease(l)` and the
/// invariant-maintenance constraint. Body paths are enumerated with inner
/// loops taking only their exit branch, per the paper's heuristic.
pub fn terminate_constraints(
    session: &Session,
    domains: &HoleDomains,
    ctx: &mut SymCtx,
) -> Vec<Constraint> {
    let program = &session.composed;
    let mut out = Vec::new();
    let vmap0 = VersionMap::new();
    for (i, &(loop_id, guard_hole)) in session.template_loops.iter().enumerate() {
        let rank_hole = domains.rank_holes[i].1;
        let inv_hole = domains.inv_holes[i].1;
        let guard0 = ctx.pred_term(program, &Pred::Hole(guard_hole), &vmap0);
        let rank0 = ctx.expr_term(program, &Expr::Hole(rank_hole), &vmap0, Sort::Int);
        let inv0 = ctx.pred_term(program, &Pred::Hole(inv_hole), &vmap0);
        let zero = ctx.arena.mk_int(0);

        // bounded(l): guard => rank >= 0 (over all states)
        let bounded_goal = ctx.arena.mk_ge(rank0, zero);
        out.push(Constraint {
            hyps: vec![guard0],
            goal: bounded_goal,
            label: ConstraintLabel::Bounded(loop_id),
        });

        // body paths: all paths through the loop body, inner loops exit-only
        let body = find_loop_body(&program.body, loop_id)
            .expect("template loop body exists")
            .clone();
        let mut body_prog = program.clone();
        body_prog.body = body;
        let cfg = ExploreConfig {
            max_unroll: 0, // inner loops take the exit branch only
            check_feasibility: false,
            ..ExploreConfig::default()
        };
        let mut explorer = Explorer::new(&body_prog, cfg);
        let paths = explorer.enumerate(ctx, &EmptyFiller, 256);
        for path in paths {
            let rank_v =
                ctx.expr_term(program, &Expr::Hole(rank_hole), &path.final_vmap, Sort::Int);
            let inv_v = ctx.pred_term(program, &Pred::Hole(inv_hole), &path.final_vmap);
            let mut hyps = vec![guard0, inv0];
            hyps.extend(path.conjuncts.iter().copied());
            // decrease(l): rank strictly decreases
            let dec_goal = ctx.arena.mk_lt(rank_v, rank0);
            out.push(Constraint {
                hyps: hyps.clone(),
                goal: dec_goal,
                label: ConstraintLabel::Decrease(loop_id),
            });
            // invariant maintained across the body
            out.push(Constraint {
                hyps,
                goal: inv_v,
                label: ConstraintLabel::InvMaintain(loop_id),
            });
        }
    }
    out
}

/// Builds the `safepath(f, V', spec)` constraint for an explored path.
pub fn safepath_constraint(
    session: &Session,
    spec: &Spec,
    ctx: &mut SymCtx,
    path: &PathResult,
) -> Constraint {
    let _ = session;
    let goal = spec.to_term(ctx, &path.final_vmap);
    Constraint {
        hyps: path.conjuncts.clone(),
        goal,
        label: ConstraintLabel::SafePath,
    }
}

/// Builds the lazily-added `init` constraints for a freshly explored path:
/// each template loop reached on the path must have its dynamic invariant
/// implied by the path prefix (§2.3 "To compute body and init...").
pub fn init_constraints(
    session: &Session,
    domains: &HoleDomains,
    ctx: &mut SymCtx,
    path: &PathResult,
) -> Vec<Constraint> {
    let program = &session.composed;
    let mut out = Vec::new();
    for &(loop_id, prefix_len, ref vmap) in &path.loop_entries {
        let Some(pos) = session
            .template_loops
            .iter()
            .position(|&(l, _)| l == loop_id)
        else {
            continue; // a loop of the original program: no synthesis obligations
        };
        let inv_hole = domains.inv_holes[pos].1;
        let inv_v = ctx.pred_term(program, &Pred::Hole(inv_hole), vmap);
        out.push(Constraint {
            hyps: path.conjuncts[..prefix_len].to_vec(),
            goal: inv_v,
            label: ConstraintLabel::InvInit(loop_id),
        });
    }
    out
}
