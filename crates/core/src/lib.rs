//! The PINS synthesis engine — Algorithm 1 of the paper.
//!
//! Given a [`Session`] (the original program composed with an inverse
//! template, candidate sets Δe/Δp, an identity [`Spec`], and library
//! axioms), [`Pins::run`] iteratively:
//!
//! 1. solves the constraint system for up to `m` candidate solutions
//!    ([`HoleSolver`], an indicator-variable SAT reduction verified by SMT);
//! 2. stops when the solution set stabilizes below `m`;
//! 3. otherwise picks a solution by the `infeasible`-count heuristic
//!    (`pickOne`), symbolically executes one fresh path guided by it, and
//!    adds the path's `safepath` and invariant-`init` constraints.
//!
//! Termination constraints (`bounded`/`decrease` with ranking functions
//! derived from Δp) are generated up front for every template loop.
//!
//! # Example
//!
//! Synthesizing the inverse of a "add constant 7" program:
//!
//! ```
//! use pins_core::{Pins, PinsConfig, Session, Spec, SpecItem};
//! use pins_ir::parse_expr_in;
//!
//! let mut session = Session::from_sources(
//!     "proc add7(in x: int, out y: int) { y := x + 7; }",
//!     "proc add7_inv(in y: int, out xI: int) { xI := ?e1; }",
//! );
//! let c = session.composed.clone();
//! session.expr_candidates = vec![
//!     parse_expr_in(&c, "y + 7").unwrap(),
//!     parse_expr_in(&c, "y - 7").unwrap(),
//! ];
//! session.spec = Spec {
//!     items: vec![SpecItem::IntEq {
//!         input: c.var_by_name("x").unwrap(),
//!         output: c.var_by_name("xI").unwrap(),
//!     }],
//! };
//! let outcome = Pins::new(PinsConfig::default()).run(&mut session).unwrap();
//! assert_eq!(outcome.solutions.len(), 1);
//! ```

mod constraints;
mod domains;
mod engine;
mod session;
mod solve;

pub use constraints::{
    init_constraints, safepath_constraint, terminate_constraints, Constraint, ConstraintLabel,
};
pub use domains::{
    build_domains, derive_rank_candidates, ehole_types, expr_vars, pred_subset_candidates,
    type_of_expr, DomainConfig, HoleDomains,
};
pub use engine::{
    default_verify_workers, resolve_solution, ConcreteTest, Pins, PinsConfig, PinsError,
    PinsOutcome, PinsStats, ResolvedSolution,
};
pub use session::{AxiomDef, Session, Spec, SpecItem};
pub use solve::{HoleSolver, Solution, SolveStats};

#[cfg(test)]
mod tests;
