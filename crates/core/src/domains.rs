//! Finite hole domains built from the candidate sets Δe and Δp.
//!
//! * each expression hole ranges over the type-compatible subset of Δe;
//! * each predicate hole ranges over conjunctions of up to
//!   `pred_subset_max` predicates from Δp (the paper allows arbitrary
//!   subsets — we enumerate bounded subsets, which covers every solution
//!   the paper reports while keeping the indicator encoding small; the
//!   paper-comparable full-subset search-space size is still reported);
//! * each template loop gets a synthetic *ranking* expression hole over Δr
//!   (derived from the inequalities of Δp, §2.3) and a synthetic
//!   *invariant* predicate hole over the same bounded subsets of Δp.

use pins_ir::{CmpOp, EHoleId, Expr, LoopId, PHoleId, Pred, Program, Stmt, Type, VarId};

use crate::session::Session;

/// The finite domain of every unknown, template and synthetic alike.
#[derive(Debug, Clone, Default)]
pub struct HoleDomains {
    /// Per expression hole: candidate expressions.
    pub exprs: Vec<Vec<Expr>>,
    /// Per predicate hole: candidate predicates (bounded conjunctions).
    pub preds: Vec<Vec<Pred>>,
    /// Synthetic ranking hole per template loop: `(loop, hole)`.
    pub rank_holes: Vec<(LoopId, EHoleId)>,
    /// Synthetic invariant hole per template loop: `(loop, hole)`.
    pub inv_holes: Vec<(LoopId, PHoleId)>,
    /// log2 of the paper-comparable search-space size (expression choices
    /// times `2^|Δp|` per predicate hole).
    pub paper_search_space_log2: f64,
    /// log2 of the actual encoded search space.
    pub encoded_search_space_log2: f64,
}

/// Domain-construction options.
#[derive(Debug, Clone, Copy)]
pub struct DomainConfig {
    /// Maximum number of Δp atoms conjoined per predicate-hole candidate.
    pub pred_subset_max: usize,
    /// Include `true` (the empty conjunction) as a predicate candidate for
    /// invariant holes.
    pub include_true_invariant: bool,
}

impl Default for DomainConfig {
    fn default() -> Self {
        DomainConfig {
            pred_subset_max: 1,
            include_true_invariant: true,
        }
    }
}

/// Infers the type of a candidate expression over `program`'s variables.
pub fn type_of_expr(program: &Program, e: &Expr) -> Type {
    match e {
        Expr::Int(_) | Expr::Add(..) | Expr::Sub(..) | Expr::Mul(..) | Expr::Sel(..) => Type::Int,
        Expr::Var(v) => program.var(*v).ty.clone(),
        Expr::Upd(..) => Type::IntArray,
        Expr::Call(f, _) => program
            .extern_by_name(f)
            .map(|d| d.ret.clone())
            .unwrap_or(Type::Int),
        Expr::Hole(_) => Type::Int,
    }
}

/// The expected type of each expression hole, inferred from assignment
/// targets in the program body.
pub fn ehole_types(program: &Program) -> Vec<Type> {
    let mut types = vec![Type::Int; program.num_eholes as usize];
    fn scan(program: &Program, stmts: &[Stmt], types: &mut Vec<Type>) {
        for s in stmts {
            match s {
                Stmt::Assign(pairs) => {
                    for (v, e) in pairs {
                        if let Expr::Hole(h) = e {
                            types[h.0 as usize] = program.var(*v).ty.clone();
                        }
                    }
                }
                Stmt::If(_, t, e) => {
                    scan(program, t, types);
                    scan(program, e, types);
                }
                Stmt::While(_, _, b) => scan(program, b, types),
                _ => {}
            }
        }
    }
    scan(program, &program.body, &mut types);
    types
}

/// Derives the ranking-candidate set Δr from the inequalities of Δp
/// (paper §2.3: each inequality is converted to an `e >= 0` form).
pub fn derive_rank_candidates(preds: &[Pred]) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::new();
    for p in preds {
        let Pred::Cmp(op, a, b) = p else { continue };
        let e = match op {
            // a < b  ->  b - a - 1 >= 0
            CmpOp::Lt => Expr::Sub(
                Box::new(Expr::Sub(Box::new(b.clone()), Box::new(a.clone()))),
                Box::new(Expr::Int(1)),
            ),
            // a <= b  ->  b - a >= 0
            CmpOp::Le => Expr::Sub(Box::new(b.clone()), Box::new(a.clone())),
            // a > b  ->  a - b - 1 >= 0
            CmpOp::Gt => Expr::Sub(
                Box::new(Expr::Sub(Box::new(a.clone()), Box::new(b.clone()))),
                Box::new(Expr::Int(1)),
            ),
            // a >= b  ->  a - b >= 0
            CmpOp::Ge => Expr::Sub(Box::new(a.clone()), Box::new(b.clone())),
            CmpOp::Eq | CmpOp::Ne => continue,
        };
        if !out.contains(&e) {
            out.push(e);
        }
    }
    out
}

/// Builds bounded-conjunction predicate candidates from Δp.
pub fn pred_subset_candidates(preds: &[Pred], max_size: usize, include_true: bool) -> Vec<Pred> {
    let mut out = Vec::new();
    if include_true {
        out.push(Pred::Bool(true));
    }
    // singletons
    out.extend(preds.iter().cloned());
    if max_size >= 2 {
        for i in 0..preds.len() {
            for j in (i + 1)..preds.len() {
                out.push(Pred::And(vec![preds[i].clone(), preds[j].clone()]));
            }
        }
    }
    out
}

/// Builds the complete domain table for a session.
pub fn build_domains(session: &Session, config: DomainConfig) -> HoleDomains {
    let program = &session.composed;
    let mut domains = HoleDomains::default();

    // template expression holes, filtered by type
    let types = ehole_types(program);
    for ty in &types {
        let dom: Vec<Expr> = session
            .expr_candidates
            .iter()
            .filter(|e| &type_of_expr(program, e) == ty)
            .cloned()
            .collect();
        domains.exprs.push(dom);
    }

    // template predicate holes: bounded conjunctions, without `true`
    // (a trivially-true loop guard yields divergent programs; the paper's
    // termination constraints would reject it anyway, this just prunes)
    let guard_cands =
        pred_subset_candidates(&session.pred_candidates, config.pred_subset_max, false);
    for _ in 0..program.num_pholes {
        domains.preds.push(guard_cands.clone());
    }

    // synthetic holes for template loops
    let rank_cands = derive_rank_candidates(&session.pred_candidates);
    let inv_cands = pred_subset_candidates(
        &session.pred_candidates,
        config.pred_subset_max,
        config.include_true_invariant,
    );
    let mut next_e = program.num_eholes;
    let mut next_p = program.num_pholes;
    #[allow(clippy::explicit_counter_loop)] // next_e/next_p allocate fresh hole ids
    for &(loop_id, _) in &session.template_loops {
        let eh = EHoleId(next_e);
        next_e += 1;
        domains.exprs.push(rank_cands.clone());
        domains.rank_holes.push((loop_id, eh));
        let ph = PHoleId(next_p);
        next_p += 1;
        domains.preds.push(inv_cands.clone());
        domains.inv_holes.push((loop_id, ph));
    }

    // search-space accounting
    let mut paper = 0.0_f64;
    let mut encoded = 0.0_f64;
    for (h, dom) in domains.exprs.iter().enumerate() {
        let n = dom.len().max(1) as f64;
        encoded += n.log2();
        // synthetic rank holes are not part of the paper's reported space
        if (h as u32) < program.num_eholes {
            paper += n.log2();
        }
    }
    let full_subset_bits = session.pred_candidates.len() as f64;
    for h in 0..domains.preds.len() {
        encoded += (domains.preds[h].len().max(1) as f64).log2();
        if (h as u32) < program.num_pholes {
            paper += full_subset_bits;
        }
    }
    domains.paper_search_space_log2 = paper;
    domains.encoded_search_space_log2 = encoded;
    domains
}

/// A variable-usage helper: all variables mentioned by an expression.
pub fn expr_vars(e: &Expr, out: &mut Vec<VarId>) {
    match e {
        Expr::Int(_) | Expr::Hole(_) => {}
        Expr::Var(v) => {
            if !out.contains(v) {
                out.push(*v);
            }
        }
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Sel(a, b) => {
            expr_vars(a, out);
            expr_vars(b, out);
        }
        Expr::Upd(a, b, c) => {
            expr_vars(a, out);
            expr_vars(b, out);
            expr_vars(c, out);
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_vars(a, out);
            }
        }
    }
}
