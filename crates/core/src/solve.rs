//! The `solve` procedure (§2.3): reduces the synthesis constraints to SAT
//! over indicator variables and enumerates up to `m` verified solutions.
//!
//! Each unknown gets an exactly-one block of indicator variables over its
//! finite domain. The loop is a lazy CEGIS over indicators: a SAT model
//! proposes a full assignment; every constraint is verified by an SMT
//! validity query under that assignment (with memoization keyed on the
//! restricted assignment of the holes that actually occur in the
//! constraint); a failed constraint contributes a blocking clause over
//! exactly those holes — the generalization that makes the search converge.
//!
//! Verification goes through a persistent [`SmtSession`] owned by the
//! engine: the session carries the library axioms and the normalized-query
//! cache, so repeated validity checks across PINS iterations short-circuit.
//! With `workers >= 2` the per-constraint queries of one candidate are
//! dispatched in waves to a scoped thread pool (one forked session per
//! worker). Workers only *verify* — the blocking clause is still chosen as
//! the first failing constraint in index order, so the search trajectory
//! (and therefore the returned `Solution` set) is identical to the serial
//! run.

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use pins_budget::StopReason;

use pins_ir::{EHoleId, PHoleId};
use pins_logic::{collect_subterms, Term, TermId};
use pins_sat::{Lit, SolveResult, Solver as SatSolver, Var};
use pins_smt::SmtSession;
use pins_symexec::{apply_filler_term, HoleKind, MapFiller, SymCtx};
use pins_trace::{Counter, MetricsRegistry};

use crate::constraints::Constraint;
use crate::domains::HoleDomains;
use crate::session::Session;

/// A full assignment: per hole, the index of the chosen candidate in its
/// domain (`usize::MAX` marks an empty-domain hole, treated as unfilled).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Solution {
    /// Per expression hole.
    pub exprs: Vec<usize>,
    /// Per predicate hole.
    pub preds: Vec<usize>,
}

impl Solution {
    /// Converts to a hole filler using the domain table.
    pub fn to_filler(&self, domains: &HoleDomains) -> MapFiller {
        let mut filler = MapFiller::default();
        for (h, &choice) in self.exprs.iter().enumerate() {
            if choice != usize::MAX {
                filler
                    .exprs
                    .insert(EHoleId(h as u32), domains.exprs[h][choice].clone());
            }
        }
        for (h, &choice) in self.preds.iter().enumerate() {
            if choice != usize::MAX {
                filler
                    .preds
                    .insert(PHoleId(h as u32), domains.preds[h][choice].clone());
            }
        }
        filler
    }
}

/// The holes occurring in a constraint (determines the blocking clause).
#[derive(Debug, Clone, Default)]
pub struct ConstraintHoles {
    eholes: Vec<u32>,
    pholes: Vec<u32>,
}

/// Timing and counting statistics from `solve`.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Time in SAT solving.
    pub sat_time: Duration,
    /// Time in SMT validity checking (the paper's "SMT reduction").
    pub smt_time: Duration,
    /// Number of SMT validity queries issued (excluding local memo hits).
    pub smt_queries: u64,
    /// Number of candidate assignments proposed by SAT.
    pub candidates_proposed: u64,
    /// Final SAT formula size (vars + literal occurrences).
    pub sat_size: usize,
    /// Normalized-query cache hits attributable to `solve` (parent session
    /// and workers combined).
    pub cache_hits: u64,
    /// Normalized-query cache misses attributable to `solve`.
    pub cache_misses: u64,
    /// Number of `solve` calls that reused solver/session state built by an
    /// earlier call (incremental reuse across PINS iterations).
    pub sessions_reused: u64,
    /// Size of the verification worker pool used (1 = serial).
    pub workers: usize,
    /// SMT queries issued by each parallel worker slot.
    pub worker_queries: Vec<u64>,
    /// Verification queries that panicked and were degraded to "constraint
    /// unverified" instead of aborting the search (serial and parallel).
    pub worker_panics: u64,
    /// Candidate-enumeration SAT solves interrupted by the shared budget.
    pub sat_interrupts: u64,
    /// The budget stop that ended the most recent `solve` call early, if any.
    pub last_stop: Option<StopReason>,
}

impl SolveStats {
    /// Reconstructs the `solve`-attributable statistics from a
    /// [`MetricsRegistry`] that a [`HoleSolver`] was bound to with
    /// [`HoleSolver::bind_metrics`]. `last_stop` is not a counter and comes
    /// back `None`; everything else mirrors the live struct.
    pub fn from_registry(registry: &MetricsRegistry) -> SolveStats {
        let worker_queries: Vec<u64> = {
            // `snapshot_prefixed` strips the prefix: keys are `{slot}.queries`
            let per_slot = registry.snapshot_prefixed("solve.worker.");
            let mut v = vec![0u64; per_slot.len()];
            for (key, n) in per_slot {
                if let Some(slot) = key
                    .strip_suffix(".queries")
                    .and_then(|idx| idx.parse::<usize>().ok())
                {
                    if slot < v.len() {
                        v[slot] = n;
                    }
                }
            }
            v
        };
        SolveStats {
            sat_time: registry.duration("phase.sat"),
            smt_time: registry.duration("phase.smt_reduction"),
            smt_queries: registry.get("solve.smt_queries"),
            candidates_proposed: registry.get("solve.candidates"),
            sat_size: registry.get("solve.sat_size") as usize,
            cache_hits: registry.get("solve.cache_hits"),
            cache_misses: registry.get("solve.cache_misses"),
            sessions_reused: registry.get("solve.sessions_reused"),
            workers: registry.get("solve.workers") as usize,
            worker_queries,
            worker_panics: registry.get("solve.worker_panics"),
            sat_interrupts: registry.get("solve.sat_interrupts"),
            last_stop: None,
        }
    }
}

/// Registry handles for the counters `solve` maintains. Detached by default
/// (every operation is a plain atomic bump on a private cell); bound to
/// shared registry cells by [`HoleSolver::bind_metrics`].
#[derive(Default)]
struct SolveMetrics {
    sat_time: Counter,
    smt_time: Counter,
    smt_queries: Counter,
    candidates: Counter,
    sat_size: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    sessions_reused: Counter,
    workers: Counter,
    worker_panics: Counter,
    sat_interrupts: Counter,
    /// Kept to mint per-worker-slot counters (`solve.worker.{w}.queries`)
    /// lazily, since the pool size is only known at `solve` time.
    registry: Option<MetricsRegistry>,
}

impl SolveMetrics {
    fn bind(registry: &MetricsRegistry) -> SolveMetrics {
        SolveMetrics {
            sat_time: registry.counter("phase.sat"),
            smt_time: registry.counter("phase.smt_reduction"),
            smt_queries: registry.counter("solve.smt_queries"),
            candidates: registry.counter("solve.candidates"),
            sat_size: registry.counter("solve.sat_size"),
            cache_hits: registry.counter("solve.cache_hits"),
            cache_misses: registry.counter("solve.cache_misses"),
            sessions_reused: registry.counter("solve.sessions_reused"),
            workers: registry.counter("solve.workers"),
            worker_panics: registry.counter("solve.worker_panics"),
            sat_interrupts: registry.counter("solve.sat_interrupts"),
            registry: Some(registry.clone()),
        }
    }

    fn worker_slot(&self, w: usize) -> Counter {
        match &self.registry {
            Some(r) => r.counter(&format!("solve.worker.{w}.queries")),
            None => Counter::detached(),
        }
    }
}

/// Runs [`verify_one`] with panic isolation: a query that panics (e.g. a
/// poisoned constraint hitting an encoder `panic!`) degrades to `None`
/// ("unverified") instead of tearing down the solve. Used by BOTH the serial
/// and the parallel path so the two produce identical verdicts.
fn verify_one_isolated(
    ctx: &mut SymCtx,
    program: &pins_ir::Program,
    smt: &mut SmtSession,
    constraint: &Constraint,
    filler: &MapFiller,
) -> Option<bool> {
    catch_unwind(AssertUnwindSafe(|| {
        verify_one(ctx, program, smt, constraint, filler)
    }))
    .ok()
}

/// Verifies a single constraint under a filled-in candidate: substitutes the
/// filler into the hypotheses and goal, then asks the session for validity.
fn verify_one(
    ctx: &mut SymCtx,
    program: &pins_ir::Program,
    smt: &mut SmtSession,
    constraint: &Constraint,
    filler: &MapFiller,
) -> bool {
    let hyps: Vec<TermId> = constraint
        .hyps
        .iter()
        .map(|&h| apply_filler_term(ctx, program, h, filler))
        .collect();
    let goal = apply_filler_term(ctx, program, constraint.goal, filler);
    smt.entails(&mut ctx.arena, &hyps, goal)
}

/// A solution's choices restricted to the holes one constraint mentions:
/// `(is_expr, hole id, chosen candidate)` triples.
type RestrictedKey = Vec<(bool, u32, usize)>;

/// The incremental hole solver, persistent across PINS iterations
/// (blocking clauses learned from old constraints remain valid as the
/// constraint set grows).
pub struct HoleSolver {
    sat: SatSolver,
    evars: Vec<Vec<Var>>,
    pvars: Vec<Vec<Var>>,
    /// `(constraint index, restricted assignment) -> verified?`
    cache: HashMap<(usize, RestrictedKey), bool>,
    holes_of: Vec<ConstraintHoles>,
    /// Statistics accumulated across calls.
    pub stats: SolveStats,
    /// Registry handles mirroring `stats`; detached until
    /// [`bind_metrics`](HoleSolver::bind_metrics) is called.
    metrics: SolveMetrics,
}

impl HoleSolver {
    /// Builds the indicator encoding for the domain table.
    pub fn new(domains: &HoleDomains) -> Self {
        let mut sat = SatSolver::new();
        let mut evars = Vec::new();
        for dom in &domains.exprs {
            let vars: Vec<Var> = dom.iter().map(|_| sat.new_var()).collect();
            exactly_one(&mut sat, &vars);
            evars.push(vars);
        }
        let mut pvars = Vec::new();
        for dom in &domains.preds {
            let vars: Vec<Var> = dom.iter().map(|_| sat.new_var()).collect();
            exactly_one(&mut sat, &vars);
            pvars.push(vars);
        }
        HoleSolver {
            sat,
            evars,
            pvars,
            cache: HashMap::new(),
            holes_of: Vec::new(),
            stats: SolveStats::default(),
            metrics: SolveMetrics::default(),
        }
    }

    /// Binds the solver's counters to shared cells in `registry` (keys
    /// `phase.sat`, `phase.smt_reduction`, `solve.*`). Subsequent `solve`
    /// calls bump those cells at event time — including the per-worker query
    /// counts folded back from the parallel verification pool — so the
    /// registry and the typed [`SolveStats`] stay consistent whether
    /// verification runs serial or parallel.
    pub fn bind_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = SolveMetrics::bind(registry);
    }

    /// Registers the holes occurring in constraint `idx` (call once per new
    /// constraint, in order).
    pub fn register_constraint(&mut self, ctx: &SymCtx, idx: usize, c: &Constraint) {
        assert_eq!(
            idx,
            self.holes_of.len(),
            "constraints must register in order"
        );
        let mut eholes = HashSet::new();
        let mut pholes = HashSet::new();
        let mut subs = HashSet::new();
        for &h in c.hyps.iter().chain(std::iter::once(&c.goal)) {
            collect_subterms(&ctx.arena, h, &mut subs);
        }
        for s in &subs {
            if let Term::Hole(occ, _) = ctx.arena.term(*s) {
                match ctx.occurrence(*occ).kind {
                    HoleKind::Expr(e) => {
                        eholes.insert(e.0);
                    }
                    HoleKind::Pred(p) => {
                        pholes.insert(p.0);
                    }
                }
            }
        }
        let mut eholes: Vec<u32> = eholes.into_iter().collect();
        let mut pholes: Vec<u32> = pholes.into_iter().collect();
        eholes.sort_unstable();
        pholes.sort_unstable();
        self.holes_of.push(ConstraintHoles { eholes, pholes });
    }

    fn extract_solution(sat: &SatSolver, evars: &[Vec<Var>], pvars: &[Vec<Var>]) -> Solution {
        let pick = |vars: &Vec<Var>| -> usize {
            vars.iter()
                .position(|&v| sat.value(v) == Some(true))
                .unwrap_or(usize::MAX)
        };
        Solution {
            exprs: evars.iter().map(pick).collect(),
            preds: pvars.iter().map(pick).collect(),
        }
    }

    fn restricted_key(&self, c: usize, s: &Solution) -> RestrictedKey {
        let holes = &self.holes_of[c];
        let mut key = Vec::with_capacity(holes.eholes.len() + holes.pholes.len());
        for &h in &holes.eholes {
            key.push((true, h, s.exprs[h as usize]));
        }
        for &h in &holes.pholes {
            key.push((false, h, s.preds[h as usize]));
        }
        key
    }

    /// Verifies one constraint under a solution, with memoization (serial
    /// path).
    #[allow(clippy::too_many_arguments)]
    fn verify(
        &mut self,
        ctx: &mut SymCtx,
        session: &Session,
        constraints: &[Constraint],
        c: usize,
        solution: &Solution,
        domains: &HoleDomains,
        smt: &mut SmtSession,
    ) -> bool {
        let key = self.restricted_key(c, solution);
        if let Some(&v) = self.cache.get(&(c, key.clone())) {
            return v;
        }
        let filler = solution.to_filler(domains);
        let t0 = Instant::now();
        let valid = match verify_one_isolated(ctx, &session.composed, smt, &constraints[c], &filler)
        {
            Some(v) => v,
            None => {
                self.stats.worker_panics += 1;
                self.metrics.worker_panics.inc();
                false
            }
        };
        let dt = t0.elapsed();
        self.stats.smt_time += dt;
        self.metrics.smt_time.add_duration(dt);
        self.stats.smt_queries += 1;
        self.metrics.smt_queries.inc();
        self.cache.insert((c, key), valid);
        valid
    }

    /// Returns the index of the first constraint that fails under `s`, or
    /// `None` if all pass — the serial reference semantics that the parallel
    /// path must reproduce.
    #[allow(clippy::too_many_arguments)]
    fn first_failing(
        &mut self,
        ctx: &mut SymCtx,
        session: &Session,
        domains: &HoleDomains,
        constraints: &[Constraint],
        s: &Solution,
        smt: &mut SmtSession,
        workers: usize,
    ) -> Option<usize> {
        if workers >= 2 && constraints.len() >= 2 {
            return self.first_failing_parallel(
                ctx,
                session,
                domains,
                constraints,
                s,
                smt,
                workers,
            );
        }
        (0..constraints.len())
            .find(|&c| !self.verify(ctx, session, constraints, c, s, domains, smt))
    }

    /// Parallel verification: constraint indices are dispatched in waves of
    /// `workers * 2`; within a wave, uncached indices are split round-robin
    /// across scoped worker threads, each with its own cloned translation
    /// context and a forked session sharing the parent's query cache.
    ///
    /// Determinism: waves are processed in index order and the first wave
    /// containing a failure yields its *minimum* failing index, which is
    /// exactly the serial first-failure. Worker verdicts equal serial
    /// verdicts (verification is pure given constraint + filler), so the
    /// memo table converges to the same contents in either mode.
    #[allow(clippy::too_many_arguments)]
    fn first_failing_parallel(
        &mut self,
        ctx: &mut SymCtx,
        session: &Session,
        domains: &HoleDomains,
        constraints: &[Constraint],
        s: &Solution,
        smt: &mut SmtSession,
        workers: usize,
    ) -> Option<usize> {
        let n = constraints.len();
        let filler = s.to_filler(domains);
        let program = &session.composed;
        if self.stats.worker_queries.len() < workers {
            self.stats.worker_queries.resize(workers, 0);
        }
        let wave_size = workers * 2;
        let mut start = 0;
        while start < n {
            let end = n.min(start + wave_size);
            let wave: Vec<usize> = (start..end).collect();
            start = end;

            let mut results: HashMap<usize, bool> = HashMap::new();
            let mut keys: HashMap<usize, Vec<(bool, u32, usize)>> = HashMap::new();
            let mut pending: Vec<usize> = Vec::new();
            for &c in &wave {
                let key = self.restricted_key(c, s);
                if let Some(&v) = self.cache.get(&(c, key.clone())) {
                    results.insert(c, v);
                } else {
                    pending.push(c);
                }
                keys.insert(c, key);
            }

            if !pending.is_empty() {
                let t0 = Instant::now();
                let chunks: Vec<Vec<usize>> = (0..workers)
                    .map(|w| pending.iter().copied().skip(w).step_by(workers).collect())
                    .collect();
                type WorkerOutcome = (Vec<(usize, bool)>, u64, pins_smt::SessionStats);
                let outcomes: Vec<Result<WorkerOutcome, ()>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .iter()
                        .map(|chunk| {
                            let chunk = chunk.clone();
                            let mut wctx = ctx.clone();
                            let mut wsmt = smt.fork();
                            let filler = &filler;
                            scope.spawn(move || {
                                // per-query panic isolation, mirroring the
                                // serial path: a poisoned query counts as
                                // unverified and the worker moves on
                                let mut panics = 0u64;
                                let out: Vec<(usize, bool)> = chunk
                                    .into_iter()
                                    .map(|c| {
                                        let ok = verify_one_isolated(
                                            &mut wctx,
                                            program,
                                            &mut wsmt,
                                            &constraints[c],
                                            filler,
                                        )
                                        .unwrap_or_else(|| {
                                            panics += 1;
                                            false
                                        });
                                        (c, ok)
                                    })
                                    .collect();
                                (out, panics, wsmt.stats)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().map_err(|_| ()))
                        .collect()
                });
                let dt = t0.elapsed();
                self.stats.smt_time += dt;
                self.metrics.smt_time.add_duration(dt);
                for (w, outcome) in outcomes.into_iter().enumerate() {
                    match outcome {
                        Ok((pairs, panics, wstats)) => {
                            self.stats.smt_queries += wstats.queries;
                            self.metrics.smt_queries.add(wstats.queries);
                            self.stats.worker_queries[w] += wstats.queries;
                            self.metrics.worker_slot(w).add(wstats.queries);
                            self.stats.worker_panics += panics;
                            self.metrics.worker_panics.add(panics);
                            // fold worker traffic into the parent session so
                            // its counters stay the single source of truth
                            smt.stats.absorb(&wstats);
                            for (c, ok) in pairs {
                                results.insert(c, ok);
                            }
                        }
                        Err(()) => {
                            // the whole worker died (a panic that escaped
                            // catch_unwind, e.g. a double panic): degrade its
                            // entire chunk to unverified rather than abort
                            self.stats.worker_panics += 1;
                            self.metrics.worker_panics.inc();
                            for &c in &chunks[w] {
                                results.insert(c, false);
                            }
                        }
                    }
                }
            }

            for &c in &wave {
                self.cache
                    .insert((c, keys.remove(&c).unwrap()), results[&c]);
            }
            if let Some(&c) = wave.iter().find(|&&c| !results[&c]) {
                return Some(c);
            }
        }
        None
    }

    /// Adds a blocking clause rejecting the restricted assignment of
    /// constraint `c` under `s` (every extension of that assignment fails
    /// the constraint too).
    fn block(&mut self, c: usize, s: &Solution, into_main: bool, snapshot: &mut SatSolver) {
        let holes = self.holes_of[c].clone();
        let mut clause = Vec::new();
        for &h in &holes.eholes {
            let choice = s.exprs[h as usize];
            if choice != usize::MAX {
                clause.push(Lit::neg(self.evars[h as usize][choice]));
            }
        }
        for &h in &holes.pholes {
            let choice = s.preds[h as usize];
            if choice != usize::MAX {
                clause.push(Lit::neg(self.pvars[h as usize][choice]));
            }
        }
        // an empty clause (no holes occur in the constraint) correctly makes
        // the system unsatisfiable: the constraint fails unconditionally
        snapshot.add_clause(&clause);
        if into_main {
            self.sat.add_clause(&clause);
        }
    }

    /// Finds up to `m` solutions satisfying all constraints (Algorithm 1's
    /// `solve(C, Δp, Δe, m)`).
    ///
    /// `smt` is the engine's persistent session (it already carries the
    /// library axioms); `workers >= 2` enables the parallel verification
    /// path, which returns the same solutions in the same order as serial.
    #[allow(clippy::too_many_arguments)]
    pub fn solve(
        &mut self,
        ctx: &mut SymCtx,
        session: &Session,
        domains: &HoleDomains,
        constraints: &[Constraint],
        m: usize,
        smt: &mut SmtSession,
        workers: usize,
    ) -> Vec<Solution> {
        if self.stats.smt_queries > 0 || self.stats.candidates_proposed > 0 {
            self.stats.sessions_reused += 1;
            self.metrics.sessions_reused.inc();
        }
        self.stats.workers = self.stats.workers.max(workers.max(1));
        self.metrics.workers.record_max(workers.max(1) as u64);
        let before = smt.stats;
        // register any new constraints
        for (idx, constraint) in constraints.iter().enumerate().skip(self.holes_of.len()) {
            self.register_constraint(ctx, idx, constraint);
        }
        let mut found = Vec::new();
        self.stats.last_stop = None;
        let mut snapshot = self.sat.clone();
        // candidate enumeration runs under the session's shared budget, so a
        // deadline or cancellation interrupts SAT search too, not just SMT
        snapshot.set_budget(smt.budget().clone());
        loop {
            let t0 = Instant::now();
            let res = snapshot.solve();
            let dt = t0.elapsed();
            self.stats.sat_time += dt;
            self.metrics.sat_time.add_duration(dt);
            self.stats.sat_size = self.stats.sat_size.max(snapshot.formula_size());
            self.metrics
                .sat_size
                .record_max(snapshot.formula_size() as u64);
            match res {
                SolveResult::Unsat => break,
                SolveResult::Interrupted(reason) => {
                    self.stats.sat_interrupts += 1;
                    self.metrics.sat_interrupts.inc();
                    self.stats.last_stop = Some(reason);
                    break;
                }
                SolveResult::Sat => {
                    let s = Self::extract_solution(&snapshot, &self.evars, &self.pvars);
                    self.stats.candidates_proposed += 1;
                    self.metrics.candidates.inc();
                    if let Some(c) =
                        self.first_failing(ctx, session, domains, constraints, &s, smt, workers)
                    {
                        self.block(c, &s, true, &mut snapshot);
                        continue;
                    }
                    // verified: block the exact full assignment in the
                    // snapshot only (the solution remains globally valid)
                    let mut clause = Vec::new();
                    for (h, &choice) in s.exprs.iter().enumerate() {
                        if choice != usize::MAX {
                            clause.push(Lit::neg(self.evars[h][choice]));
                        }
                    }
                    for (h, &choice) in s.preds.iter().enumerate() {
                        if choice != usize::MAX {
                            clause.push(Lit::neg(self.pvars[h][choice]));
                        }
                    }
                    found.push(s);
                    if found.len() >= m || clause.is_empty() {
                        break;
                    }
                    snapshot.add_clause(&clause);
                }
            }
        }
        // the session's own counters already include the worker traffic that
        // `absorb` folded back in, so this delta is identical whether
        // verification ran serial or parallel — and the registry mirror
        // therefore is too
        let hits = smt.stats.cache_hits - before.cache_hits;
        let misses = smt.stats.cache_misses - before.cache_misses;
        self.stats.cache_hits += hits;
        self.metrics.cache_hits.add(hits);
        self.stats.cache_misses += misses;
        self.metrics.cache_misses.add(misses);
        found
    }
}

fn exactly_one(sat: &mut SatSolver, vars: &[Var]) {
    if vars.is_empty() {
        return; // empty-domain hole: left unconstrained (unfilled)
    }
    let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
    sat.add_clause(&lits);
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            sat.add_clause(&[Lit::neg(vars[i]), Lit::neg(vars[j])]);
        }
    }
}
