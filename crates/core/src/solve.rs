//! The `solve` procedure (§2.3): reduces the synthesis constraints to SAT
//! over indicator variables and enumerates up to `m` verified solutions.
//!
//! Each unknown gets an exactly-one block of indicator variables over its
//! finite domain. The loop is a lazy CEGIS over indicators: a SAT model
//! proposes a full assignment; every constraint is verified by an SMT
//! validity query under that assignment (with memoization keyed on the
//! restricted assignment of the holes that actually occur in the
//! constraint); a failed constraint contributes a blocking clause over
//! exactly those holes — the generalization that makes the search converge.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use pins_ir::{EHoleId, PHoleId};
use pins_logic::{collect_subterms, Term, TermId};
use pins_sat::{Lit, SolveResult, Solver as SatSolver, Var};
use pins_smt::{is_valid, SmtConfig};
use pins_symexec::{apply_filler_term, HoleKind, MapFiller, SymCtx};

use crate::constraints::Constraint;
use crate::domains::HoleDomains;
use crate::session::Session;

/// A full assignment: per hole, the index of the chosen candidate in its
/// domain (`usize::MAX` marks an empty-domain hole, treated as unfilled).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Solution {
    /// Per expression hole.
    pub exprs: Vec<usize>,
    /// Per predicate hole.
    pub preds: Vec<usize>,
}

impl Solution {
    /// Converts to a hole filler using the domain table.
    pub fn to_filler(&self, domains: &HoleDomains) -> MapFiller {
        let mut filler = MapFiller::default();
        for (h, &choice) in self.exprs.iter().enumerate() {
            if choice != usize::MAX {
                filler
                    .exprs
                    .insert(EHoleId(h as u32), domains.exprs[h][choice].clone());
            }
        }
        for (h, &choice) in self.preds.iter().enumerate() {
            if choice != usize::MAX {
                filler
                    .preds
                    .insert(PHoleId(h as u32), domains.preds[h][choice].clone());
            }
        }
        filler
    }
}

/// The holes occurring in a constraint (determines the blocking clause).
#[derive(Debug, Clone, Default)]
pub struct ConstraintHoles {
    eholes: Vec<u32>,
    pholes: Vec<u32>,
}

/// Timing and counting statistics from `solve`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Time in SAT solving.
    pub sat_time: Duration,
    /// Time in SMT validity checking (the paper's "SMT reduction").
    pub smt_time: Duration,
    /// Number of SMT validity queries issued.
    pub smt_queries: u64,
    /// Number of candidate assignments proposed by SAT.
    pub candidates_proposed: u64,
    /// Final SAT formula size (vars + literal occurrences).
    pub sat_size: usize,
}

/// The incremental hole solver, persistent across PINS iterations
/// (blocking clauses learned from old constraints remain valid as the
/// constraint set grows).
pub struct HoleSolver {
    sat: SatSolver,
    evars: Vec<Vec<Var>>,
    pvars: Vec<Vec<Var>>,
    /// `(constraint index, restricted assignment) -> verified?`
    cache: HashMap<(usize, Vec<(bool, u32, usize)>), bool>,
    holes_of: Vec<ConstraintHoles>,
    /// Statistics accumulated across calls.
    pub stats: SolveStats,
}

impl HoleSolver {
    /// Builds the indicator encoding for the domain table.
    pub fn new(domains: &HoleDomains) -> Self {
        let mut sat = SatSolver::new();
        let mut evars = Vec::new();
        for dom in &domains.exprs {
            let vars: Vec<Var> = dom.iter().map(|_| sat.new_var()).collect();
            exactly_one(&mut sat, &vars);
            evars.push(vars);
        }
        let mut pvars = Vec::new();
        for dom in &domains.preds {
            let vars: Vec<Var> = dom.iter().map(|_| sat.new_var()).collect();
            exactly_one(&mut sat, &vars);
            pvars.push(vars);
        }
        HoleSolver {
            sat,
            evars,
            pvars,
            cache: HashMap::new(),
            holes_of: Vec::new(),
            stats: SolveStats::default(),
        }
    }

    /// Registers the holes occurring in constraint `idx` (call once per new
    /// constraint, in order).
    pub fn register_constraint(&mut self, ctx: &SymCtx, idx: usize, c: &Constraint) {
        assert_eq!(idx, self.holes_of.len(), "constraints must register in order");
        let mut eholes = HashSet::new();
        let mut pholes = HashSet::new();
        let mut subs = HashSet::new();
        for &h in c.hyps.iter().chain(std::iter::once(&c.goal)) {
            collect_subterms(&ctx.arena, h, &mut subs);
        }
        for s in &subs {
            if let Term::Hole(occ, _) = ctx.arena.term(*s) {
                match ctx.occurrence(*occ).kind {
                    HoleKind::Expr(e) => {
                        eholes.insert(e.0);
                    }
                    HoleKind::Pred(p) => {
                        pholes.insert(p.0);
                    }
                }
            }
        }
        let mut eholes: Vec<u32> = eholes.into_iter().collect();
        let mut pholes: Vec<u32> = pholes.into_iter().collect();
        eholes.sort_unstable();
        pholes.sort_unstable();
        self.holes_of.push(ConstraintHoles { eholes, pholes });
    }

    fn extract_solution(sat: &SatSolver, evars: &[Vec<Var>], pvars: &[Vec<Var>]) -> Solution {
        let pick = |vars: &Vec<Var>| -> usize {
            vars.iter()
                .position(|&v| sat.value(v) == Some(true))
                .unwrap_or(usize::MAX)
        };
        Solution {
            exprs: evars.iter().map(pick).collect(),
            preds: pvars.iter().map(pick).collect(),
        }
    }

    fn restricted_key(&self, c: usize, s: &Solution) -> Vec<(bool, u32, usize)> {
        let holes = &self.holes_of[c];
        let mut key = Vec::with_capacity(holes.eholes.len() + holes.pholes.len());
        for &h in &holes.eholes {
            key.push((true, h, s.exprs[h as usize]));
        }
        for &h in &holes.pholes {
            key.push((false, h, s.preds[h as usize]));
        }
        key
    }

    /// Verifies one constraint under a solution, with memoization.
    fn verify(
        &mut self,
        ctx: &mut SymCtx,
        session: &Session,
        axioms: &[TermId],
        constraints: &[Constraint],
        c: usize,
        solution: &Solution,
        domains: &HoleDomains,
        smt: SmtConfig,
    ) -> bool {
        let key = self.restricted_key(c, solution);
        if let Some(&v) = self.cache.get(&(c, key.clone())) {
            return v;
        }
        let filler = solution.to_filler(domains);
        let program = &session.composed;
        let t0 = Instant::now();
        let hyps: Vec<TermId> = constraints[c]
            .hyps
            .iter()
            .map(|&h| apply_filler_term(ctx, program, h, &filler))
            .collect();
        let goal = apply_filler_term(ctx, program, constraints[c].goal, &filler);
        let valid = is_valid(&mut ctx.arena, &hyps, goal, axioms, smt);
        self.stats.smt_time += t0.elapsed();
        self.stats.smt_queries += 1;
        self.cache.insert((c, key), valid);
        valid
    }

    /// Adds a blocking clause rejecting the restricted assignment of
    /// constraint `c` under `s` (every extension of that assignment fails
    /// the constraint too).
    fn block(&mut self, c: usize, s: &Solution, into_main: bool, snapshot: &mut SatSolver) {
        let holes = self.holes_of[c].clone();
        let mut clause = Vec::new();
        for &h in &holes.eholes {
            let choice = s.exprs[h as usize];
            if choice != usize::MAX {
                clause.push(Lit::neg(self.evars[h as usize][choice]));
            }
        }
        for &h in &holes.pholes {
            let choice = s.preds[h as usize];
            if choice != usize::MAX {
                clause.push(Lit::neg(self.pvars[h as usize][choice]));
            }
        }
        // an empty clause (no holes occur in the constraint) correctly makes
        // the system unsatisfiable: the constraint fails unconditionally
        snapshot.add_clause(&clause);
        if into_main {
            self.sat.add_clause(&clause);
        }
    }

    /// Finds up to `m` solutions satisfying all constraints (Algorithm 1's
    /// `solve(C, Δp, Δe, m)`).
    #[allow(clippy::too_many_arguments)]
    pub fn solve(
        &mut self,
        ctx: &mut SymCtx,
        session: &Session,
        domains: &HoleDomains,
        axioms: &[TermId],
        constraints: &[Constraint],
        m: usize,
        smt: SmtConfig,
    ) -> Vec<Solution> {
        // register any new constraints
        for idx in self.holes_of.len()..constraints.len() {
            self.register_constraint(ctx, idx, &constraints[idx]);
        }
        let mut found = Vec::new();
        let mut snapshot = self.sat.clone();
        'outer: loop {
            let t0 = Instant::now();
            let res = snapshot.solve();
            self.stats.sat_time += t0.elapsed();
            self.stats.sat_size = self.stats.sat_size.max(snapshot.formula_size());
            match res {
                SolveResult::Unsat => break,
                SolveResult::Sat => {
                    let s = Self::extract_solution(&snapshot, &self.evars, &self.pvars);
                    self.stats.candidates_proposed += 1;
                    for c in 0..constraints.len() {
                        if !self.verify(ctx, session, axioms, constraints, c, &s, domains, smt) {
                            self.block(c, &s, true, &mut snapshot);
                            continue 'outer;
                        }
                    }
                    // verified: block the exact full assignment in the
                    // snapshot only (the solution remains globally valid)
                    let mut clause = Vec::new();
                    for (h, &choice) in s.exprs.iter().enumerate() {
                        if choice != usize::MAX {
                            clause.push(Lit::neg(self.evars[h][choice]));
                        }
                    }
                    for (h, &choice) in s.preds.iter().enumerate() {
                        if choice != usize::MAX {
                            clause.push(Lit::neg(self.pvars[h][choice]));
                        }
                    }
                    found.push(s);
                    if found.len() >= m || clause.is_empty() {
                        break;
                    }
                    snapshot.add_clause(&clause);
                }
            }
        }
        found
    }
}

fn exactly_one(sat: &mut SatSolver, vars: &[Var]) {
    if vars.is_empty() {
        return; // empty-domain hole: left unconstrained (unfilled)
    }
    let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
    sat.add_clause(&lits);
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            sat.add_clause(&[Lit::neg(vars[i]), Lit::neg(vars[j])]);
        }
    }
}
