use pins_ir::{
    parse_expr_in, parse_pred_in, program_to_string, run, ExternEnv, Store, Type, Value,
};

use crate::*;

/// Synthesize the inverse of `y := x + 7`.
fn add7_session() -> Session {
    let mut s = Session::from_sources(
        "proc add7(in x: int, out y: int) { y := x + 7; }",
        "proc add7_inv(in y: int, out xI: int) { xI := ?e1; }",
    );
    let c = s.composed.clone();
    s.expr_candidates = vec![
        parse_expr_in(&c, "y + 7").unwrap(),
        parse_expr_in(&c, "y - 7").unwrap(),
        parse_expr_in(&c, "0").unwrap(),
        parse_expr_in(&c, "y").unwrap(),
    ];
    s.spec = Spec {
        items: vec![SpecItem::IntEq {
            input: c.var_by_name("x").unwrap(),
            output: c.var_by_name("xI").unwrap(),
        }],
    };
    s
}

#[test]
fn add7_inverse_synthesized() {
    let mut session = add7_session();
    let outcome = Pins::new(PinsConfig::default()).run(&mut session).unwrap();
    assert_eq!(
        outcome.solutions.len(),
        1,
        "exactly one inverse should survive"
    );
    let inv = &outcome.solutions[0].inverse;
    let printed = program_to_string(inv);
    assert!(printed.contains("y - 7"), "got:\n{printed}");
    assert!(outcome.converged);
    assert!(outcome.paths_explored >= 1);
}

#[test]
fn add7_concrete_tests_generated() {
    let mut session = add7_session();
    let outcome = Pins::new(PinsConfig::default()).run(&mut session).unwrap();
    assert!(!outcome.tests.is_empty());
    // each test assigns the input x
    for t in &outcome.tests {
        assert!(t.inputs.iter().any(|(n, _)| n == "x"));
    }
}

#[test]
fn no_solution_when_candidates_insufficient() {
    let mut session = add7_session();
    let c = session.composed.clone();
    session.expr_candidates = vec![
        parse_expr_in(&c, "y + 7").unwrap(), // wrong direction only
        parse_expr_in(&c, "0").unwrap(),
    ];
    let err = Pins::new(PinsConfig::default())
        .run(&mut session)
        .unwrap_err();
    assert!(matches!(err, PinsError::NoSolution { .. }), "{err:?}");
}

/// `m := 2 * n` by repeated addition; inverse halves by counting.
fn double_session() -> Session {
    let mut s = Session::from_sources(
        r#"
proc double(in n: int, out m: int) {
  local i: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) {
    m, i := m + 2, i + 1;
  }
}
"#,
        r#"
proc double_inv(in m: int, out nI: int) {
  local j: int;
  j, nI := ?e1, ?e2;
  while (?p1) {
    nI, j := ?e3, ?e4;
  }
}
"#,
    );
    let c = s.composed.clone();
    s.expr_candidates = ["0", "m", "nI + 1", "nI - 1", "j + 2", "j + 1", "j - 2"]
        .iter()
        .map(|src| parse_expr_in(&c, src).unwrap())
        .collect();
    s.pred_candidates = ["j < m", "nI < m", "j < nI"]
        .iter()
        .map(|src| parse_pred_in(&c, src).unwrap())
        .collect();
    s.spec = Spec {
        items: vec![SpecItem::IntEq {
            input: c.var_by_name("n").unwrap(),
            output: c.var_by_name("nI").unwrap(),
        }],
    };
    s
}

#[test]
fn double_inverse_synthesized_and_correct() {
    let mut session = double_session();
    let config = PinsConfig {
        max_iterations: 40,
        ..PinsConfig::default()
    };
    let outcome = Pins::new(config).run(&mut session).unwrap();
    assert!(
        !outcome.solutions.is_empty() && outcome.solutions.len() <= 4,
        "expected a small surviving set, got {}",
        outcome.solutions.len()
    );

    // validate all surviving solutions by concrete round-trips
    let env = ExternEnv::new();
    let orig = &session.original;
    let mut correct = 0;
    for sol in &outcome.solutions {
        let inv = &sol.inverse;
        let mut ok = true;
        for n in 0..8i64 {
            let mut inputs = Store::new();
            inputs.insert(orig.var_by_name("n").unwrap(), Value::Int(n));
            let mid = run(orig, &inputs, &env, 10_000).unwrap();
            let m = mid[&orig.var_by_name("m").unwrap()].clone();
            let mut inv_inputs = Store::new();
            inv_inputs.insert(inv.var_by_name("m").unwrap(), m);
            match run(inv, &inv_inputs, &env, 10_000) {
                Ok(out) => {
                    if out[&inv.var_by_name("nI").unwrap()] != Value::Int(n) {
                        ok = false;
                    }
                }
                Err(_) => ok = false,
            }
        }
        if ok {
            correct += 1;
        }
    }
    assert!(
        correct >= 1,
        "at least one surviving solution must be a true inverse"
    );
}

#[test]
fn iterations_match_small_path_bound_hypothesis() {
    let mut session = double_session();
    let outcome = Pins::new(PinsConfig::default()).run(&mut session).unwrap();
    // the paper reports 1..14 iterations across all benchmarks
    assert!(
        outcome.iterations <= 20,
        "too many iterations: {}",
        outcome.iterations
    );
    assert!(outcome.paths_explored <= 20);
}

#[test]
fn random_pickone_also_converges() {
    let mut session = double_session();
    let config = PinsConfig {
        pick_random: true,
        seed: 7,
        ..PinsConfig::default()
    };
    let outcome = Pins::new(config).run(&mut session).unwrap();
    assert!(!outcome.solutions.is_empty());
}

#[test]
fn stats_are_populated() {
    let mut session = double_session();
    let outcome = Pins::new(PinsConfig::default()).run(&mut session).unwrap();
    let s = outcome.stats();
    assert!(s.total_time.as_nanos() > 0);
    assert!(s.smt_queries > 0);
    assert!(s.sat_size > 0);
    assert!(s.smt_reduction_time.as_nanos() > 0);
    // the registry view reconstructs the same numbers
    let r = crate::PinsStats::from_registry(outcome.metrics());
    assert_eq!(r.smt_queries, s.smt_queries);
    assert_eq!(r.sat_size, s.sat_size);
    assert_eq!(r.smt_cache_hits, s.smt_cache_hits);
    assert_eq!(r.smt_cache_misses, s.smt_cache_misses);
    assert_eq!(r.feasibility_queries, s.feasibility_queries);
    assert!(r.total_time.as_nanos() > 0);
}

// ---------------- unit-level checks ----------------

#[test]
fn rank_candidates_derived_from_inequalities() {
    let s = double_session();
    let ranks = derive_rank_candidates(&s.pred_candidates);
    // j < m and nI < m and j < nI each yield a candidate
    assert_eq!(ranks.len(), 3);
    for r in &ranks {
        assert_eq!(type_of_expr(&s.composed, r), Type::Int);
    }
}

#[test]
fn ehole_types_inferred_from_targets() {
    let s = Session::from_sources(
        "proc f(in A: int[], in n: int, out B: int[]) { B := upd(B, 0, A[0]); }",
        "proc g(in B: int[], out AI: int[], out k: int) { AI := ?e1; k := ?e2; }",
    );
    let types = ehole_types(&s.composed);
    assert_eq!(types, vec![Type::IntArray, Type::Int]);
}

#[test]
fn pred_subsets_bounded() {
    let s = double_session();
    let singles = pred_subset_candidates(&s.pred_candidates, 1, true);
    assert_eq!(singles.len(), 1 + 3);
    let pairs = pred_subset_candidates(&s.pred_candidates, 2, true);
    assert_eq!(pairs.len(), 1 + 3 + 3);
}

#[test]
fn search_space_accounting() {
    let session = double_session();
    let domains = build_domains(&session, DomainConfig::default());
    // paper-comparable space: 4 int-expr holes over 7 candidates each plus
    // one predicate hole over 2^3 subsets
    let expected = 4.0 * (7.0f64).log2() + 3.0;
    assert!((domains.paper_search_space_log2 - expected).abs() < 1e-9);
    assert!(domains.encoded_search_space_log2 > 0.0);
}

#[test]
fn axiom_def_round_trip() {
    use pins_ir::ExternDecl;
    let externs = vec![ExternDecl {
        name: "strlen".into(),
        args: vec![Type::Abstract("Str".into())],
        ret: Type::Int,
        returns_bool: false,
    }];
    let ax = AxiomDef::parse(
        &externs,
        &[("s", Type::Abstract("Str".into()))],
        "strlen(s) >= 0",
    );
    let mut arena = pins_logic::TermArena::new();
    let t = ax.to_term(&mut arena);
    let shown = arena.display(t).to_string();
    assert!(shown.contains("forall"), "{shown}");
    assert!(shown.contains("strlen"), "{shown}");
}

#[test]
fn terminate_constraints_generated_per_template_loop() {
    let session = double_session();
    let domains = build_domains(&session, DomainConfig::default());
    let mut ctx = pins_symexec::SymCtx::new(&session.composed);
    let cs = terminate_constraints(&session, &domains, &mut ctx);
    // one bounded + per body path (1) a decrease and an inv-maintain
    assert_eq!(cs.len(), 3);
    assert!(cs
        .iter()
        .any(|c| matches!(c.label, ConstraintLabel::Bounded(_))));
    assert!(cs
        .iter()
        .any(|c| matches!(c.label, ConstraintLabel::Decrease(_))));
    assert!(cs
        .iter()
        .any(|c| matches!(c.label, ConstraintLabel::InvMaintain(_))));
}
