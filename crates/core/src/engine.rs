//! Algorithm 1: the PINS main loop.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use pins_budget::Budget;
use pins_ir::{Expr, Pred, Program, Stmt, Value};
use pins_logic::{collect_subterms, Term, TermId};
use pins_prng::SplitMix64;
use pins_smt::{SmtConfig, SmtResult, SmtSession};
use pins_symexec::{
    apply_filler_term, ExploreConfig, Explorer, HoleKind, MapFiller, PathResult, SymCtx,
};
use pins_trace::{MetricsRegistry, Phase, ProvenanceCtx};

use crate::constraints::{
    init_constraints, safepath_constraint, terminate_constraints, Constraint,
};
use crate::domains::{build_domains, DomainConfig, HoleDomains};
use crate::session::Session;
use crate::solve::{HoleSolver, Solution};

/// `pickOne` memo: a path's substituted key plus the solution's choices for
/// the holes that path mentions, mapped to "is this path infeasible under S".
type InfeasibleCache = HashMap<(TermId, Vec<(bool, u32, usize)>), bool>;

/// PINS configuration.
#[derive(Debug, Clone)]
pub struct PinsConfig {
    /// Number of solutions requested from the solver per iteration
    /// (the paper uses `m = 10`).
    pub m: usize,
    /// Iteration safety bound.
    pub max_iterations: usize,
    /// Maximum atoms per predicate-hole conjunction.
    pub pred_subset_max: usize,
    /// Ablation: replace the `infeasible`-count `pickOne` heuristic by
    /// uniformly random selection (§2.3 reports this is ~20% slower).
    pub pick_random: bool,
    /// RNG seed for tie-breaking.
    pub seed: u64,
    /// Symbolic-execution options.
    pub explore: ExploreConfig,
    /// SMT options for constraint verification.
    pub smt: SmtConfig,
    /// Worker threads for per-constraint verification inside `solve`
    /// (1 = serial; results are identical either way).
    pub verify_workers: usize,
    /// Optional wall-clock budget.
    pub time_budget: Option<Duration>,
}

impl Default for PinsConfig {
    fn default() -> Self {
        PinsConfig {
            m: 10,
            max_iterations: 64,
            pred_subset_max: 1,
            pick_random: false,
            seed: 0x9142,
            explore: ExploreConfig::default(),
            smt: SmtConfig::default(),
            verify_workers: default_verify_workers(),
            time_budget: None,
        }
    }
}

/// Default verification parallelism: the machine's parallelism, capped at 4
/// (the constraint sets are small; more workers mostly idle).
pub fn default_verify_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1)
}

/// Per-phase timing breakdown, mirroring the paper's Table 4 columns.
#[derive(Debug, Clone, Default)]
pub struct PinsStats {
    /// Symbolic execution (includes its SMT feasibility queries).
    pub symexec_time: Duration,
    /// SMT reduction: constraint verification inside `solve`.
    pub smt_reduction_time: Duration,
    /// SAT solving inside `solve`.
    pub sat_time: Duration,
    /// The `pickOne` heuristic.
    pub pickone_time: Duration,
    /// Total wall-clock time of the run.
    pub total_time: Duration,
    /// Final SAT formula size (the paper's `|SAT|`).
    pub sat_size: usize,
    /// SMT validity queries issued by `solve`.
    pub smt_queries: u64,
    /// SMT feasibility queries issued by symbolic execution.
    pub feasibility_queries: u64,
    /// Normalized-query cache hits on the engine's session (validity,
    /// pickOne, and test-generation traffic combined).
    pub smt_cache_hits: u64,
    /// Normalized-query cache misses on the engine's session.
    pub smt_cache_misses: u64,
    /// `solve` calls that reused solver state from an earlier iteration.
    pub sessions_reused: u64,
    /// Size of the verification worker pool (1 = serial).
    pub verify_workers: usize,
    /// SMT queries issued per parallel worker slot (empty when serial).
    pub worker_queries: Vec<u64>,
    /// Verification queries that panicked and were degraded to "constraint
    /// unverified" instead of aborting the run.
    pub worker_panics: u64,
    /// Candidate-enumeration SAT solves interrupted by the shared budget.
    pub sat_interrupts: u64,
    /// Budget-limited `Unknown` SMT answers retried at doubled budgets.
    pub smt_retries: u64,
    /// Cached `Unknown` entries upgraded to a definitive verdict by a retry.
    pub smt_cache_upgrades: u64,
    /// Final SMT `Unknown` answers that hit the wall-clock deadline.
    pub unknown_deadline: u64,
    /// Final SMT `Unknown` answers caused by an external cancellation.
    pub unknown_cancelled: u64,
    /// Final SMT `Unknown` answers that exhausted a step or round limit.
    pub unknown_step_limit: u64,
    /// Final SMT `Unknown` answers degraded from exact-rational overflow.
    pub unknown_overflow: u64,
}

impl PinsStats {
    /// Reconstructs the Table-4 view from a [`MetricsRegistry`] the engine
    /// was run against (see [`Pins::run_with`]). Durations come from the
    /// `phase.*` cells, counts from the `smt.*`, `solve.*`, and `explore.*`
    /// cells; the result matches the typed stats carried on a successful
    /// [`PinsOutcome`], and is the only view available when the run failed.
    pub fn from_registry(registry: &MetricsRegistry) -> PinsStats {
        let solve = crate::solve::SolveStats::from_registry(registry);
        PinsStats {
            symexec_time: registry.duration("phase.symexec"),
            smt_reduction_time: solve.smt_time,
            sat_time: solve.sat_time,
            pickone_time: registry.duration("phase.pickone"),
            total_time: registry.duration("phase.total"),
            sat_size: solve.sat_size,
            smt_queries: solve.smt_queries,
            feasibility_queries: registry.get("explore.feasibility_queries"),
            smt_cache_hits: registry.get("smt.cache_hits"),
            smt_cache_misses: registry.get("smt.cache_misses"),
            sessions_reused: solve.sessions_reused,
            verify_workers: solve.workers,
            worker_queries: solve.worker_queries,
            worker_panics: solve.worker_panics,
            sat_interrupts: solve.sat_interrupts,
            smt_retries: registry.get("smt.retries"),
            smt_cache_upgrades: registry.get("smt.cache_upgrades"),
            unknown_deadline: registry.get("smt.unknown.deadline"),
            unknown_cancelled: registry.get("smt.unknown.cancelled"),
            unknown_step_limit: registry.get("smt.unknown.step_limit"),
            unknown_overflow: registry.get("smt.unknown.overflow"),
        }
    }
}

/// A concrete test input generated from an explored path (§2.5).
#[derive(Debug, Clone)]
pub struct ConcreteTest {
    /// Input variable name and value, for the original program `P`.
    pub inputs: Vec<(String, Value)>,
}

/// A verified solution rendered back to the IR.
#[derive(Debug, Clone)]
pub struct ResolvedSolution {
    /// Template-hole assignment.
    pub filler: MapFiller,
    /// The synthesized inverse program (template with holes substituted).
    pub inverse: Program,
}

/// The result of a successful PINS run.
///
/// Statistics are exposed through [`stats`](PinsOutcome::stats) (the typed
/// Table-4 view) and [`metrics`](PinsOutcome::metrics) (the raw
/// [`MetricsRegistry`] the run was instrumented against). For back
/// compatibility the outcome also derefs to [`PinsStats`], so
/// `outcome.total_time` keeps working.
#[derive(Debug, Clone)]
pub struct PinsOutcome {
    /// The surviving solutions (1–4 on the paper's benchmarks).
    pub solutions: Vec<ResolvedSolution>,
    /// Full loop iterations executed.
    pub iterations: usize,
    /// Paths explored (the size of `F`).
    pub paths_explored: usize,
    /// Whether the run stabilized (vs. hitting a budget with candidates).
    pub converged: bool,
    /// Timing and counting statistics (private: read through
    /// [`stats`](PinsOutcome::stats) or the `Deref` impl).
    stats: PinsStats,
    /// The registry every subsystem counter of this run was routed through.
    metrics: MetricsRegistry,
    /// Concrete tests generated from the explored paths.
    pub tests: Vec<ConcreteTest>,
    /// log2 of the paper-comparable search space.
    pub search_space_log2: f64,
}

impl PinsOutcome {
    /// The typed per-phase statistics (the paper's Table 4 columns).
    pub fn stats(&self) -> &PinsStats {
        &self.stats
    }

    /// The metrics registry the run recorded into: every `smt.*`,
    /// `solve.*`, `explore.*`, and `phase.*` cell, including keys the typed
    /// view does not surface. Shares cells with the registry passed to
    /// [`Pins::run_with`], if any.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl std::ops::Deref for PinsOutcome {
    type Target = PinsStats;

    fn deref(&self) -> &PinsStats {
        &self.stats
    }
}

/// Failure modes of a PINS run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PinsError {
    /// The constraint system admits no template instantiation: the template
    /// or candidate sets must be refined (§3's feedback loop). Carries the
    /// number of paths that sufficed to rule everything out.
    NoSolution {
        /// Iterations executed.
        iterations: usize,
        /// Paths explored.
        paths_explored: usize,
    },
    /// The iteration budget was exhausted before stabilization.
    BudgetExhausted,
}

impl std::fmt::Display for PinsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinsError::NoSolution {
                iterations,
                paths_explored,
            } => write!(
                f,
                "no template instantiation satisfies the constraints \
                 ({iterations} iterations, {paths_explored} paths)"
            ),
            PinsError::BudgetExhausted => write!(f, "budget exhausted before stabilization"),
        }
    }
}

impl std::error::Error for PinsError {}

/// The PINS engine.
#[derive(Debug, Clone)]
pub struct Pins {
    config: PinsConfig,
}

impl Pins {
    /// Creates an engine with the given configuration.
    pub fn new(config: PinsConfig) -> Self {
        Pins { config }
    }

    /// Runs Algorithm 1 on a session.
    ///
    /// # Errors
    ///
    /// [`PinsError::NoSolution`] when the constraint system eliminates every
    /// candidate; [`PinsError::BudgetExhausted`] when iteration or time
    /// budgets run out before any candidate survives.
    pub fn run(&self, session: &mut Session) -> Result<PinsOutcome, PinsError> {
        // the engine-level time budget becomes the root of the shared budget
        // tree, so SAT, simplex, instantiation, and exploration all observe
        // the same deadline instead of only the between-iteration check
        self.run_with_budget(session, Budget::with_limits(self.config.time_budget, None))
    }

    /// Runs Algorithm 1 under an externally owned [`Budget`]: cancelling the
    /// budget (from any thread) makes the run return
    /// [`PinsError::BudgetExhausted`] at the next poll point instead of
    /// running to completion.
    pub fn run_with_budget(
        &self,
        session: &mut Session,
        budget: Budget,
    ) -> Result<PinsOutcome, PinsError> {
        self.run_with(session, budget, &MetricsRegistry::new())
    }

    /// Runs Algorithm 1 routing every subsystem counter and phase duration
    /// through a caller-owned [`MetricsRegistry`].
    ///
    /// Unlike the stats carried on a [`PinsOutcome`], the registry survives
    /// *failed* runs: on `Err` it still holds everything recorded up to the
    /// stop, and [`PinsStats::from_registry`] reconstructs the Table-4 view
    /// from it. Passing the same registry to several runs accumulates their
    /// counters.
    pub fn run_with(
        &self,
        session: &mut Session,
        budget: Budget,
        metrics: &MetricsRegistry,
    ) -> Result<PinsOutcome, PinsError> {
        let mut span = pins_trace::span("pins.run");
        let t0 = Instant::now();
        let result = self.run_inner(session, budget, metrics);
        metrics.add_duration("phase.total", t0.elapsed());
        if span.is_active() {
            span.record_str("program", &session.original.name);
            match &result {
                Ok(o) => {
                    span.record("solved", true);
                    span.record("converged", o.converged);
                    span.record_u64("iterations", o.iterations as u64);
                    span.record_u64("solutions", o.solutions.len() as u64);
                    span.record_u64("paths", o.paths_explored as u64);
                }
                Err(e) => {
                    span.record("solved", false);
                    span.record_str("error", &e.to_string());
                }
            }
        }
        result
    }

    fn run_inner(
        &self,
        session: &mut Session,
        budget: Budget,
        metrics: &MetricsRegistry,
    ) -> Result<PinsOutcome, PinsError> {
        let start = Instant::now();
        let mut stats = PinsStats::default();
        let mut rng = SplitMix64::new(self.config.seed);

        let mut ctx = SymCtx::new(&session.composed);
        let axioms = session.axiom_terms(&mut ctx.arena);
        // one persistent session for the whole run: it carries the library
        // axioms and the normalized-query cache shared with the verification
        // workers forked inside `solve`
        let mut smt = SmtSession::new(self.config.smt);
        smt.set_budget(budget.clone());
        smt.bind_metrics(metrics, "smt");
        // one provenance context for the whole run: the loop below mutates
        // it (iteration, phase, path) and every query span reads it —
        // including spans from worker sessions forked inside `solve`
        let prov = ProvenanceCtx::new(&session.original.name);
        smt.set_provenance(prov.clone());
        for &ax in &axioms {
            smt.assert_axiom(ax);
        }
        let domains = build_domains(
            session,
            DomainConfig {
                pred_subset_max: self.config.pred_subset_max,
                include_true_invariant: true,
            },
        );
        let mut constraints: Vec<Constraint> = terminate_constraints(session, &domains, &mut ctx);
        let mut solver = HoleSolver::new(&domains);
        solver.bind_metrics(metrics);

        let mut explored: HashSet<TermId> = HashSet::new();
        let mut paths: Vec<PathResult> = Vec::new();
        let mut path_holes: Vec<Vec<(bool, u32)>> = Vec::new(); // holes per path
        let mut infeasible_cache: InfeasibleCache = HashMap::new();

        let mut last_size = usize::MAX;
        let mut iterations = 0;
        loop {
            if iterations >= self.config.max_iterations {
                return Err(PinsError::BudgetExhausted);
            }
            if let Some(limit) = self.config.time_budget {
                if start.elapsed() > limit {
                    return Err(PinsError::BudgetExhausted);
                }
            }
            if budget.check().is_err() {
                return Err(PinsError::BudgetExhausted);
            }
            let mut iter_span = pins_trace::span("pins.iteration");
            if iter_span.is_active() {
                iter_span.record_u64("iteration", iterations as u64);
                iter_span.record_u64("constraints", constraints.len() as u64);
                iter_span.record_u64("paths", paths.len() as u64);
            }
            prov.set_iteration(iterations as u64);
            let sols = {
                let _phase = prov.enter_phase(Phase::Solve);
                solver.solve(
                    &mut ctx,
                    session,
                    &domains,
                    &constraints,
                    self.config.m,
                    &mut smt,
                    self.config.verify_workers,
                )
            };
            stats.smt_reduction_time = solver.stats.smt_time;
            stats.sat_time = solver.stats.sat_time;
            stats.sat_size = solver.stats.sat_size;
            stats.smt_queries = solver.stats.smt_queries;
            stats.sessions_reused = solver.stats.sessions_reused;
            stats.verify_workers = solver.stats.workers;
            stats.worker_queries = solver.stats.worker_queries.clone();
            stats.worker_panics = solver.stats.worker_panics;
            stats.sat_interrupts = solver.stats.sat_interrupts;
            if sols.is_empty() {
                // an empty solution set means "every candidate refuted" only
                // when the search actually ran to completion; a budget trip
                // mid-enumeration is exhaustion, not a refutation
                if solver.stats.last_stop.is_some() || budget.check().is_err() {
                    return Err(PinsError::BudgetExhausted);
                }
                return Err(PinsError::NoSolution {
                    iterations,
                    paths_explored: explored.len(),
                });
            }
            if iter_span.is_active() {
                iter_span.record_u64("solutions", sols.len() as u64);
            }
            if sols.len() == last_size && sols.len() < self.config.m {
                return Ok(self.finalize(
                    session, &mut ctx, &domains, &mut smt, metrics, sols, iterations, &paths,
                    stats, start, true,
                ));
            }
            last_size = sols.len();

            // pickOne (§2.3): prefer solutions contradicting many explored paths
            let t0 = Instant::now();
            let pick_phase = prov.enter_phase(Phase::PickOne);
            let pick = if self.config.pick_random {
                rng.gen_index(sols.len())
            } else {
                self.pick_one(
                    session,
                    &mut ctx,
                    &domains,
                    &mut smt,
                    &sols,
                    &paths,
                    &path_holes,
                    &mut infeasible_cache,
                    &mut rng,
                )
            };
            drop(pick_phase);
            let dt = t0.elapsed();
            stats.pickone_time += dt;
            metrics.add_duration("phase.pickone", dt);
            let filler = sols[pick].to_filler(&domains);

            // symbolic execution guided by the chosen solution; if a bad
            // candidate makes the search wander past its step budget, fall
            // back to the other solutions before concluding anything
            let t0 = Instant::now();
            let symexec_phase = prov.enter_phase(Phase::Symexec);
            prov.set_path(paths.len() as u64 + 1); // the path about to be found
            let mut path = None;
            let mut any_budget_hit = false;
            let mut order: Vec<usize> = (0..sols.len()).collect();
            order.swap(0, pick);
            for idx in order {
                let f = if idx == pick {
                    filler.clone()
                } else {
                    sols[idx].to_filler(&domains)
                };
                let mut cfg = self.config.explore.clone();
                cfg.axioms = axioms.clone();
                let mut explorer = Explorer::new(&session.composed, cfg);
                explorer.set_budget(budget.clone());
                explorer.bind_metrics(metrics, "feas");
                explorer.set_provenance(prov.clone());
                path = explorer.explore_one(&mut ctx, &f, &explored);
                stats.feasibility_queries += explorer.feasibility_queries;
                any_budget_hit |= explorer.budget_hit;
                if path.is_some() {
                    break;
                }
                if let Some(budget) = self.config.time_budget {
                    if start.elapsed() > budget {
                        break;
                    }
                }
            }
            drop(symexec_phase);
            prov.set_path(0);
            let dt = t0.elapsed();
            stats.symexec_time += dt;
            metrics.add_duration("phase.symexec", dt);

            let Some(path) = path else {
                // every feasible path within bounds is covered (or the step
                // budget cut the search off for every candidate, in which
                // case the solution set is only path-complete up to bounds)
                return Ok(self.finalize(
                    session,
                    &mut ctx,
                    &domains,
                    &mut smt,
                    metrics,
                    sols,
                    iterations,
                    &paths,
                    stats,
                    start,
                    !any_budget_hit,
                ));
            };
            explored.insert(path.key);
            path_holes.push(holes_in_terms(&ctx, &path.conjuncts));

            // extend the constraint system
            constraints.push(safepath_constraint(
                session,
                &session.spec.clone(),
                &mut ctx,
                &path,
            ));
            constraints.extend(init_constraints(session, &domains, &mut ctx, &path));
            paths.push(path);
            iterations += 1;
        }
    }

    /// The `infeasible(S)` heuristic: count explored paths whose condition
    /// becomes unsatisfiable under `S`; pick the solution maximizing it,
    /// breaking ties randomly.
    #[allow(clippy::too_many_arguments)]
    fn pick_one(
        &self,
        session: &Session,
        ctx: &mut SymCtx,
        domains: &HoleDomains,
        smt: &mut SmtSession,
        sols: &[Solution],
        paths: &[PathResult],
        path_holes: &[Vec<(bool, u32)>],
        cache: &mut InfeasibleCache,
        rng: &mut SplitMix64,
    ) -> usize {
        let prov = smt.provenance().clone();
        let mut best: Vec<usize> = Vec::new();
        let mut best_count = -1i64;
        for (i, s) in sols.iter().enumerate() {
            let mut count = 0i64;
            for (p, path) in paths.iter().enumerate() {
                prov.set_path(p as u64 + 1);
                let key: Vec<(bool, u32, usize)> = path_holes[p]
                    .iter()
                    .map(|&(is_expr, h)| {
                        let choice = if is_expr {
                            s.exprs[h as usize]
                        } else {
                            s.preds[h as usize]
                        };
                        (is_expr, h, choice)
                    })
                    .collect();
                let infeasible = if let Some(&v) = cache.get(&(path.key, key.clone())) {
                    v
                } else {
                    let filler = s.to_filler(domains);
                    let subst: Vec<TermId> = path
                        .conjuncts
                        .iter()
                        .map(|&c| apply_filler_term(ctx, &session.composed, c, &filler))
                        .collect();
                    let v = smt.verdict_under(&mut ctx.arena, &subst).is_unsat();
                    cache.insert((path.key, key), v);
                    v
                };
                if infeasible {
                    count += 1;
                }
            }
            match count.cmp(&best_count) {
                std::cmp::Ordering::Greater => {
                    best_count = count;
                    best = vec![i];
                }
                std::cmp::Ordering::Equal => best.push(i),
                std::cmp::Ordering::Less => {}
            }
        }
        prov.set_path(0);
        best[rng.gen_index(best.len())]
    }

    #[allow(clippy::too_many_arguments)]
    fn finalize(
        &self,
        session: &Session,
        ctx: &mut SymCtx,
        domains: &HoleDomains,
        smt: &mut SmtSession,
        metrics: &MetricsRegistry,
        sols: Vec<Solution>,
        iterations: usize,
        paths: &[PathResult],
        mut stats: PinsStats,
        start: Instant,
        converged: bool,
    ) -> PinsOutcome {
        let solutions: Vec<ResolvedSolution> = sols
            .iter()
            .map(|s| resolve_solution(session, domains, s))
            .collect();
        let tests = if let Some(first) = sols.first() {
            let _phase = smt.provenance().clone().enter_phase(Phase::TestGen);
            generate_tests(session, ctx, domains, smt, first, paths)
        } else {
            Vec::new()
        };
        stats.smt_cache_hits = smt.stats.cache_hits;
        stats.smt_cache_misses = smt.stats.cache_misses;
        stats.smt_retries = smt.stats.retries;
        stats.smt_cache_upgrades = smt.stats.cache_upgrades;
        stats.unknown_deadline = smt.stats.unknown_deadline;
        stats.unknown_cancelled = smt.stats.unknown_cancelled;
        stats.unknown_step_limit = smt.stats.unknown_step_limit;
        stats.unknown_overflow = smt.stats.unknown_overflow;
        stats.total_time = start.elapsed();
        PinsOutcome {
            solutions,
            iterations,
            paths_explored: paths.len(),
            converged,
            stats,
            metrics: metrics.clone(),
            tests,
            search_space_log2: domains.paper_search_space_log2,
        }
    }
}

/// Collects the holes appearing in a set of terms.
fn holes_in_terms(ctx: &SymCtx, terms: &[TermId]) -> Vec<(bool, u32)> {
    let mut subs = HashSet::new();
    for &t in terms {
        collect_subterms(&ctx.arena, t, &mut subs);
    }
    let mut out = HashSet::new();
    for s in subs {
        if let Term::Hole(occ, _) = ctx.arena.term(s) {
            let occ = *occ;
            match ctx.occurrence(occ).kind {
                HoleKind::Expr(e) => {
                    out.insert((true, e.0));
                }
                HoleKind::Pred(p) => {
                    out.insert((false, p.0));
                }
            }
        }
    }
    let mut v: Vec<(bool, u32)> = out.into_iter().collect();
    v.sort_unstable();
    v
}

/// Renders a solution as an inverse program: the template part of the
/// composed program with holes substituted.
pub fn resolve_solution(
    session: &Session,
    domains: &HoleDomains,
    solution: &Solution,
) -> ResolvedSolution {
    let filler = solution.to_filler(domains);
    // restrict to template holes
    let mut template_filler = MapFiller::default();
    for (h, e) in &filler.exprs {
        if h.0 < session.composed.num_eholes {
            template_filler.exprs.insert(*h, e.clone());
        }
    }
    for (h, p) in &filler.preds {
        if h.0 < session.composed.num_pholes {
            template_filler.preds.insert(*h, p.clone());
        }
    }
    let body: Vec<Stmt> = session
        .template_body()
        .iter()
        .map(|s| subst_stmt(s, &template_filler))
        .collect();
    let mut inverse = session.composed.clone();
    inverse.name = format!("{}_inv", session.original.name);
    inverse.body = body;
    inverse.num_eholes = 0;
    inverse.num_pholes = 0;
    inverse.ehole_names.clear();
    inverse.phole_names.clear();
    // parameters: the template's parameters resolved in the composed table
    inverse.params = session
        .template
        .params
        .iter()
        .filter_map(|&(v, m)| {
            let name = &session.template.var(v).name;
            session.composed.var_by_name(name).map(|cv| (cv, m))
        })
        .collect();
    ResolvedSolution {
        filler: template_filler,
        inverse,
    }
}

fn subst_expr(e: &Expr, filler: &MapFiller) -> Expr {
    match e {
        Expr::Hole(h) => filler.exprs.get(h).cloned().unwrap_or(Expr::Hole(*h)),
        Expr::Int(_) | Expr::Var(_) => e.clone(),
        Expr::Add(a, b) => Expr::Add(
            Box::new(subst_expr(a, filler)),
            Box::new(subst_expr(b, filler)),
        ),
        Expr::Sub(a, b) => Expr::Sub(
            Box::new(subst_expr(a, filler)),
            Box::new(subst_expr(b, filler)),
        ),
        Expr::Mul(a, b) => Expr::Mul(
            Box::new(subst_expr(a, filler)),
            Box::new(subst_expr(b, filler)),
        ),
        Expr::Sel(a, b) => Expr::Sel(
            Box::new(subst_expr(a, filler)),
            Box::new(subst_expr(b, filler)),
        ),
        Expr::Upd(a, b, c) => Expr::Upd(
            Box::new(subst_expr(a, filler)),
            Box::new(subst_expr(b, filler)),
            Box::new(subst_expr(c, filler)),
        ),
        Expr::Call(f, args) => Expr::Call(
            f.clone(),
            args.iter().map(|a| subst_expr(a, filler)).collect(),
        ),
    }
}

fn subst_pred(p: &Pred, filler: &MapFiller) -> Pred {
    match p {
        Pred::Hole(h) => filler.preds.get(h).cloned().unwrap_or(Pred::Hole(*h)),
        Pred::Bool(_) | Pred::Star => p.clone(),
        Pred::Cmp(op, a, b) => Pred::Cmp(*op, subst_expr(a, filler), subst_expr(b, filler)),
        Pred::And(items) => Pred::And(items.iter().map(|q| subst_pred(q, filler)).collect()),
        Pred::Or(items) => Pred::Or(items.iter().map(|q| subst_pred(q, filler)).collect()),
        Pred::Not(q) => Pred::Not(Box::new(subst_pred(q, filler))),
        Pred::Call(f, args) => Pred::Call(
            f.clone(),
            args.iter().map(|a| subst_expr(a, filler)).collect(),
        ),
    }
}

fn subst_stmt(s: &Stmt, filler: &MapFiller) -> Stmt {
    match s {
        Stmt::Assign(pairs) => Stmt::Assign(
            pairs
                .iter()
                .map(|(v, e)| (*v, subst_expr(e, filler)))
                .collect(),
        ),
        Stmt::If(p, t, e) => Stmt::If(
            subst_pred(p, filler),
            t.iter().map(|x| subst_stmt(x, filler)).collect(),
            e.iter().map(|x| subst_stmt(x, filler)).collect(),
        ),
        Stmt::While(id, p, body) => Stmt::While(
            *id,
            subst_pred(p, filler),
            body.iter().map(|x| subst_stmt(x, filler)).collect(),
        ),
        Stmt::Assume(p) => Stmt::Assume(subst_pred(p, filler)),
        Stmt::Exit => Stmt::Exit,
        Stmt::Skip => Stmt::Skip,
    }
}

/// Generates concrete test inputs from the explored paths under the first
/// surviving solution (§2.5: "our implementation uses the SMT solver to
/// output a concrete input that will take that path").
fn generate_tests(
    session: &Session,
    ctx: &mut SymCtx,
    domains: &HoleDomains,
    smt: &mut SmtSession,
    solution: &Solution,
    paths: &[PathResult],
) -> Vec<ConcreteTest> {
    let filler = solution.to_filler(domains);
    let prov = smt.provenance().clone();
    let mut tests = Vec::new();
    for (i, path) in paths.iter().enumerate() {
        prov.set_path(i as u64 + 1);
        let subst: Vec<TermId> = path
            .conjuncts
            .iter()
            .map(|&c| apply_filler_term(ctx, &session.composed, c, &filler))
            .collect();
        let SmtResult::Sat(model) = smt.check_under(&mut ctx.arena, &subst) else {
            continue; // path infeasible under the final solution
        };
        let mut inputs = Vec::new();
        for v in session.original.inputs() {
            let name = session.original.var(v).name.clone();
            let cv = session
                .composed
                .var_by_name(&name)
                .expect("input survives composition");
            let term = ctx.var_term(cv, 0);
            let value = match session.composed.var(cv).ty {
                pins_ir::Type::Int => Value::Int(model.eval_int(&ctx.arena, term)),
                pins_ir::Type::IntArray => {
                    let entries = model.arrays.get(&term).cloned().unwrap_or_default();
                    Value::Arr(entries.into_iter().collect())
                }
                pins_ir::Type::Abstract(_) => Value::Seq(Vec::new()),
            };
            inputs.push((name, value));
        }
        tests.push(ConcreteTest { inputs });
    }
    prov.set_path(0);
    tests
}
