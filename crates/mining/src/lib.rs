//! Semi-automated template mining (Section 3 of the paper).
//!
//! Mining builds initial guesses for the candidate sets Δp and Δe from the
//! text of the program to be inverted, in three steps:
//!
//! 1. **harvest** every expression appearing on the right of an assignment
//!    and every predicate appearing in a guard or `assume`;
//! 2. **project** through the eight inversion projections (identity,
//!    addition/subtraction inversion, copy inversion, array reads,
//!    `out`-derived progress predicates, iterator scans, and
//!    multiplication/division inversion via the `mul`/`div` ADT);
//! 3. **rename** variables to their primed counterparts in the inverse
//!    frame, dropping candidates that mention variables without a
//!    counterpart (e.g. `n` in the run-length decoder).
//!
//! The result is the paper's "Mined" column of Table 1; the per-benchmark
//! curated subsets and their modification counts are computed against it.

use std::collections::HashMap;

use pins_ir::{CmpOp, Expr, Pred, Program, Stmt, VarId};

/// The outcome of mining: candidates expressed over the *composed* program
/// (so primed variables resolve), plus raw counts for Table 1.
#[derive(Debug, Clone, Default)]
pub struct MinedSets {
    /// Candidate expressions (Δe guess).
    pub exprs: Vec<Expr>,
    /// Candidate predicates (Δp guess).
    pub preds: Vec<Pred>,
}

impl MinedSets {
    /// Size of `Δp ∪ Δe` as the paper counts it.
    pub fn total(&self) -> usize {
        self.exprs.len() + self.preds.len()
    }

    /// How many of `chosen_exprs`/`chosen_preds` are *not* in the mined set —
    /// the paper's "Mod" column (manual modifications needed).
    pub fn modifications(&self, chosen_exprs: &[Expr], chosen_preds: &[Pred]) -> usize {
        let e = chosen_exprs
            .iter()
            .filter(|e| !self.exprs.contains(e))
            .count();
        let p = chosen_preds
            .iter()
            .filter(|p| !self.preds.contains(p))
            .count();
        e + p
    }
}

/// Step 1: harvests assignment right-hand sides and guard/assume predicates
/// from a program body.
pub fn harvest(program: &Program) -> (Vec<Expr>, Vec<Pred>) {
    let mut exprs = Vec::new();
    let mut preds = Vec::new();
    fn walk(stmts: &[Stmt], exprs: &mut Vec<Expr>, preds: &mut Vec<Pred>) {
        for s in stmts {
            match s {
                Stmt::Assign(pairs) => {
                    for (_, e) in pairs {
                        push_unique(exprs, e.clone());
                    }
                }
                Stmt::Assume(p) => push_pred_atoms(preds, p),
                Stmt::If(p, t, e) => {
                    push_pred_atoms(preds, p);
                    walk(t, exprs, preds);
                    walk(e, exprs, preds);
                }
                Stmt::While(_, p, b) => {
                    push_pred_atoms(preds, p);
                    walk(b, exprs, preds);
                }
                Stmt::Exit | Stmt::Skip => {}
            }
        }
    }
    walk(&program.body, &mut exprs, &mut preds);
    (exprs, preds)
}

fn push_unique<T: PartialEq>(v: &mut Vec<T>, item: T) {
    if !v.contains(&item) {
        v.push(item);
    }
}

/// Conjunctions are split into atoms (guards like `i + 1 < n && A[i] = A[i+1]`
/// contribute each conjunct).
fn push_pred_atoms(preds: &mut Vec<Pred>, p: &Pred) {
    match p {
        Pred::And(items) | Pred::Or(items) => {
            for q in items {
                push_pred_atoms(preds, q);
            }
        }
        Pred::Not(q) => push_pred_atoms(preds, q),
        Pred::Bool(_) | Pred::Star => {}
        _ => push_unique(preds, p.clone()),
    }
}

/// Step 2: applies the eight inversion projections.
pub fn project(program: &Program, exprs: &[Expr], preds: &[Pred]) -> (Vec<Expr>, Vec<Pred>) {
    let mut out_e: Vec<Expr> = Vec::new();
    let mut out_p: Vec<Pred> = Vec::new();

    for e in exprs {
        // 1. identity
        push_unique(&mut out_e, e.clone());
        match e {
            // 2. addition inversion
            Expr::Add(a, b) => {
                push_unique(&mut out_e, Expr::Sub(a.clone(), b.clone()));
            }
            // 3. subtraction inversion
            Expr::Sub(a, b) => {
                push_unique(&mut out_e, Expr::Add(a.clone(), b.clone()));
            }
            // 4. copy inversion: upd(A, i, sel(B, j)) -> upd(B, j, sel(A, i))
            Expr::Upd(a, i, v) => {
                if let Expr::Sel(b, j) = v.as_ref() {
                    push_unique(
                        &mut out_e,
                        Expr::Upd(
                            b.clone(),
                            j.clone(),
                            Box::new(Expr::Sel(a.clone(), i.clone())),
                        ),
                    );
                }
            }
            // 8. multiplication/division inversion through the mul/div ADT
            Expr::Call(f, args) if f == "mul" && args.len() == 2 => {
                let recip = Expr::Call("div".into(), vec![Expr::Int(1), args[1].clone()]);
                push_unique(
                    &mut out_e,
                    Expr::Call("mul".into(), vec![args[0].clone(), recip]),
                );
            }
            _ => {}
        }
    }
    // small constants are always useful initialisers
    push_unique(&mut out_e, Expr::Int(0));
    push_unique(&mut out_e, Expr::Int(1));

    for p in preds {
        // 1. identity on predicates
        push_unique(&mut out_p, p.clone());
        // 5. array-read projection: sel(A, i) op X contributes sel(A, i)
        if let Pred::Cmp(_, a, b) = p {
            for side in [a, b] {
                if let Expr::Sel(..) = side {
                    push_unique(&mut out_e, side.clone());
                }
            }
        }
    }

    // 6. out-derived progress predicates: for each integer output m of the
    //    program, the inverse typically scans it: m' < m (the rename step
    //    later primes the left occurrence).
    for v in program.outputs() {
        if matches!(program.var(v).ty, pins_ir::Type::Int) {
            push_unique(&mut out_p, Pred::Cmp(CmpOp::Lt, Expr::Var(v), Expr::Var(v)));
        }
    }

    // 7. iterator scan: variables initialised to a positive constant and
    //    incremented are counters; their reversed form counts down to zero.
    for counter in find_counters(program) {
        push_unique(
            &mut out_p,
            Pred::Cmp(CmpOp::Gt, Expr::Var(counter), Expr::Int(0)),
        );
    }

    (out_e, out_p)
}

/// Finds variables that are initialised to a constant `>= 1` somewhere and
/// incremented elsewhere — counter-style locals like `r` in run-length.
fn find_counters(program: &Program) -> Vec<VarId> {
    let mut init_pos: Vec<VarId> = Vec::new();
    let mut incremented: Vec<VarId> = Vec::new();
    fn walk(stmts: &[Stmt], init_pos: &mut Vec<VarId>, incremented: &mut Vec<VarId>) {
        for s in stmts {
            match s {
                Stmt::Assign(pairs) => {
                    for (v, e) in pairs {
                        match e {
                            Expr::Int(c) if *c >= 1 => push_unique(init_pos, *v),
                            Expr::Add(a, b) => {
                                let reads_self = **a == Expr::Var(*v) || **b == Expr::Var(*v);
                                if reads_self {
                                    push_unique(incremented, *v);
                                }
                            }
                            _ => {}
                        }
                    }
                }
                Stmt::If(_, t, e) => {
                    walk(t, init_pos, incremented);
                    walk(e, init_pos, incremented);
                }
                Stmt::While(_, _, b) => walk(b, init_pos, incremented),
                _ => {}
            }
        }
    }
    walk(&program.body, &mut init_pos, &mut incremented);
    init_pos.retain(|v| incremented.contains(v));
    init_pos
}

/// Step 3 + driver: mines candidates from `original` and renames them into
/// the frame of the composed program. `rename` maps original variable names
/// to their primed counterparts (e.g. `[("i", "iI"), ("m", "mI")]`); names
/// listed in `keep` stay unprimed (shared variables like the compressed
/// input array); all other names kill the candidates mentioning them.
pub fn mine(
    original: &Program,
    composed: &Program,
    rename: &[(&str, &str)],
    keep: &[&str],
) -> MinedSets {
    let (h_exprs, h_preds) = harvest(original);
    let (p_exprs, p_preds) = project(original, &h_exprs, &h_preds);

    // build the VarId translation from original ids to composed ids
    let mut map: HashMap<VarId, Option<VarId>> = HashMap::new();
    for (i, decl) in original.vars.iter().enumerate() {
        let from = VarId(i as u32);
        let target = rename
            .iter()
            .find(|(o, _)| *o == decl.name)
            .map(|(_, p)| *p)
            .or_else(|| {
                keep.contains(&decl.name.as_str())
                    .then_some(decl.name.as_str())
            });
        map.insert(from, target.and_then(|name| composed.var_by_name(name)));
    }

    let mut out = MinedSets::default();
    for e in p_exprs {
        if let Some(e2) = rename_expr(&e, &map) {
            push_unique(&mut out.exprs, e2);
        }
    }
    for p in p_preds {
        if let Some(p2) = rename_pred(&p, &map) {
            push_unique(&mut out.preds, p2);
        }
    }

    // the out-int progress predicates compare primed against unprimed: add
    // `m' < m` for each int output with both frames present
    let mut extra = Vec::new();
    for (orig_name, primed_name) in rename {
        let (Some(unprimed), Some(primed)) = (
            composed.var_by_name(orig_name),
            composed.var_by_name(primed_name),
        ) else {
            continue;
        };
        if composed.var(unprimed).ty == pins_ir::Type::Int
            && original
                .outputs()
                .iter()
                .any(|&v| original.var(v).name == *orig_name)
        {
            extra.push(Pred::Cmp(CmpOp::Lt, Expr::Var(primed), Expr::Var(unprimed)));
        }
    }
    for p in extra {
        push_unique(&mut out.preds, p);
    }
    out.preds.retain(|p| !trivial_pred(p));
    out
}

/// `x < x` and friends left over from the projection placeholder shapes.
fn trivial_pred(p: &Pred) -> bool {
    matches!(p, Pred::Cmp(_, a, b) if a == b)
}

fn rename_expr(e: &Expr, map: &HashMap<VarId, Option<VarId>>) -> Option<Expr> {
    Some(match e {
        Expr::Int(v) => Expr::Int(*v),
        Expr::Var(v) => Expr::Var((*map.get(v)?)?),
        Expr::Add(a, b) => Expr::Add(
            Box::new(rename_expr(a, map)?),
            Box::new(rename_expr(b, map)?),
        ),
        Expr::Sub(a, b) => Expr::Sub(
            Box::new(rename_expr(a, map)?),
            Box::new(rename_expr(b, map)?),
        ),
        Expr::Mul(a, b) => Expr::Mul(
            Box::new(rename_expr(a, map)?),
            Box::new(rename_expr(b, map)?),
        ),
        Expr::Sel(a, b) => Expr::Sel(
            Box::new(rename_expr(a, map)?),
            Box::new(rename_expr(b, map)?),
        ),
        Expr::Upd(a, b, c) => Expr::Upd(
            Box::new(rename_expr(a, map)?),
            Box::new(rename_expr(b, map)?),
            Box::new(rename_expr(c, map)?),
        ),
        Expr::Call(f, args) => Expr::Call(
            f.clone(),
            args.iter()
                .map(|a| rename_expr(a, map))
                .collect::<Option<Vec<_>>>()?,
        ),
        Expr::Hole(h) => Expr::Hole(*h),
    })
}

fn rename_pred(p: &Pred, map: &HashMap<VarId, Option<VarId>>) -> Option<Pred> {
    Some(match p {
        Pred::Bool(b) => Pred::Bool(*b),
        Pred::Star => Pred::Star,
        Pred::Cmp(op, a, b) => Pred::Cmp(*op, rename_expr(a, map)?, rename_expr(b, map)?),
        Pred::And(items) => Pred::And(
            items
                .iter()
                .map(|q| rename_pred(q, map))
                .collect::<Option<Vec<_>>>()?,
        ),
        Pred::Or(items) => Pred::Or(
            items
                .iter()
                .map(|q| rename_pred(q, map))
                .collect::<Option<Vec<_>>>()?,
        ),
        Pred::Not(q) => Pred::Not(Box::new(rename_pred(q, map)?)),
        Pred::Call(f, args) => Pred::Call(
            f.clone(),
            args.iter()
                .map(|a| rename_expr(a, map))
                .collect::<Option<Vec<_>>>()?,
        ),
        Pred::Hole(h) => Pred::Hole(*h),
    })
}

#[cfg(test)]
mod tests;
