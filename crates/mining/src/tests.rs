use pins_ir::{expr_to_string, parse_program, pred_to_string, CmpOp, Expr, Pred};

use crate::*;

const RUNLENGTH: &str = r#"
proc runlength(inout A: int[], in n: int, out N: int[], out m: int) {
  local i: int, r: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) {
    r := 1;
    while (i + 1 < n && A[i] = A[i + 1]) {
      r, i := r + 1, i + 1;
    }
    A[m] := A[i];
    N[m] := r;
    m, i := m + 1, i + 1;
  }
}
"#;

const RL_TEMPLATE: &str = r#"
proc rl_inverse(in A: int[], in N: int[], in m: int, out AI: int[], out iI: int) {
  local mI: int, rI: int;
  iI, mI := ?e1, ?e2;
  while (?p1) {
    rI := ?e3;
    while (?p2) {
      rI, iI, AI := ?e4, ?e5, ?e6;
    }
    mI := ?e7;
  }
}
"#;

fn composed() -> (pins_ir::Program, pins_ir::Program) {
    let p = parse_program(RUNLENGTH).unwrap();
    let t = parse_program(RL_TEMPLATE).unwrap();
    let (c, _, _) = p.concat(&t);
    (p, c)
}

#[test]
fn harvest_collects_rhs_and_guards() {
    let p = parse_program(RUNLENGTH).unwrap();
    let (exprs, preds) = harvest(&p);
    // paper lists: 0, 1, m+1, r+1, i+1, upd(A,m,sel(A,i)), upd(N,m,r)
    // and: sel(A,i)=sel(A,i+1), n>=0, i+1<n, i<n
    assert!(exprs.len() >= 6, "{exprs:?}");
    assert_eq!(preds.len(), 4, "{preds:?}");
}

#[test]
fn projections_add_inverted_forms() {
    let p = parse_program(RUNLENGTH).unwrap();
    let (exprs, preds) = harvest(&p);
    let (pe, pp) = project(&p, &exprs, &preds);
    let rendered: Vec<String> = pe.iter().map(|e| expr_to_string(&p, e)).collect();
    // addition inversion on m + 1
    assert!(rendered.iter().any(|s| s == "m - 1"), "{rendered:?}");
    // copy inversion on A[m] := A[i] i.e. upd(A, m, sel(A, i))
    assert!(
        rendered.iter().any(|s| s.contains("upd(A, i, A[m])")),
        "{rendered:?}"
    );
    let rendered_p: Vec<String> = pp.iter().map(|q| pred_to_string(&p, q)).collect();
    // counter r (initialised to 1, incremented) gives r > 0
    assert!(rendered_p.iter().any(|s| s == "r > 0"), "{rendered_p:?}");
}

#[test]
fn mine_renames_into_primed_frame_and_drops_n() {
    let (p, c) = composed();
    let mined = mine(
        &p,
        &c,
        &[("i", "iI"), ("m", "mI"), ("r", "rI"), ("A", "AI")],
        &["N", "m", "A"],
    );
    let re: Vec<String> = mined.exprs.iter().map(|e| expr_to_string(&c, e)).collect();
    let rp: Vec<String> = mined.preds.iter().map(|q| pred_to_string(&c, q)).collect();
    // primed arithmetic candidates exist
    assert!(re.iter().any(|s| s == "mI + 1"), "{re:?}");
    assert!(re.iter().any(|s| s == "rI - 1"), "{re:?}");
    // nothing mentions the dropped variable n
    assert!(!re.iter().any(|s| s.contains('n')), "{re:?}");
    assert!(
        !rp.iter()
            .any(|s| s.split(['<', '=', '>']).any(|p| p.trim() == "n")),
        "{rp:?}"
    );
    // the out-derived progress predicate appears
    assert!(rp.iter().any(|s| s == "mI < m"), "{rp:?}");
    // counter scan gives rI > 0
    assert!(rp.iter().any(|s| s == "rI > 0"), "{rp:?}");
}

#[test]
fn modification_count_matches_curation() {
    let (p, c) = composed();
    let mined = mine(
        &p,
        &c,
        &[("i", "iI"), ("m", "mI"), ("r", "rI"), ("A", "AI")],
        &["N", "m", "A"],
    );
    // a curated candidate present in the mined set costs no modification
    let present = mined.exprs[0].clone();
    assert_eq!(mined.modifications(&[present], &[]), 0);
    // an exotic candidate not mined costs one
    let exotic = Expr::Int(424_242);
    assert_eq!(mined.modifications(&[exotic], &[]), 1);
}

#[test]
fn trivial_predicates_are_dropped() {
    let (p, c) = composed();
    let mined = mine(&p, &c, &[("m", "mI")], &[]);
    for q in &mined.preds {
        assert!(
            !matches!(q, Pred::Cmp(_, a, b) if a == b),
            "trivial predicate survived: {}",
            pred_to_string(&c, q)
        );
    }
}

#[test]
fn mul_div_projection() {
    let src = r#"
extern mul(int, int): int;
extern div(int, int): int;
proc scale(inout x: int, in f: int) {
  x := mul(x, f);
}
"#;
    let p = parse_program(src).unwrap();
    let (exprs, preds) = harvest(&p);
    let (pe, _) = project(&p, &exprs, &preds);
    let rendered: Vec<String> = pe.iter().map(|e| expr_to_string(&p, e)).collect();
    assert!(
        rendered.iter().any(|s| s == "mul(x, div(1, f))"),
        "{rendered:?}"
    );
}

#[test]
fn out_int_predicates_only_for_int_outputs() {
    let src = r#"
proc f(in A: int[], out B: int[]) {
  B := upd(B, 0, A[0]);
}
"#;
    let p = parse_program(src).unwrap();
    let (exprs, preds) = harvest(&p);
    let (_, pp) = project(&p, &exprs, &preds);
    // no int outputs: no m' < m style predicates (array outputs skipped)
    assert!(pp
        .iter()
        .all(|q| !matches!(q, Pred::Cmp(CmpOp::Lt, Expr::Var(a), Expr::Var(b)) if a == b)));
}
