use super::*;
use pins_core::{Session, Spec, SpecItem};

fn add7_session_with_inverse(correct: bool) -> (Session, Program) {
    let inv_body = if correct {
        "xI := y - 7;"
    } else {
        "xI := y + 7;"
    };
    let mut session = Session::from_sources(
        "proc add7(in x: int, out y: int) { y := x + 7; }",
        &format!("proc add7_inv(in y: int, out xI: int) {{ {inv_body} }}"),
    );
    let c = session.composed.clone();
    session.spec = Spec {
        items: vec![SpecItem::IntEq {
            input: c.var_by_name("x").unwrap(),
            output: c.var_by_name("xI").unwrap(),
        }],
    };
    // the "inverse" here is the whole template part (already closed)
    let mut inverse = session.composed.clone();
    inverse.body = session.template_body().to_vec();
    (session, inverse)
}

#[test]
fn correct_inverse_verifies() {
    let (session, inverse) = add7_session_with_inverse(true);
    let report = check_inverse(&session, &inverse, BmcConfig::default());
    assert!(report.verified, "{report:?}");
    assert_eq!(report.paths, 1);
}

#[test]
fn wrong_inverse_refuted_with_counterexample() {
    let (session, inverse) = add7_session_with_inverse(false);
    let report = check_inverse(&session, &inverse, BmcConfig::default());
    assert!(!report.verified);
    assert!(report.counterexample.is_some());
}

fn double_session(inv_step: &str) -> (Session, Program) {
    let mut session = Session::from_sources(
        r#"
proc double(in n: int, out m: int) {
  local i: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) { m, i := m + 2, i + 1; }
}
"#,
        &format!(
            r#"
proc double_inv(in m: int, out nI: int) {{
  local j: int;
  j := 0; nI := 0;
  while (j < m) {{ nI, j := nI + 1, {inv_step}; }}
}}
"#
        ),
    );
    let c = session.composed.clone();
    session.spec = Spec {
        items: vec![SpecItem::IntEq {
            input: c.var_by_name("n").unwrap(),
            output: c.var_by_name("nI").unwrap(),
        }],
    };
    let mut inverse = session.composed.clone();
    inverse.body = session.template_body().to_vec();
    (session, inverse)
}

#[test]
fn loopy_inverse_verifies_within_bounds() {
    let (session, inverse) = double_session("j + 2");
    let config = BmcConfig {
        unroll: 5,
        input_bound: 3,
        ..BmcConfig::default()
    };
    let report = check_inverse(&session, &inverse, config);
    assert!(report.verified, "{report:?}");
    assert!(report.paths > 3);
}

#[test]
fn loopy_wrong_inverse_refuted() {
    let (session, inverse) = double_session("j + 1");
    let config = BmcConfig {
        unroll: 5,
        input_bound: 3,
        ..BmcConfig::default()
    };
    let report = check_inverse(&session, &inverse, config);
    assert!(!report.verified);
}
