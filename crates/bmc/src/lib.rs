//! A bounded model checker for validating synthesized inverses — the
//! stand-in for the paper's use of CBMC (§2.5, Table 3).
//!
//! Like CBMC, verification is *finitized*: loops are unrolled up to a bound
//! and integer inputs are range-bounded (which bounds array extents the
//! programs traverse). Within those bounds the check is exhaustive: every
//! complete path of `P ; P⁻¹` is enumerated and the identity specification
//! is discharged with the SMT solver. Unlike CBMC, axioms for library
//! functions *are* supported, because the checker shares PINS's solver —
//! the paper reports CBMC could not validate the 8 axiom-using benchmarks.
//!
//! # Example
//!
//! ```no_run
//! use pins_bmc::{check_inverse, BmcConfig};
//! # let session: pins_core::Session = unimplemented!();
//! # let inverse: pins_ir::Program = unimplemented!();
//! let report = check_inverse(&session, &inverse, BmcConfig::default());
//! assert!(report.verified);
//! ```

use std::time::{Duration, Instant};

use pins_budget::{Budget, StopReason};
use pins_core::Session;
use pins_ir::{Program, Type};
use pins_logic::TermId;
use pins_smt::{SmtConfig, SmtSession, Verdict};
use pins_symexec::{EmptyFiller, ExploreConfig, Explorer, SymCtx};

/// Finitization bounds.
#[derive(Debug, Clone, Copy)]
pub struct BmcConfig {
    /// Loop unrolling bound (the paper used 10).
    pub unroll: u32,
    /// Integer inputs are constrained to `[-bound, bound]`; this bounds the
    /// array sizes the programs traverse (the paper used 4–8).
    pub input_bound: i64,
    /// SMT configuration.
    pub smt: SmtConfig,
    /// Safety cap on enumerated paths.
    pub max_paths: usize,
    /// Wall-clock budget for the whole run (unrolling + discharge); on
    /// expiry the report comes back unverified with
    /// [`BmcReport::stopped`] set instead of hanging.
    pub time_budget: Option<Duration>,
}

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            unroll: 10,
            input_bound: 4,
            smt: SmtConfig::default(),
            max_paths: 100_000,
            time_budget: None,
        }
    }
}

/// The verdict of a bounded verification run.
#[derive(Debug, Clone)]
pub struct BmcReport {
    /// Whether every in-bounds path satisfies the identity specification.
    pub verified: bool,
    /// Number of complete paths checked.
    pub paths: usize,
    /// Description of the first violating path, if any.
    pub counterexample: Option<String>,
    /// Set when the run was cut short by the budget (or degraded on an
    /// arithmetic overflow) rather than refuted: the bounded claim is then
    /// *unestablished*, not falsified.
    pub stopped: Option<StopReason>,
    /// Wall-clock time.
    pub time: std::time::Duration,
}

/// Composes `session.original` with the closed `inverse` and verifies the
/// session's specification on every path within bounds.
///
/// # Panics
///
/// Panics if `inverse` still contains holes (verify resolved solutions).
pub fn check_inverse(session: &Session, inverse: &Program, config: BmcConfig) -> BmcReport {
    let mut span = pins_trace::span("bmc.check_inverse");
    let report = check_inverse_inner(session, inverse, &config);
    if span.is_active() {
        span.record_str("program", &inverse.name);
        span.record("verified", report.verified);
        span.record_u64("paths", report.paths as u64);
        span.record_u64("unroll_bound", config.unroll as u64);
        if let Some(reason) = report.stopped {
            span.record_str("stop_reason", &reason.to_string());
        }
    }
    report
}

fn check_inverse_inner(session: &Session, inverse: &Program, config: &BmcConfig) -> BmcReport {
    let config = *config;
    let start = Instant::now();
    // `inverse` shares the composed program's variable table (it is the
    // template part with holes substituted), so the checked program is the
    // original body followed by the inverse body.
    let mut composed = inverse.clone();
    composed.name = format!("{}_bmc", inverse.name);
    let mut body = session.original.body.clone();
    body.extend(inverse.body.iter().cloned());
    composed.body = body;
    assert_eq!(
        composed.num_eholes, 0,
        "bounded model checking requires a hole-free inverse"
    );

    let mut ctx = SymCtx::new(&composed);
    let axioms = session.axiom_terms(&mut ctx.arena);

    // range constraints on the original's integer inputs
    let mut bounds: Vec<TermId> = Vec::new();
    for v in session.original.inputs() {
        if session.original.var(v).ty == Type::Int {
            let name = session.original.var(v).name.clone();
            let cv = composed.var_by_name(&name).expect("shared input");
            let t = ctx.var_term(cv, 0);
            let lo = ctx.arena.mk_int(-config.input_bound);
            let hi = ctx.arena.mk_int(config.input_bound);
            let c1 = ctx.arena.mk_le(lo, t);
            let c2 = ctx.arena.mk_le(t, hi);
            bounds.push(c1);
            bounds.push(c2);
        }
    }

    let explore = ExploreConfig {
        max_unroll: config.unroll,
        max_steps: 10_000_000,
        exit_first: true,
        check_feasibility: false, // feasibility is part of each validity check
        axioms: axioms.clone(),
        smt: config.smt,
    };
    let budget = Budget::with_limits(config.time_budget, None);
    // all BMC solver traffic (unrolling feasibility + discharge) is
    // attributed to the inverse under check, phase `bmc`
    let prov = pins_trace::ProvenanceCtx::new(&inverse.name);
    let _phase = prov.enter_phase(pins_trace::Phase::Bmc);
    let mut explorer = Explorer::new(&composed, explore);
    explorer.set_budget(budget.clone());
    explorer.set_provenance(prov.clone());
    let paths = {
        let mut unroll_span = pins_trace::span("bmc.unroll");
        let paths = explorer.enumerate(&mut ctx, &EmptyFiller, config.max_paths);
        unroll_span.record_u64("paths", paths.len() as u64);
        paths
    };
    let total = paths.len();
    if let Some(reason) = explorer.stop_reason {
        return BmcReport {
            verified: false,
            paths: total,
            counterexample: None,
            stopped: Some(reason),
            time: start.elapsed(),
        };
    }

    // one session for the whole run: axioms and input bounds are asserted
    // persistently; each path contributes only its conjuncts + negated spec
    // as assumptions, so repeated path prefixes hit the query cache
    let mut smt = SmtSession::new(config.smt);
    smt.set_budget(budget);
    smt.set_provenance(prov.clone());
    for &ax in &axioms {
        smt.assert_axiom(ax);
    }
    for &b in &bounds {
        smt.assert(b);
    }

    let _discharge_span = pins_trace::span("bmc.discharge");
    for (i, path) in paths.into_iter().enumerate() {
        prov.set_path(i as u64 + 1);
        let spec = session.spec.to_term(&mut ctx, &path.final_vmap);
        let mut assumptions = path.conjuncts.clone();
        let neg = ctx.arena.mk_not(spec);
        assumptions.push(neg);
        match smt.verdict_under(&mut ctx.arena, &assumptions) {
            Verdict::Unsat => {}
            Verdict::Unknown { reason } => {
                // the solver was stopped, not refuted: report the budget
                // trip rather than a (nonexistent) counterexample
                return BmcReport {
                    verified: false,
                    paths: total,
                    counterexample: None,
                    stopped: Some(reason),
                    time: start.elapsed(),
                };
            }
            Verdict::Sat { .. } => {
                let mut shown = String::new();
                for &c in path.conjuncts.iter().take(12) {
                    shown.push_str(&format!("{}\n", ctx.arena.display(c)));
                }
                return BmcReport {
                    verified: false,
                    paths: total,
                    counterexample: Some(shown),
                    stopped: None,
                    time: start.elapsed(),
                };
            }
        }
    }
    BmcReport {
        verified: true,
        paths: total,
        counterexample: None,
        stopped: None,
        time: start.elapsed(),
    }
}

/// Quick helper: verify and return only the boolean verdict.
pub fn verifies(session: &Session, inverse: &Program, config: BmcConfig) -> bool {
    check_inverse(session, inverse, config).verified
}

#[cfg(test)]
mod tests;
