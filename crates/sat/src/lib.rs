//! A CDCL SAT solver: the propositional back-end of the PINS `solve`
//! procedure.
//!
//! The paper's constraint-solving step reduces synthesis constraints to SAT
//! over boolean *indicator variables* that choose candidate expressions and
//! predicates for each template hole; those SAT instances are reported to be
//! small (Table 2's `|SAT|` column). This crate provides the solver: standard
//! conflict-driven clause learning with two-watched-literal propagation,
//! first-UIP learning with clause minimisation, VSIDS decision heuristics with
//! phase saving, Luby restarts, learned-clause database reduction, and
//! incremental solving under assumptions (used for model enumeration via
//! blocking clauses).
//!
//! # Example
//!
//! ```
//! use pins_sat::{Solver, Lit, SolveResult};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(), SolveResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

mod heap;
mod solver;

pub use solver::{Lit, SolveResult, Solver, Var};

#[cfg(test)]
mod tests;
