use pins_budget::{Budget, StopReason};

use crate::heap::ActivityHeap;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Raw index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | sign`, where sign 1 means negated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// A literal of `v` with the given polarity (`true` = positive).
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether the literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// Raw code: `var << 1 | sign`. Stable across calls; usable as an
    /// external tag (the SMT layer uses it to label theory assertions).
    pub fn code(self) -> u32 {
        self.0
    }

    /// Reconstructs a literal from [`Lit::code`].
    pub fn from_code(code: u32) -> Lit {
        Lit(code)
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// Result of a `solve` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found (query it with [`Solver::value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The attached [`Budget`] ran out before a verdict was reached. The
    /// solver state stays valid: clauses persist and `solve` may be called
    /// again (e.g. with a larger budget).
    Interrupted(StopReason),
}

const L_UNDEF: i8 = 0;

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
}

#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

/// Minimum conflicts before a solve call earns a `sat.solve` trace event.
/// Keeps tracing overhead bounded: trivial calls (the overwhelming majority
/// in a CEGIS loop) stay silent, while the calls that dominate wall-clock
/// time are always visible.
const SAT_TRACE_MIN_CONFLICTS: u64 = 64;

/// A CDCL SAT solver. See the crate docs for an overview.
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    learnt_refs: Vec<u32>,
    watches: Vec<Vec<Watcher>>,
    /// Per-variable assignment: +1 true, -1 false, 0 unassigned.
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: ActivityHeap,
    polarity: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    max_learnts: f64,
    /// Assumption literals responsible for the most recent
    /// [`SolveResult::Unsat`] answer (see [`Solver::assumption_core`]).
    assumption_core: Vec<Lit>,
    /// Work budget charged per conflict and per decision.
    budget: Budget,
    /// Statistics: total conflicts encountered.
    pub conflicts: u64,
    /// Statistics: total decisions made.
    pub decisions: u64,
    /// Statistics: total propagations performed.
    pub propagations: u64,
    /// Statistics: total Luby restarts taken.
    pub restarts: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            learnt_refs: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: ActivityHeap::new(),
            polarity: Vec::new(),
            seen: Vec::new(),
            ok: true,
            max_learnts: 1000.0,
            assumption_core: Vec::new(),
            budget: Budget::unlimited(),
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            restarts: 0,
        }
    }

    /// Attaches the work budget polled during search. The default budget is
    /// unlimited.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(L_UNDEF);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.grow();
        self.order.insert(v.0, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of original (problem) clauses currently alive.
    pub fn num_clauses(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| !c.learnt && !c.deleted)
            .count()
    }

    /// Sum of literal counts over live problem clauses plus variables — the
    /// `|SAT|` size measure reported in the paper's Table 2.
    pub fn formula_size(&self) -> usize {
        self.num_vars()
            + self
                .clauses
                .iter()
                .filter(|c| !c.learnt && !c.deleted)
                .map(|c| c.lits.len())
                .sum::<usize>()
    }

    fn lit_value(&self, l: Lit) -> i8 {
        let a = self.assign[l.var().index()];
        if l.is_neg() {
            -a
        } else {
            a
        }
    }

    /// The model value of `v` after a [`SolveResult::Sat`] answer, or `None`
    /// if the variable is unassigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assign[v.index()] {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the clause system became trivially
    /// unsatisfiable. May be called between `solve` calls (the solver resets
    /// to decision level 0 first).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        // tautology / level-0 simplification
        let mut simplified = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: contains l and !l adjacent after sort
            }
            match self.lit_value(l) {
                1 => return true, // already satisfied at level 0
                -1 => {}          // falsified at level 0: drop
                _ => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach(simplified, false);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        let cref = self.clauses.len() as u32;
        let w0 = Watcher {
            cref,
            blocker: lits[1],
        };
        let w1 = Watcher {
            cref,
            blocker: lits[0],
        };
        self.watches[(!lits[0]).code() as usize].push(w0);
        self.watches[(!lits[1]).code() as usize].push(w1);
        if learnt {
            self.learnt_refs.push(cref);
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
        });
        cref
    }

    fn unchecked_enqueue(&mut self, l: Lit, from: Option<u32>) {
        debug_assert_eq!(self.lit_value(l), L_UNDEF);
        let v = l.var().index();
        self.assign[v] = if l.is_neg() { -1 } else { 1 };
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause reference on conflict.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let mut i = 0;
            let mut ws = std::mem::take(&mut self.watches[p.code() as usize]);
            let mut j = 0;
            let mut conflict = None;
            'outer: while i < ws.len() {
                let w = ws[i];
                i += 1;
                // quick check: blocker already true
                if self.lit_value(w.blocker) == 1 {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.cref as usize;
                if self.clauses[cref].deleted {
                    continue; // lazily drop watcher
                }
                // make sure the false literal is lits[1]
                let false_lit = !p;
                {
                    let c = &mut self.clauses[cref];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == 1 {
                    ws[j] = Watcher {
                        cref: w.cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // look for a new watch
                let len = self.clauses[cref].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cref].lits[k];
                    if self.lit_value(lk) != -1 {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[(!lk).code() as usize].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                        });
                        continue 'outer;
                    }
                }
                // clause is unit or conflicting
                ws[j] = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == -1 {
                    // conflict: copy remaining watchers back and bail
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    conflict = Some(w.cref);
                } else {
                    self.unchecked_enqueue(first, Some(w.cref));
                }
            }
            ws.truncate(j);
            debug_assert!(self.watches[p.code() as usize].is_empty() || conflict.is_none());
            // merge watchers added while we were iterating (new watches for other lits
            // never target p's list, but be safe)
            let added = std::mem::replace(&mut self.watches[p.code() as usize], ws);
            self.watches[p.code() as usize].extend(added);
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for idx in (lim..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var();
            self.assign[v.index()] = L_UNDEF;
            self.polarity[v.index()] = !l.is_neg();
            self.reason[v.index()] = None;
            self.order.insert(v.0, &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.increased(v.0, &self.activity);
    }

    fn bump_clause(&mut self, cref: u32) {
        let c = &mut self.clauses[cref as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for &r in &self.learnt_refs {
                self.clauses[r as usize].activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for the asserting literal
        let mut path_c = 0u32;
        let mut p: Option<Lit> = None;
        let mut confl = conflict;
        let mut index = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();
        loop {
            if self.clauses[confl as usize].learnt {
                self.bump_clause(confl);
            }
            let lits = self.clauses[confl as usize].lits.clone();
            let start = if p.is_none() { 0 } else { 1 };
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] >= self.decision_level() {
                        path_c += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // next resolvent: most recent seen literal on the trail
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            path_c -= 1;
            if path_c == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("resolvent must have a reason");
        }
        learnt[0] = !p.unwrap();

        // clause minimisation: drop literals implied by the rest
        let mut kept = vec![learnt[0]];
        'lits: for &l in &learnt[1..] {
            if let Some(r) = self.reason[l.var().index()] {
                let rlits = &self.clauses[r as usize].lits;
                for &q in &rlits[1..] {
                    if !self.seen[q.var().index()] && self.level[q.var().index()] > 0 {
                        kept.push(l);
                        continue 'lits;
                    }
                }
                // all antecedents are already in the learnt clause: redundant
            } else {
                kept.push(l);
            }
        }
        let mut learnt = kept;

        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // compute backjump level and move that literal to position 1
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn reduce_db(&mut self) {
        let mut refs = self.learnt_refs.clone();
        refs.retain(|&r| !self.clauses[r as usize].deleted);
        refs.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .activity
                .partial_cmp(&self.clauses[b as usize].activity)
                .unwrap()
        });
        let target = refs.len() / 2;
        let mut removed = 0;
        for &r in refs.iter() {
            if removed >= target {
                break;
            }
            if self.is_locked(r) || self.clauses[r as usize].lits.len() <= 2 {
                continue;
            }
            self.clauses[r as usize].deleted = true;
            removed += 1;
        }
        self.learnt_refs
            .retain(|&r| !self.clauses[r as usize].deleted);
    }

    fn is_locked(&self, cref: u32) -> bool {
        let first = self.clauses[cref as usize].lits[0];
        self.lit_value(first) == 1 && self.reason[first.var().index()] == Some(cref)
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v as usize] == L_UNDEF {
                return Some(Var(v));
            }
        }
        None
    }

    /// The assumption literals responsible for the most recent
    /// [`SolveResult::Unsat`] answer: a subset of the `assumptions` passed to
    /// [`Solver::solve_with_assumptions`] whose conjunction with the clause
    /// set is already unsatisfiable. Empty means the clauses alone are unsat
    /// (no assumption needed). Overwritten by every solve call.
    pub fn assumption_core(&self) -> &[Lit] {
        &self.assumption_core
    }

    /// Conflict analysis against a falsified assumption `p` (MiniSat's
    /// `analyzeFinal`): walks the trail backwards from the first decision,
    /// expanding reason clauses, and collects the assumption decisions the
    /// conflict ultimately rests on. Returns them as assumption literals
    /// (including `p` itself).
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            return core;
        }
        self.seen[p.var().index()] = true;
        let start = self.trail_lim[0];
        for idx in (start..self.trail.len()).rev() {
            let l = self.trail[idx];
            let v = l.var().index();
            if !self.seen[v] {
                continue;
            }
            self.seen[v] = false;
            match self.reason[v] {
                // a seen decision above level 0 is an assumption enqueue
                None => core.push(l),
                Some(cref) => {
                    let lits = self.clauses[cref as usize].lits.clone();
                    for &q in &lits[1..] {
                        if self.level[q.var().index()] > 0 {
                            self.seen[q.var().index()] = true;
                        }
                    }
                }
            }
        }
        self.seen[p.var().index()] = false;
        // defensive: clear any marks left below the walked range
        for l in &self.trail[..start] {
            self.seen[l.var().index()] = false;
        }
        core.sort_unstable();
        core.dedup();
        core
    }

    /// The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
    fn luby(mut x: u64) -> u64 {
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Solves the current clause set.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals. The assumptions only hold
    /// for this call; the learnt clauses persist.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !pins_trace::is_enabled() {
            return self.search(assumptions);
        }
        // Tracing path: the engine makes thousands of SAT calls per query,
        // so per-call events are sampled — only calls that did real search
        // work are recorded. Exact counters still accumulate on the solver
        // and surface through the enclosing query's registry cells.
        let (c0, d0, p0, r0) = (
            self.conflicts,
            self.decisions,
            self.propagations,
            self.restarts,
        );
        let start = std::time::Instant::now();
        let result = self.search(assumptions);
        let conflicts = self.conflicts - c0;
        if conflicts >= SAT_TRACE_MIN_CONFLICTS {
            let verdict = match result {
                SolveResult::Sat => "sat",
                SolveResult::Unsat => "unsat",
                SolveResult::Interrupted(_) => "interrupted",
            };
            pins_trace::point("sat.solve", || {
                vec![
                    ("dur_us", (start.elapsed().as_micros() as u64).into()),
                    ("conflicts", conflicts.into()),
                    ("decisions", (self.decisions - d0).into()),
                    ("propagations", (self.propagations - p0).into()),
                    ("restarts", (self.restarts - r0).into()),
                    ("vars", (self.num_vars() as u64).into()),
                    ("verdict", verdict.into()),
                ]
            });
        }
        result
    }

    /// The CDCL search loop behind [`Solver::solve_with_assumptions`].
    fn search(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.cancel_until(0);
        self.assumption_core.clear();
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveResult::Unsat;
        }
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = 100 * Self::luby(restart_count);
        let mut conflicts_this_restart = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_this_restart += 1;
                // timeline sample: every 256th conflict process-wide, so a
                // long solve leaves a sparse trail of search-shape events
                // while the disabled path stays a single masked branch
                if self.conflicts & 0xFF == 0 {
                    pins_trace::point("sat.conflict.sample", || {
                        vec![
                            ("conflicts", self.conflicts.into()),
                            ("level", (self.decision_level() as u64).into()),
                            ("trail", (self.trail.len() as u64).into()),
                            ("learnts", (self.learnt_refs.len() as u64).into()),
                        ]
                    });
                }
                if let Err(reason) = self.budget.charge(1) {
                    return SolveResult::Interrupted(reason);
                }
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach(learnt, true);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(asserting, Some(cref));
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.learnt_refs.len() as f64 >= self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.1;
                }
            } else {
                if conflicts_this_restart >= conflicts_until_restart {
                    restart_count += 1;
                    self.restarts += 1;
                    pins_trace::point("sat.restart", || {
                        vec![
                            ("restart", restart_count.into()),
                            ("conflicts", self.conflicts.into()),
                            ("learnts", (self.learnt_refs.len() as u64).into()),
                        ]
                    });
                    conflicts_until_restart = 100 * Self::luby(restart_count);
                    conflicts_this_restart = 0;
                    self.cancel_until(0);
                    continue;
                }
                // decide: assumptions first, then VSIDS
                if (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        1 => {
                            // already satisfied: open a dummy level
                            self.trail_lim.push(self.trail.len());
                        }
                        -1 => {
                            // the assumption is falsified by earlier
                            // assumptions + propagation: extract which ones
                            self.assumption_core = self.analyze_final(p);
                            return SolveResult::Unsat;
                        }
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.unchecked_enqueue(p, None);
                        }
                    }
                } else {
                    // poll before popping the heap so an interrupt cannot
                    // lose an unassigned variable from the decision order
                    if let Err(reason) = self.budget.charge(1) {
                        return SolveResult::Interrupted(reason);
                    }
                    match self.pick_branch_var() {
                        None => return SolveResult::Sat,
                        Some(v) => {
                            self.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let lit = Lit::new(v, self.polarity[v.index()]);
                            self.unchecked_enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }
}
