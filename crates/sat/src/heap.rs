//! An indexed max-heap over variable activities, used by the VSIDS decision
//! heuristic. Supports O(log n) insert/remove-max and O(log n) priority
//! increase for an element already in the heap.

#[derive(Debug, Default, Clone)]
pub(crate) struct ActivityHeap {
    /// Heap of variable indices ordered by activity.
    heap: Vec<u32>,
    /// `pos[v]` is the index of `v` in `heap`, or `NOT_IN` if absent.
    pos: Vec<u32>,
}

const NOT_IN: u32 = u32::MAX;

impl ActivityHeap {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers a new variable (initially outside the heap).
    pub(crate) fn grow(&mut self) {
        self.pos.push(NOT_IN);
    }

    pub(crate) fn contains(&self, v: u32) -> bool {
        self.pos[v as usize] != NOT_IN
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn insert(&mut self, v: u32, activity: &[f64]) {
        if self.contains(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as u32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    pub(crate) fn pop_max(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().unwrap();
        self.pos[top as usize] = NOT_IN;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Re-establishes heap order after `v`'s activity increased.
    pub(crate) fn increased(&mut self, v: u32, activity: &[f64]) {
        let p = self.pos[v as usize];
        if p != NOT_IN {
            self.sift_up(p as usize, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, act: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if act[self.heap[i] as usize] <= act[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize, act: &[f64]) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && act[self.heap[l] as usize] > act[self.heap[best] as usize] {
                best = l;
            }
            if r < self.heap.len() && act[self.heap[r] as usize] > act[self.heap[best] as usize] {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as u32;
        self.pos[self.heap[j] as usize] = j as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_orders_by_activity() {
        let mut h = ActivityHeap::new();
        let act = vec![1.0, 5.0, 3.0, 4.0];
        for v in 0..4 {
            h.grow();
            h.insert(v, &act);
        }
        assert_eq!(h.pop_max(&act), Some(1));
        assert_eq!(h.pop_max(&act), Some(3));
        assert_eq!(h.pop_max(&act), Some(2));
        assert_eq!(h.pop_max(&act), Some(0));
        assert_eq!(h.pop_max(&act), None);
    }

    #[test]
    fn increase_resifts() {
        let mut h = ActivityHeap::new();
        let mut act = vec![1.0, 2.0, 3.0];
        for v in 0..3 {
            h.grow();
            h.insert(v, &act);
        }
        act[0] = 10.0;
        h.increased(0, &act);
        assert_eq!(h.pop_max(&act), Some(0));
    }

    #[test]
    fn reinsert_is_idempotent() {
        let mut h = ActivityHeap::new();
        let act = vec![1.0];
        h.grow();
        h.insert(0, &act);
        h.insert(0, &act);
        assert_eq!(h.pop_max(&act), Some(0));
        assert!(h.is_empty());
    }
}
