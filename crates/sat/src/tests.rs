use crate::{Lit, SolveResult, Solver, Var};
use pins_prng::SplitMix64;

/// Number of randomized cases to run: small by default so the hermetic
/// tier-1 run stays fast, larger under `--features heavy-tests`.
fn cases(light: usize, heavy: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        light
    }
}

fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
    (0..n).map(|_| s.new_var()).collect()
}

#[test]
fn empty_formula_is_sat() {
    let mut s = Solver::new();
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn unit_clause_forces_value() {
    let mut s = Solver::new();
    let v = s.new_var();
    assert!(s.add_clause(&[Lit::neg(v)]));
    assert_eq!(s.solve(), SolveResult::Sat);
    assert_eq!(s.value(v), Some(false));
}

#[test]
fn contradictory_units_are_unsat() {
    let mut s = Solver::new();
    let v = s.new_var();
    assert!(s.add_clause(&[Lit::pos(v)]));
    assert!(!s.add_clause(&[Lit::neg(v)]));
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn simple_implication_chain() {
    let mut s = Solver::new();
    let v = vars(&mut s, 5);
    for i in 0..4 {
        s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]);
    }
    s.add_clause(&[Lit::pos(v[0])]);
    assert_eq!(s.solve(), SolveResult::Sat);
    for &x in &v {
        assert_eq!(s.value(x), Some(true));
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // j indexes every pigeon's row
fn pigeonhole_3_into_2_is_unsat() {
    // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
    for row in &p {
        s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
    }
    for j in 0..2 {
        for i1 in 0..3 {
            for i2 in (i1 + 1)..3 {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
#[allow(clippy::needless_range_loop)] // j indexes every pigeon's row
fn pigeonhole_5_into_4_is_unsat() {
    let n = 5;
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..n).map(|_| vars(&mut s, n - 1)).collect();
    for row in &p {
        let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&lits);
    }
    for j in 0..n - 1 {
        for i1 in 0..n {
            for i2 in (i1 + 1)..n {
                s.add_clause(&[Lit::neg(p[i1][j]), Lit::neg(p[i2][j])]);
            }
        }
    }
    assert_eq!(s.solve(), SolveResult::Unsat);
}

#[test]
fn tautologies_are_ignored() {
    let mut s = Solver::new();
    let v = s.new_var();
    assert!(s.add_clause(&[Lit::pos(v), Lit::neg(v)]));
    assert_eq!(s.num_clauses(), 0);
    assert_eq!(s.solve(), SolveResult::Sat);
}

#[test]
fn assumptions_restrict_but_do_not_persist() {
    let mut s = Solver::new();
    let a = s.new_var();
    let b = s.new_var();
    s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
    // unsat under both-false assumptions
    assert_eq!(
        s.solve_with_assumptions(&[Lit::neg(a), Lit::neg(b)]),
        SolveResult::Unsat
    );
    // still sat without them
    assert_eq!(s.solve(), SolveResult::Sat);
    // and sat under a single assumption, which the model must respect
    assert_eq!(s.solve_with_assumptions(&[Lit::neg(a)]), SolveResult::Sat);
    assert_eq!(s.value(a), Some(false));
    assert_eq!(s.value(b), Some(true));
}

#[test]
fn model_enumeration_with_blocking_clauses() {
    let mut s = Solver::new();
    let v = vars(&mut s, 3);
    // no constraints: 8 models
    let mut count = 0;
    while s.solve() == SolveResult::Sat {
        count += 1;
        assert!(count <= 8, "enumerated too many models");
        let blocking: Vec<Lit> = v
            .iter()
            .map(|&x| Lit::new(x, !s.value(x).unwrap()))
            .collect();
        if !s.add_clause(&blocking) {
            break;
        }
    }
    assert_eq!(count, 8);
}

#[test]
fn exactly_one_constraint() {
    let mut s = Solver::new();
    let v = vars(&mut s, 4);
    let all: Vec<Lit> = v.iter().map(|&x| Lit::pos(x)).collect();
    s.add_clause(&all);
    for i in 0..4 {
        for j in (i + 1)..4 {
            s.add_clause(&[Lit::neg(v[i]), Lit::neg(v[j])]);
        }
    }
    let mut models = 0;
    while s.solve() == SolveResult::Sat {
        models += 1;
        assert!(models <= 4);
        let trues: Vec<_> = v.iter().filter(|&&x| s.value(x) == Some(true)).collect();
        assert_eq!(trues.len(), 1);
        let blocking: Vec<Lit> = v
            .iter()
            .map(|&x| Lit::new(x, !s.value(x).unwrap()))
            .collect();
        if !s.add_clause(&blocking) {
            break;
        }
    }
    assert_eq!(models, 4);
}

#[test]
fn lit_negation_round_trips() {
    let v = Var(7);
    let l = Lit::pos(v);
    assert_eq!(!(!l), l);
    assert_eq!((!l).var(), v);
    assert!((!l).is_neg());
}

/// Brute-force satisfiability for cross-checking (up to ~12 variables).
fn brute_force(num_vars: usize, clauses: &[Vec<(usize, bool)>]) -> bool {
    'outer: for m in 0u32..(1 << num_vars) {
        for clause in clauses {
            let sat = clause
                .iter()
                .any(|&(v, positive)| ((m >> v) & 1 == 1) == positive);
            if !sat {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn random_clause(rng: &mut SplitMix64, num_vars: usize) -> Vec<(usize, bool)> {
    let len = rng.gen_index(4) + 1;
    (0..len)
        .map(|_| (rng.gen_index(num_vars), rng.gen_bool(0.5)))
        .collect()
}

fn random_clauses(
    rng: &mut SplitMix64,
    num_vars: usize,
    min: usize,
    max: usize,
) -> Vec<Vec<(usize, bool)>> {
    let count = min + rng.gen_index(max - min);
    (0..count).map(|_| random_clause(rng, num_vars)).collect()
}

#[test]
fn solver_agrees_with_brute_force() {
    let mut rng = SplitMix64::new(0x5A7_0001);
    for _ in 0..cases(96, 512) {
        let clauses = random_clauses(&mut rng, 6, 1, 30);
        let mut s = Solver::new();
        let v = vars(&mut s, 6);
        let mut consistent = true;
        for clause in &clauses {
            let lits: Vec<Lit> = clause.iter().map(|&(i, pos)| Lit::new(v[i], pos)).collect();
            consistent &= s.add_clause(&lits);
        }
        let expected = brute_force(6, &clauses);
        let got = consistent && s.solve() == SolveResult::Sat;
        assert_eq!(got, expected, "disagreement on {clauses:?}");
        if got {
            // model must satisfy every clause
            for clause in &clauses {
                let ok = clause.iter().any(|&(i, pos)| s.value(v[i]) == Some(pos));
                assert!(ok, "model does not satisfy {clause:?}");
            }
        }
    }
}

#[test]
fn assumption_solving_matches_augmented_formula() {
    let mut rng = SplitMix64::new(0x5A7_0002);
    for _ in 0..cases(96, 512) {
        // solving with assumptions == solving with those units added
        let clauses = random_clauses(&mut rng, 5, 1, 20);
        let assumps: Vec<(usize, bool)> = (0..rng.gen_index(3))
            .map(|_| (rng.gen_index(5), rng.gen_bool(0.5)))
            .collect();
        let build = |extra: bool| {
            let mut s = Solver::new();
            let v = vars(&mut s, 5);
            let mut consistent = true;
            for clause in &clauses {
                let lits: Vec<Lit> = clause.iter().map(|&(i, pos)| Lit::new(v[i], pos)).collect();
                consistent &= s.add_clause(&lits);
            }
            if extra {
                for &(i, pos) in &assumps {
                    consistent &= s.add_clause(&[Lit::new(v[i], pos)]);
                }
            }
            (s, v, consistent)
        };
        let (mut s1, v1, c1) = build(false);
        let a: Vec<Lit> = assumps
            .iter()
            .map(|&(i, pos)| Lit::new(v1[i], pos))
            .collect();
        let r1 = c1 && s1.solve_with_assumptions(&a) == SolveResult::Sat;
        let (mut s2, _, c2) = build(true);
        let r2 = c2 && s2.solve() == SolveResult::Sat;
        assert_eq!(r1, r2, "assumption mismatch on {clauses:?} / {assumps:?}");
    }
}
