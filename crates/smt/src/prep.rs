//! Assertion preprocessing: negation normal form, skolemization of
//! existentials (negated universals), in-place grounding hooks for positive
//! universals, and elimination of non-boolean `ite` terms.

use std::collections::HashMap;

use pins_logic::{Sort, Term, TermArena, TermId, BOUND_VERSION};

/// The result of preprocessing one assertion.
#[derive(Debug, Default)]
pub struct Prepped {
    /// Ground boolean structure to hand to the CNF encoder.
    pub ground: Vec<TermId>,
    /// Universally quantified facts found in positive positions; they are
    /// grounded by e-matching instantiation (see [`crate::inst`]).
    pub axioms: Vec<TermId>,
}

/// Preprocesses `assertion` (positive polarity).
///
/// * `not (forall xs. body)` is skolemized: each bound variable becomes a
///   fresh constant.
/// * A `forall` in a *positive, top-level conjunctive* position is lifted
///   into [`Prepped::axioms`]. A `forall` in any other positive position
///   (e.g. under a disjunction) is grounded *in place* by instantiation
///   later, so we conservatively also lift it — sound for unsatisfiability
///   because replacing a positive `forall` with finitely many instances
///   weakens the formula only when the instances are conjoined in place;
///   here we keep the residual disjunct `true`, so satisfiable answers are
///   flagged incomplete by the solver when such a lift occurred.
/// * Non-boolean `ite(c, t, e)` is replaced by a fresh variable `v` with
///   defining constraints `(c => v = t) and (not c => v = e)`.
pub fn preprocess(arena: &mut TermArena, assertion: TermId, out: &mut Prepped) -> bool {
    let mut exact = true;
    let nnf = nnf(arena, assertion, false, out, &mut exact);
    let mut defs = Vec::new();
    let ground = elim_ite(arena, nnf, &mut defs);
    out.ground.push(ground);
    // ite definitions can themselves contain ites in conditions; elim_ite
    // recurses, so defs are ground here.
    out.ground.extend(defs);
    exact
}

fn nnf(
    arena: &mut TermArena,
    t: TermId,
    negate: bool,
    out: &mut Prepped,
    exact: &mut bool,
) -> TermId {
    match arena.term(t).clone() {
        Term::Not(inner) => nnf(arena, inner, !negate, out, exact),
        Term::And(kids) => {
            let kids: Vec<TermId> = kids
                .into_iter()
                .map(|k| nnf(arena, k, negate, out, exact))
                .collect();
            if negate {
                arena.mk_or(kids)
            } else {
                arena.mk_and(kids)
            }
        }
        Term::Or(kids) => {
            let kids: Vec<TermId> = kids
                .into_iter()
                .map(|k| nnf(arena, k, negate, out, exact))
                .collect();
            if negate {
                arena.mk_and(kids)
            } else {
                arena.mk_or(kids)
            }
        }
        Term::Forall(vars, body) => {
            if negate {
                // exists: skolemize with fresh constants
                let mut map = HashMap::new();
                for (sym, sort) in &vars {
                    let name = format!("sk!{}", arena.symbols().name(*sym));
                    let fresh = arena.symbols_mut().fresh(&name);
                    let bound = arena.mk_var(*sym, BOUND_VERSION, *sort);
                    let skolem = arena.mk_var(fresh, 0, *sort);
                    map.insert(bound, skolem);
                }
                let body = arena.substitute(body, &map);
                nnf(arena, body, true, out, exact)
            } else {
                // positive: lift to the axiom set; residual is `true`
                out.axioms.push(t);
                *exact = false;
                arena.mk_true()
            }
        }
        // Eq over booleans is an equivalence: negation stays at this node,
        // handled by the CNF encoder (we wrap with Not explicitly).
        _ => {
            if negate {
                arena.mk_not(t)
            } else {
                t
            }
        }
    }
}

/// Replaces non-boolean `ite` subterms by fresh variables, collecting the
/// defining constraints.
fn elim_ite(arena: &mut TermArena, t: TermId, defs: &mut Vec<TermId>) -> TermId {
    let mut memo = HashMap::new();
    elim_rec(arena, t, defs, &mut memo)
}

fn elim_rec(
    arena: &mut TermArena,
    t: TermId,
    defs: &mut Vec<TermId>,
    memo: &mut HashMap<TermId, TermId>,
) -> TermId {
    if let Some(&r) = memo.get(&t) {
        return r;
    }
    let result = match arena.term(t).clone() {
        Term::Ite(c, a, b) => {
            let c = elim_rec(arena, c, defs, memo);
            let a = elim_rec(arena, a, defs, memo);
            let b = elim_rec(arena, b, defs, memo);
            let sort = arena.sort(a);
            let fresh = arena.symbols_mut().fresh("ite!v");
            let v = arena.mk_var(fresh, 0, sort);
            let eq_t = mk_any_eq(arena, v, a, sort);
            let eq_e = mk_any_eq(arena, v, b, sort);
            let pos = arena.mk_implies(c, eq_t);
            let neg = arena.mk_or(vec![c, eq_e]);
            defs.push(pos);
            defs.push(neg);
            v
        }
        Term::IntConst(_) | Term::BoolConst(_) | Term::Var { .. } | Term::Hole(..) => t,
        Term::Add(a, b) => {
            let (a, b) = (
                elim_rec(arena, a, defs, memo),
                elim_rec(arena, b, defs, memo),
            );
            arena.mk_add(a, b)
        }
        Term::Sub(a, b) => {
            let (a, b) = (
                elim_rec(arena, a, defs, memo),
                elim_rec(arena, b, defs, memo),
            );
            arena.mk_sub(a, b)
        }
        Term::Mul(a, b) => {
            let (a, b) = (
                elim_rec(arena, a, defs, memo),
                elim_rec(arena, b, defs, memo),
            );
            arena.mk_mul(a, b)
        }
        Term::Sel(a, b) => {
            let (a, b) = (
                elim_rec(arena, a, defs, memo),
                elim_rec(arena, b, defs, memo),
            );
            arena.mk_sel(a, b)
        }
        Term::Upd(a, b, c) => {
            let a = elim_rec(arena, a, defs, memo);
            let b = elim_rec(arena, b, defs, memo);
            let c = elim_rec(arena, c, defs, memo);
            arena.mk_upd(a, b, c)
        }
        Term::App(f, args) => {
            let args = args
                .into_iter()
                .map(|x| elim_rec(arena, x, defs, memo))
                .collect();
            arena.mk_app(f, args)
        }
        Term::Eq(a, b) => {
            let (a, b) = (
                elim_rec(arena, a, defs, memo),
                elim_rec(arena, b, defs, memo),
            );
            arena.mk_eq(a, b)
        }
        Term::Le(a, b) => {
            let (a, b) = (
                elim_rec(arena, a, defs, memo),
                elim_rec(arena, b, defs, memo),
            );
            arena.mk_le(a, b)
        }
        Term::Lt(a, b) => {
            let (a, b) = (
                elim_rec(arena, a, defs, memo),
                elim_rec(arena, b, defs, memo),
            );
            arena.mk_lt(a, b)
        }
        Term::Not(a) => {
            let a = elim_rec(arena, a, defs, memo);
            arena.mk_not(a)
        }
        Term::And(kids) => {
            let kids = kids
                .into_iter()
                .map(|k| elim_rec(arena, k, defs, memo))
                .collect();
            arena.mk_and(kids)
        }
        Term::Or(kids) => {
            let kids = kids
                .into_iter()
                .map(|k| elim_rec(arena, k, defs, memo))
                .collect();
            arena.mk_or(kids)
        }
        Term::Forall(vars, body) => {
            // inside an axiom body; leave intact (instantiation substitutes first)
            let body = elim_rec(arena, body, defs, memo);
            arena.mk_forall(vars, body)
        }
    };
    memo.insert(t, result);
    result
}

fn mk_any_eq(arena: &mut TermArena, a: TermId, b: TermId, sort: Sort) -> TermId {
    debug_assert_eq!(arena.sort(a), sort);
    arena.mk_eq(a, b)
}
