//! E-matching modulo congruence: axiom instantiation against the current
//! EUF e-graph, run inside the theory loop.
//!
//! The upfront syntactic instantiation ([`crate::inst`]) misses instances
//! whose trigger only matches *up to equality* — e.g. the string axiom
//! `forall s,c,i. i < strlen(s) => charat(appendc(s,c), i) = charat(s, i)`
//! must fire on `charat(w', t)` where `w'` is merely *congruent* to an
//! `appendc` chain. This module matches trigger patterns against e-graph
//! classes: a function pattern matches a term if any member of the term's
//! class has the right head symbol.

use std::collections::{HashMap, HashSet};

use pins_budget::Budget;
use pins_logic::{collect_subterms, Sort, Term, TermArena, TermId, BOUND_VERSION};

use crate::euf::Euf;

/// Budget for congruence-aware instantiation per theory round.
#[derive(Debug, Clone, Copy)]
pub struct EmatchConfig {
    /// Maximum instances produced per `check` overall.
    pub max_instances: usize,
    /// Maximum matching branches explored per trigger/term pair.
    pub max_branches: usize,
}

impl Default for EmatchConfig {
    fn default() -> Self {
        EmatchConfig {
            max_instances: 2000,
            max_branches: 64,
        }
    }
}

type Subst = HashMap<TermId, TermId>;

/// Runs one e-matching round of `axioms` against the e-graph in `euf`.
/// Returns ground instances not seen before (tracked in `done`). Polls
/// `budget` between axioms and bails out early (with the instances gathered
/// so far) when it is exhausted; the caller detects the stop at its own
/// loop head.
pub fn ematch_round(
    arena: &mut TermArena,
    euf: &mut Euf,
    axioms: &[TermId],
    done: &mut HashSet<(TermId, Vec<TermId>)>,
    instances_so_far: usize,
    config: EmatchConfig,
    budget: &Budget,
) -> Vec<TermId> {
    // group registered terms by class
    let class_terms = euf.class_of_terms();
    let mut members: HashMap<u32, Vec<TermId>> = HashMap::new();
    for &(t, root) in &class_terms {
        members.entry(root).or_default().push(t);
    }
    let mut root_of: HashMap<TermId, u32> = HashMap::new();
    for &(t, root) in &class_terms {
        root_of.insert(t, root);
    }
    // canonical representative per class: the smallest term id (stable as
    // ids only grow), so duplicate matches across members collapse
    let mut repr: HashMap<u32, TermId> = HashMap::new();
    for (&root, terms) in &members {
        repr.insert(root, *terms.iter().min().unwrap());
    }
    let canon = |t: TermId, root_of: &HashMap<TermId, u32>| -> TermId {
        root_of
            .get(&t)
            .and_then(|r| repr.get(r))
            .copied()
            .unwrap_or(t)
    };
    // one seed per class, not per term; sorted, because seed order decides
    // which matches land inside the instance/branch caps and hash-map order
    // would make the instantiated set differ from process to process
    let mut seeds: Vec<TermId> = repr.values().copied().collect();
    seeds.sort_unstable();

    let mut out = Vec::new();
    for &ax in axioms {
        if budget.charge(1).is_err() {
            return out;
        }
        let Term::Forall(vars, body) = arena.term(ax).clone() else {
            continue;
        };
        let bound: Vec<(TermId, Sort)> = vars
            .iter()
            .map(|&(sym, sort)| (arena.mk_var(sym, BOUND_VERSION, sort), sort))
            .collect();
        let triggers = select_triggers(arena, body, &bound);
        if triggers.is_empty() {
            continue;
        }
        // seed matching from the first trigger over every registered term,
        // then refine through the remaining triggers
        let mut partials: Vec<Subst> = vec![HashMap::new()];
        for &trig in &triggers {
            let mut next: Vec<Subst> = Vec::new();
            for partial in &partials {
                for &t in &seeds {
                    let mut branches = vec![partial.clone()];
                    match_mod_euf(
                        arena,
                        &members,
                        &root_of,
                        trig,
                        t,
                        &mut branches,
                        config.max_branches,
                    );
                    // canonicalize bindings to class representatives
                    for b in &mut branches {
                        let canonical: Subst =
                            b.iter().map(|(&k, &v)| (k, canon(v, &root_of))).collect();
                        *b = canonical;
                    }
                    next.extend(branches);
                }
            }
            dedup_substs(&mut next);
            partials = next;
            if partials.is_empty() {
                break;
            }
        }
        for subst in partials {
            if !bound.iter().all(|&(v, _)| subst.contains_key(&v)) {
                continue;
            }
            let key: Vec<TermId> = bound.iter().map(|&(v, _)| subst[&v]).collect();
            if !done.insert((ax, key)) {
                continue;
            }
            if instances_so_far + out.len() >= config.max_instances {
                return out;
            }
            out.push(arena.substitute(body, &subst));
        }
    }
    out
}

fn dedup_substs(substs: &mut Vec<Subst>) {
    let mut seen: HashSet<Vec<(TermId, TermId)>> = HashSet::new();
    substs.retain(|s| {
        let mut key: Vec<(TermId, TermId)> = s.iter().map(|(&k, &v)| (k, v)).collect();
        key.sort_unstable();
        seen.insert(key)
    });
}

/// Extends each branch in `branches` with matches of `pat` against `t`
/// (modulo the congruence in `members`). Branches that fail are removed;
/// successful (possibly multiple) extensions are appended. The first entry
/// is treated as the seed and is removed unless it matched trivially.
fn match_mod_euf(
    arena: &TermArena,
    members: &HashMap<u32, Vec<TermId>>,
    root_of: &HashMap<TermId, u32>,
    pat: TermId,
    t: TermId,
    branches: &mut Vec<Subst>,
    max_branches: usize,
) {
    let seed = branches[0].clone();
    branches.clear();
    let mut work = vec![(seed, vec![(pat, t)])];
    while let Some((subst, mut goals)) = work.pop() {
        if branches.len() + work.len() > max_branches {
            break;
        }
        let Some((p, g)) = goals.pop() else {
            branches.push(subst);
            continue;
        };
        // bound variable: bind to the ground term (class-respecting)
        if let Term::Var { version, sort, .. } = arena.term(p) {
            if *version == BOUND_VERSION {
                if arena.sort(g) != *sort {
                    continue;
                }
                match subst.get(&p) {
                    Some(&existing) => {
                        let same = existing == g
                            || root_of
                                .get(&existing)
                                .is_some_and(|r1| root_of.get(&g).is_some_and(|r2| r1 == r2));
                        if same {
                            work.push((subst, goals));
                        }
                    }
                    None => {
                        let mut s2 = subst;
                        s2.insert(p, g);
                        work.push((s2, goals));
                    }
                }
                continue;
            }
        }
        // ground pattern subterm: require same class (or identity)
        if is_ground_pat(arena, p) {
            let same = p == g
                || root_of
                    .get(&p)
                    .is_some_and(|r1| root_of.get(&g).is_some_and(|r2| r1 == r2));
            if same {
                work.push((subst, goals));
            }
            continue;
        }
        // structural: try every member of g's class with the right shape
        let candidates: Vec<TermId> = match root_of.get(&g) {
            Some(root) => members.get(root).cloned().unwrap_or_default(),
            None => vec![g],
        };
        for cand in candidates {
            if let Some(child_goals) = shape_match(arena, p, cand) {
                let mut g2 = goals.clone();
                g2.extend(child_goals);
                work.push((subst.clone(), g2));
            }
        }
    }
}

fn is_ground_pat(arena: &TermArena, p: TermId) -> bool {
    let mut subs = HashSet::new();
    collect_subterms(arena, p, &mut subs);
    !subs
        .iter()
        .any(|&s| matches!(arena.term(s), Term::Var { version, .. } if *version == BOUND_VERSION))
}

/// If `p`'s head operator matches `cand`'s, returns the child goals.
fn shape_match(arena: &TermArena, p: TermId, cand: TermId) -> Option<Vec<(TermId, TermId)>> {
    match (arena.term(p), arena.term(cand)) {
        (Term::App(f, pargs), Term::App(h, cargs)) if f == h && pargs.len() == cargs.len() => {
            Some(pargs.iter().copied().zip(cargs.iter().copied()).collect())
        }
        (Term::Sel(a1, b1), Term::Sel(a2, b2)) => Some(vec![(*a1, *a2), (*b1, *b2)]),
        (Term::Upd(a1, b1, c1), Term::Upd(a2, b2, c2)) => {
            Some(vec![(*a1, *a2), (*b1, *b2), (*c1, *c2)])
        }
        (Term::Add(a1, b1), Term::Add(a2, b2))
        | (Term::Sub(a1, b1), Term::Sub(a2, b2))
        | (Term::Mul(a1, b1), Term::Mul(a2, b2)) => Some(vec![(*a1, *a2), (*b1, *b2)]),
        _ => None,
    }
}

/// Chooses trigger patterns (shared with the syntactic instantiator):
/// the smallest application subterm covering all bound variables, else a
/// greedy set.
fn select_triggers(arena: &TermArena, body: TermId, bound: &[(TermId, Sort)]) -> Vec<TermId> {
    let mut subs = HashSet::new();
    collect_subterms(arena, body, &mut subs);
    let bound_set: HashSet<TermId> = bound.iter().map(|&(v, _)| v).collect();
    let mut candidates: Vec<(TermId, HashSet<TermId>, usize)> = Vec::new();
    for &s in &subs {
        if !matches!(arena.term(s), Term::App(..) | Term::Sel(..) | Term::Upd(..)) {
            continue;
        }
        let mut inner = HashSet::new();
        collect_subterms(arena, s, &mut inner);
        let vars: HashSet<TermId> = inner.intersection(&bound_set).copied().collect();
        if vars.is_empty() {
            continue;
        }
        candidates.push((s, vars, inner.len()));
    }
    // term id as tie-break: equal-size candidates arrive in hash-set order
    candidates.sort_by_key(|&(t, _, size)| (size, t));
    for (s, vars, _) in &candidates {
        if vars.len() == bound_set.len() {
            return vec![*s];
        }
    }
    let mut chosen = Vec::new();
    let mut covered: HashSet<TermId> = HashSet::new();
    for (s, vars, _) in &candidates {
        if !vars.is_subset(&covered) {
            chosen.push(*s);
            covered.extend(vars.iter().copied());
            if covered.len() == bound_set.len() {
                return chosen;
            }
        }
    }
    Vec::new()
}
