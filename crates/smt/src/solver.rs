//! The DPLL(T) main loop: Tseitin CNF over theory atoms, lazy theory
//! checking of full SAT models, lemmas on demand (array read-over-write,
//! integer disequality splits, model-based theory combination) and
//! conflict-driven refinement.

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use pins_budget::{Budget, StopReason};
use pins_logic::{Sort, Term, TermArena, TermId};
use pins_sat::{Lit, SolveResult, Solver as SatSolver, Var};

use crate::ematch::{ematch_round, EmatchConfig};
use crate::euf::Euf;
use crate::inst::{instantiate, InstConfig};
use crate::linear::{linearize, LinExpr};
use crate::model::Model;
use crate::prep::{preprocess, Prepped};
use crate::rational::Rat;
use crate::simplex::{Conflict, Lia};

/// Tags above this base index into the synthetic-reason table (explanations
/// of EUF-propagated equalities); below it they are SAT literal codes.
const SYNTH_BASE: u32 = 1 << 30;

/// Solver configuration knobs.
#[derive(Debug, Clone, Copy)]
pub struct SmtConfig {
    /// Quantifier-instantiation budget.
    pub inst: InstConfig,
    /// Outer SAT-round budget before answering `Unknown`.
    pub max_theory_rounds: usize,
    /// Branch-and-bound depth for integer feasibility.
    pub bb_depth: u32,
    /// Per-query wall-clock limit (layered over any shared budget).
    pub time_limit: Option<Duration>,
    /// Per-query step limit over conflicts + pivots + instantiation rounds.
    pub step_limit: Option<u64>,
    /// Whether a session retries a budget-limited `Unknown` once with
    /// doubled budgets before giving up.
    pub retry_unknown: bool,
    /// Whether asserts registered through
    /// [`Smt::assert_term_tracked`] are guarded by assumption literals so
    /// every `Unsat` answer carries an unsat core of assert provenance ids
    /// ([`Smt::unsat_core`]). Tracking costs one selector variable and one
    /// extra literal per tracked root clause.
    pub track_cores: bool,
}

impl Default for SmtConfig {
    fn default() -> Self {
        SmtConfig {
            inst: InstConfig::default(),
            max_theory_rounds: 5000,
            bb_depth: 40,
            time_limit: None,
            step_limit: None,
            retry_unknown: true,
            track_cores: true,
        }
    }
}

impl SmtConfig {
    /// The escalated configuration a session retries with after a
    /// budget-limited `Unknown`: every budget knob doubled.
    pub fn escalate(&self) -> SmtConfig {
        SmtConfig {
            inst: InstConfig {
                max_rounds: self.inst.max_rounds.saturating_mul(2),
                max_instances: self.inst.max_instances.saturating_mul(2),
            },
            max_theory_rounds: self.max_theory_rounds.saturating_mul(2),
            bb_depth: self.bb_depth.saturating_mul(2),
            time_limit: self.time_limit.map(|d| d.saturating_mul(2)),
            step_limit: self.step_limit.map(|s| s.saturating_mul(2)),
            retry_unknown: false, // one escalation only
            track_cores: self.track_cores,
        }
    }
}

/// The verdict of a `check` call.
#[derive(Debug)]
pub enum SmtResult {
    /// Satisfiable, with a model. If [`Model::complete`] is false the answer
    /// is "satisfiable modulo the grounded approximation" (quantifier or
    /// branching budget was hit).
    Sat(Model),
    /// Proven unsatisfiable (trustworthy even with axioms: instantiation
    /// only strengthens refutations).
    Unsat,
    /// No verdict: the budget ran out, the query was cancelled, or theory
    /// arithmetic overflowed. The payload says which.
    Unknown(StopReason),
}

impl SmtResult {
    /// Whether the result proves unsatisfiability.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// Whether the result is (possibly approximately) satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }
}

/// Counters for the instrumentation PINS reports in Table 4.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmtStats {
    /// SAT solver invocations.
    pub sat_rounds: u64,
    /// Theory conflicts fed back as blocking clauses.
    pub theory_conflicts: u64,
    /// Theory lemmas (array, diseq-split) added.
    pub lemmas: u64,
    /// Quantifier instances generated.
    pub instances: u64,
    /// Final SAT formula size (vars + literal occurrences).
    pub formula_size: usize,
    /// Time in CNF preparation: quantifier grounding, preprocessing and
    /// Tseitin encoding of the asserted formulas.
    pub prep_time: Duration,
    /// Time inside the SAT core across all rounds.
    pub sat_time: Duration,
    /// Time in the EUF engine (congruence closure + array lemma scan).
    pub euf_time: Duration,
    /// Time in the simplex/branch-and-bound LIA engine (including
    /// model-based theory combination, which reads LIA values).
    pub lia_time: Duration,
    /// Time in congruence-aware e-matching rounds.
    pub ematch_time: Duration,
}

enum Outcome {
    Ok(Box<Model>),
    Conflict(Vec<u32>),
    Progress(Vec<TermId>, Vec<TermId>),
    Stopped(StopReason),
}

/// Bound on the iterative core-refinement passes after an assumption-level
/// `Unsat`: each pass re-solves under only the current core, which lets
/// conflict analysis shrink it further. Refinement re-uses the learnt
/// clause database, so a pass is normally pure propagation.
const CORE_REFINE_ROUNDS: usize = 3;

/// The unsat core of the most recent `Unsat` answer, as the provenance ids
/// passed to [`Smt::assert_term_tracked`].
#[derive(Debug, Clone, Default)]
pub struct TrackedCore {
    /// Sorted, deduplicated provenance ids whose conjunction (with the
    /// untracked asserts and axioms) is unsatisfiable.
    pub ids: Vec<u32>,
    /// Whether the ids were extracted from conflict analysis (`true`) or
    /// are a sound over-approximation — every tracked id — taken when the
    /// refutation closed through a hard theory clause before the assumption
    /// layer could attribute it (`false`).
    pub exact: bool,
}

/// A one-shot SMT solver instance: assert formulas, then call
/// [`Smt::check`].
pub struct Smt {
    config: SmtConfig,
    sat: SatSolver,
    lit_of: HashMap<TermId, Lit>,
    atom_var: HashMap<TermId, Var>,
    var_atoms: Vec<(TermId, Var)>,
    /// Ground roots to assert, each with the provenance id of the tracked
    /// assert it came from (`None` = hard, untracked).
    ground: Vec<(TermId, Option<u32>)>,
    axioms: Vec<TermId>,
    /// Selector literals guarding tracked roots, in first-use order.
    selectors: Vec<(u32, Lit)>,
    /// Tracked asserts that lifted quantified axioms during preprocessing:
    /// their axiom halves are untracked, so they are forced into every core.
    forced_core: Vec<u32>,
    /// Core of the most recent `Unsat` answer (see [`Smt::unsat_core`]).
    last_core: Option<TrackedCore>,
    exact: bool,
    true_lit: Option<Lit>,
    diseq_split: HashSet<TermId>,
    array_done: HashSet<(TermId, TermId)>,
    mbtc_done: HashSet<(TermId, TermId)>,
    ematch_done: HashSet<(TermId, Vec<TermId>)>,
    ematch_count: usize,
    /// Shared budget; `check` layers the config's per-query limits on top.
    budget: Budget,
    /// Statistics for the current instance.
    pub stats: SmtStats,
}

impl Smt {
    /// Creates a solver with the given configuration.
    pub fn new(config: SmtConfig) -> Self {
        Smt {
            config,
            sat: SatSolver::new(),
            lit_of: HashMap::new(),
            atom_var: HashMap::new(),
            var_atoms: Vec::new(),
            ground: Vec::new(),
            axioms: Vec::new(),
            selectors: Vec::new(),
            forced_core: Vec::new(),
            last_core: None,
            exact: true,
            true_lit: None,
            diseq_split: HashSet::new(),
            array_done: HashSet::new(),
            mbtc_done: HashSet::new(),
            ematch_done: HashSet::new(),
            ematch_count: 0,
            budget: Budget::unlimited(),
            stats: SmtStats::default(),
        }
    }

    /// Attaches a shared budget. `check` derives a per-query child from it
    /// using the config's `time_limit`/`step_limit`.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Asserts a formula (conjunction semantics across calls). `Forall`
    /// subformulas in positive positions are registered as axioms to be
    /// instantiated; negated universals are skolemized.
    pub fn assert_term(&mut self, arena: &mut TermArena, t: TermId) {
        self.assert_with_prov(arena, t, None);
    }

    /// Asserts a formula labelled with a caller-chosen provenance id. When
    /// [`SmtConfig::track_cores`] is on, every ground root of the formula is
    /// guarded by an assumption literal, so an `Unsat` answer reports (via
    /// [`Smt::unsat_core`]) which tracked asserts the refutation used.
    pub fn assert_term_tracked(&mut self, arena: &mut TermArena, t: TermId, prov: u32) {
        self.assert_with_prov(arena, t, Some(prov));
    }

    fn assert_with_prov(&mut self, arena: &mut TermArena, t: TermId, prov: Option<u32>) {
        let mut prep = Prepped::default();
        let exact = preprocess(arena, t, &mut prep);
        if !exact && !prep.axioms.is_empty() {
            // positive forall was lifted: sat answers are approximate
            self.exact = false;
        }
        if let Some(p) = prov {
            if !prep.axioms.is_empty() {
                // the quantified half is instantiated untracked; keeping the
                // assert in every core keeps cores sound (over-approximate)
                self.forced_core.push(p);
            }
        }
        self.ground
            .extend(prep.ground.into_iter().map(|g| (g, prov)));
        self.axioms.extend(prep.axioms);
    }

    /// The unsat core of the most recent `Unsat` answer from
    /// [`Smt::check`], as provenance ids of tracked asserts. `None` when no
    /// `Unsat` has been produced or tracking is off. An empty id list means
    /// the untracked asserts and axioms are unsatisfiable on their own.
    pub fn unsat_core(&self) -> Option<&TrackedCore> {
        self.last_core.as_ref()
    }

    fn true_lit(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let v = self.sat.new_var();
        let l = Lit::pos(v);
        self.sat.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    fn atom_lit(&mut self, t: TermId) -> Lit {
        if let Some(&v) = self.atom_var.get(&t) {
            return Lit::pos(v);
        }
        let v = self.sat.new_var();
        self.atom_var.insert(t, v);
        self.var_atoms.push((t, v));
        Lit::pos(v)
    }

    /// Tseitin-encodes boolean structure, returning the defining literal.
    fn encode(&mut self, arena: &mut TermArena, t: TermId) -> Lit {
        if let Some(&l) = self.lit_of.get(&t) {
            return l;
        }
        let lit = match arena.term(t).clone() {
            Term::BoolConst(b) => {
                let tl = self.true_lit();
                if b {
                    tl
                } else {
                    !tl
                }
            }
            Term::Var {
                sort: Sort::Bool, ..
            } => self.atom_lit(t),
            Term::Eq(a, b) if arena.sort(a).is_bool() => {
                let la = self.encode(arena, a);
                let lb = self.encode(arena, b);
                let v = self.sat.new_var();
                let lv = Lit::pos(v);
                self.sat.add_clause(&[!lv, !la, lb]);
                self.sat.add_clause(&[!lv, la, !lb]);
                self.sat.add_clause(&[lv, la, lb]);
                self.sat.add_clause(&[lv, !la, !lb]);
                lv
            }
            Term::Eq(..) | Term::Le(..) | Term::Lt(..) => self.atom_lit(t),
            Term::App(..) => {
                debug_assert!(arena.sort(t).is_bool(), "non-atom App in boolean position");
                self.atom_lit(t)
            }
            Term::Not(a) => {
                let la = self.encode(arena, a);
                !la
            }
            Term::And(kids) => {
                let lits: Vec<Lit> = kids.iter().map(|&k| self.encode(arena, k)).collect();
                let v = self.sat.new_var();
                let lv = Lit::pos(v);
                let mut back = vec![lv];
                for &l in &lits {
                    self.sat.add_clause(&[!lv, l]);
                    back.push(!l);
                }
                self.sat.add_clause(&back);
                lv
            }
            Term::Or(kids) => {
                let lits: Vec<Lit> = kids.iter().map(|&k| self.encode(arena, k)).collect();
                let v = self.sat.new_var();
                let lv = Lit::pos(v);
                let mut fwd = vec![!lv];
                for &l in &lits {
                    self.sat.add_clause(&[lv, !l]);
                    fwd.push(l);
                }
                self.sat.add_clause(&fwd);
                lv
            }
            Term::Forall(..) => {
                // residual nested quantifier: weaken to a free variable
                self.exact = false;
                Lit::pos(self.sat.new_var())
            }
            other => panic!("cannot encode non-boolean term {other:?}"),
        };
        self.lit_of.insert(t, lit);
        lit
    }

    fn assert_root(&mut self, arena: &mut TermArena, t: TermId) {
        let l = self.encode(arena, t);
        self.sat.add_clause(&[l]);
    }

    /// The selector literal guarding the tracked assert `prov`, allocated on
    /// first use. Selector variables only ever occur negatively in clauses,
    /// so a SAT-level refutation at decision level 0 is independent of every
    /// tracked assert (the empty core is sound).
    fn selector(&mut self, prov: u32) -> Lit {
        if let Some(&(_, l)) = self.selectors.iter().find(|&&(p, _)| p == prov) {
            return l;
        }
        let l = Lit::pos(self.sat.new_var());
        self.selectors.push((prov, l));
        l
    }

    /// Maps the SAT layer's failed-assumption set back to provenance ids,
    /// after bounded iterative refinement: re-solving under only the current
    /// core lets conflict analysis shrink it, and the persistent learnt
    /// clauses make each pass near-free propagation in the common case.
    fn extract_core(&mut self) -> TrackedCore {
        let mut core_lits = self.sat.assumption_core().to_vec();
        for _ in 0..CORE_REFINE_ROUNDS {
            if core_lits.len() <= 1 {
                break;
            }
            match self.sat.solve_with_assumptions(&core_lits) {
                SolveResult::Unsat => {
                    let smaller = self.sat.assumption_core().to_vec();
                    if smaller.len() < core_lits.len() {
                        core_lits = smaller;
                    } else {
                        break;
                    }
                }
                // interrupted (budget) or — defensively — sat: the previous
                // core is already sound, keep it
                _ => break,
            }
        }
        let mut ids: Vec<u32> = core_lits
            .iter()
            .filter_map(|l| {
                self.selectors
                    .iter()
                    .find(|&&(_, s)| s == *l)
                    .map(|&(p, _)| p)
            })
            .collect();
        ids.extend(self.forced_core.iter().copied());
        ids.sort_unstable();
        ids.dedup();
        TrackedCore { ids, exact: true }
    }

    /// Every tracked id: the sound over-approximation recorded when a hard
    /// theory clause closed the refutation below the assumption layer.
    fn fallback_core(&self) -> TrackedCore {
        let mut ids: Vec<u32> = self.selectors.iter().map(|&(p, _)| p).collect();
        ids.extend(self.forced_core.iter().copied());
        ids.sort_unstable();
        ids.dedup();
        TrackedCore { ids, exact: false }
    }

    /// Runs the decision procedure.
    pub fn check(&mut self, arena: &mut TermArena) -> SmtResult {
        // layer the per-query limits over the shared budget
        let budget = self
            .budget
            .child(self.config.time_limit, self.config.step_limit);
        let mut span = pins_trace::span("smt.check");
        if span.is_active() {
            if let Some(t) = budget.time_left() {
                span.record_u64("budget_ms_left", t.as_millis() as u64);
            }
            if let Some(s) = budget.steps_left() {
                span.record_u64("budget_steps_left", s);
            }
        }
        let before = self.stats;
        let result = self.check_inner(arena, &budget);
        if span.is_active() {
            span.record_str(
                "verdict",
                match &result {
                    SmtResult::Sat(_) => "sat",
                    SmtResult::Unsat => "unsat",
                    SmtResult::Unknown(_) => "unknown",
                },
            );
            if let SmtResult::Unknown(reason) = &result {
                span.record_str("stop_reason", &reason.to_string());
            }
            span.record_u64("sat_rounds", self.stats.sat_rounds - before.sat_rounds);
            span.record_u64(
                "theory_conflicts",
                self.stats.theory_conflicts - before.theory_conflicts,
            );
            span.record_u64("lemmas", self.stats.lemmas - before.lemmas);
            span.record_u64(
                "instances",
                self.stats.instances.saturating_sub(before.instances),
            );
            span.record_u64("formula_size", self.stats.formula_size as u64);
        }
        result
    }

    fn check_inner(&mut self, arena: &mut TermArena, budget: &Budget) -> SmtResult {
        self.sat.set_budget(budget.clone());
        self.last_core = None;
        // ground the axioms against the asserted formulas
        let t_prep = Instant::now();
        let roots = self.ground.clone();
        let root_terms: Vec<TermId> = roots.iter().map(|&(g, _)| g).collect();
        let out = instantiate(arena, &self.axioms, &root_terms, self.config.inst, budget);
        if out.truncated {
            self.exact = false;
        }
        if let Some(reason) = out.stopped {
            self.stats.prep_time += t_prep.elapsed();
            self.stats.formula_size = self.sat.formula_size();
            return SmtResult::Unknown(reason);
        }
        self.stats.instances = out.instances.len() as u64;
        let mut to_assert = roots;
        for inst in out.instances {
            let mut prep = Prepped::default();
            preprocess(arena, inst, &mut prep);
            to_assert.extend(prep.ground.into_iter().map(|g| (g, None)));
            // nested axioms inside instances are not supported
            if !prep.axioms.is_empty() {
                self.exact = false;
            }
        }
        let track = self.config.track_cores;
        for (g, prov) in to_assert {
            match prov {
                Some(p) if track => {
                    // guarded root: selector => root, so the root is only
                    // required while its selector is assumed true
                    let s = self.selector(p);
                    let l = self.encode(arena, g);
                    self.sat.add_clause(&[!s, l]);
                }
                _ => self.assert_root(arena, g),
            }
        }
        let sels: Vec<Lit> = self.selectors.iter().map(|&(_, l)| l).collect();
        self.stats.prep_time += t_prep.elapsed();

        for _round in 0..self.config.max_theory_rounds {
            if let Err(reason) = budget.charge(1) {
                self.stats.formula_size = self.sat.formula_size();
                return SmtResult::Unknown(reason);
            }
            self.stats.sat_rounds += 1;
            let t_sat = Instant::now();
            let sat_verdict = self.sat.solve_with_assumptions(&sels);
            self.stats.sat_time += t_sat.elapsed();
            match sat_verdict {
                SolveResult::Unsat => {
                    if track {
                        self.last_core = Some(self.extract_core());
                    }
                    self.stats.formula_size = self.sat.formula_size();
                    return SmtResult::Unsat;
                }
                SolveResult::Interrupted(reason) => {
                    self.stats.formula_size = self.sat.formula_size();
                    return SmtResult::Unknown(reason);
                }
                SolveResult::Sat => {
                    let assignment: Vec<(TermId, bool, Lit)> = self
                        .var_atoms
                        .iter()
                        .map(|&(t, v)| {
                            let val = self.sat.value(v).unwrap_or(false);
                            (t, val, Lit::new(v, val))
                        })
                        .collect();
                    match self.theory_check(arena, &assignment, budget) {
                        Outcome::Stopped(reason) => {
                            self.stats.formula_size = self.sat.formula_size();
                            return SmtResult::Unknown(reason);
                        }
                        Outcome::Ok(mut model) => {
                            model.complete = model.complete && self.exact;
                            self.stats.formula_size = self.sat.formula_size();
                            return SmtResult::Sat(*model);
                        }
                        Outcome::Conflict(tags) => {
                            self.stats.theory_conflicts += 1;
                            // timeline sample: every 16th theory conflict
                            if self.stats.theory_conflicts & 0xF == 1 {
                                pins_trace::point("smt.theory_conflict", || {
                                    vec![
                                        ("count", self.stats.theory_conflicts.into()),
                                        ("atoms", (tags.len() as u64).into()),
                                    ]
                                });
                            }
                            let blocking: Vec<Lit> =
                                tags.iter().map(|&t| !Lit::from_code(t)).collect();
                            if !self.sat.add_clause(&blocking) {
                                if track {
                                    // the refutation closed through a hard
                                    // clause at level 0: attribute it to
                                    // every tracked assert (sound, inexact)
                                    self.last_core = Some(self.fallback_core());
                                }
                                self.stats.formula_size = self.sat.formula_size();
                                return SmtResult::Unsat;
                            }
                        }
                        Outcome::Progress(lemmas, atoms) => {
                            self.stats.lemmas += lemmas.len() as u64;
                            pins_trace::point("smt.lemma", || {
                                vec![
                                    ("count", (lemmas.len() as u64).into()),
                                    ("new_atoms", (atoms.len() as u64).into()),
                                    ("total", self.stats.lemmas.into()),
                                ]
                            });
                            for lem in lemmas {
                                self.assert_root(arena, lem);
                            }
                            for a in atoms {
                                let _ = self.atom_lit(a); // register; SAT decides it
                            }
                        }
                    }
                }
            }
        }
        self.stats.formula_size = self.sat.formula_size();
        SmtResult::Unknown(StopReason::StepLimit)
    }

    /// Validates one full SAT model against the theories.
    fn theory_check(
        &mut self,
        arena: &mut TermArena,
        assignment: &[(TermId, bool, Lit)],
        budget: &Budget,
    ) -> Outcome {
        let t_euf = Instant::now();
        let mut euf = Euf::new();
        let mut lemmas: Vec<TermId> = Vec::new();
        // lemmas are marked as emitted only when actually returned; a theory
        // conflict in this round must not swallow them for future rounds
        let mut pending_splits: Vec<TermId> = Vec::new();
        let tt = arena.mk_true();

        // ---- EUF pass -----------------------------------------------------
        for &(atom, value, lit) in assignment {
            let tag = lit.code();
            match arena.term(atom).clone() {
                Term::Eq(a, b) if !arena.sort(a).is_bool() => {
                    if value {
                        euf.assert_eq(arena, a, b, tag);
                    } else {
                        euf.assert_neq(arena, a, b, tag);
                        if arena.sort(a).is_int() && !self.diseq_split.contains(&atom) {
                            // integer disequality split: !(a=b) => a<b \/ b<a
                            let lt1 = arena.mk_lt(a, b);
                            let lt2 = arena.mk_lt(b, a);
                            let lemma = arena.mk_or(vec![atom, lt1, lt2]);
                            lemmas.push(lemma);
                            pending_splits.push(atom);
                        }
                    }
                }
                Term::App(..) if arena.sort(atom).is_bool() => {
                    if value {
                        euf.assert_eq(arena, atom, tt, tag);
                    } else {
                        euf.assert_neq(arena, atom, tt, tag);
                    }
                }
                Term::Le(a, b) | Term::Lt(a, b) => {
                    // register operands so congruence sees their subterms
                    euf.add_term(arena, a);
                    euf.add_term(arena, b);
                }
                _ => {}
            }
        }
        if let Err(tags) = euf.check() {
            // the pending split lemmas are intentionally NOT marked done:
            // they were not asserted and must be re-generated next time
            self.stats.euf_time += t_euf.elapsed();
            return Outcome::Conflict(tags);
        }
        self.diseq_split.extend(pending_splits);

        // ---- array lemmas on demand ----------------------------------------
        let class_terms = euf.class_of_terms();
        let mut sels: Vec<(TermId, TermId, TermId)> = Vec::new();
        let mut upds: Vec<(TermId, TermId, TermId, TermId)> = Vec::new();
        for &(t, _) in &class_terms {
            match arena.term(t) {
                Term::Sel(a, i) => sels.push((t, *a, *i)),
                Term::Upd(b, j, v) => upds.push((t, *b, *j, *v)),
                _ => {}
            }
        }
        for &(s, a, i) in &sels {
            let ra = euf.root_of(a);
            for &(u, b, j, v) in &upds {
                if euf.root_of(u) != ra {
                    continue;
                }
                if !self.array_done.insert((s, u)) {
                    continue;
                }
                let guard = arena.mk_eq(a, u);
                let ij = arena.mk_eq(i, j);
                let sv = arena.mk_eq(s, v);
                let then_case = arena.mk_and(vec![ij, sv]);
                let nij = arena.mk_not(ij);
                let sel_b = arena.mk_sel(b, i);
                let sb = arena.mk_eq(s, sel_b);
                let else_case = arena.mk_and(vec![nij, sb]);
                let body = arena.mk_or(vec![then_case, else_case]);
                let lemma = arena.mk_implies(guard, body);
                if lemma != arena.mk_true() {
                    lemmas.push(lemma);
                }
            }
        }
        self.stats.euf_time += t_euf.elapsed();
        if !lemmas.is_empty() {
            return Outcome::Progress(lemmas, vec![]);
        }

        // ---- congruence-aware axiom instantiation ---------------------------
        if !self.axioms.is_empty() && self.ematch_count < self.config.inst.max_instances {
            let t_ematch = Instant::now();
            let axioms = self.axioms.clone();
            let new_instances = ematch_round(
                arena,
                &mut euf,
                &axioms,
                &mut self.ematch_done,
                self.ematch_count,
                EmatchConfig {
                    max_instances: self.config.inst.max_instances,
                    max_branches: 64,
                },
                budget,
            );
            if !new_instances.is_empty() {
                self.ematch_count += new_instances.len();
                self.stats.instances += new_instances.len() as u64;
                pins_trace::point("smt.ematch.round", || {
                    vec![
                        ("instances", (new_instances.len() as u64).into()),
                        ("total", (self.ematch_count as u64).into()),
                    ]
                });
                let mut ground = Vec::new();
                for inst in new_instances {
                    let mut prep = Prepped::default();
                    preprocess(arena, inst, &mut prep);
                    ground.extend(prep.ground);
                }
                if !ground.is_empty() {
                    self.stats.ematch_time += t_ematch.elapsed();
                    return Outcome::Progress(ground, vec![]);
                }
            }
            self.stats.ematch_time += t_ematch.elapsed();
        }

        let t_lia = Instant::now();
        let out = self.lia_and_model(arena, assignment, &mut euf, &class_terms, &sels, budget);
        self.stats.lia_time += t_lia.elapsed();
        out
    }

    /// The arithmetic back half of [`Smt::theory_check`]: the simplex/LIA
    /// pass, model-based theory combination, and model construction. Split
    /// out so the caller can attribute its time to the simplex accumulator.
    fn lia_and_model(
        &mut self,
        arena: &mut TermArena,
        assignment: &[(TermId, bool, Lit)],
        euf: &mut Euf,
        class_terms: &[(TermId, u32)],
        sels: &[(TermId, TermId, TermId)],
        budget: &Budget,
    ) -> Outcome {
        // ---- LIA pass -------------------------------------------------------
        let mut lia = Lia::new();
        lia.set_budget(budget.clone());
        let mut lvar: HashMap<TermId, usize> = HashMap::new();
        let mut synth: Vec<Vec<u32>> = Vec::new();
        let expand = |tags: Vec<u32>, synth: &Vec<Vec<u32>>| -> Vec<u32> {
            let mut out = Vec::new();
            for t in tags {
                if t >= SYNTH_BASE {
                    out.extend(synth[(t - SYNTH_BASE) as usize].iter().copied());
                } else {
                    out.push(t);
                }
            }
            out.sort_unstable();
            out.dedup();
            out
        };

        let assert_le = |lia: &mut Lia,
                         lvar: &mut HashMap<TermId, usize>,
                         expr: &LinExpr,
                         rhs: i64,
                         reason: u32|
         -> Result<(), Conflict> {
            // a linearization that overflowed i64 has unreliable numbers:
            // degrade the whole query rather than assert garbage bounds
            if expr.overflowed {
                return Err(Conflict::Stopped(StopReason::Overflow));
            }
            // expr <= rhs  (expr's own constant is folded into the bound)
            if expr.coeffs.is_empty() {
                if expr.constant <= rhs {
                    Ok(())
                } else {
                    Err(Conflict::Infeasible(vec![reason]))
                }
            } else {
                let terms: Vec<(usize, i64)> = expr
                    .coeffs
                    .iter()
                    .map(|(&t, &c)| {
                        let v = *lvar.entry(t).or_insert_with(|| lia.new_var());
                        (v, c)
                    })
                    .collect();
                let s = lia.slack_for(&terms)?;
                let bound = (rhs as i128) - (expr.constant as i128);
                lia.assert_upper(s, Rat::from_int128(bound), reason)
            }
        };

        for &(atom, value, lit) in assignment {
            let tag = lit.code();
            let result = match arena.term(atom).clone() {
                Term::Le(a, b) => {
                    let mut e = linearize(arena, a);
                    e.sub_assign(&linearize(arena, b));
                    if value {
                        assert_le(&mut lia, &mut lvar, &e, 0, tag)
                    } else {
                        let mut ne = LinExpr::default();
                        ne.sub_assign(&e);
                        assert_le(&mut lia, &mut lvar, &ne, -1, tag)
                    }
                }
                Term::Lt(a, b) => {
                    let mut e = linearize(arena, a);
                    e.sub_assign(&linearize(arena, b));
                    if value {
                        assert_le(&mut lia, &mut lvar, &e, -1, tag)
                    } else {
                        let mut ne = LinExpr::default();
                        ne.sub_assign(&e);
                        assert_le(&mut lia, &mut lvar, &ne, 0, tag)
                    }
                }
                Term::Eq(a, b) if arena.sort(a).is_int() => {
                    if value {
                        let mut e = linearize(arena, a);
                        e.sub_assign(&linearize(arena, b));
                        assert_le(&mut lia, &mut lvar, &e, 0, tag).and_then(|()| {
                            let mut ne = LinExpr::default();
                            ne.sub_assign(&e);
                            assert_le(&mut lia, &mut lvar, &ne, 0, tag)
                        })
                    } else {
                        Ok(()) // handled by the split lemma + EUF
                    }
                }
                _ => Ok(()),
            };
            match result {
                Ok(()) => {}
                Err(Conflict::Infeasible(tags)) => {
                    return Outcome::Conflict(expand(tags, &synth));
                }
                Err(Conflict::Stopped(reason)) => return Outcome::Stopped(reason),
            }
        }

        // EUF -> LIA equality propagation: merge arithmetic views of
        // congruent integer terms.
        // assert the merges in a fixed root order: assertion order shapes
        // slack creation and pivoting, so hash-map order would make the
        // model depend on the process. First-appearance order in
        // `class_terms` keeps the merges adjacent to the assertions that
        // produced the classes.
        let mut by_root: HashMap<u32, Vec<TermId>> = HashMap::new();
        let mut roots: Vec<u32> = Vec::new();
        for &(t, root) in class_terms {
            if arena.sort(t).is_int() {
                let members = by_root.entry(root).or_default();
                if members.is_empty() {
                    roots.push(root);
                }
                members.push(t);
            }
        }
        for root in roots {
            let members = &by_root[&root];
            if members.len() < 2 {
                continue;
            }
            let pivot = members[0];
            let lp = linearize(arena, pivot);
            for &m in &members[1..] {
                let mut e = lp.clone();
                e.sub_assign(&linearize(arena, m));
                if e.coeffs.is_empty() && e.constant == 0 {
                    continue;
                }
                let tags = euf.explain_terms(pivot, m);
                let reason = SYNTH_BASE + synth.len() as u32;
                synth.push(tags);
                let r = assert_le(&mut lia, &mut lvar, &e, 0, reason).and_then(|()| {
                    let mut ne = LinExpr::default();
                    ne.sub_assign(&e);
                    assert_le(&mut lia, &mut lvar, &ne, 0, reason)
                });
                match r {
                    Ok(()) => {}
                    Err(Conflict::Infeasible(tags)) => {
                        return Outcome::Conflict(expand(tags, &synth));
                    }
                    Err(Conflict::Stopped(reason)) => return Outcome::Stopped(reason),
                }
            }
        }

        match lia.check_int(self.config.bb_depth) {
            Ok(()) => {}
            Err(Conflict::Infeasible(tags)) => return Outcome::Conflict(expand(tags, &synth)),
            Err(Conflict::Stopped(reason)) => return Outcome::Stopped(reason),
        }
        let int_exact = !lia.int_incomplete;

        // ---- model-based theory combination ---------------------------------
        // integer terms under uninterpreted/array operators whose LIA values
        // coincide but whose EUF classes differ get a fresh equality atom.
        // The kids need not be opaque `lvar` atoms: `f(x)` with `x = 2` must
        // merge with `f(2)`, and `sel(a, y - z)` with `y - z = 3` must merge
        // with `sel(a, 3)` — any kid whose linear form evaluates under the
        // LIA assignment takes part. Pairs are restricted to kids that can
        // occupy *corresponding* congruence positions (same function symbol
        // and argument index; all array indices together; all update values
        // together): a merge across unrelated slots can never complete a
        // congruence, and value-coincidence is transitive, so any pair a
        // later round needs is regenerated within its own slot.
        const SLOT_SEL_UPD_IDX: u64 = 1;
        const SLOT_UPD_VAL: u64 = 2;
        const SLOT_APP_BASE: u64 = 3;
        let mut shared: Vec<(u64, i64, TermId)> = Vec::new();
        {
            let mut seen = HashSet::new();
            let mut add = |arena: &TermArena, slot: u64, k: TermId, seen: &mut HashSet<_>| {
                if arena.sort(k).is_int() && seen.insert((slot, k)) {
                    if let Some(v) = eval_int(arena, k, &lvar, &lia) {
                        shared.push((slot, v, k));
                    }
                }
            };
            for &(t, _) in class_terms {
                match arena.term(t) {
                    Term::App(f, args) => {
                        let (f, args) = (*f, args.clone());
                        for (pos, k) in args.into_iter().enumerate() {
                            let slot = SLOT_APP_BASE + ((f.index() as u64) << 16) + pos as u64;
                            add(arena, slot, k, &mut seen);
                        }
                    }
                    Term::Sel(_, i) => add(arena, SLOT_SEL_UPD_IDX, *i, &mut seen),
                    Term::Upd(_, i, v) => {
                        let (i, v) = (*i, *v);
                        add(arena, SLOT_SEL_UPD_IDX, i, &mut seen);
                        add(arena, SLOT_UPD_VAL, v, &mut seen);
                    }
                    _ => continue,
                }
            }
        }
        shared.sort_unstable();
        let mut new_atoms = Vec::new();
        for i in 0..shared.len() {
            for j in (i + 1)..shared.len() {
                let (slot_s, val_s, s) = shared[i];
                let (slot_t, val_t, t) = shared[j];
                if slot_s != slot_t || val_s != val_t {
                    break; // sorted: the (slot, value) group ends here
                }
                if s == t || euf.same_class(s, t) {
                    continue;
                }
                let key = (s.min(t), s.max(t));
                if !self.mbtc_done.insert(key) {
                    continue;
                }
                let eq = arena.mk_eq(s, t);
                if !self.atom_var.contains_key(&eq) {
                    new_atoms.push(eq);
                }
            }
        }
        if !new_atoms.is_empty() {
            return Outcome::Progress(vec![], new_atoms);
        }

        // ---- build the model -------------------------------------------------
        let mut model = Model {
            complete: int_exact,
            ..Default::default()
        };
        for (&t, &v) in &lvar {
            if let Some(val) = lia.value(v).to_i64() {
                model.ints.insert(t, val);
            } else {
                // saturate instead of truncating bits on out-of-range values
                let f = lia.value(v).floor();
                let clamped = i64::try_from(f).unwrap_or(if f < 0 { i64::MIN } else { i64::MAX });
                model.ints.insert(t, clamped);
                model.complete = false;
            }
        }
        // nonlinear products enter LIA as opaque atoms with no product
        // axioms, so the assignment may give one a value unrelated to its
        // operands' actual product; a model where that happens only
        // satisfies the linear abstraction, not the formula
        for &t in lvar.keys() {
            if let Term::Mul(a, b) = arena.term(t) {
                let (a, b) = (*a, *b);
                let got = model.ints.get(&t).copied();
                let product = match (
                    eval_lin(arena, a, &lvar, &lia),
                    eval_lin(arena, b, &lvar, &lia),
                ) {
                    (Some(va), Some(vb)) => va.checked_mul(vb),
                    _ => None,
                };
                if product.is_none() || product != got {
                    model.complete = false;
                }
            }
        }
        for &(atom, value, _) in assignment {
            model.bools.insert(atom, value);
        }
        // array contents: group sel values under each array-variable class
        let mut arrays: HashMap<u32, Vec<(i64, i64)>> = HashMap::new();
        for &(s, a, i) in sels {
            if let (Some(root), Some(&sv)) = (euf.root_of(a), lvar.get(&s)) {
                let idx = eval_lin(arena, i, &lvar, &lia);
                if let (Some(idx), Some(val)) = (idx, lia.value(sv).to_i64()) {
                    arrays.entry(root).or_default().push((idx, val));
                }
            }
        }
        for &(t, root) in class_terms {
            if arena.sort(t).is_array() && matches!(arena.term(t), Term::Var { .. }) {
                if let Some(entries) = arrays.get(&root) {
                    let mut e = entries.clone();
                    e.sort_unstable();
                    e.dedup_by_key(|p| p.0);
                    model.arrays.insert(t, e);
                }
            }
        }
        for &(t, root) in class_terms {
            if matches!(arena.sort(t), Sort::Unint(_)) {
                model.unints.insert(t, root as u64);
            }
        }
        Outcome::Ok(Box::new(model))
    }
}

/// Evaluates an integer term *semantically* under the LIA assignment:
/// arithmetic is computed structurally (so a nonlinear product evaluates to
/// the actual product of its operands, not to whatever value its opaque LIA
/// atom happened to receive), and only true leaves — variables, `sel`s,
/// applications — read the assignment through their linear form. Model-based
/// theory combination must use this view, because the independent model
/// evaluation it guards against computes products the same way.
fn eval_int(arena: &TermArena, t: TermId, lvar: &HashMap<TermId, usize>, lia: &Lia) -> Option<i64> {
    match arena.term(t) {
        Term::IntConst(v) => Some(*v),
        Term::Add(a, b) => {
            let (a, b) = (*a, *b);
            eval_int(arena, a, lvar, lia)?.checked_add(eval_int(arena, b, lvar, lia)?)
        }
        Term::Sub(a, b) => {
            let (a, b) = (*a, *b);
            eval_int(arena, a, lvar, lia)?.checked_sub(eval_int(arena, b, lvar, lia)?)
        }
        Term::Mul(a, b) => {
            let (a, b) = (*a, *b);
            eval_int(arena, a, lvar, lia)?.checked_mul(eval_int(arena, b, lvar, lia)?)
        }
        _ => eval_lin(arena, t, lvar, lia),
    }
}

/// Evaluates an integer term's linear form under the LIA assignment.
fn eval_lin(arena: &TermArena, t: TermId, lvar: &HashMap<TermId, usize>, lia: &Lia) -> Option<i64> {
    let e = linearize(arena, t);
    if e.overflowed {
        return None;
    }
    let mut acc = Rat::from_int(e.constant);
    for (&term, &c) in &e.coeffs {
        let v = lvar.get(&term)?;
        acc = acc.checked_add(Rat::from_int(c).checked_mul(lia.value(*v))?)?;
    }
    acc.to_i64()
}
