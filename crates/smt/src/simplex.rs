//! A Dutertre–de Moura style simplex core for linear *integer* arithmetic.
//!
//! All atoms PINS generates compare integer-sorted terms, so strict
//! inequalities are tightened to non-strict ones over the integers before
//! they reach this module (`x < y` becomes `x + 1 <= y`); no
//! delta-rationals are needed. Rational relaxation is solved with the
//! classic bounds-aware simplex; integrality is restored by branch-and-bound
//! with explanation propagation.
//!
//! Every pivot and every branch-and-bound node charges the attached
//! [`Budget`], and all rational arithmetic is checked: a deadline, step
//! limit, cancellation, or overflow surfaces as [`Conflict::Stopped`]
//! rather than a hang or a panic.

use std::collections::HashMap;

use pins_budget::{Budget, StopReason};

use crate::rational::Rat;

/// A reason tag attached to an asserted bound. The SMT layer uses SAT
/// literal codes; branch-and-bound uses private marker tags above
/// [`MARKER_BASE`], which never leak out of [`Lia::check_int`].
pub type Reason = u32;

const MARKER_BASE: Reason = u32::MAX / 2;

/// Why a theory operation failed to make progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Conflict {
    /// The asserted bounds are jointly infeasible; the payload is an
    /// explanation over the caller's reason tags.
    Infeasible(Vec<Reason>),
    /// Work was cut short — budget exhaustion, cancellation, or rational
    /// overflow. No verdict; the caller degrades to `Unknown`.
    Stopped(StopReason),
}

impl Conflict {
    /// The infeasibility explanation; panics on `Stopped` (test helper).
    pub fn reasons(self) -> Vec<Reason> {
        match self {
            Conflict::Infeasible(r) => r,
            Conflict::Stopped(s) => panic!("expected infeasibility, got stop: {s}"),
        }
    }
}

const OVERFLOW: Conflict = Conflict::Stopped(StopReason::Overflow);

fn add(a: Rat, b: Rat) -> Result<Rat, Conflict> {
    a.checked_add(b).ok_or(OVERFLOW)
}

fn sub(a: Rat, b: Rat) -> Result<Rat, Conflict> {
    a.checked_sub(b).ok_or(OVERFLOW)
}

fn mul(a: Rat, b: Rat) -> Result<Rat, Conflict> {
    a.checked_mul(b).ok_or(OVERFLOW)
}

fn div(a: Rat, b: Rat) -> Result<Rat, Conflict> {
    a.checked_div(b).ok_or(OVERFLOW)
}

fn gcd_u128(a: u128, b: u128) -> u128 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[derive(Debug, Clone, Copy)]
struct Bound {
    value: Rat,
    reason: Reason,
}

#[derive(Debug, Clone)]
struct Row {
    basic: usize,
    /// `basic = sum coeffs[j] * x_j` over non-basic `j`.
    coeffs: HashMap<usize, Rat>,
}

/// An incremental linear-integer-arithmetic solver.
///
/// Usage: create variables, assert bounds on linear expressions (a slack
/// variable is introduced per distinct expression), then call
/// [`Lia::check_int`]. Bound assertions and checks return [`Conflict`]s:
/// either infeasibility *explanations* (sets of reason tags whose bounds
/// are jointly integer-infeasible) or an early stop.
#[derive(Debug, Clone, Default)]
pub struct Lia {
    values: Vec<Rat>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    rows: Vec<Row>,
    /// var -> row index if basic
    row_of: Vec<Option<usize>>,
    /// memo: normalised expression -> slack var
    slack_of: HashMap<Vec<(usize, i64)>, usize>,
    /// inverse of `slack_of`, used for GCD bound tightening
    expr_of_slack: HashMap<usize, Vec<(usize, i64)>>,
    next_marker: Reason,
    /// Work budget charged per pivot and per branch-and-bound node. Clones
    /// (including branch-and-bound's) share the same counters.
    budget: Budget,
    /// Set when branch-and-bound hit its depth budget and answered "sat"
    /// without restoring integrality; the SMT layer reports `Unknown`.
    pub int_incomplete: bool,
}

impl Lia {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Lia {
            next_marker: MARKER_BASE,
            ..Default::default()
        }
    }

    /// Attaches the work budget charged by pivots and branching.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Allocates a fresh integer variable.
    pub fn new_var(&mut self) -> usize {
        let v = self.values.len();
        self.values.push(Rat::ZERO);
        self.lower.push(None);
        self.upper.push(None);
        self.row_of.push(None);
        v
    }

    /// Number of variables (including slacks).
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Current (rational) value of `v`.
    pub fn value(&self, v: usize) -> Rat {
        self.values[v]
    }

    /// Returns the slack variable standing for the linear expression, creating
    /// its defining row on first use. `expr` maps variables to coefficients;
    /// it must be non-empty and is normalised by sorting.
    pub fn slack_for(&mut self, expr: &[(usize, i64)]) -> Result<usize, Conflict> {
        let mut key: Vec<(usize, i64)> = expr.to_vec();
        key.sort_unstable();
        if let Some(&s) = self.slack_of.get(&key) {
            return Ok(s);
        }
        let s = self.new_var();
        // express the row over non-basic variables only
        let mut coeffs: HashMap<usize, Rat> = HashMap::new();
        for &(v, c) in &key {
            let c = Rat::from_int(c);
            if let Some(r) = self.row_of[v] {
                for (&u, &cu) in &self.rows[r].coeffs {
                    let e = coeffs.entry(u).or_insert(Rat::ZERO);
                    *e = add(*e, mul(c, cu)?)?;
                }
            } else {
                let e = coeffs.entry(v).or_insert(Rat::ZERO);
                *e = add(*e, c)?;
            }
        }
        coeffs.retain(|_, c| !c.is_zero());
        // value of the slack = current value of the expression
        let mut val = Rat::ZERO;
        for (&u, &cu) in &coeffs {
            val = add(val, mul(cu, self.values[u])?)?;
        }
        self.values[s] = val;
        let row_idx = self.rows.len();
        self.rows.push(Row { basic: s, coeffs });
        self.row_of[s] = Some(row_idx);
        self.slack_of.insert(key.clone(), s);
        self.expr_of_slack.insert(s, key);
        Ok(s)
    }

    /// GCD-based bound tightening: a slack `s = sum c_i * x_i` over integer
    /// variables is always a multiple of `g = gcd(c_i)`, so its bounds can be
    /// rounded inward to multiples of `g`. Detects e.g. `2x - 2y = 1`
    /// directly, which plain branch-and-bound diverges on.
    fn gcd_tighten(&mut self) -> Result<(), Conflict> {
        let mut slacks: Vec<(usize, u128)> = self
            .expr_of_slack
            .iter()
            .map(|(&s, expr)| {
                let mut g: u128 = 0;
                for &(_, c) in expr {
                    g = gcd_u128(g, (c as i128).unsigned_abs());
                }
                (s, g)
            })
            .collect();
        // tightening can pivot, so its order shapes the final vertex: keep
        // it independent of the hash map's per-process iteration order
        slacks.sort_unstable();
        for (s, g) in slacks {
            if g <= 1 {
                continue;
            }
            let gr = Rat::from_int128(g as i128);
            if let Some(lb) = self.lower[s] {
                // round up to the next multiple of g
                let q = div(lb.value, gr)?.ceil();
                let tight = mul(gr, Rat::from_int128(q))?;
                if tight > lb.value {
                    self.assert_lower(s, tight, lb.reason)?;
                }
            }
            if let Some(ub) = self.upper[s] {
                let q = div(ub.value, gr)?.floor();
                let tight = mul(gr, Rat::from_int128(q))?;
                if tight < ub.value {
                    self.assert_upper(s, tight, ub.reason)?;
                }
            }
        }
        Ok(())
    }

    /// Asserts `v >= c`. On immediate conflict with the existing upper bound,
    /// returns the two reasons.
    pub fn assert_lower(&mut self, v: usize, c: Rat, reason: Reason) -> Result<(), Conflict> {
        if let Some(lb) = self.lower[v] {
            if c <= lb.value {
                return Ok(());
            }
        }
        if let Some(ub) = self.upper[v] {
            if c > ub.value {
                return Err(Conflict::Infeasible(vec![reason, ub.reason]));
            }
        }
        self.lower[v] = Some(Bound { value: c, reason });
        if self.row_of[v].is_none() && self.values[v] < c {
            self.update_nonbasic(v, c)?;
        }
        Ok(())
    }

    /// Asserts `v <= c`.
    pub fn assert_upper(&mut self, v: usize, c: Rat, reason: Reason) -> Result<(), Conflict> {
        if let Some(ub) = self.upper[v] {
            if c >= ub.value {
                return Ok(());
            }
        }
        if let Some(lb) = self.lower[v] {
            if c < lb.value {
                return Err(Conflict::Infeasible(vec![reason, lb.reason]));
            }
        }
        self.upper[v] = Some(Bound { value: c, reason });
        if self.row_of[v].is_none() && self.values[v] > c {
            self.update_nonbasic(v, c)?;
        }
        Ok(())
    }

    fn update_nonbasic(&mut self, v: usize, c: Rat) -> Result<(), Conflict> {
        let delta = sub(c, self.values[v])?;
        self.values[v] = c;
        for i in 0..self.rows.len() {
            if let Some(&coeff) = self.rows[i].coeffs.get(&v) {
                let b = self.rows[i].basic;
                self.values[b] = add(self.values[b], mul(coeff, delta)?)?;
            }
        }
        Ok(())
    }

    fn violation(&self) -> Option<(usize, bool)> {
        // Bland's rule: smallest violating basic variable; `true` = below lower.
        let mut best: Option<(usize, bool)> = None;
        for row in &self.rows {
            let b = row.basic;
            let val = self.values[b];
            let viol = if self.lower[b].is_some_and(|lb| val < lb.value) {
                Some((b, true))
            } else if self.upper[b].is_some_and(|ub| val > ub.value) {
                Some((b, false))
            } else {
                None
            };
            if let Some(v) = viol {
                if best.is_none_or(|(bv, _)| v.0 < bv) {
                    best = Some(v);
                }
            }
        }
        best
    }

    /// Restores the rational feasibility invariant. On infeasibility, returns
    /// an explanation (set of bound reasons).
    pub fn check(&mut self) -> Result<(), Conflict> {
        loop {
            self.budget.charge(1).map_err(Conflict::Stopped)?;
            let Some((xi, below)) = self.violation() else {
                return Ok(());
            };
            let r = self.row_of[xi].expect("violating var must be basic");
            let target = if below {
                self.lower[xi].unwrap().value
            } else {
                self.upper[xi].unwrap().value
            };
            // find pivot column (Bland: smallest suitable non-basic var)
            let mut pivot: Option<usize> = None;
            {
                let row = &self.rows[r];
                let mut cands: Vec<usize> = row.coeffs.keys().copied().collect();
                cands.sort_unstable();
                for j in cands {
                    let a = row.coeffs[&j];
                    let suitable = if below {
                        (a > Rat::ZERO && self.upper[j].is_none_or(|ub| self.values[j] < ub.value))
                            || (a < Rat::ZERO
                                && self.lower[j].is_none_or(|lb| self.values[j] > lb.value))
                    } else {
                        (a < Rat::ZERO && self.upper[j].is_none_or(|ub| self.values[j] < ub.value))
                            || (a > Rat::ZERO
                                && self.lower[j].is_none_or(|lb| self.values[j] > lb.value))
                    };
                    if suitable {
                        pivot = Some(j);
                        break;
                    }
                }
            }
            match pivot {
                Some(xj) => self.pivot_and_update(r, xi, xj, target)?,
                None => {
                    // infeasible: collect the explanation from the row
                    let mut expl = Vec::new();
                    if below {
                        expl.push(self.lower[xi].unwrap().reason);
                        for (&j, &a) in &self.rows[r].coeffs {
                            if a > Rat::ZERO {
                                expl.push(self.upper[j].expect("bound must exist").reason);
                            } else {
                                expl.push(self.lower[j].expect("bound must exist").reason);
                            }
                        }
                    } else {
                        expl.push(self.upper[xi].unwrap().reason);
                        for (&j, &a) in &self.rows[r].coeffs {
                            if a > Rat::ZERO {
                                expl.push(self.lower[j].expect("bound must exist").reason);
                            } else {
                                expl.push(self.upper[j].expect("bound must exist").reason);
                            }
                        }
                    }
                    expl.sort_unstable();
                    expl.dedup();
                    return Err(Conflict::Infeasible(expl));
                }
            }
        }
    }

    /// Pivot basic `xi` (row `r`) with non-basic `xj`, setting `xi` to `target`.
    fn pivot_and_update(
        &mut self,
        r: usize,
        xi: usize,
        xj: usize,
        target: Rat,
    ) -> Result<(), Conflict> {
        let a_ij = self.rows[r].coeffs[&xj];
        let theta = div(sub(target, self.values[xi])?, a_ij)?;
        self.values[xi] = target;
        let old_xj = self.values[xj];
        self.values[xj] = add(old_xj, theta)?;
        for i in 0..self.rows.len() {
            let b = self.rows[i].basic;
            if b != xi {
                if let Some(&c) = self.rows[i].coeffs.get(&xj) {
                    self.values[b] = add(self.values[b], mul(c, theta)?)?;
                }
            }
        }
        // rewrite row r: xi = a_ij * xj + rest  =>  xj = (xi - rest) / a_ij
        let mut new_coeffs: HashMap<usize, Rat> = HashMap::new();
        let inv = a_ij.checked_recip().ok_or(OVERFLOW)?;
        new_coeffs.insert(xi, inv);
        let old = self.rows[r].coeffs.clone();
        for (&k, &c) in &old {
            if k != xj {
                new_coeffs.insert(k, div(c, a_ij)?.checked_neg().ok_or(OVERFLOW)?);
            }
        }
        new_coeffs.retain(|_, c| !c.is_zero());
        self.rows[r] = Row {
            basic: xj,
            coeffs: new_coeffs,
        };
        self.row_of[xi] = None;
        self.row_of[xj] = Some(r);
        // substitute xj in all other rows
        let subst = self.rows[r].coeffs.clone();
        for i in 0..self.rows.len() {
            if i == r {
                continue;
            }
            if let Some(c) = self.rows[i].coeffs.remove(&xj) {
                for (&k, &ck) in &subst {
                    let e = self.rows[i].coeffs.entry(k).or_insert(Rat::ZERO);
                    *e = add(*e, mul(c, ck)?)?;
                }
                self.rows[i].coeffs.retain(|_, v| !v.is_zero());
            }
        }
        Ok(())
    }

    /// Checks satisfiability over the *integers* via branch-and-bound.
    ///
    /// On success the internal assignment is integral (unless the depth
    /// budget ran out, flagged by `int_incomplete`). On failure returns an
    /// explanation over the caller's reason tags, or an early stop.
    pub fn check_int(&mut self, max_depth: u32) -> Result<(), Conflict> {
        self.budget.charge(1).map_err(Conflict::Stopped)?;
        self.gcd_tighten()?;
        self.check()?;
        let frac = (0..self.values.len()).find(|&v| !self.values[v].is_integer());
        let Some(x) = frac else {
            return Ok(());
        };
        if max_depth == 0 {
            self.int_incomplete = true;
            return Ok(());
        }
        let val = self.values[x];
        let marker = self.next_marker;
        self.next_marker += 1;

        let mut left = self.clone();
        let left_result = left
            .assert_upper(x, Rat::from_int128(val.floor()), marker)
            .and_then(|()| left.check_int(max_depth - 1));
        match left_result {
            Ok(()) => {
                *self = left;
                Ok(())
            }
            Err(Conflict::Stopped(s)) => Err(Conflict::Stopped(s)),
            Err(Conflict::Infeasible(e1)) => {
                if !e1.contains(&marker) {
                    return Err(Conflict::Infeasible(e1)); // independent of the branch
                }
                let mut right = self.clone();
                let right_result = right
                    .assert_lower(x, Rat::from_int128(val.ceil()), marker)
                    .and_then(|()| right.check_int(max_depth - 1));
                match right_result {
                    Ok(()) => {
                        *self = right;
                        Ok(())
                    }
                    Err(Conflict::Stopped(s)) => Err(Conflict::Stopped(s)),
                    Err(Conflict::Infeasible(e2)) => {
                        if !e2.contains(&marker) {
                            return Err(Conflict::Infeasible(e2));
                        }
                        let mut expl: Vec<Reason> =
                            e1.into_iter().chain(e2).filter(|&t| t != marker).collect();
                        expl.sort_unstable();
                        expl.dedup();
                        Err(Conflict::Infeasible(expl))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rat {
        Rat::from_int(v)
    }

    #[test]
    fn feasible_box() {
        let mut lia = Lia::new();
        let x = lia.new_var();
        let y = lia.new_var();
        lia.assert_lower(x, r(1), 0).unwrap();
        lia.assert_upper(x, r(5), 1).unwrap();
        lia.assert_lower(y, r(2), 2).unwrap();
        lia.assert_upper(y, r(3), 3).unwrap();
        assert!(lia.check_int(20).is_ok());
        assert!(lia.value(x) >= r(1) && lia.value(x) <= r(5));
        assert!(lia.value(y) >= r(2) && lia.value(y) <= r(3));
    }

    #[test]
    fn direct_bound_clash() {
        let mut lia = Lia::new();
        let x = lia.new_var();
        lia.assert_lower(x, r(5), 7).unwrap();
        let e = lia.assert_upper(x, r(4), 9).unwrap_err().reasons();
        assert!(e.contains(&7) && e.contains(&9));
    }

    #[test]
    fn sum_constraint_infeasible() {
        // x + y >= 10, x <= 3, y <= 3
        let mut lia = Lia::new();
        let x = lia.new_var();
        let y = lia.new_var();
        let s = lia.slack_for(&[(x, 1), (y, 1)]).unwrap();
        lia.assert_lower(s, r(10), 0).unwrap();
        lia.assert_upper(x, r(3), 1).unwrap();
        lia.assert_upper(y, r(3), 2).unwrap();
        let e = lia.check_int(20).unwrap_err().reasons();
        assert_eq!(e, vec![0, 1, 2]);
    }

    #[test]
    fn sum_constraint_feasible_model() {
        let mut lia = Lia::new();
        let x = lia.new_var();
        let y = lia.new_var();
        let s = lia.slack_for(&[(x, 1), (y, 1)]).unwrap();
        lia.assert_lower(s, r(10), 0).unwrap();
        lia.assert_upper(x, r(7), 1).unwrap();
        lia.assert_upper(y, r(7), 2).unwrap();
        assert!(lia.check_int(20).is_ok());
        let (vx, vy) = (lia.value(x), lia.value(y));
        assert!(vx + vy >= r(10));
        assert!(vx <= r(7) && vy <= r(7));
        assert!(vx.is_integer() && vy.is_integer());
    }

    #[test]
    fn integrality_requires_branching() {
        // 2x = 1 has a rational solution but no integer one.
        let mut lia = Lia::new();
        let x = lia.new_var();
        let s = lia.slack_for(&[(x, 2)]).unwrap();
        lia.assert_lower(s, r(1), 0).unwrap();
        lia.assert_upper(s, r(1), 1).unwrap();
        let e = lia.check_int(20).unwrap_err().reasons();
        assert!(!e.is_empty());
        assert!(
            e.iter().all(|&t| t < MARKER_BASE),
            "markers must not leak: {e:?}"
        );
    }

    #[test]
    fn integral_branching_succeeds() {
        // 2x + 3y = 7 with 0 <= x,y <= 5 has integer solutions (2,1).
        let mut lia = Lia::new();
        let x = lia.new_var();
        let y = lia.new_var();
        let s = lia.slack_for(&[(x, 2), (y, 3)]).unwrap();
        lia.assert_lower(s, r(7), 0).unwrap();
        lia.assert_upper(s, r(7), 1).unwrap();
        for (v, lo_r, hi_r) in [(x, 2, 3), (y, 4, 5)] {
            lia.assert_lower(v, r(0), lo_r).unwrap();
            lia.assert_upper(v, r(5), hi_r).unwrap();
        }
        assert!(lia.check_int(30).is_ok());
        let (vx, vy) = (
            lia.value(x).to_i64().unwrap(),
            lia.value(y).to_i64().unwrap(),
        );
        assert_eq!(2 * vx + 3 * vy, 7);
    }

    #[test]
    fn slack_reuse() {
        let mut lia = Lia::new();
        let x = lia.new_var();
        let y = lia.new_var();
        let s1 = lia.slack_for(&[(x, 1), (y, -1)]).unwrap();
        let s2 = lia.slack_for(&[(y, -1), (x, 1)]).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn equality_chain() {
        // x = y, y = z, x >= 3, z <= 2 -> infeasible
        let mut lia = Lia::new();
        let x = lia.new_var();
        let y = lia.new_var();
        let z = lia.new_var();
        let xy = lia.slack_for(&[(x, 1), (y, -1)]).unwrap();
        let yz = lia.slack_for(&[(y, 1), (z, -1)]).unwrap();
        lia.assert_lower(xy, r(0), 0).unwrap();
        lia.assert_upper(xy, r(0), 1).unwrap();
        lia.assert_lower(yz, r(0), 2).unwrap();
        lia.assert_upper(yz, r(0), 3).unwrap();
        lia.assert_lower(x, r(3), 4).unwrap();
        lia.assert_upper(z, r(2), 5).unwrap();
        assert!(lia.check_int(20).is_err());
    }

    #[test]
    fn step_limit_stops_branching() {
        let mut lia = Lia::new();
        lia.set_budget(Budget::with_limits(None, Some(1)));
        let x = lia.new_var();
        let s = lia.slack_for(&[(x, 2)]).unwrap();
        lia.assert_lower(s, r(1), 0).unwrap();
        lia.assert_upper(s, r(1), 1).unwrap();
        match lia.check_int(20) {
            Err(Conflict::Stopped(StopReason::StepLimit)) => {}
            other => panic!("expected step-limit stop, got {other:?}"),
        }
    }

    #[test]
    fn overflow_degrades_to_stop() {
        // chain x1 = K*x0, x2 = K*x1, ... with K = 2^62 and x0 >= 3 forces
        // values past i128 range during bound propagation
        let mut lia = Lia::new();
        let k = 1i64 << 62;
        let mut prev = lia.new_var();
        lia.assert_lower(prev, r(3), 0).unwrap();
        let mut tag = 1;
        let mut stopped = false;
        for _ in 0..4 {
            let next = lia.new_var();
            let s = match lia.slack_for(&[(next, 1), (prev, -k)]) {
                Ok(s) => s,
                Err(Conflict::Stopped(StopReason::Overflow)) => {
                    stopped = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            };
            let res = lia
                .assert_lower(s, r(0), tag)
                .and_then(|()| lia.assert_upper(s, r(0), tag + 1))
                .and_then(|()| lia.check_int(10));
            match res {
                Ok(()) => {}
                Err(Conflict::Stopped(StopReason::Overflow)) => {
                    stopped = true;
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
            tag += 2;
            prev = next;
        }
        assert!(stopped, "expected an overflow stop, not a panic");
    }
}
