use std::sync::Arc;

use pins_logic::{Sort, TermArena, TermId};
use pins_prng::SplitMix64;

use crate::{QueryCache, SmtConfig, SmtResult, SmtSession};

fn cases(light: usize, heavy: usize) -> usize {
    if cfg!(feature = "heavy-tests") {
        heavy
    } else {
        light
    }
}

fn cfg() -> SmtConfig {
    SmtConfig::default()
}

fn int_var(a: &mut TermArena, name: &str) -> TermId {
    let s = a.sym(name);
    a.mk_var(s, 0, Sort::Int)
}

fn arr_var(a: &mut TermArena, name: &str) -> TermId {
    let s = a.sym(name);
    a.mk_var(s, 0, Sort::IntArray)
}

/// One-shot check of a conjunction through a fresh session over a private
/// cache (so tests stay independent of each other's cached verdicts).
fn check_formulas(
    arena: &mut TermArena,
    assertions: &[TermId],
    axioms: &[TermId],
    config: SmtConfig,
) -> SmtResult {
    let mut session = SmtSession::with_cache(config, Arc::new(QueryCache::new()));
    for &ax in axioms {
        session.assert_axiom(ax);
    }
    session.check_under(arena, assertions)
}

/// Whether `hyps |= goal` modulo `axioms`, via a fresh session's `entails`.
fn is_valid(
    arena: &mut TermArena,
    hyps: &[TermId],
    goal: TermId,
    axioms: &[TermId],
    config: SmtConfig,
) -> bool {
    let mut session = SmtSession::with_cache(config, Arc::new(QueryCache::new()));
    for &ax in axioms {
        session.assert_axiom(ax);
    }
    session.entails(arena, hyps, goal)
}

fn sat(arena: &mut TermArena, fs: &[TermId]) -> bool {
    check_formulas(arena, fs, &[], cfg()).is_sat()
}

fn unsat(arena: &mut TermArena, fs: &[TermId]) -> bool {
    check_formulas(arena, fs, &[], cfg()).is_unsat()
}

// ---------- pure boolean ----------

#[test]
fn boolean_tautology_negation_unsat() {
    let mut a = TermArena::new();
    let p = a.sym("p");
    let vp = a.mk_var(p, 0, Sort::Bool);
    let np = a.mk_not(vp);
    let taut = a.mk_or(vec![vp, np]);
    let neg = a.mk_not(taut);
    assert!(unsat(&mut a, &[neg]));
}

#[test]
fn boolean_equivalence_atoms() {
    let mut a = TermArena::new();
    let p = a.sym("p");
    let q = a.sym("q");
    let vp = a.mk_var(p, 0, Sort::Bool);
    let vq = a.mk_var(q, 0, Sort::Bool);
    let iff = a.mk_eq(vp, vq);
    let nq = a.mk_not(vq);
    // p <-> q, p, !q is unsat
    assert!(unsat(&mut a, &[iff, vp, nq]));
    // p <-> q, p, q is sat
    assert!(sat(&mut a, &[iff, vp, vq]));
}

// ---------- arithmetic ----------

#[test]
fn simple_bounds_sat_with_model() {
    let mut a = TermArena::new();
    let x = int_var(&mut a, "x");
    let two = a.mk_int(2);
    let five = a.mk_int(5);
    let lo = a.mk_lt(two, x);
    let hi = a.mk_lt(x, five);
    match check_formulas(&mut a, &[lo, hi], &[], cfg()) {
        SmtResult::Sat(m) => {
            let v = m.ints[&x];
            assert!(v > 2 && v < 5);
            assert!(m.complete);
        }
        other => panic!("expected sat, got {other:?}"),
    }
}

#[test]
fn contradictory_bounds_unsat() {
    let mut a = TermArena::new();
    let x = int_var(&mut a, "x");
    let five = a.mk_int(5);
    let three = a.mk_int(3);
    let lo = a.mk_ge(x, five);
    let hi = a.mk_le(x, three);
    assert!(unsat(&mut a, &[lo, hi]));
}

#[test]
fn integers_have_no_middle() {
    // 2 < x and x < 4 forces x = 3; x != 3 makes it unsat (needs b&b/splits)
    let mut a = TermArena::new();
    let x = int_var(&mut a, "x");
    let two = a.mk_int(2);
    let four = a.mk_int(4);
    let three = a.mk_int(3);
    let lo = a.mk_lt(two, x);
    let hi = a.mk_lt(x, four);
    let ne = a.mk_neq(x, three);
    assert!(unsat(&mut a, &[lo, hi, ne]));
}

#[test]
fn linear_system_solved() {
    // x + y = 10, x - y = 4  =>  x = 7, y = 3
    let mut a = TermArena::new();
    let x = int_var(&mut a, "x");
    let y = int_var(&mut a, "y");
    let sum = a.mk_add(x, y);
    let diff = a.mk_sub(x, y);
    let ten = a.mk_int(10);
    let four = a.mk_int(4);
    let e1 = a.mk_eq(sum, ten);
    let e2 = a.mk_eq(diff, four);
    match check_formulas(&mut a, &[e1, e2], &[], cfg()) {
        SmtResult::Sat(m) => {
            assert_eq!(m.ints[&x], 7);
            assert_eq!(m.ints[&y], 3);
        }
        other => panic!("expected sat, got {other:?}"),
    }
}

#[test]
fn parity_conflict_via_branch_and_bound() {
    // 2x = 2y + 1 has no integer solution
    let mut a = TermArena::new();
    let x = int_var(&mut a, "x");
    let y = int_var(&mut a, "y");
    let two = a.mk_int(2);
    let lhs = a.mk_mul(two, x);
    let ty = a.mk_mul(two, y);
    let one = a.mk_int(1);
    let rhs = a.mk_add(ty, one);
    let eq = a.mk_eq(lhs, rhs);
    assert!(unsat(&mut a, &[eq]));
}

#[test]
fn implication_validity() {
    // x > 5 |= x > 3
    let mut a = TermArena::new();
    let x = int_var(&mut a, "x");
    let five = a.mk_int(5);
    let three = a.mk_int(3);
    let hyp = a.mk_gt(x, five);
    let goal = a.mk_gt(x, three);
    assert!(is_valid(&mut a, &[hyp], goal, &[], cfg()));
    // and the converse is not valid
    assert!(!is_valid(&mut a, &[goal], hyp, &[], cfg()));
}

// ---------- EUF ----------

#[test]
fn congruence_unsat() {
    let mut a = TermArena::new();
    let f = a.declare_fun("f", vec![Sort::Int], Sort::Int);
    let x = int_var(&mut a, "x");
    let y = int_var(&mut a, "y");
    let fx = a.mk_app(f, vec![x]);
    let fy = a.mk_app(f, vec![y]);
    let exy = a.mk_eq(x, y);
    let dfxy = a.mk_neq(fx, fy);
    assert!(unsat(&mut a, &[exy, dfxy]));
    // without x=y it is satisfiable
    let mut a2 = TermArena::new();
    let f = a2.declare_fun("f", vec![Sort::Int], Sort::Int);
    let x = int_var(&mut a2, "x");
    let y = int_var(&mut a2, "y");
    let fx = a2.mk_app(f, vec![x]);
    let fy = a2.mk_app(f, vec![y]);
    let dfxy = a2.mk_neq(fx, fy);
    assert!(sat(&mut a2, &[dfxy]));
}

#[test]
fn arithmetic_implies_congruence() {
    // x <= y, y <= x, f(x) != f(y): needs LIA->EUF combination
    let mut a = TermArena::new();
    let f = a.declare_fun("f", vec![Sort::Int], Sort::Int);
    let x = int_var(&mut a, "x");
    let y = int_var(&mut a, "y");
    let le1 = a.mk_le(x, y);
    let le2 = a.mk_le(y, x);
    let fx = a.mk_app(f, vec![x]);
    let fy = a.mk_app(f, vec![y]);
    let ne = a.mk_neq(fx, fy);
    assert!(unsat(&mut a, &[le1, le2, ne]));
}

#[test]
fn congruence_with_offset_arguments() {
    // i = j implies f(i+1) = f(j+1)
    let mut a = TermArena::new();
    let f = a.declare_fun("f", vec![Sort::Int], Sort::Int);
    let i = int_var(&mut a, "i");
    let j = int_var(&mut a, "j");
    let one = a.mk_int(1);
    let i1 = a.mk_add(i, one);
    let j1 = a.mk_add(j, one);
    let fi = a.mk_app(f, vec![i1]);
    let fj = a.mk_app(f, vec![j1]);
    let eij = a.mk_eq(i, j);
    let ne = a.mk_neq(fi, fj);
    assert!(unsat(&mut a, &[eij, ne]));
}

#[test]
fn boolean_predicates_respect_congruence() {
    let mut a = TermArena::new();
    let p = a.declare_fun("p", vec![Sort::Int], Sort::Bool);
    let x = int_var(&mut a, "x");
    let y = int_var(&mut a, "y");
    let px = a.mk_app(p, vec![x]);
    let py = a.mk_app(p, vec![y]);
    let exy = a.mk_eq(x, y);
    let npy = a.mk_not(py);
    assert!(unsat(&mut a, &[exy, px, npy]));
}

// ---------- arrays ----------

#[test]
fn read_over_write_same_index() {
    let mut a = TermArena::new();
    let arr = arr_var(&mut a, "A");
    let i = int_var(&mut a, "i");
    let v = int_var(&mut a, "v");
    let upd = a.mk_upd(arr, i, v);
    let read = a.mk_sel(upd, i); // folds to v in the arena
    let ne = a.mk_neq(read, v);
    assert!(unsat(&mut a, &[ne]));
}

#[test]
fn read_over_write_distinct_symbolic_indices() {
    // i != j  =>  sel(upd(A, i, v), j) = sel(A, j)
    let mut a = TermArena::new();
    let arr = arr_var(&mut a, "A");
    let i = int_var(&mut a, "i");
    let j = int_var(&mut a, "j");
    let v = int_var(&mut a, "v");
    let upd = a.mk_upd(arr, i, v);
    let lhs = a.mk_sel(upd, j);
    let rhs = a.mk_sel(arr, j);
    let neij = a.mk_neq(i, j);
    let ne = a.mk_neq(lhs, rhs);
    assert!(unsat(&mut a, &[neij, ne]));
}

#[test]
fn read_over_write_aliased_indices() {
    // i = j  =>  sel(upd(A, i, v), j) = v
    let mut a = TermArena::new();
    let arr = arr_var(&mut a, "A");
    let i = int_var(&mut a, "i");
    let j = int_var(&mut a, "j");
    let v = int_var(&mut a, "v");
    let upd = a.mk_upd(arr, i, v);
    let lhs = a.mk_sel(upd, j);
    let eij = a.mk_eq(i, j);
    let ne = a.mk_neq(lhs, v);
    assert!(unsat(&mut a, &[eij, ne]));
}

#[test]
fn array_assignment_chain() {
    // A1 = upd(A0, 0, 7), x = sel(A1, 0), x != 7 is unsat
    let mut a = TermArena::new();
    let a0 = arr_var(&mut a, "A0");
    let a1 = arr_var(&mut a, "A1");
    let zero = a.mk_int(0);
    let seven = a.mk_int(7);
    let upd = a.mk_upd(a0, zero, seven);
    let easgn = a.mk_eq(a1, upd);
    let x = int_var(&mut a, "x");
    let sel = a.mk_sel(a1, zero);
    let ex = a.mk_eq(x, sel);
    let ne = a.mk_neq(x, seven);
    assert!(unsat(&mut a, &[easgn, ex, ne]));
}

#[test]
fn array_two_writes_last_wins() {
    // A2 = upd(upd(A0, i, 1), i, 2); sel(A2, i) != 2 unsat
    let mut a = TermArena::new();
    let a0 = arr_var(&mut a, "A0");
    let i = int_var(&mut a, "i");
    let one = a.mk_int(1);
    let two = a.mk_int(2);
    let u1 = a.mk_upd(a0, i, one);
    let u2 = a.mk_upd(u1, i, two);
    let s = a.mk_sel(u2, i);
    let ne = a.mk_neq(s, two);
    assert!(unsat(&mut a, &[ne]));
}

#[test]
fn array_writes_preserve_other_cells() {
    // A1 = upd(A0, i, v); j != i; sel(A1, j) != sel(A0, j) unsat
    let mut a = TermArena::new();
    let a0 = arr_var(&mut a, "A0");
    let a1 = arr_var(&mut a, "A1");
    let i = int_var(&mut a, "i");
    let j = int_var(&mut a, "j");
    let v = int_var(&mut a, "v");
    let u = a.mk_upd(a0, i, v);
    let easgn = a.mk_eq(a1, u);
    let ne_ij = a.mk_neq(i, j);
    let s1 = a.mk_sel(a1, j);
    let s0 = a.mk_sel(a0, j);
    let ne = a.mk_neq(s1, s0);
    assert!(unsat(&mut a, &[easgn, ne_ij, ne]));
}

// ---------- quantified axioms ----------

#[test]
fn axiom_drives_unsat() {
    // forall s. strlen(s) >= 0; strlen(w) = -1 is unsat
    let mut a = TermArena::new();
    let str_sort = Sort::Unint(a.sym("Str"));
    let strlen = a.declare_fun("strlen", vec![str_sort], Sort::Int);
    let s = a.sym("s");
    let bs = a.mk_bound(s, str_sort);
    let app = a.mk_app(strlen, vec![bs]);
    let zero = a.mk_int(0);
    let body = a.mk_ge(app, zero);
    let ax = a.mk_forall(vec![(s, str_sort)], body);

    let w = a.sym("w");
    let vw = a.mk_var(w, 0, str_sort);
    let lw = a.mk_app(strlen, vec![vw]);
    let minus1 = a.mk_int(-1);
    let bad = a.mk_eq(lw, minus1);
    assert!(check_formulas(&mut a, &[bad], &[ax], cfg()).is_unsat());
}

#[test]
fn strlen_append_axiom() {
    // forall s, c. strlen(append(s,c)) = strlen(s) + 1
    // strlen(w) = 3 and strlen(append(w, c)) != 4 is unsat
    let mut a = TermArena::new();
    let str_sort = Sort::Unint(a.sym("Str"));
    let ch_sort = Sort::Unint(a.sym("Char"));
    let strlen = a.declare_fun("strlen", vec![str_sort], Sort::Int);
    let append = a.declare_fun("append", vec![str_sort, ch_sort], str_sort);
    let s = a.sym("s");
    let c = a.sym("c");
    let bs = a.mk_bound(s, str_sort);
    let bc = a.mk_bound(c, ch_sort);
    let app = a.mk_app(append, vec![bs, bc]);
    let l1 = a.mk_app(strlen, vec![app]);
    let l0 = a.mk_app(strlen, vec![bs]);
    let one = a.mk_int(1);
    let l0p1 = a.mk_add(l0, one);
    let body = a.mk_eq(l1, l0p1);
    let ax = a.mk_forall(vec![(s, str_sort), (c, ch_sort)], body);

    let w = a.sym("w");
    let d = a.sym("d");
    let vw = a.mk_var(w, 0, str_sort);
    let vd = a.mk_var(d, 0, ch_sort);
    let lw = a.mk_app(strlen, vec![vw]);
    let three = a.mk_int(3);
    let h1 = a.mk_eq(lw, three);
    let appended = a.mk_app(append, vec![vw, vd]);
    let lap = a.mk_app(strlen, vec![appended]);
    let four = a.mk_int(4);
    let h2 = a.mk_neq(lap, four);
    assert!(check_formulas(&mut a, &[h1, h2], &[ax], cfg()).is_unsat());
}

#[test]
fn trig_axiom_for_rotation() {
    // forall t. cos(t)*cos(t) + sin(t)*sin(t) = 1, as used by Vector rotate
    let mut a = TermArena::new();
    let angle = Sort::Unint(a.sym("Angle"));
    let cos = a.declare_fun("cos", vec![angle], Sort::Int); // abstract reals
    let sin = a.declare_fun("sin", vec![angle], Sort::Int);
    let t = a.sym("t");
    let bt = a.mk_bound(t, angle);
    let ct = a.mk_app(cos, vec![bt]);
    let st = a.mk_app(sin, vec![bt]);
    let c2 = a.mk_mul(ct, ct);
    let s2 = a.mk_mul(st, st);
    let sum = a.mk_add(c2, s2);
    let one = a.mk_int(1);
    let body = a.mk_eq(sum, one);
    let ax = a.mk_forall(vec![(t, angle)], body);

    // with theta concrete: cos(theta)^2 + sin(theta)^2 = 2 is unsat
    let th = a.sym("theta");
    let vth = a.mk_var(th, 0, angle);
    let cth = a.mk_app(cos, vec![vth]);
    let sth = a.mk_app(sin, vec![vth]);
    let c2g = a.mk_mul(cth, cth);
    let s2g = a.mk_mul(sth, sth);
    let sumg = a.mk_add(c2g, s2g);
    let two = a.mk_int(2);
    let bad = a.mk_eq(sumg, two);
    assert!(check_formulas(&mut a, &[bad], &[ax], cfg()).is_unsat());
}

// ---------- negated quantifier (spec-shaped goals) ----------

#[test]
fn identity_spec_validity() {
    // A' = upd(A, 0, sel(A, 0)) |= forall k. sel(A', k) = sel(A, k)
    let mut a = TermArena::new();
    let arr = arr_var(&mut a, "A");
    let arr2 = arr_var(&mut a, "Aprime");
    let zero = a.mk_int(0);
    let s0 = a.mk_sel(arr, zero);
    let u = a.mk_upd(arr, zero, s0);
    let hyp = a.mk_eq(arr2, u);
    let k = a.sym("k");
    let bk = a.mk_bound(k, Sort::Int);
    let sk2 = a.mk_sel(arr2, bk);
    let sk = a.mk_sel(arr, bk);
    let body = a.mk_eq(sk2, sk);
    let goal = a.mk_forall(vec![(k, Sort::Int)], body);
    assert!(is_valid(&mut a, &[hyp], goal, &[], cfg()));
}

#[test]
fn identity_spec_invalid_when_element_changed() {
    // A' = upd(A, 0, sel(A,0) + 1) does NOT satisfy the identity spec
    let mut a = TermArena::new();
    let arr = arr_var(&mut a, "A");
    let arr2 = arr_var(&mut a, "Aprime");
    let zero = a.mk_int(0);
    let s0 = a.mk_sel(arr, zero);
    let one = a.mk_int(1);
    let s0p = a.mk_add(s0, one);
    let u = a.mk_upd(arr, zero, s0p);
    let hyp = a.mk_eq(arr2, u);
    let k = a.sym("k");
    let bk = a.mk_bound(k, Sort::Int);
    let sk2 = a.mk_sel(arr2, bk);
    let sk = a.mk_sel(arr, bk);
    let body = a.mk_eq(sk2, sk);
    let goal = a.mk_forall(vec![(k, Sort::Int)], body);
    assert!(!is_valid(&mut a, &[hyp], goal, &[], cfg()));
}

#[test]
fn bounded_identity_spec_validity() {
    // n <= 0 |= forall k. 0 <= k < n => sel(A', k) = sel(A, k)   (vacuous)
    let mut a = TermArena::new();
    let arr = arr_var(&mut a, "A");
    let arr2 = arr_var(&mut a, "Aprime");
    let n = int_var(&mut a, "n");
    let zero = a.mk_int(0);
    let hyp = a.mk_le(n, zero);
    let k = a.sym("k");
    let bk = a.mk_bound(k, Sort::Int);
    let lo = a.mk_le(zero, bk);
    let hi = a.mk_lt(bk, n);
    let range = a.mk_and(vec![lo, hi]);
    let sk2 = a.mk_sel(arr2, bk);
    let sk = a.mk_sel(arr, bk);
    let eq = a.mk_eq(sk2, sk);
    let body = a.mk_implies(range, eq);
    let goal = a.mk_forall(vec![(k, Sort::Int)], body);
    assert!(is_valid(&mut a, &[hyp], goal, &[], cfg()));
}

// ---------- mixed / regression shapes from PINS paths ----------

#[test]
fn versioned_path_condition_shape() {
    // A PINS-style path: n@0 >= 0, i@1 = 0, m@1 = 0, i@1 >= n@0 (loop skipped),
    // goal n@0 = 0 is implied (n >= 0 and 0 >= n).
    let mut a = TermArena::new();
    let n = int_var(&mut a, "n");
    let i_sym = a.sym("i");
    let i1 = a.mk_var(i_sym, 1, Sort::Int);
    let zero = a.mk_int(0);
    let h1 = a.mk_ge(n, zero);
    let h2 = a.mk_eq(i1, zero);
    let h3 = a.mk_ge(i1, n);
    let goal = a.mk_eq(n, zero);
    assert!(is_valid(&mut a, &[h1, h2, h3], goal, &[], cfg()));
}

#[test]
fn unsat_core_behaviour_over_many_irrelevant_facts() {
    let mut a = TermArena::new();
    let x = int_var(&mut a, "x");
    let mut hyps = Vec::new();
    // lots of satisfiable noise
    for k in 0..20 {
        let v = int_var(&mut a, &format!("noise{k}"));
        let c = a.mk_int(k);
        hyps.push(a.mk_ge(v, c));
    }
    let three = a.mk_int(3);
    let four = a.mk_int(4);
    hyps.push(a.mk_ge(x, four));
    hyps.push(a.mk_le(x, three));
    assert!(unsat(&mut a, &hyps));
}

#[test]
fn nonlinear_products_as_euf() {
    // x = y implies x*z = y*z (congruence over opaque products)
    let mut a = TermArena::new();
    let x = int_var(&mut a, "x");
    let y = int_var(&mut a, "y");
    let z = int_var(&mut a, "z");
    let xz = a.mk_mul(x, z);
    let yz = a.mk_mul(y, z);
    let exy = a.mk_eq(x, y);
    let ne = a.mk_neq(xz, yz);
    assert!(unsat(&mut a, &[exy, ne]));
}

#[test]
fn mul_div_inverse_axiom() {
    // forall x. x != 0 => mul(x, div(1, x)) = 1  (the paper's example axiom)
    let mut a = TermArena::new();
    let mul = a.declare_fun("mul", vec![Sort::Int, Sort::Int], Sort::Int);
    let div = a.declare_fun("div", vec![Sort::Int, Sort::Int], Sort::Int);
    let x = a.sym("x");
    let bx = a.mk_bound(x, Sort::Int);
    let zero = a.mk_int(0);
    let one = a.mk_int(1);
    let nz = a.mk_neq(bx, zero);
    let dx = a.mk_app(div, vec![one, bx]);
    let prod = a.mk_app(mul, vec![bx, dx]);
    let concl = a.mk_eq(prod, one);
    let body = a.mk_implies(nz, concl);
    let ax = a.mk_forall(vec![(x, Sort::Int)], body);

    // ground: c != 0, mul(c, div(1,c)) = 5 is unsat
    let c = int_var(&mut a, "c");
    let h1 = a.mk_neq(c, zero);
    let dc = a.mk_app(div, vec![one, c]);
    let pc = a.mk_app(mul, vec![c, dc]);
    let five = a.mk_int(5);
    let h2 = a.mk_eq(pc, five);
    assert!(check_formulas(&mut a, &[h1, h2], &[ax], cfg()).is_unsat());
}

// ---------- property tests ----------

/// A tiny random formula language over 3 int vars with small constants,
/// cross-checked against exhaustive evaluation on a small box.
#[derive(Debug, Clone)]
enum F {
    Le(usize, i64),
    Ge(usize, i64),
    EqSum(usize, usize, i64), // x + y = c
    Not(Box<F>),
    And(Box<F>, Box<F>),
    Or(Box<F>, Box<F>),
}

fn random_f(rng: &mut SplitMix64, depth: usize) -> F {
    if depth == 0 || rng.gen_bool(0.4) {
        match rng.gen_index(3) {
            0 => F::Le(rng.gen_index(3), rng.gen_range_inclusive(-4..=4)),
            1 => F::Ge(rng.gen_index(3), rng.gen_range_inclusive(-4..=4)),
            _ => F::EqSum(
                rng.gen_index(3),
                rng.gen_index(3),
                rng.gen_range_inclusive(-4..=4),
            ),
        }
    } else {
        match rng.gen_index(3) {
            0 => F::Not(Box::new(random_f(rng, depth - 1))),
            1 => F::And(
                Box::new(random_f(rng, depth - 1)),
                Box::new(random_f(rng, depth - 1)),
            ),
            _ => F::Or(
                Box::new(random_f(rng, depth - 1)),
                Box::new(random_f(rng, depth - 1)),
            ),
        }
    }
}

fn f_to_term(arena: &mut TermArena, f: &F, vars: &[TermId]) -> TermId {
    match f {
        F::Le(v, c) => {
            let cc = arena.mk_int(*c);
            arena.mk_le(vars[*v], cc)
        }
        F::Ge(v, c) => {
            let cc = arena.mk_int(*c);
            arena.mk_ge(vars[*v], cc)
        }
        F::EqSum(a, b, c) => {
            let sum = arena.mk_add(vars[*a], vars[*b]);
            let cc = arena.mk_int(*c);
            arena.mk_eq(sum, cc)
        }
        F::Not(inner) => {
            let t = f_to_term(arena, inner, vars);
            arena.mk_not(t)
        }
        F::And(a, b) => {
            let (ta, tb) = (f_to_term(arena, a, vars), f_to_term(arena, b, vars));
            arena.mk_and(vec![ta, tb])
        }
        F::Or(a, b) => {
            let (ta, tb) = (f_to_term(arena, a, vars), f_to_term(arena, b, vars));
            arena.mk_or(vec![ta, tb])
        }
    }
}

fn f_eval(f: &F, env: &[i64]) -> bool {
    match f {
        F::Le(v, c) => env[*v] <= *c,
        F::Ge(v, c) => env[*v] >= *c,
        F::EqSum(a, b, c) => env[*a] + env[*b] == *c,
        F::Not(inner) => !f_eval(inner, env),
        F::And(a, b) => f_eval(a, env) && f_eval(b, env),
        F::Or(a, b) => f_eval(a, env) || f_eval(b, env),
    }
}

#[test]
fn smt_agrees_with_bounded_enumeration() {
    let mut rng = SplitMix64::new(0x5317_0001);
    for _ in 0..cases(96, 512) {
        let f = random_f(&mut rng, 3);
        let mut arena = TermArena::new();
        let vars: Vec<TermId> = (0..3)
            .map(|i| int_var(&mut arena, &format!("v{i}")))
            .collect();
        // bound vars to the enumeration box so SAT/UNSAT agree with search
        let mut hyps = Vec::new();
        for &v in &vars {
            let lo = arena.mk_int(-6);
            let hi = arena.mk_int(6);
            hyps.push(arena.mk_ge(v, lo));
            hyps.push(arena.mk_le(v, hi));
        }
        let t = f_to_term(&mut arena, &f, &vars);
        hyps.push(t);

        let mut expected = false;
        'outer: for a in -6i64..=6 {
            for b in -6i64..=6 {
                for c in -6i64..=6 {
                    if f_eval(&f, &[a, b, c]) {
                        expected = true;
                        break 'outer;
                    }
                }
            }
        }
        let got = check_formulas(&mut arena, &hyps, &[], cfg());
        match got {
            SmtResult::Sat(m) => {
                assert!(expected, "solver said sat, enumeration said unsat: {f:?}");
                let env: Vec<i64> = vars
                    .iter()
                    .map(|v| m.ints.get(v).copied().unwrap_or(0))
                    .collect();
                assert!(
                    f_eval(&f, &env),
                    "model does not satisfy the formula: {env:?}"
                );
            }
            SmtResult::Unsat => assert!(!expected, "solver said unsat, enumeration found {f:?}"),
            SmtResult::Unknown(r) => panic!("unexpected unknown ({r}) on {f:?}"),
        }
    }
}

// ---------- congruence-aware e-matching (the theory-loop instantiator) ----------

#[test]
fn ematch_fires_through_equality_chains() {
    // wI = dget(...) is EUF-equal to an appendc chain; the charat axiom must
    // fire on charat(wI, i) even though wI is not syntactically appendc
    let mut a = TermArena::new();
    let str_sort = Sort::Unint(a.sym("Str"));
    let appendc = a.declare_fun("appendc", vec![str_sort, Sort::Int], str_sort);
    let charat = a.declare_fun("charat", vec![str_sort, Sort::Int], Sort::Int);
    let strlen = a.declare_fun("strlen", vec![str_sort], Sort::Int);
    // axiom: charat(appendc(s, c), strlen(s)) = c
    let s = a.sym("s");
    let c = a.sym("c");
    let bs = a.mk_bound(s, str_sort);
    let bc = a.mk_bound(c, Sort::Int);
    let app = a.mk_app(appendc, vec![bs, bc]);
    let lhs_len = a.mk_app(strlen, vec![bs]);
    let lhs = a.mk_app(charat, vec![app, lhs_len]);
    let body = a.mk_eq(lhs, bc);
    let ax = a.mk_forall(vec![(s, str_sort), (c, Sort::Int)], body);

    // ground: w = appendc(e, 7); v = w (a different name); strlen(e) = 0;
    // charat(v, 0) != 7 must be UNSAT
    let e_sym = a.sym("e");
    let ve = a.mk_var(e_sym, 0, str_sort);
    let seven = a.mk_int(7);
    let chain = a.mk_app(appendc, vec![ve, seven]);
    let w = a.sym("w");
    let vw = a.mk_var(w, 0, str_sort);
    let h1 = a.mk_eq(vw, chain);
    let len_e = a.mk_app(strlen, vec![ve]);
    let zero = a.mk_int(0);
    let h2 = a.mk_eq(len_e, zero);
    let read = a.mk_app(charat, vec![vw, zero]);
    let h3 = a.mk_neq(read, seven);
    assert!(check_formulas(&mut a, &[h1, h2, h3], &[ax], cfg()).is_unsat());
}

#[test]
fn ematch_respects_guard_conditions() {
    // forall x. x != 0 => f(x) = x; asserting f(5) = 9 is unsat, but
    // f(0) = 9 is fine
    let mut a = TermArena::new();
    let f = a.declare_fun("f", vec![Sort::Int], Sort::Int);
    let x = a.sym("x");
    let bx = a.mk_bound(x, Sort::Int);
    let zero = a.mk_int(0);
    let nz = a.mk_neq(bx, zero);
    let fx = a.mk_app(f, vec![bx]);
    let eq = a.mk_eq(fx, bx);
    let body = a.mk_implies(nz, eq);
    let ax = a.mk_forall(vec![(x, Sort::Int)], body);

    let five = a.mk_int(5);
    let nine = a.mk_int(9);
    let f5 = a.mk_app(f, vec![five]);
    let bad = a.mk_eq(f5, nine);
    assert!(check_formulas(&mut a, &[bad], &[ax], cfg()).is_unsat());

    let f0 = a.mk_app(f, vec![zero]);
    let ok = a.mk_eq(f0, nine);
    assert!(check_formulas(&mut a, &[ok], &[ax], cfg()).is_sat());
}

#[test]
fn object_adt_axioms_support_observational_reasoning() {
    // the Serialize benchmark's axiom set, distilled: reading field 0 of
    // addf(obj0(), v) yields v
    let mut a = TermArena::new();
    let obj = Sort::Unint(a.sym("Obj"));
    let nf = a.declare_fun("nf", vec![obj], Sort::Int);
    let fv = a.declare_fun("fv", vec![obj, Sort::Int], Sort::Int);
    let obj0 = a.declare_fun("obj0", vec![], obj);
    let addf = a.declare_fun("addf", vec![obj, Sort::Int], obj);

    let o0 = a.mk_app(obj0, vec![]);
    let nf_o0 = a.mk_app(nf, vec![o0]);
    let zero = a.mk_int(0);
    let ax1 = a.mk_eq(nf_o0, zero);

    let o = a.sym("o");
    let v = a.sym("v");
    let bo = a.mk_bound(o, obj);
    let bv = a.mk_bound(v, Sort::Int);
    let added = a.mk_app(addf, vec![bo, bv]);
    let nf_o = a.mk_app(nf, vec![bo]);
    let fv_at_end = a.mk_app(fv, vec![added, nf_o]);
    let body = a.mk_eq(fv_at_end, bv);
    let ax3 = a.mk_forall(vec![(o, obj), (v, Sort::Int)], body);

    // ground: q = addf(obj0(), 42); fv(q, 0) != 42 is unsat
    let q = a.sym("q");
    let vq = a.mk_var(q, 0, obj);
    let forty2 = a.mk_int(42);
    let built = a.mk_app(addf, vec![o0, forty2]);
    let h1 = a.mk_eq(vq, built);
    let read = a.mk_app(fv, vec![vq, zero]);
    let h2 = a.mk_neq(read, forty2);
    assert!(check_formulas(&mut a, &[h1, h2], &[ax1, ax3], cfg()).is_unsat());
}

// ---------- theory combination regressions ----------

#[test]
fn diseq_split_survives_unrelated_conflicts() {
    // regression for the lost-split-lemma soundness bug: an EUF conflict in
    // an early round must not permanently swallow the integer-disequality
    // split of an unrelated atom
    let mut a = TermArena::new();
    let f = a.declare_fun("f", vec![Sort::Int], Sort::Int);
    let x = int_var(&mut a, "x");
    let y = int_var(&mut a, "y");
    let z = int_var(&mut a, "z");
    let fx = a.mk_app(f, vec![x]);
    let fy = a.mk_app(f, vec![y]);
    // x = y, f(x) != f(y) is a contradiction the SAT core must navigate,
    // while z != 0 and 0 <= z <= 0 needs the split lemma for z
    let exy = a.mk_eq(x, y);
    let nfxy = a.mk_neq(fx, fy);
    let zero = a.mk_int(0);
    let nz = a.mk_neq(z, zero);
    let lo = a.mk_le(zero, z);
    let hi = a.mk_le(z, zero);
    let contradiction = a.mk_or(vec![nfxy, nz]);
    // (f(x)!=f(y) \/ z!=0) /\ x=y /\ 0<=z<=0 must be unsat
    assert!(unsat(&mut a, &[exy, contradiction, lo, hi]));
}

#[test]
fn arrays_and_arithmetic_share_index_reasoning() {
    // A2 = upd(A, i+1, 5); j = i + 1; sel(A2, j) != 5 unsat — the index
    // equality is arithmetic, the array lemma needs it through MBTC/EUF
    let mut a = TermArena::new();
    let arr = arr_var(&mut a, "A");
    let i = int_var(&mut a, "i");
    let j = int_var(&mut a, "j");
    let one = a.mk_int(1);
    let i1 = a.mk_add(i, one);
    let five = a.mk_int(5);
    let u = a.mk_upd(arr, i1, five);
    let a2 = arr_var(&mut a, "A2");
    let h1 = a.mk_eq(a2, u);
    let h2 = a.mk_eq(j, i1);
    let read = a.mk_sel(a2, j);
    let h3 = a.mk_neq(read, five);
    assert!(unsat(&mut a, &[h1, h2, h3]));
}

#[test]
fn bool_extern_predicates_combine_with_arithmetic() {
    // p(x) and !p(y) and x <= y and y <= x is unsat (congruence via LIA-implied x=y)
    let mut a = TermArena::new();
    let p = a.declare_fun("p", vec![Sort::Int], Sort::Bool);
    let x = int_var(&mut a, "x");
    let y = int_var(&mut a, "y");
    let px = a.mk_app(p, vec![x]);
    let py = a.mk_app(p, vec![y]);
    let npy = a.mk_not(py);
    let le1 = a.mk_le(x, y);
    let le2 = a.mk_le(y, x);
    assert!(unsat(&mut a, &[px, npy, le1, le2]));
}

#[test]
fn large_upd_chain_positions_resolve() {
    let mut a = TermArena::new();
    let arr = arr_var(&mut a, "A");
    let mut chain = arr;
    for k in 0..10 {
        let idx = a.mk_int(k);
        let val = a.mk_int(100 + k);
        chain = a.mk_upd(chain, idx, val);
    }
    // overwrite position 4
    let four = a.mk_int(4);
    let nine9 = a.mk_int(999);
    chain = a.mk_upd(chain, four, nine9);
    let read = a.mk_sel(chain, four);
    let ne = a.mk_neq(read, nine9);
    assert!(unsat(&mut a, &[ne]));
    // and position 7 still holds 107
    let seven = a.mk_int(7);
    let read7 = a.mk_sel(chain, seven);
    let v107 = a.mk_int(107);
    let ne7 = a.mk_neq(read7, v107);
    assert!(unsat(&mut a, &[ne7]));
}

#[test]
fn skolemized_array_spec_counterexample_model() {
    // an off-by-one "inverse" and the identity spec: sat with a witness index
    let mut a = TermArena::new();
    let arr = arr_var(&mut a, "A");
    let arr2 = arr_var(&mut a, "B");
    let n = int_var(&mut a, "n");
    let one = a.mk_int(1);
    let two = a.mk_int(2);
    let hyp_n = a.mk_ge(n, two);
    // B = upd(A, 1, A[1] + 1): differs from A at index 1
    let s1 = a.mk_sel(arr, one);
    let s1p = a.mk_add(s1, one);
    let u = a.mk_upd(arr, one, s1p);
    let hyp_b = a.mk_eq(arr2, u);
    let k = a.sym("k");
    let bk = a.mk_bound(k, Sort::Int);
    let zero = a.mk_int(0);
    let lo = a.mk_le(zero, bk);
    let hi = a.mk_lt(bk, n);
    let range = a.mk_and(vec![lo, hi]);
    let sa = a.mk_sel(arr, bk);
    let sb = a.mk_sel(arr2, bk);
    let eq = a.mk_eq(sa, sb);
    let body = a.mk_implies(range, eq);
    let spec = a.mk_forall(vec![(k, Sort::Int)], body);
    assert!(
        !is_valid(&mut a, &[hyp_n, hyp_b], spec, &[], cfg()),
        "the broken write must falsify the identity spec"
    );
}

// ---------- the incremental session ----------

mod session {
    use std::sync::Arc;

    use super::{cases, cfg, int_var, F};
    use crate::{QueryCache, SmtResult, SmtSession, Verdict};
    use pins_logic::{TermArena, TermId};
    use pins_prng::SplitMix64;

    /// A session with a private cache, so tests neither warm nor read the
    /// process-wide one.
    fn fresh_session() -> SmtSession {
        SmtSession::with_cache(cfg(), Arc::new(QueryCache::new()))
    }

    fn bounds(a: &mut TermArena, v: TermId, lo: i64, hi: i64) -> (TermId, TermId) {
        let l = a.mk_int(lo);
        let h = a.mk_int(hi);
        (a.mk_ge(v, l), a.mk_le(v, h))
    }

    #[test]
    fn push_pop_restores_assertions_and_models() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let (lo, hi) = bounds(&mut a, x, 0, 10);
        let mut s = fresh_session();
        s.assert(lo);
        s.assert(hi);
        assert!(s.check(&mut a).is_sat());

        s.push();
        let twenty = a.mk_int(20);
        let conflict = a.mk_ge(x, twenty);
        s.assert(conflict);
        assert_eq!(s.depth(), 1);
        assert!(s.check(&mut a).is_unsat());
        s.pop();

        // the scope is gone: satisfiable again, with an in-bounds model
        assert_eq!(s.depth(), 0);
        assert_eq!(s.assertions(), &[lo, hi]);
        match s.check(&mut a) {
            SmtResult::Sat(m) => {
                let v = m.ints[&x];
                assert!(
                    (0..=10).contains(&v),
                    "model must satisfy restored scope: {v}"
                );
            }
            other => panic!("expected sat after pop, got {other:?}"),
        }
    }

    #[test]
    fn nested_scopes_unwind_in_order() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let zero = a.mk_int(0);
        let five = a.mk_int(5);
        let ge0 = a.mk_ge(x, zero);
        let ge5 = a.mk_ge(x, five);
        let lt0 = a.mk_lt(x, zero);

        let mut s = fresh_session();
        s.assert(ge0);
        s.push();
        s.assert(ge5);
        s.push();
        s.assert(lt0);
        assert_eq!(s.depth(), 2);
        assert!(s.check(&mut a).is_unsat());
        s.pop();
        assert_eq!(s.assertions(), &[ge0, ge5]);
        assert!(s.check(&mut a).is_sat());
        s.pop();
        assert_eq!(s.assertions(), &[ge0]);
    }

    #[test]
    #[should_panic(expected = "pop without matching push")]
    fn unbalanced_pop_panics() {
        let mut s = fresh_session();
        s.pop();
    }

    #[test]
    fn assumptions_do_not_leak() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let zero = a.mk_int(0);
        let ge0 = a.mk_ge(x, zero);
        let lt0 = a.mk_lt(x, zero);

        let mut s = fresh_session();
        s.assert(ge0);
        assert!(s.check_under(&mut a, &[lt0]).is_unsat());
        // the contradictory assumption must not persist
        assert_eq!(s.assertions(), &[ge0]);
        assert!(s.check(&mut a).is_sat());
        assert!(s.check_under(&mut a, &[lt0]).is_unsat());
    }

    #[test]
    fn cache_counts_hits_and_repeats_verdicts() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let (lo, hi) = bounds(&mut a, x, 3, 5);
        let zero = a.mk_int(0);
        let lt0 = a.mk_lt(x, zero);
        let mut s = fresh_session();
        s.assert(lo);
        assert!(s.is_unsat_under(&mut a, &[lt0]));
        let misses = s.cache().misses();
        assert_eq!(s.cache().hits(), 0);
        assert!(misses > 0);
        // identical query: served from cache
        assert!(s.is_unsat_under(&mut a, &[lt0]));
        assert_eq!(s.cache().hits(), 1);
        assert_eq!(s.cache().misses(), misses);
        assert_eq!(s.stats.queries, 2);
        let _ = hi;
    }

    #[test]
    fn forked_sessions_share_the_cache() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let zero = a.mk_int(0);
        let ge0 = a.mk_ge(x, zero);
        let lt0 = a.mk_lt(x, zero);
        let mut parent = fresh_session();
        parent.assert(ge0);
        assert!(parent.is_unsat_under(&mut a, &[lt0]));

        let mut worker = parent.fork();
        assert_eq!(worker.assertions(), parent.assertions());
        // same query through the fork: answered by the shared cache
        assert!(worker.is_unsat_under(&mut a, &[lt0]));
        assert_eq!(worker.stats.cache_hits, 1);
        assert_eq!(worker.stats.cache_misses, 0);
        assert_eq!(parent.cache().hits(), 1);
    }

    #[test]
    fn sat_with_model_re_solves_but_counts_the_hit() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let (lo, hi) = bounds(&mut a, x, 2, 4);
        let mut s = fresh_session();
        s.assert(lo);
        s.assert(hi);
        assert!(s.check(&mut a).is_sat());
        // verdict cached as Sat; a model-producing check must still return a
        // usable model for this arena
        match s.check(&mut a) {
            SmtResult::Sat(m) => assert!((2..=4).contains(&m.ints[&x])),
            other => panic!("expected sat, got {other:?}"),
        }
        assert_eq!(s.stats.sat_resolves, 1);
        assert_eq!(s.stats.cache_hits, 1);
        // verdict-only queries short-circuit entirely
        assert!(s.verdict_under(&mut a, &[]).is_sat());
        assert_eq!(s.stats.cache_hits, 2);
    }

    #[test]
    fn entails_on_implication_and_converse() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let five = a.mk_int(5);
        let three = a.mk_int(3);
        let hyp = a.mk_gt(x, five);
        let goal = a.mk_gt(x, three);
        let mut s = fresh_session();
        assert!(s.entails(&mut a, &[hyp], goal));
        assert!(!s.entails(&mut a, &[goal], hyp));
    }

    /// The cached verdict of every query must equal a fresh solve of the same
    /// formula, on a randomized corpus (the cache key must not conflate
    /// distinct formulas, and re-asking must not change answers).
    #[test]
    fn cached_verdicts_match_fresh_solves_on_random_corpus() {
        let mut rng = SplitMix64::new(0x5E55_0001);
        let mut cached = SmtSession::with_cache(cfg(), Arc::new(QueryCache::new()));
        let mut corpus: Vec<F> = Vec::new();
        for _ in 0..cases(48, 256) {
            corpus.push(super::random_f(&mut rng, 3));
        }
        // a session's fingerprint memo is arena-local, so the whole corpus
        // lives in one arena (hash-consing makes repeats cheap anyway)
        let mut arena = TermArena::new();
        let vars: Vec<TermId> = (0..3)
            .map(|i| int_var(&mut arena, &format!("v{i}")))
            .collect();
        let mut box_fs = Vec::new();
        for &v in &vars {
            let (lo, hi) = bounds(&mut arena, v, -6, 6);
            box_fs.push(lo);
            box_fs.push(hi);
        }
        // round 1: populate the cache; round 2: all answers must come from
        // the cache and agree with a brand-new session per query
        let mut first: Vec<Verdict> = Vec::new();
        for round in 0..2 {
            for (i, f) in corpus.iter().enumerate() {
                let mut fs = box_fs.clone();
                fs.push(super::f_to_term(&mut arena, f, &vars));
                let got = cached.verdict_under(&mut arena, &fs);
                if round == 0 {
                    let fresh = fresh_session().verdict_under(&mut arena, &fs);
                    assert_eq!(got, fresh, "cached session diverged on {f:?}");
                    first.push(got);
                } else {
                    assert_eq!(got, first[i], "verdict changed between rounds on {f:?}");
                }
            }
        }
        assert!(
            cached.stats.cache_hits >= corpus.len() as u64,
            "round 2 must be served by the cache: {:?}",
            cached.stats
        );
    }

    /// Satellite: two configurations that differ ONLY in a budget field must
    /// never share a cache entry — a budget can turn `Unsat` into `Unknown`,
    /// so replaying the other config's verdict would be unsound.
    #[test]
    fn configs_differing_only_in_budget_fields_never_share_cache_entries() {
        use std::time::Duration;

        let base = cfg();
        let variants: Vec<(&str, crate::SmtConfig)> = vec![
            ("time_limit", {
                let mut c = base;
                c.time_limit = Some(Duration::from_secs(3600));
                c
            }),
            ("step_limit", {
                let mut c = base;
                c.step_limit = Some(u64::MAX / 2);
                c
            }),
            ("retry_unknown", {
                let mut c = base;
                c.retry_unknown = !base.retry_unknown;
                c
            }),
        ];
        for (field, variant) in variants {
            let cache = Arc::new(QueryCache::new());
            let mut a = TermArena::new();
            let x = int_var(&mut a, "x");
            let zero = a.mk_int(0);
            let ge0 = a.mk_ge(x, zero);
            let lt0 = a.mk_lt(x, zero);

            let mut s1 = SmtSession::with_cache(base, Arc::clone(&cache));
            let mut s2 = SmtSession::with_cache(variant, Arc::clone(&cache));
            assert!(s1.verdict_under(&mut a, &[ge0, lt0]).is_unsat());
            assert!(s2.verdict_under(&mut a, &[ge0, lt0]).is_unsat());
            assert_eq!(
                s2.stats.cache_misses, 1,
                "config differing only in `{field}` must MISS, not reuse s1's entry"
            );
            assert_eq!(s2.stats.cache_hits, 0, "`{field}` variant hit the cache");
        }
    }

    /// A budget-limited `Unknown` is retried once at doubled budgets; when
    /// the retry settles the query, the original config's cache entry is
    /// upgraded in place so later same-config queries get the definitive
    /// verdict from the cache.
    #[test]
    fn retry_escalation_upgrades_budget_limited_unknowns_in_place() {
        use pins_budget::StopReason;

        // an unsat core the solver needs a handful of steps for
        let build = |a: &mut TermArena| -> Vec<TermId> {
            let x = int_var(a, "x");
            let y = int_var(a, "y");
            let one = a.mk_int(1);
            let f1 = a.mk_le(x, y);
            let sum = a.mk_add(y, one);
            let f2 = a.mk_le(sum, x); // x <= y and y + 1 <= x
            vec![f1, f2]
        };

        // find a step limit where the base run is budget-limited but the
        // doubled retry is definitive (the solver is deterministic, so the
        // probe is stable across runs)
        let mut exercised_upgrade = false;
        for limit in 1..=256u64 {
            let mut config = cfg();
            config.step_limit = Some(limit);
            config.retry_unknown = true;
            let cache = Arc::new(QueryCache::new());
            let mut s = SmtSession::with_cache(config, Arc::clone(&cache));
            let mut a = TermArena::new();
            let fs = build(&mut a);
            let v = s.verdict_under(&mut a, &fs);
            if s.stats.retries == 1 && v.is_unsat() {
                assert_eq!(
                    s.stats.cache_upgrades, 1,
                    "definitive retry must upgrade the original entry"
                );
                // the upgraded entry is at the ORIGINAL config's key: a new
                // same-config session must get Unsat as a pure cache hit
                let mut s2 = SmtSession::with_cache(config, Arc::clone(&cache));
                let mut a2 = TermArena::new();
                let fs2 = build(&mut a2);
                assert!(s2.verdict_under(&mut a2, &fs2).is_unsat());
                assert_eq!(
                    s2.stats.cache_hits, 1,
                    "upgrade did not land at the original key"
                );
                assert_eq!(s2.stats.cache_misses, 0);
                exercised_upgrade = true;
                break;
            }
            // sanity: tiny limits must degrade, not hang or panic
            if limit == 1 {
                assert_eq!(
                    v,
                    Verdict::Unknown {
                        reason: StopReason::StepLimit
                    }
                );
                assert_eq!(s.stats.retries, 1, "unknowns are retried once");
            }
        }
        assert!(
            exercised_upgrade,
            "no step limit in 1..=256 produced a budget-limited base run with a \
             definitive doubled retry"
        );
    }

    /// Cancellation is a caller kill switch: it must not be retried, and it
    /// must be reported as `Unknown(Cancelled)`.
    #[test]
    fn cancelled_sessions_answer_unknown_without_retrying() {
        use pins_budget::Budget;
        use pins_budget::StopReason;

        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let zero = a.mk_int(0);
        let ge0 = a.mk_ge(x, zero);
        let lt0 = a.mk_lt(x, zero);

        let mut s = fresh_session();
        let budget = Budget::unlimited();
        s.set_budget(budget.clone());
        budget.cancel();
        let v = s.verdict_under(&mut a, &[ge0, lt0]);
        assert_eq!(
            v,
            Verdict::Unknown {
                reason: StopReason::Cancelled
            }
        );
        assert_eq!(s.stats.retries, 0, "cancellation must not trigger a retry");
        assert_eq!(s.stats.unknown_cancelled, 1);
    }
}

mod xray {
    use std::sync::Arc;

    use super::{cfg, int_var};
    use crate::session::MissCause;
    use crate::{CoreSlot, QueryCache, SmtSession};
    use pins_logic::{Sort, TermArena, TermId};

    fn fresh_session() -> SmtSession {
        SmtSession::with_cache(cfg(), Arc::new(QueryCache::new()))
    }

    /// Twenty satisfiable noise facts plus one contradictory pair: the
    /// extracted core must contain the pair, shed (at least most of) the
    /// noise, and itself be unsat when re-solved fresh.
    #[test]
    fn core_pinpoints_the_contradiction_among_noise() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let mut fs = Vec::new();
        for k in 0..20 {
            let v = int_var(&mut a, &format!("noise{k}"));
            let c = a.mk_int(k);
            fs.push(a.mk_ge(v, c));
        }
        let three = a.mk_int(3);
        let four = a.mk_int(4);
        fs.push(a.mk_ge(x, four)); // index 20
        fs.push(a.mk_le(x, three)); // index 21
        let mut s = fresh_session();
        assert!(s.verdict_under(&mut a, &fs).is_unsat());

        let core = s.last_unsat_core().expect("unsat must carry a core");
        assert!(core.exact, "no fallback should be needed here");
        let idxs: Vec<usize> = core
            .members
            .iter()
            .map(|m| match m.slot {
                CoreSlot::Assumption(i) => i,
                CoreSlot::Assertion(i) => panic!("no persistent assertions, got {i}"),
            })
            .collect();
        assert!(
            idxs.contains(&20) && idxs.contains(&21),
            "core {idxs:?} misses the pair"
        );
        assert!(
            core.len() < fs.len(),
            "core kept every assert: {} of {}",
            core.len(),
            fs.len()
        );
        // the defining property: the members alone are unsat
        let members: Vec<TermId> = idxs.iter().map(|&i| fs[i]).collect();
        assert!(fresh_session().verdict_under(&mut a, &members).is_unsat());
        assert_eq!(s.stats.cores, 1);
        assert_eq!(s.stats.cores_inexact, 0);
    }

    /// Core members carry their origin: persistent assertions vs. per-query
    /// assumptions.
    #[test]
    fn core_slots_distinguish_assertions_from_assumptions() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let three = a.mk_int(3);
        let four = a.mk_int(4);
        let lo = a.mk_ge(x, four);
        let hi = a.mk_le(x, three);
        let mut s = fresh_session();
        s.assert(lo);
        assert!(s.is_unsat_under(&mut a, &[hi]));
        let core = s.last_unsat_core().expect("core");
        let mut slots: Vec<CoreSlot> = core.members.iter().map(|m| m.slot).collect();
        slots.sort_by_key(|s| match s {
            CoreSlot::Assertion(i) => (0, *i),
            CoreSlot::Assumption(i) => (1, *i),
        });
        assert_eq!(slots, vec![CoreSlot::Assertion(0), CoreSlot::Assumption(0)]);
    }

    /// A second session hitting the cached `Unsat` entry gets the stored
    /// core, resolved against its own query positions, with the same
    /// content id.
    #[test]
    fn cache_hits_replay_the_stored_core() {
        let cache = Arc::new(QueryCache::new());
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let noise = int_var(&mut a, "n");
        let zero = a.mk_int(0);
        let fs = vec![a.mk_ge(noise, zero), a.mk_ge(x, zero), a.mk_lt(x, zero)];

        let mut s1 = SmtSession::with_cache(cfg(), Arc::clone(&cache));
        assert!(s1.verdict_under(&mut a, &fs).is_unsat());
        let id1 = s1.last_unsat_core().expect("fresh core").id;

        let mut s2 = SmtSession::with_cache(cfg(), Arc::clone(&cache));
        assert!(s2.verdict_under(&mut a, &fs).is_unsat());
        assert_eq!(s2.stats.cache_hits, 1, "second solve must be a hit");
        let core2 = s2
            .last_unsat_core()
            .expect("cache hit must replay the core");
        assert_eq!(core2.id, id1, "content id must be stable across sessions");
        assert_eq!(s2.stats.cores, 1);
    }

    /// With `track_cores` off there is no core, and the config fingerprint
    /// keeps tracked and untracked entries apart in a shared cache.
    #[test]
    fn cores_off_yields_no_core_and_a_distinct_cache_key() {
        let cache = Arc::new(QueryCache::new());
        let mut off = cfg();
        off.track_cores = false;
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let zero = a.mk_int(0);
        let fs = vec![a.mk_ge(x, zero), a.mk_lt(x, zero)];

        let mut s1 = SmtSession::with_cache(off, Arc::clone(&cache));
        assert!(s1.verdict_under(&mut a, &fs).is_unsat());
        assert!(s1.last_unsat_core().is_none());

        let mut s2 = SmtSession::with_cache(cfg(), Arc::clone(&cache));
        assert!(s2.verdict_under(&mut a, &fs).is_unsat());
        assert_eq!(
            s2.stats.cache_misses, 1,
            "tracked config must not reuse the untracked entry"
        );
        assert!(s2.last_unsat_core().is_some());
    }

    /// When a quantified axiom participates in the refutation, the asserted
    /// fact that grounded it stays in the core (axiom instances themselves
    /// are untracked), and the core re-solves to unsat with the axioms.
    #[test]
    fn axiom_driven_unsat_keeps_the_grounding_assert_in_the_core() {
        let mut a = TermArena::new();
        let str_sort = Sort::Unint(a.sym("Str"));
        let strlen = a.declare_fun("strlen", vec![str_sort], Sort::Int);
        let s = a.sym("s");
        let bs = a.mk_bound(s, str_sort);
        let app = a.mk_app(strlen, vec![bs]);
        let zero = a.mk_int(0);
        let body = a.mk_ge(app, zero);
        let ax = a.mk_forall(vec![(s, str_sort)], body);

        let w = a.sym("w");
        let vw = a.mk_var(w, 0, str_sort);
        let lw = a.mk_app(strlen, vec![vw]);
        let minus1 = a.mk_int(-1);
        let bad = a.mk_eq(lw, minus1);

        let mut sess = fresh_session();
        sess.assert_axiom(ax);
        assert!(sess.is_unsat_under(&mut a, &[bad]));
        let core = sess.last_unsat_core().expect("core");
        assert!(
            core.members
                .iter()
                .any(|m| m.slot == CoreSlot::Assumption(0)),
            "the grounding assert must survive in the core"
        );
        // re-solving the core members (with the same axioms) stays unsat
        let mut again = fresh_session();
        again.assert_axiom(ax);
        assert!(again.is_unsat_under(&mut a, &[bad]));
    }

    /// Miss taxonomy: a brand-new query is `FirstSeen`; the same structural
    /// query under a different config is `ConfigMismatch` (definitive
    /// precedent) and the per-cause counters add up to total misses.
    #[test]
    fn miss_causes_distinguish_first_seen_from_config_churn() {
        let cache = Arc::new(QueryCache::new());
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let zero = a.mk_int(0);
        let fs = vec![a.mk_ge(x, zero), a.mk_lt(x, zero)];

        let mut s1 = SmtSession::with_cache(cfg(), Arc::clone(&cache));
        assert!(s1.verdict_under(&mut a, &fs).is_unsat());
        assert_eq!(s1.stats.miss_first_seen, 1);

        let mut other = cfg();
        other.max_theory_rounds += 1; // semantically irrelevant, new key
        let mut s2 = SmtSession::with_cache(other, Arc::clone(&cache));
        assert!(s2.verdict_under(&mut a, &fs).is_unsat());
        assert_eq!(s2.stats.miss_config_mismatch, 1, "{:?}", s2.stats);

        let b = cache.miss_breakdown();
        assert_eq!(
            b.first_seen + b.config_mismatch + b.budget_retry + b.near_miss,
            cache.misses()
        );
    }

    /// A structural precedent that was budget-limited classifies later
    /// misses on the same formula as `BudgetRetry` (the escalation-ladder
    /// signature), not `ConfigMismatch`.
    #[test]
    fn budget_limited_precedents_classify_as_budget_retry() {
        let cache = Arc::new(QueryCache::new());
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let y = int_var(&mut a, "y");
        let one = a.mk_int(1);
        let f1 = a.mk_le(x, y);
        let sum = a.mk_add(y, one);
        let f2 = a.mk_le(sum, x);

        let mut tiny = cfg();
        tiny.step_limit = Some(1); // guaranteed Unknown(StepLimit)
        let mut s1 = SmtSession::with_cache(tiny, Arc::clone(&cache));
        assert!(!s1.verdict_under(&mut a, &[f1, f2]).is_definitive());

        let mut s2 = SmtSession::with_cache(cfg(), Arc::clone(&cache));
        assert!(s2.verdict_under(&mut a, &[f1, f2]).is_unsat());
        assert_eq!(s2.stats.miss_budget_retry, 1, "{:?}", s2.stats);
    }

    /// A query within [`crate::NEAR_MISS_DELTA`] atoms of a cached one is a
    /// `NearMiss`; a disjoint query is `FirstSeen`.
    #[test]
    fn near_misses_are_detected_within_the_delta_bound() {
        let cache = Arc::new(QueryCache::new());
        let mut a = TermArena::new();
        let mut fs: Vec<TermId> = Vec::new();
        for k in 0..8 {
            let v = int_var(&mut a, &format!("v{k}"));
            let c = a.mk_int(k);
            fs.push(a.mk_ge(v, c));
        }
        let mut s1 = SmtSession::with_cache(cfg(), Arc::clone(&cache));
        assert!(s1.verdict_under(&mut a, &fs).is_sat());

        // drop one atom, add one: delta 2 <= NEAR_MISS_DELTA
        let mut near = fs.clone();
        near.pop();
        let w = int_var(&mut a, "w");
        let hundred = a.mk_int(100);
        near.push(a.mk_le(w, hundred));
        let mut s2 = SmtSession::with_cache(cfg(), Arc::clone(&cache));
        assert!(s2.verdict_under(&mut a, &near).is_sat());
        assert_eq!(s2.stats.miss_near_miss, 1, "{:?}", s2.stats);

        // a structurally disjoint query shares no atoms: FirstSeen
        let z = int_var(&mut a, "z");
        let seven = a.mk_int(7);
        let other = vec![a.mk_eq(z, seven)];
        let mut s3 = SmtSession::with_cache(cfg(), Arc::clone(&cache));
        assert!(s3.verdict_under(&mut a, &other).is_sat());
        assert_eq!(s3.stats.miss_first_seen, 1, "{:?}", s3.stats);
    }

    /// The incrementality audit measures consecutive queries: shared
    /// prefix, added/removed atoms, and the pure-extension flag.
    #[test]
    fn audit_measures_deltas_between_consecutive_queries() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let y = int_var(&mut a, "y");
        let zero = a.mk_int(0);
        let ten = a.mk_int(10);
        let f1 = a.mk_ge(x, zero);
        let f2 = a.mk_le(x, ten);
        let f3 = a.mk_ge(y, zero);
        let f4 = a.mk_le(y, ten);

        let mut s = fresh_session();
        s.assert(f1);
        s.assert(f2);
        // query 1: first query, no pair measured
        assert!(s.verdict_under(&mut a, &[]).is_sat());
        assert_eq!(s.stats.audit_pairs, 0);

        // query 2: pure extension (adds f3, removes nothing)
        assert!(s.verdict_under(&mut a, &[f3]).is_sat());
        assert_eq!(s.stats.audit_pairs, 1);
        assert_eq!(s.stats.audit_shared_prefix, 2);
        assert_eq!(s.stats.audit_added, 1);
        assert_eq!(s.stats.audit_removed, 0);
        assert_eq!(s.stats.audit_pure_extensions, 1);

        // query 3: swaps f3 for f4 (prefix still shared, one in, one out)
        assert!(s.verdict_under(&mut a, &[f4]).is_sat());
        assert_eq!(s.stats.audit_pairs, 2);
        assert_eq!(s.stats.audit_shared_prefix, 4);
        assert_eq!(s.stats.audit_added, 2);
        assert_eq!(s.stats.audit_removed, 1);
        assert_eq!(s.stats.audit_pure_extensions, 1);
    }

    /// Forked workers inherit the audit baseline, so a worker's first query
    /// is measured against the parent's last.
    #[test]
    fn forks_inherit_the_audit_baseline() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let zero = a.mk_int(0);
        let ten = a.mk_int(10);
        let f1 = a.mk_ge(x, zero);
        let f2 = a.mk_le(x, ten);

        let mut parent = fresh_session();
        parent.assert(f1);
        assert!(parent.verdict_under(&mut a, &[]).is_sat());

        let mut worker = parent.fork();
        assert!(worker.verdict_under(&mut a, &[f2]).is_sat());
        assert_eq!(worker.stats.audit_pairs, 1);
        assert_eq!(worker.stats.audit_shared_prefix, 1);
        assert_eq!(worker.stats.audit_added, 1);

        // mid-run, the cause-breakdown counters also surfaced per-cause
        assert_eq!(
            MissCause::NearMiss.as_str(),
            "near_miss",
            "stable trace tags"
        );
    }

    /// `last_unsat_core` is per-query state: a sat query after an unsat one
    /// clears it.
    #[test]
    fn last_core_resets_on_every_query() {
        let mut a = TermArena::new();
        let x = int_var(&mut a, "x");
        let zero = a.mk_int(0);
        let ge0 = a.mk_ge(x, zero);
        let lt0 = a.mk_lt(x, zero);
        let mut s = fresh_session();
        assert!(s.is_unsat_under(&mut a, &[ge0, lt0]));
        assert!(s.last_unsat_core().is_some());
        assert!(s.verdict_under(&mut a, &[ge0]).is_sat());
        assert!(s.last_unsat_core().is_none());
    }
}
