//! Satisfying assignments extracted from the solver, used by PINS for
//! concrete-test generation (Section 2.5 of the paper).

use std::collections::HashMap;

use pins_logic::{Term, TermArena, TermId};

/// A first-order model over the terms that occurred in the checked formula.
#[derive(Debug, Clone, Default)]
pub struct Model {
    /// Whether the answer is exact. `false` when quantifier instantiation or
    /// branch-and-bound budgets were hit: the assignment satisfies the
    /// grounded approximation only.
    pub complete: bool,
    /// Values of integer-sorted terms (opaque LIA atoms and constants).
    pub ints: HashMap<TermId, i64>,
    /// Truth values of boolean atoms.
    pub bools: HashMap<TermId, bool>,
    /// Per array-class representative: known (index, element) pairs.
    pub arrays: HashMap<TermId, Vec<(i64, i64)>>,
    /// Uninterpreted-sort terms mapped to their class identifier.
    pub unints: HashMap<TermId, u64>,
}

impl Model {
    /// The integer value of `t`, structurally evaluated if needed.
    /// Unknown opaque leaves default to 0 (the model only guarantees values
    /// for terms that appeared in the solved formula).
    pub fn eval_int(&self, arena: &TermArena, t: TermId) -> i64 {
        if let Some(&v) = self.ints.get(&t) {
            return v;
        }
        match arena.term(t) {
            Term::IntConst(v) => *v,
            Term::Add(a, b) => self
                .eval_int(arena, *a)
                .wrapping_add(self.eval_int(arena, *b)),
            Term::Sub(a, b) => self
                .eval_int(arena, *a)
                .wrapping_sub(self.eval_int(arena, *b)),
            Term::Mul(a, b) => self
                .eval_int(arena, *a)
                .wrapping_mul(self.eval_int(arena, *b)),
            Term::Sel(a, i) => {
                let idx = self.eval_int(arena, *i);
                self.array_lookup(arena, *a, idx)
            }
            _ => 0,
        }
    }

    /// Array element `a[idx]` according to the model (default 0).
    pub fn array_lookup(&self, arena: &TermArena, a: TermId, idx: i64) -> i64 {
        match arena.term(a) {
            Term::Upd(base, i, v) => {
                if self.eval_int(arena, *i) == idx {
                    self.eval_int(arena, *v)
                } else {
                    self.array_lookup(arena, *base, idx)
                }
            }
            _ => self
                .arrays
                .get(&a)
                .and_then(|entries| entries.iter().find(|&&(i, _)| i == idx).map(|&(_, v)| v))
                .unwrap_or(0),
        }
    }

    /// The truth value of a boolean term, structurally evaluated.
    pub fn eval_bool(&self, arena: &TermArena, t: TermId) -> bool {
        if let Some(&v) = self.bools.get(&t) {
            return v;
        }
        match arena.term(t) {
            Term::BoolConst(b) => *b,
            Term::Not(a) => !self.eval_bool(arena, *a),
            Term::And(kids) => kids.iter().all(|&k| self.eval_bool(arena, k)),
            Term::Or(kids) => kids.iter().any(|&k| self.eval_bool(arena, k)),
            Term::Le(a, b) => self.eval_int(arena, *a) <= self.eval_int(arena, *b),
            Term::Lt(a, b) => self.eval_int(arena, *a) < self.eval_int(arena, *b),
            Term::Eq(a, b) => {
                if arena.sort(*a).is_int() {
                    self.eval_int(arena, *a) == self.eval_int(arena, *b)
                } else if arena.sort(*a).is_bool() {
                    self.eval_bool(arena, *a) == self.eval_bool(arena, *b)
                } else {
                    self.unints.get(a) == self.unints.get(b)
                }
            }
            _ => false,
        }
    }
}
