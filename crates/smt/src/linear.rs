//! Linearization of integer terms into linear expressions over *opaque*
//! atoms (variables, array reads, uninterpreted applications, and non-linear
//! multiplications), the interface between the term language and the
//! simplex core.

use std::collections::BTreeMap;

use pins_logic::{Term, TermArena, TermId};

/// `constant + sum coeffs[t] * t` over opaque integer terms `t`.
///
/// All arithmetic is checked: a coefficient or constant that escapes `i64`
/// sets [`overflowed`](Self::overflowed) instead of panicking (or silently
/// wrapping under `overflow-checks = false`), and the solver degrades such
/// an expression to an `Unknown(Overflow)` verdict.
///
/// The coefficient map is ordered: simplex variable allocation follows the
/// iteration order of asserted expressions, so an unordered map would make
/// pivoting — and hence the models found — differ from process to process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinExpr {
    /// Coefficients of opaque terms, ordered by term id.
    pub coeffs: BTreeMap<TermId, i64>,
    /// The constant offset.
    pub constant: i64,
    /// Set when any step of building the expression overflowed `i64`; the
    /// numeric fields are then unreliable and must not be asserted.
    pub overflowed: bool,
}

impl LinExpr {
    fn checked(&mut self, v: Option<i64>) -> i64 {
        v.unwrap_or_else(|| {
            self.overflowed = true;
            0
        })
    }

    fn add_term(&mut self, t: TermId, c: i64) {
        let cur = self.coeffs.get(&t).copied().unwrap_or(0);
        let e = self.checked(cur.checked_add(c));
        if e == 0 {
            self.coeffs.remove(&t);
        } else {
            self.coeffs.insert(t, e);
        }
    }

    fn scale(&mut self, k: i64) {
        self.constant = self.checked(self.constant.checked_mul(k));
        let mut overflow = false;
        self.coeffs.retain(|_, c| {
            match c.checked_mul(k) {
                Some(v) => *c = v,
                None => {
                    overflow = true;
                    *c = 0;
                }
            }
            *c != 0
        });
        self.overflowed |= overflow;
    }

    fn merge(&mut self, other: LinExpr, sign: i64) {
        self.overflowed |= other.overflowed;
        let scaled = self.checked(other.constant.checked_mul(sign));
        self.constant = self.checked(self.constant.checked_add(scaled));
        for (t, c) in other.coeffs {
            let c = self.checked(c.checked_mul(sign));
            self.add_term(t, c);
        }
    }

    /// Whether the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Subtracts `other` in place.
    pub fn sub_assign(&mut self, other: &LinExpr) {
        self.merge(other.clone(), -1);
    }
}

/// Linearizes an `Int`-sorted term. Opaque leaves are variables, `sel`
/// reads, uninterpreted applications and non-linear products.
///
/// # Panics
///
/// Panics on `Hole` terms (holes must be substituted before SMT solving)
/// and on non-integer input.
pub fn linearize(arena: &TermArena, t: TermId) -> LinExpr {
    debug_assert!(arena.sort(t).is_int(), "linearize requires an Int term");
    let mut out = LinExpr::default();
    lin_rec(arena, t, 1, &mut out);
    out
}

fn lin_rec(arena: &TermArena, t: TermId, sign: i64, out: &mut LinExpr) {
    match arena.term(t) {
        Term::IntConst(v) => {
            let sv = out.checked(v.checked_mul(sign));
            out.constant = out.checked(out.constant.checked_add(sv));
        }
        Term::Add(a, b) => {
            lin_rec(arena, *a, sign, out);
            lin_rec(arena, *b, sign, out);
        }
        Term::Sub(a, b) => {
            lin_rec(arena, *a, sign, out);
            lin_rec(arena, *b, -sign, out);
        }
        Term::Mul(a, b) => {
            let (a, b) = (*a, *b);
            match (arena.term(a), arena.term(b)) {
                (Term::IntConst(k), _) => {
                    let mut inner = LinExpr::default();
                    lin_rec(arena, b, 1, &mut inner);
                    inner.scale(*k);
                    if sign < 0 {
                        inner.scale(-1);
                    }
                    out.merge(inner, 1);
                }
                (_, Term::IntConst(k)) => {
                    let mut inner = LinExpr::default();
                    lin_rec(arena, a, 1, &mut inner);
                    inner.scale(*k);
                    if sign < 0 {
                        inner.scale(-1);
                    }
                    out.merge(inner, 1);
                }
                _ => out.add_term(t, sign), // non-linear: opaque
            }
        }
        // holes act as opaque constants when a partial solution leaves them
        // unfilled during a feasibility probe
        Term::Var { .. } | Term::Sel(..) | Term::App(..) | Term::Hole(..) => out.add_term(t, sign),
        other => panic!("non-integer structure in linearize: {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pins_logic::Sort;

    #[test]
    fn linear_combination() {
        let mut a = TermArena::new();
        let x = a.sym("x");
        let y = a.sym("y");
        let vx = a.mk_var(x, 0, Sort::Int);
        let vy = a.mk_var(y, 0, Sort::Int);
        let three = a.mk_int(3);
        let t1 = a.mk_mul(three, vx);
        let sum = a.mk_add(t1, vy);
        let seven = a.mk_int(7);
        let t = a.mk_sub(sum, seven);
        let lin = linearize(&a, t);
        assert_eq!(lin.constant, -7);
        assert_eq!(lin.coeffs[&vx], 3);
        assert_eq!(lin.coeffs[&vy], 1);
    }

    #[test]
    fn cancellation() {
        let mut a = TermArena::new();
        let x = a.sym("x");
        let vx = a.mk_var(x, 0, Sort::Int);
        let two = a.mk_int(2);
        let t1 = a.mk_mul(two, vx);
        let sum = a.mk_add(t1, vx); // 3x... careful: 2x + x
        let three_x = linearize(&a, sum);
        assert_eq!(three_x.coeffs[&vx], 3);
        // x - x folds in the arena already; 2x - 2x must cancel here
        let t2 = a.mk_mul(two, vx);
        let diff = a.mk_sub(t1, t2);
        let lin = linearize(&a, diff);
        assert!(lin.is_constant());
        assert_eq!(lin.constant, 0);
    }

    #[test]
    fn nonlinear_products_are_opaque() {
        let mut a = TermArena::new();
        let x = a.sym("x");
        let y = a.sym("y");
        let vx = a.mk_var(x, 0, Sort::Int);
        let vy = a.mk_var(y, 0, Sort::Int);
        let xy = a.mk_mul(vx, vy);
        let lin = linearize(&a, xy);
        assert_eq!(lin.coeffs.len(), 1);
        assert_eq!(lin.coeffs[&xy], 1);
    }

    #[test]
    fn sel_and_app_are_opaque() {
        let mut a = TermArena::new();
        let arr = a.sym("A");
        let i = a.sym("i");
        let va = a.mk_var(arr, 0, Sort::IntArray);
        let vi = a.mk_var(i, 0, Sort::Int);
        let sel = a.mk_sel(va, vi);
        let one = a.mk_int(1);
        let t = a.mk_add(sel, one);
        let lin = linearize(&a, t);
        assert_eq!(lin.constant, 1);
        assert_eq!(lin.coeffs[&sel], 1);
    }
}
