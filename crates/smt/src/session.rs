//! A persistent, incremental solver session with a process-wide query cache.
//!
//! PINS's inner loop (§2.3 of the paper) issues thousands of SMT validity
//! queries per synthesis run, and the vast majority are repeats: the same
//! path condition re-checked under a slightly different candidate, the same
//! infeasibility probe issued by `pickOne` across iterations, the same axiom
//! set asserted before every query. The historical free-function entry
//! points (`check_formulas`, `is_unsat`, `is_valid`, removed in 0.2) rebuilt
//! everything from scratch each call.
//!
//! [`SmtSession`] replaces them. A session holds
//!
//! * a persistent **assertion set** with [`push`](SmtSession::push) /
//!   [`pop`](SmtSession::pop) scopes and a separate **axiom set** (quantified
//!   library facts that get trigger-instantiated rather than asserted),
//! * **assumption-based checks** ([`check_under`](SmtSession::check_under),
//!   [`verdict_under`](SmtSession::verdict_under)): extra conjuncts for one
//!   query only, without disturbing the persistent scope, and
//! * a shared, process-wide **normalized-query cache** mapping a structural
//!   fingerprint of (config, axioms, assertions ∪ assumptions) to the
//!   verdict, with hit/miss counters.
//!
//! # Normalization and soundness
//!
//! Cache keys are 128-bit structural fingerprints over the term DAG that
//! hash symbol *names* (not arena-local ids), SSA versions, and sorts, with
//! the assertion multiset sorted and deduplicated. Two queries that denote
//! the same conjunction therefore share a key even when issued from
//! different [`TermArena`]s or in a different assertion order. Only the
//! *verdict* is cached — never a model, since model term-ids are only
//! meaningful in the arena that produced them. When a caller needs a model
//! for a formula whose verdict is already cached as satisfiable, the session
//! re-solves ([`SessionStats::sat_resolves`]); verdict-only callers
//! (feasibility probes, validity checks) short-circuit entirely.
//!
//! `Unsat` verdicts from the underlying solver are always sound, and
//! `Sat`/`Unknown` ones record their completeness, so replaying a cached
//! verdict is exactly as trustworthy as re-running the solver with the same
//! (fingerprinted) configuration.
//!
//! # Worker sessions
//!
//! [`fork`](SmtSession::fork) clones a session's scope and fingerprint memo
//! while *sharing* the query cache, which is how the parallel constraint
//! verifier in `pins-core` gives each worker thread its own session. A fork
//! must only be used with the arena it was forked against or a clone of it:
//! [`TermArena`] is append-only, so term ids that existed at fork time stay
//! valid in clones, which keeps the memoized fingerprints correct.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use pins_budget::{Budget, StopReason};
use pins_logic::{Sort, SymbolTable, Term, TermArena, TermId};
use pins_trace::{Counter, Histogram, MetricsRegistry, Phase, ProvenanceCtx, PHASES};

use crate::solver::{Smt, SmtConfig, SmtResult, TrackedCore};

// ---------------------------------------------------------------------------
// fingerprints
// ---------------------------------------------------------------------------

/// splitmix64's finalizer: a bijective 64-bit mix.
fn fmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two 128-bit values non-commutatively.
fn mix(acc: u128, v: u128) -> u128 {
    let lo = fmix((acc as u64).wrapping_add(fmix(v as u64)));
    let hi = fmix(
        ((acc >> 64) as u64)
            .rotate_left(17)
            .wrapping_add(fmix((v >> 64) as u64))
            .wrapping_add(0x9E37_79B9_7F4A_7C15),
    );
    ((hi as u128) << 64) | lo as u128
}

fn mix_u64(acc: u128, v: u64) -> u128 {
    mix(acc, v as u128)
}

fn mix_str(acc: u128, s: &str) -> u128 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a over the bytes
    for &b in s.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(acc, ((s.len() as u128) << 64) | h as u128)
}

fn mix_sort(acc: u128, sort: &Sort, syms: &SymbolTable) -> u128 {
    match sort {
        Sort::Bool => mix_u64(acc, 0x0b01),
        Sort::Int => mix_u64(acc, 0x1217),
        Sort::IntArray => mix_u64(acc, 0xa55a),
        Sort::Unint(s) => mix_str(mix_u64(acc, 0x0111), syms.name(*s)),
    }
}

/// Arbitrary distinct seed (pi's hex digits), so an empty combination is not 0.
const FP_SEED: u128 = 0x243F_6A88_85A3_08D3_1319_8A2E_0370_7344;

fn node_tag(tag: u64) -> u128 {
    mix_u64(FP_SEED, tag)
}

/// Fingerprint of the node at `id`, assuming every child is already in `memo`.
fn fp_node(arena: &TermArena, id: TermId, memo: &HashMap<TermId, u128>) -> u128 {
    let syms = arena.symbols();
    match arena.term(id) {
        Term::IntConst(v) => mix_u64(node_tag(1), *v as u64),
        Term::BoolConst(b) => mix_u64(node_tag(2), *b as u64),
        Term::Var { sym, version, sort } => {
            let h = mix_str(node_tag(3), syms.name(*sym));
            let h = mix_u64(h, *version as u64);
            mix_sort(h, sort, syms)
        }
        Term::Add(a, b) => mix(mix(node_tag(4), memo[a]), memo[b]),
        Term::Sub(a, b) => mix(mix(node_tag(5), memo[a]), memo[b]),
        Term::Mul(a, b) => mix(mix(node_tag(6), memo[a]), memo[b]),
        Term::Sel(a, b) => mix(mix(node_tag(7), memo[a]), memo[b]),
        Term::Upd(a, b, c) => mix(mix(mix(node_tag(8), memo[a]), memo[b]), memo[c]),
        Term::App(f, args) => {
            let mut h = mix_str(node_tag(9), syms.name(*f));
            for a in args {
                h = mix(h, memo[a]);
            }
            mix_u64(h, args.len() as u64)
        }
        Term::Eq(a, b) => mix(mix(node_tag(10), memo[a]), memo[b]),
        Term::Le(a, b) => mix(mix(node_tag(11), memo[a]), memo[b]),
        Term::Lt(a, b) => mix(mix(node_tag(12), memo[a]), memo[b]),
        Term::Not(a) => mix(node_tag(13), memo[a]),
        Term::And(kids) => {
            let mut h = node_tag(14);
            for k in kids {
                h = mix(h, memo[k]);
            }
            mix_u64(h, kids.len() as u64)
        }
        Term::Or(kids) => {
            let mut h = node_tag(15);
            for k in kids {
                h = mix(h, memo[k]);
            }
            mix_u64(h, kids.len() as u64)
        }
        Term::Ite(c, t, e) => mix(mix(mix(node_tag(16), memo[c]), memo[t]), memo[e]),
        Term::Forall(vars, body) => {
            let mut h = node_tag(17);
            for (sym, sort) in vars {
                h = mix_sort(mix_str(h, syms.name(*sym)), sort, syms);
            }
            mix(h, memo[body])
        }
        Term::Hole(occ, sort) => mix_sort(mix_u64(node_tag(18), *occ as u64), sort, syms),
    }
}

/// Structural fingerprint of `root`, memoized over the DAG. Iterative
/// post-order so deeply nested path conditions cannot overflow the stack.
fn fingerprint(arena: &TermArena, root: TermId, memo: &mut HashMap<TermId, u128>) -> u128 {
    if let Some(&h) = memo.get(&root) {
        return h;
    }
    let mut stack = vec![root];
    while let Some(&id) = stack.last() {
        if memo.contains_key(&id) {
            stack.pop();
            continue;
        }
        let mut ready = true;
        for k in arena.children(id) {
            if !memo.contains_key(&k) {
                stack.push(k);
                ready = false;
            }
        }
        if ready {
            let h = fp_node(arena, id, memo);
            memo.insert(id, h);
            stack.pop();
        }
    }
    memo[&root]
}

// ---------------------------------------------------------------------------
// verdicts and the cache
// ---------------------------------------------------------------------------

/// The model-free outcome of a query: what the cache stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The conjunction is provably unsatisfiable (always sound).
    Unsat,
    /// A satisfying assignment was found; `complete` records whether the
    /// solver ran within all budgets (see [`crate::Model::complete`]).
    Sat {
        /// Whether the answer is exact rather than budget-limited.
        complete: bool,
    },
    /// The solver gave up within its budgets; `reason` records which budget
    /// tripped (deadline, cancellation, step limit, or arithmetic overflow).
    Unknown {
        /// Why the solver stopped short of a definitive verdict.
        reason: StopReason,
    },
}

impl Verdict {
    /// The verdict of a full solver result, dropping the model.
    pub fn of(result: &SmtResult) -> Verdict {
        match result {
            SmtResult::Unsat => Verdict::Unsat,
            SmtResult::Sat(m) => Verdict::Sat {
                complete: m.complete,
            },
            SmtResult::Unknown(reason) => Verdict::Unknown { reason: *reason },
        }
    }

    /// Whether the verdict is `Unsat`.
    pub fn is_unsat(self) -> bool {
        matches!(self, Verdict::Unsat)
    }

    /// Whether the verdict is `Sat` (complete or not).
    pub fn is_sat(self) -> bool {
        matches!(self, Verdict::Sat { .. })
    }

    /// Whether the verdict pins down an answer: `Unsat` (always sound) or a
    /// complete `Sat`. Budget-degraded results (`Unknown`, incomplete
    /// `Sat`) are not definitive.
    pub fn is_definitive(self) -> bool {
        matches!(self, Verdict::Unsat | Verdict::Sat { complete: true })
    }

    /// Whether two verdicts for the *same query* are mutually consistent.
    /// Non-definitive results are compatible with anything; two definitive
    /// results must agree on sat-vs-unsat. Differential harnesses
    /// (`pins-fuzz`) flag exactly the pairs for which this is `false` —
    /// any such pair witnesses a soundness bug in at least one of the runs.
    pub fn agrees_with(self, other: Verdict) -> bool {
        !(self.is_definitive() && other.is_definitive() && self.is_unsat() != other.is_unsat())
    }
}

/// Why a normalized-query cache miss happened — the pins-xray miss
/// taxonomy. Every miss is exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MissCause {
    /// No structurally equal query was ever solved through this cache.
    FirstSeen,
    /// The same assertion set was solved before under a *different*
    /// configuration fingerprint, and every verdict it reached there was
    /// definitive or sat — the miss is pure config churn.
    ConfigMismatch,
    /// The same assertion set was solved before under a different config
    /// and was budget-limited (`Unknown`) at least once: the miss belongs
    /// to a budget-escalation ladder (sessions retrying at doubled budgets).
    BudgetRetry,
    /// No structural match, but some cached query differs from this one by
    /// at most [`NEAR_MISS_DELTA`] assertions — the key smell that warm
    /// starting (ROADMAP item 1) would pay off.
    NearMiss,
}

impl MissCause {
    /// Stable tag used in trace events and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            MissCause::FirstSeen => "first_seen",
            MissCause::ConfigMismatch => "config_mismatch",
            MissCause::BudgetRetry => "budget_retry",
            MissCause::NearMiss => "near_miss",
        }
    }
}

/// Maximum assertion-set delta (|added| + |removed|) for a miss to count as
/// a structural near-miss.
pub const NEAR_MISS_DELTA: usize = 4;

/// Bound on how many structural keys the per-assertion inverted index keeps
/// per fingerprint; beyond it an assertion is too common to vote usefully.
const INVERTED_CAP: usize = 8;

/// Per-miss counters, one per [`MissCause`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MissBreakdown {
    /// Misses with no structural precedent.
    pub first_seen: u64,
    /// Misses explained by a config-fingerprint change only.
    pub config_mismatch: u64,
    /// Misses on a budget-escalation ladder.
    pub budget_retry: u64,
    /// Misses within [`NEAR_MISS_DELTA`] assertions of a cached query.
    pub near_miss: u64,
}

/// The unsat core stored alongside a cached `Unsat` verdict: the member
/// formulas' structural fingerprints (a subset of the query's normalized
/// assertion set, so any session that hits the entry can resolve them back
/// to its own assert indices).
#[derive(Debug, Clone)]
pub struct CachedCore {
    /// Sorted structural fingerprints of the core members.
    pub fps: Vec<u128>,
    /// Whether the core came from conflict analysis rather than the
    /// all-asserts fallback over-approximation.
    pub exact: bool,
}

/// What the cache stores per normalized key.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The model-free verdict.
    pub verdict: Verdict,
    /// For `Unsat` verdicts produced with core tracking on: the core.
    pub core: Option<Arc<CachedCore>>,
}

/// What one structural query looked like when it was last solved; the
/// forensics side-index is keyed by config-independent structural keys.
#[derive(Debug, Default)]
struct StructuralSeen {
    /// Whether any config reached only a budget-limited verdict here.
    any_unknown: bool,
    /// Normalized assertion count (for near-miss delta computation).
    atoms: u32,
}

#[derive(Debug, Default)]
struct ForensicsIndex {
    /// Structural key (config-independent) → what was seen there.
    structural: HashMap<u128, StructuralSeen>,
    /// Assertion fingerprint → structural keys containing it (each list
    /// capped at [`INVERTED_CAP`]): the near-miss voting index.
    inverted: HashMap<u128, Vec<u128>>,
}

/// A process-wide map from normalized query fingerprints to verdicts,
/// shared by every session that opts in (all of them by default).
///
/// The map is guarded by a [`Mutex`] — queries take microseconds to
/// milliseconds, so contention on the lock is negligible next to solving —
/// and the counters are lock-free atomics so hot paths can report stats
/// without taking the lock. A second mutex guards the miss-forensics
/// side-index (structural keys and the near-miss inverted index), touched
/// only on the miss path.
#[derive(Debug, Default)]
pub struct QueryCache {
    map: Mutex<HashMap<u128, CacheEntry>>,
    forensics: Mutex<ForensicsIndex>,
    hits: AtomicU64,
    misses: AtomicU64,
    miss_first_seen: AtomicU64,
    miss_config_mismatch: AtomicU64,
    miss_budget_retry: AtomicU64,
    miss_near_miss: AtomicU64,
}

impl QueryCache {
    /// An empty cache.
    pub fn new() -> QueryCache {
        QueryCache::default()
    }

    /// Looks up a fingerprint, bumping the hit or miss counter. The entry
    /// carries the verdict plus, for tracked `Unsat` results, its core.
    pub fn lookup(&self, key: u128) -> Option<CacheEntry> {
        let got = self.map.lock().unwrap().get(&key).cloned();
        match got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    /// Records a verdict for a fingerprint (no core).
    pub fn insert(&self, key: u128, verdict: Verdict) {
        self.insert_entry(key, verdict, None);
    }

    /// Records a verdict and (for `Unsat` with tracking) its core.
    pub fn insert_entry(&self, key: u128, verdict: Verdict, core: Option<Arc<CachedCore>>) {
        self.map
            .lock()
            .unwrap()
            .insert(key, CacheEntry { verdict, core });
    }

    /// Classifies why `structural_key` (with normalized assertion
    /// fingerprints `sorted_fps`) missed the cache. Returns the cause and,
    /// for near-misses, the assertion-set delta to the closest cached query.
    pub fn classify_miss(&self, structural_key: u128, sorted_fps: &[u128]) -> (MissCause, u64) {
        let f = self.forensics.lock().unwrap();
        if let Some(seen) = f.structural.get(&structural_key) {
            return if seen.any_unknown {
                (MissCause::BudgetRetry, 0)
            } else {
                (MissCause::ConfigMismatch, 0)
            };
        }
        // near-miss vote: count shared assertions per candidate structural
        // key through the inverted index, then take the smallest delta
        let mut shared: HashMap<u128, usize> = HashMap::new();
        for fp in sorted_fps {
            if let Some(keys) = f.inverted.get(fp) {
                for &k in keys {
                    *shared.entry(k).or_insert(0) += 1;
                }
            }
        }
        let n = sorted_fps.len();
        let mut best: Option<usize> = None;
        for (k, s) in &shared {
            let atoms = f.structural.get(k).map_or(0, |i| i.atoms as usize);
            let delta = atoms.saturating_sub(*s) + n.saturating_sub(*s);
            if best.is_none_or(|b| delta < b) {
                best = Some(delta);
            }
        }
        match best {
            Some(delta) if delta <= NEAR_MISS_DELTA => (MissCause::NearMiss, delta as u64),
            _ => (MissCause::FirstSeen, 0),
        }
    }

    /// Bumps the per-cause miss counter.
    pub fn note_miss_cause(&self, cause: MissCause) {
        let cell = match cause {
            MissCause::FirstSeen => &self.miss_first_seen,
            MissCause::ConfigMismatch => &self.miss_config_mismatch,
            MissCause::BudgetRetry => &self.miss_budget_retry,
            MissCause::NearMiss => &self.miss_near_miss,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a solved query into the forensics side-index so later misses
    /// can be classified against it.
    pub fn note_solved(&self, structural_key: u128, sorted_fps: &[u128], verdict: Verdict) {
        let mut f = self.forensics.lock().unwrap();
        let is_new = !f.structural.contains_key(&structural_key);
        if is_new {
            f.structural.insert(
                structural_key,
                StructuralSeen {
                    any_unknown: false,
                    atoms: sorted_fps.len() as u32,
                },
            );
            for fp in sorted_fps {
                let keys = f.inverted.entry(*fp).or_default();
                if keys.len() < INVERTED_CAP && !keys.contains(&structural_key) {
                    keys.push(structural_key);
                }
            }
        }
        if matches!(verdict, Verdict::Unknown { .. }) {
            if let Some(seen) = f.structural.get_mut(&structural_key) {
                seen.any_unknown = true;
            }
        }
    }

    /// Per-cause miss counters since creation (or the last counter reset).
    pub fn miss_breakdown(&self) -> MissBreakdown {
        MissBreakdown {
            first_seen: self.miss_first_seen.load(Ordering::Relaxed),
            config_mismatch: self.miss_config_mismatch.load(Ordering::Relaxed),
            budget_retry: self.miss_budget_retry.load(Ordering::Relaxed),
            near_miss: self.miss_near_miss.load(Ordering::Relaxed),
        }
    }

    /// Cache hits since creation (or the last [`reset_counters`](Self::reset_counters)).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses since creation (or the last [`reset_counters`](Self::reset_counters)).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct cached queries.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }

    /// Zeroes the hit/miss counters (entries are kept). Benchmarks use this
    /// to attribute traffic to a single run of the process-wide cache.
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// The process-wide cache used by [`SmtSession::new`] and the deprecated
/// free-function shims.
pub fn global_cache() -> &'static Arc<QueryCache> {
    static CACHE: OnceLock<Arc<QueryCache>> = OnceLock::new();
    CACHE.get_or_init(|| Arc::new(QueryCache::new()))
}

// ---------------------------------------------------------------------------
// unsat cores at the session level
// ---------------------------------------------------------------------------

/// Which session-level formula an unsat-core member refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreSlot {
    /// Index into [`SmtSession::assertions`] at query time.
    Assertion(usize),
    /// Index into the assumption slice the query was issued with.
    Assumption(usize),
}

/// One member of an unsat core: a position in the query plus the structural
/// fingerprint of the formula there (stable across arenas and sessions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreMember {
    /// Where the formula sat in the query.
    pub slot: CoreSlot,
    /// Structural fingerprint of the formula.
    pub fingerprint: u128,
}

/// The unsat core attached to an `Unsat` verdict: a subset of the query's
/// asserted formulas that is already unsatisfiable (together with any
/// quantified axioms in scope — axiom instances are never tracked, so a core
/// is relative to the axiom set).
#[derive(Debug, Clone)]
pub struct UnsatCore {
    /// Core members in query order.
    pub members: Vec<CoreMember>,
    /// Whether the core came from conflict analysis (`true`) or is the
    /// all-asserts fallback over-approximation (`false`).
    pub exact: bool,
    /// Content id: a hash of the member fingerprints, stable across runs,
    /// sessions, and arenas — what `pins-report --xray` aggregates on.
    pub id: u64,
}

impl UnsatCore {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the core has no members (unsatisfiability came from the
    /// axioms alone).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Content id over a sorted, deduplicated fingerprint set.
fn core_id(fps: &[u128]) -> u64 {
    let mut h = mix_u64(FP_SEED, 0xc04e);
    for &fp in fps {
        h = mix(h, fp);
    }
    (h as u64) ^ ((h >> 64) as u64)
}

// ---------------------------------------------------------------------------
// query shapes
// ---------------------------------------------------------------------------

/// The normalized fingerprints of one query, computed once and reused for
/// the cache key, the structural (config-independent) forensics key, core
/// provenance mapping, and the incrementality audit.
#[derive(Debug)]
struct QueryShape {
    /// Assertion then assumption fingerprints in query order (not
    /// deduplicated): index = core provenance id.
    ordered: Vec<u128>,
    /// Sorted, deduplicated assertion ∪ assumption fingerprints.
    sorted: Vec<u128>,
    /// Sorted, deduplicated axiom fingerprints.
    ax: Vec<u128>,
}

impl QueryShape {
    /// The cache key under `config_fp` (a config fingerprint or the
    /// structural seed).
    fn key_for(&self, config_fp: u128) -> u128 {
        let mut key = config_fp;
        key = mix_u64(key, self.ax.len() as u64);
        for &h in &self.ax {
            key = mix(key, h);
        }
        key = mix_u64(key, self.sorted.len() as u64);
        for &h in &self.sorted {
            key = mix(key, h);
        }
        key
    }

    /// The config-independent key the miss-forensics index is built on:
    /// same hash chain as a cache key but seeded with a distinct constant,
    /// so structural keys never collide with real cache keys by accident.
    fn structural_key(&self) -> u128 {
        self.key_for(mix_u64(FP_SEED, 0x57ac))
    }
}

/// What the incrementality audit measured for one consecutive-query pair.
#[derive(Debug, Clone, Copy)]
struct AuditDelta {
    /// Length of the shared ordered prefix with the previous query.
    shared_prefix: u64,
    /// Atoms in this query but not the previous one.
    added: u64,
    /// Atoms in the previous query but not this one.
    removed: u64,
    /// Total atoms in this query (ordered, with duplicates).
    atoms: u64,
}

// ---------------------------------------------------------------------------
// the session
// ---------------------------------------------------------------------------

/// Per-session query counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Total queries issued through this session.
    pub queries: u64,
    /// Queries answered from the shared cache without solving.
    pub cache_hits: u64,
    /// Queries that required an actual solve.
    pub cache_misses: u64,
    /// Model-producing checks whose verdict was cached as satisfiable and
    /// therefore had to re-solve to recover a model for this arena.
    pub sat_resolves: u64,
    /// Budget-limited `Unknown` results retried once at doubled budgets.
    pub retries: u64,
    /// Cached budget-limited `Unknown` entries replaced in place because a
    /// retry at larger budgets reached a definitive verdict.
    pub cache_upgrades: u64,
    /// Final `Unknown` answers (after any retry) that hit the wall-clock
    /// deadline.
    pub unknown_deadline: u64,
    /// Final `Unknown` answers caused by an external cancellation.
    pub unknown_cancelled: u64,
    /// Final `Unknown` answers that exhausted a step or round limit.
    pub unknown_step_limit: u64,
    /// Final `Unknown` answers degraded from an arithmetic overflow in the
    /// exact rational LIA core.
    pub unknown_overflow: u64,
    /// Misses classified [`MissCause::FirstSeen`].
    pub miss_first_seen: u64,
    /// Misses classified [`MissCause::ConfigMismatch`].
    pub miss_config_mismatch: u64,
    /// Misses classified [`MissCause::BudgetRetry`].
    pub miss_budget_retry: u64,
    /// Misses classified [`MissCause::NearMiss`].
    pub miss_near_miss: u64,
    /// Consecutive-query pairs measured by the incrementality audit.
    pub audit_pairs: u64,
    /// Summed shared-prefix length (atoms) over audited pairs.
    pub audit_shared_prefix: u64,
    /// Summed atoms added relative to the previous query.
    pub audit_added: u64,
    /// Summed atoms removed relative to the previous query.
    pub audit_removed: u64,
    /// Audited pairs that only *extended* the previous query (removed = 0):
    /// exactly the queries a push-scoped warm start would serve.
    pub audit_pure_extensions: u64,
    /// `Unsat` verdicts that carried an unsat core (fresh or cached).
    pub cores: u64,
    /// Cores that were fallback over-approximations rather than exact.
    pub cores_inexact: u64,
}

impl SessionStats {
    /// Folds another session's counters into this one (used when joining
    /// worker sessions back into the parent).
    pub fn absorb(&mut self, other: &SessionStats) {
        self.queries += other.queries;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.sat_resolves += other.sat_resolves;
        self.retries += other.retries;
        self.cache_upgrades += other.cache_upgrades;
        self.unknown_deadline += other.unknown_deadline;
        self.unknown_cancelled += other.unknown_cancelled;
        self.unknown_step_limit += other.unknown_step_limit;
        self.unknown_overflow += other.unknown_overflow;
        self.miss_first_seen += other.miss_first_seen;
        self.miss_config_mismatch += other.miss_config_mismatch;
        self.miss_budget_retry += other.miss_budget_retry;
        self.miss_near_miss += other.miss_near_miss;
        self.audit_pairs += other.audit_pairs;
        self.audit_shared_prefix += other.audit_shared_prefix;
        self.audit_added += other.audit_added;
        self.audit_removed += other.audit_removed;
        self.audit_pure_extensions += other.audit_pure_extensions;
        self.cores += other.cores;
        self.cores_inexact += other.cores_inexact;
    }

    /// Bumps the per-reason counter for a final `Unknown` answer.
    fn note_unknown(&mut self, reason: StopReason) {
        match reason {
            StopReason::Deadline => self.unknown_deadline += 1,
            StopReason::Cancelled => self.unknown_cancelled += 1,
            StopReason::StepLimit => self.unknown_step_limit += 1,
            StopReason::Overflow => self.unknown_overflow += 1,
        }
    }

    /// Reconstructs the counters from `registry` cells under `prefix`
    /// (e.g. `"smt"`) — the typed view over what sessions bound with
    /// [`SmtSession::bind_metrics`] wrote through at event time.
    pub fn from_registry(registry: &MetricsRegistry, prefix: &str) -> SessionStats {
        let g = |name: &str| registry.get(&format!("{prefix}.{name}"));
        SessionStats {
            queries: g("queries"),
            cache_hits: g("cache_hits"),
            cache_misses: g("cache_misses"),
            sat_resolves: g("sat_resolves"),
            retries: g("retries"),
            cache_upgrades: g("cache_upgrades"),
            unknown_deadline: g("unknown.deadline"),
            unknown_cancelled: g("unknown.cancelled"),
            unknown_step_limit: g("unknown.step_limit"),
            unknown_overflow: g("unknown.overflow"),
            miss_first_seen: g("miss.first_seen"),
            miss_config_mismatch: g("miss.config_mismatch"),
            miss_budget_retry: g("miss.budget_retry"),
            miss_near_miss: g("miss.near_miss"),
            audit_pairs: g("audit.pairs"),
            audit_shared_prefix: g("audit.shared_prefix"),
            audit_added: g("audit.added"),
            audit_removed: g("audit.removed"),
            audit_pure_extensions: g("audit.pure_extensions"),
            cores: g("cores"),
            cores_inexact: g("cores.inexact"),
        }
    }

    /// Queries attributed to `phase` — the `{prefix}.queries.phase.{tag}`
    /// cell bound sessions write through. The cells over all of
    /// [`PHASES`] partition `{prefix}.queries`.
    pub fn phase_queries(registry: &MetricsRegistry, prefix: &str, phase: Phase) -> u64 {
        registry.get(&format!("{prefix}.queries.phase.{}", phase.as_str()))
    }

    /// Nanoseconds of solver time attributed to `phase` — the
    /// `{prefix}.query_ns.phase.{tag}` cell.
    pub fn phase_query_ns(registry: &MetricsRegistry, prefix: &str, phase: Phase) -> u64 {
        registry.get(&format!("{prefix}.query_ns.phase.{}", phase.as_str()))
    }
}

/// Registry counter handles a session writes through *at event time*, so
/// queries issued by forked worker sessions land in the same cells their
/// parent reads — serial and parallel runs report identical totals by
/// construction, instead of summing per-worker structs after the fact.
///
/// The default handles are detached (not in any registry): sessions always
/// write through them, and binding just swaps in shared cells.
#[derive(Debug, Clone, Default)]
struct SessionMetrics {
    queries: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    sat_resolves: Counter,
    retries: Counter,
    cache_upgrades: Counter,
    unknown_deadline: Counter,
    unknown_cancelled: Counter,
    unknown_step_limit: Counter,
    unknown_overflow: Counter,
    miss_first_seen: Counter,
    miss_config_mismatch: Counter,
    miss_budget_retry: Counter,
    miss_near_miss: Counter,
    audit_pairs: Counter,
    audit_shared_prefix: Counter,
    audit_added: Counter,
    audit_removed: Counter,
    audit_pure_extensions: Counter,
    /// Summed nanoseconds spent in uncached solves — cache misses and sat
    /// re-solves (the audit's denominator for projected warm-start savings).
    audit_solve_ns: Counter,
    /// Projected nanoseconds a warm-started solver would have saved:
    /// `solve_ns x shared_prefix / atoms` summed over audited misses.
    audit_warm_ns: Counter,
    cores: Counter,
    cores_inexact: Counter,
    /// Log-scaled assertion-set delta (added + removed atoms) between
    /// consecutive queries. Bound as `{prefix}.audit.delta_atoms`.
    audit_delta_atoms: Histogram,
    /// Log-scaled end-to-end query latency (nanoseconds, cache hits
    /// included). Bound as `{prefix}.query_ns`; forked workers share the
    /// buckets, so serial and parallel runs fill identical cells.
    query_ns: Histogram,
    /// Query count per originating [`Phase`] (`{prefix}.queries.phase.{tag}`).
    queries_by_phase: [Counter; PHASES.len()],
    /// Summed query nanoseconds per originating phase
    /// (`{prefix}.query_ns.phase.{tag}`) — the cost-attribution numerator.
    query_ns_by_phase: [Counter; PHASES.len()],
}

impl SessionMetrics {
    fn bind(registry: &MetricsRegistry, prefix: &str) -> SessionMetrics {
        let c = |name: &str| registry.counter(&format!("{prefix}.{name}"));
        SessionMetrics {
            queries: c("queries"),
            cache_hits: c("cache_hits"),
            cache_misses: c("cache_misses"),
            sat_resolves: c("sat_resolves"),
            retries: c("retries"),
            cache_upgrades: c("cache_upgrades"),
            unknown_deadline: c("unknown.deadline"),
            unknown_cancelled: c("unknown.cancelled"),
            unknown_step_limit: c("unknown.step_limit"),
            unknown_overflow: c("unknown.overflow"),
            miss_first_seen: c("miss.first_seen"),
            miss_config_mismatch: c("miss.config_mismatch"),
            miss_budget_retry: c("miss.budget_retry"),
            miss_near_miss: c("miss.near_miss"),
            audit_pairs: c("audit.pairs"),
            audit_shared_prefix: c("audit.shared_prefix"),
            audit_added: c("audit.added"),
            audit_removed: c("audit.removed"),
            audit_pure_extensions: c("audit.pure_extensions"),
            audit_solve_ns: c("audit.solve_ns"),
            audit_warm_ns: c("audit.warm_ns"),
            cores: c("cores"),
            cores_inexact: c("cores.inexact"),
            audit_delta_atoms: registry.histogram(&format!("{prefix}.audit.delta_atoms")),
            query_ns: registry.histogram(&format!("{prefix}.query_ns")),
            queries_by_phase: std::array::from_fn(|i| {
                c(&format!("queries.phase.{}", PHASES[i].as_str()))
            }),
            query_ns_by_phase: std::array::from_fn(|i| {
                c(&format!("query_ns.phase.{}", PHASES[i].as_str()))
            }),
        }
    }

    fn note_unknown(&self, reason: StopReason) {
        match reason {
            StopReason::Deadline => self.unknown_deadline.inc(),
            StopReason::Cancelled => self.unknown_cancelled.inc(),
            StopReason::StepLimit => self.unknown_step_limit.inc(),
            StopReason::Overflow => self.unknown_overflow.inc(),
        }
    }

    /// Bumps the total and per-phase query counters (one query issued).
    fn note_query(&self, phase: Phase) {
        self.queries.inc();
        self.queries_by_phase[phase as usize].inc();
    }

    /// Records one query's end-to-end latency into the histogram and the
    /// per-phase attribution cell. Relaxed atomic adds only.
    fn note_latency(&self, phase: Phase, d: Duration) {
        self.query_ns.record_duration(d);
        self.query_ns_by_phase[phase as usize].add_duration(d);
    }
}

/// Explicit fingerprint of every [`SmtConfig`] field. The configuration
/// changes what a verdict means (budgets can turn `Unsat` into `Unknown`),
/// so it is part of every cache key. Each field is hashed individually —
/// hashing a `Debug` rendering instead would quietly merge configs whenever
/// a field (e.g. a budget knob) was missing from the derived output.
fn config_fingerprint(config: &SmtConfig) -> u128 {
    let mut h = mix_u64(FP_SEED, 0xc0f1);
    h = mix_u64(h, config.inst.max_rounds as u64);
    h = mix_u64(h, config.inst.max_instances as u64);
    h = mix_u64(h, config.max_theory_rounds as u64);
    h = mix_u64(h, config.bb_depth as u64);
    // Options hash a presence tag before the value so `None` and
    // `Some(0)` stay distinct.
    h = mix_u64(h, config.time_limit.is_some() as u64);
    h = mix_u64(h, config.time_limit.map_or(0, |d| d.as_nanos() as u64));
    h = mix_u64(h, config.step_limit.is_some() as u64);
    h = mix_u64(h, config.step_limit.unwrap_or(0));
    h = mix_u64(h, config.retry_unknown as u64);
    mix_u64(h, config.track_cores as u64)
}

/// A persistent solver session: scoped assertions, assumption-based checks,
/// and a shared normalized-query cache. See the [module docs](self).
#[derive(Debug)]
pub struct SmtSession {
    config: SmtConfig,
    config_fp: u128,
    /// Persistent ground assertions, in assertion order.
    assertions: Vec<TermId>,
    /// Quantified library axioms, instantiated rather than asserted.
    axioms: Vec<TermId>,
    /// Scope marks: (assertions.len(), axioms.len()) at each `push`.
    frames: Vec<(usize, usize)>,
    /// Memoized term fingerprints, valid for the arena this session is used
    /// with (term ids are append-only, so the memo survives arena growth).
    fp_memo: HashMap<TermId, u128>,
    cache: Arc<QueryCache>,
    /// Shared cancellation/deadline budget every solve runs under. Not part
    /// of the cache key: it is external state (a caller-owned kill switch),
    /// not part of what the query *means*.
    budget: Budget,
    /// Counters for this session's traffic.
    pub stats: SessionStats,
    /// Registry write-through handles (detached until [`bind_metrics`](Self::bind_metrics)).
    metrics: SessionMetrics,
    /// Where queries come from: the engine mutates this shared context as
    /// the run moves through iterations/phases/paths, and every query span
    /// and per-phase counter reads it. Forks share the handle.
    prov: ProvenanceCtx,
    /// The unsat core of the most recent query, when that query was `Unsat`
    /// and core tracking was on (fresh solve or cache hit with a stored
    /// core). Reset at the start of every query.
    last_core: Option<UnsatCore>,
    /// Previous query's assertion fingerprints in assertion order — the
    /// incrementality audit's shared-prefix baseline.
    last_ordered: Vec<u128>,
    /// Previous query's sorted, deduplicated assertion fingerprints — the
    /// audit's added/removed baseline.
    last_sorted: Vec<u128>,
    /// Whether `last_ordered`/`last_sorted` describe a real previous query
    /// (the audit skips the session's first query).
    audit_primed: bool,
}

impl SmtSession {
    /// A session over the process-wide [`global_cache`].
    pub fn new(config: SmtConfig) -> SmtSession {
        SmtSession::with_cache(config, Arc::clone(global_cache()))
    }

    /// A session over an explicit cache — tests use a private cache for
    /// isolation; workers share their parent's.
    pub fn with_cache(config: SmtConfig, cache: Arc<QueryCache>) -> SmtSession {
        let config_fp = config_fingerprint(&config);
        SmtSession {
            config,
            config_fp,
            assertions: Vec::new(),
            axioms: Vec::new(),
            frames: Vec::new(),
            fp_memo: HashMap::new(),
            cache,
            budget: Budget::unlimited(),
            stats: SessionStats::default(),
            metrics: SessionMetrics::default(),
            prov: ProvenanceCtx::default(),
            last_core: None,
            last_ordered: Vec::new(),
            last_sorted: Vec::new(),
            audit_primed: false,
        }
    }

    /// Binds this session's counters to `registry` cells under `prefix`
    /// (e.g. `"smt"` yields `smt.queries`, `smt.cache_hits`, ...). Forked
    /// worker sessions inherit the binding, so their traffic lands in the
    /// same cells at event time; read the totals back with
    /// [`SessionStats::from_registry`].
    pub fn bind_metrics(&mut self, registry: &MetricsRegistry, prefix: &str) {
        self.metrics = SessionMetrics::bind(registry, prefix);
    }

    /// Installs the shared provenance context queries are attributed to.
    /// Forked worker sessions inherit the handle, so the engine's phase and
    /// iteration updates are visible to every worker's query spans.
    pub fn set_provenance(&mut self, prov: ProvenanceCtx) {
        self.prov = prov;
    }

    /// The provenance context this session attributes queries to.
    pub fn provenance(&self) -> &ProvenanceCtx {
        &self.prov
    }

    /// Installs the shared budget every subsequent solve runs under.
    /// Cancelling it (from any clone, any thread) makes in-flight and future
    /// queries return `Unknown(Cancelled)`.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The shared budget this session's solves run under.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// The solver configuration used for every check.
    pub fn config(&self) -> SmtConfig {
        self.config
    }

    /// The cache this session reads and writes.
    pub fn cache(&self) -> &Arc<QueryCache> {
        &self.cache
    }

    /// The unsat core of the most recent query, when that query's verdict
    /// was `Unsat` and core tracking ([`SmtConfig::track_cores`]) was on.
    /// Cache hits resolve the stored core against the current query's
    /// assertion/assumption positions. `None` after any non-`Unsat` query,
    /// and after an `Unsat` cache hit whose entry predates core tracking.
    pub fn last_unsat_core(&self) -> Option<&UnsatCore> {
        self.last_core.as_ref()
    }

    /// Adds a persistent assertion to the current scope.
    pub fn assert(&mut self, t: TermId) {
        self.assertions.push(t);
    }

    /// Adds a quantified axiom to the current scope. Axioms are handed to
    /// the solver for trigger-based instantiation ahead of the assertions.
    pub fn assert_axiom(&mut self, t: TermId) {
        self.axioms.push(t);
    }

    /// The current persistent assertions, oldest first.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// The current axioms, oldest first.
    pub fn axioms(&self) -> &[TermId] {
        &self.axioms
    }

    /// Opens a new assertion scope.
    pub fn push(&mut self) {
        self.frames.push((self.assertions.len(), self.axioms.len()));
    }

    /// Closes the innermost scope, dropping every assertion and axiom added
    /// since the matching [`push`](Self::push).
    ///
    /// # Panics
    ///
    /// Panics when there is no open scope.
    pub fn pop(&mut self) {
        let (na, nx) = self
            .frames
            .pop()
            .expect("SmtSession::pop without matching push");
        self.assertions.truncate(na);
        self.axioms.truncate(nx);
    }

    /// How many scopes are open.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// A worker session: same scope, memo, and configuration, sharing the
    /// same cache, with fresh per-session counters. Valid for use with the
    /// arena this session was used with or any clone of it (term ids are
    /// stable under cloning because the arena is append-only).
    pub fn fork(&self) -> SmtSession {
        SmtSession {
            config: self.config,
            config_fp: self.config_fp,
            assertions: self.assertions.clone(),
            axioms: self.axioms.clone(),
            frames: self.frames.clone(),
            fp_memo: self.fp_memo.clone(),
            cache: Arc::clone(&self.cache),
            budget: self.budget.clone(),
            stats: SessionStats::default(),
            // shares the parent's registry cells: worker traffic is counted
            // where the parent (and the harness) reads it
            metrics: self.metrics.clone(),
            prov: self.prov.clone(),
            last_core: None,
            // the audit baseline carries over: the worker's first query is
            // measured against the last query before the fork
            last_ordered: self.last_ordered.clone(),
            last_sorted: self.last_sorted.clone(),
            audit_primed: self.audit_primed,
        }
    }

    /// The normalized shape of the current scope plus `assumptions`: every
    /// fingerprint a query needs, computed once. `ordered` holds the
    /// assertion-then-assumption fingerprints in query order (positions
    /// double as core provenance ids); `sorted` is the deduplicated
    /// conjunction multiset the cache keys hash.
    fn query_shape(&mut self, arena: &TermArena, assumptions: &[TermId]) -> QueryShape {
        let mut ordered: Vec<u128> = Vec::with_capacity(self.assertions.len() + assumptions.len());
        for i in 0..self.assertions.len() {
            let t = self.assertions[i];
            ordered.push(fingerprint(arena, t, &mut self.fp_memo));
        }
        for &t in assumptions {
            ordered.push(fingerprint(arena, t, &mut self.fp_memo));
        }
        // conjunction: order and multiplicity are irrelevant to the key
        let mut sorted = ordered.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let mut ax: Vec<u128> = Vec::with_capacity(self.axioms.len());
        for i in 0..self.axioms.len() {
            let t = self.axioms[i];
            ax.push(fingerprint(arena, t, &mut self.fp_memo));
        }
        ax.sort_unstable();
        ax.dedup();
        QueryShape {
            ordered,
            sorted,
            ax,
        }
    }

    /// Runs the underlying solver on the current scope plus `assumptions`,
    /// under `config` and the session's shared budget. When
    /// [`SmtConfig::track_cores`] is set, every assertion and assumption is
    /// tracked under its position in the query (the same positions as
    /// [`QueryShape::ordered`]) and an `Unsat` answer returns the tracked
    /// core alongside the result.
    fn solve(
        &mut self,
        arena: &mut TermArena,
        assumptions: &[TermId],
        config: SmtConfig,
    ) -> (SmtResult, Option<TrackedCore>) {
        let mut smt = Smt::new(config);
        smt.set_budget(self.budget.clone());
        for i in 0..self.axioms.len() {
            let ax = self.axioms[i];
            smt.assert_term(arena, ax);
        }
        let track = config.track_cores;
        for i in 0..self.assertions.len() {
            let t = self.assertions[i];
            if track {
                smt.assert_term_tracked(arena, t, i as u32);
            } else {
                smt.assert_term(arena, t);
            }
        }
        let base = self.assertions.len();
        for (j, &t) in assumptions.iter().enumerate() {
            if track {
                smt.assert_term_tracked(arena, t, (base + j) as u32);
            } else {
                smt.assert_term(arena, t);
            }
        }
        let result = smt.check(arena);
        let core = match result {
            SmtResult::Unsat => smt.unsat_core().cloned(),
            _ => None,
        };
        (result, core)
    }

    /// The cacheable form of a tracked core: its members' structural
    /// fingerprints, sorted and deduplicated.
    fn cached_core(&self, shape: &QueryShape, tracked: &TrackedCore) -> CachedCore {
        let mut fps: Vec<u128> = tracked
            .ids
            .iter()
            .filter_map(|&p| shape.ordered.get(p as usize).copied())
            .collect();
        fps.sort_unstable();
        fps.dedup();
        CachedCore {
            fps,
            exact: tracked.exact,
        }
    }

    /// The session-level view of a tracked core: provenance ids mapped back
    /// to assertion/assumption slots.
    fn core_of_tracked(&self, shape: &QueryShape, tracked: &TrackedCore) -> UnsatCore {
        let n = self.assertions.len();
        let members: Vec<CoreMember> = tracked
            .ids
            .iter()
            .filter_map(|&p| {
                let p = p as usize;
                shape.ordered.get(p).map(|&fp| CoreMember {
                    slot: if p < n {
                        CoreSlot::Assertion(p)
                    } else {
                        CoreSlot::Assumption(p - n)
                    },
                    fingerprint: fp,
                })
            })
            .collect();
        let mut fps: Vec<u128> = members.iter().map(|m| m.fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        UnsatCore {
            members,
            exact: tracked.exact,
            id: core_id(&fps),
        }
    }

    /// Resolves a cache-hit core's fingerprints back to this query's slots.
    /// Key equality implies the cached core's fingerprints are a subset of
    /// this query's normalized assertion set, so every member resolves; the
    /// first matching position is taken when a formula occurs twice.
    fn core_of_cached(&self, shape: &QueryShape, cached: &CachedCore) -> UnsatCore {
        let n = self.assertions.len();
        let members: Vec<CoreMember> = cached
            .fps
            .iter()
            .filter_map(|&fp| {
                shape
                    .ordered
                    .iter()
                    .position(|&o| o == fp)
                    .map(|p| CoreMember {
                        slot: if p < n {
                            CoreSlot::Assertion(p)
                        } else {
                            CoreSlot::Assumption(p - n)
                        },
                        fingerprint: fp,
                    })
            })
            .collect();
        UnsatCore {
            members,
            exact: cached.exact,
            id: core_id(&cached.fps),
        }
    }

    /// Books an `Unsat` verdict's core into `last_core`, the counters, and
    /// (when tracing) the query span.
    fn note_core(&mut self, core: UnsatCore, span: &mut pins_trace::Span) {
        self.stats.cores += 1;
        self.metrics.cores.inc();
        if !core.exact {
            self.stats.cores_inexact += 1;
            self.metrics.cores_inexact.inc();
        }
        if span.is_active() {
            span.record_u64("core_size", core.members.len() as u64);
            span.record_str("core_id", &format!("{:016x}", core.id));
            span.record("core_exact", core.exact);
        }
        self.last_core = Some(core);
    }

    /// Measures this query against the previous one for the incrementality
    /// audit and advances the baseline. Returns the delta for span stamping
    /// and warm-start projection (`None` on the session's first query).
    fn note_audit(&mut self, shape: &QueryShape) -> Option<AuditDelta> {
        let delta = if self.audit_primed {
            let shared_prefix = shape
                .ordered
                .iter()
                .zip(self.last_ordered.iter())
                .take_while(|(a, b)| a == b)
                .count() as u64;
            // merge-walk the sorted fingerprint sets for the symmetric delta
            let (a, b) = (&shape.sorted, &self.last_sorted);
            let (mut i, mut j) = (0usize, 0usize);
            let (mut added, mut removed) = (0u64, 0u64);
            while i < a.len() && j < b.len() {
                match a[i].cmp(&b[j]) {
                    std::cmp::Ordering::Less => {
                        added += 1;
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        removed += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                    }
                }
            }
            added += (a.len() - i) as u64;
            removed += (b.len() - j) as u64;
            self.stats.audit_pairs += 1;
            self.stats.audit_shared_prefix += shared_prefix;
            self.stats.audit_added += added;
            self.stats.audit_removed += removed;
            self.metrics.audit_pairs.inc();
            self.metrics.audit_shared_prefix.add(shared_prefix);
            self.metrics.audit_added.add(added);
            self.metrics.audit_removed.add(removed);
            if removed == 0 {
                self.stats.audit_pure_extensions += 1;
                self.metrics.audit_pure_extensions.inc();
            }
            self.metrics.audit_delta_atoms.record(added + removed);
            Some(AuditDelta {
                shared_prefix,
                added,
                removed,
                atoms: shape.ordered.len() as u64,
            })
        } else {
            None
        };
        self.last_ordered.clone_from(&shape.ordered);
        self.last_sorted.clone_from(&shape.sorted);
        self.audit_primed = true;
        delta
    }

    /// Stamps the audit fields onto the query span.
    fn stamp_audit(
        &self,
        span: &mut pins_trace::Span,
        shape: &QueryShape,
        delta: Option<&AuditDelta>,
    ) {
        if span.is_active() {
            span.record_u64("atoms", shape.ordered.len() as u64);
            if let Some(d) = delta {
                span.record_u64("shared_prefix", d.shared_prefix);
                span.record_u64("delta_added", d.added);
                span.record_u64("delta_removed", d.removed);
            }
        }
    }

    /// Books a cache miss: classifies it against the forensics index, bumps
    /// the per-cause counters, stamps the query span, and emits the per-miss
    /// trace point.
    fn note_miss(&mut self, shape: &QueryShape, span: &mut pins_trace::Span) {
        self.stats.cache_misses += 1;
        self.metrics.cache_misses.inc();
        let (cause, near_delta) = self
            .cache
            .classify_miss(shape.structural_key(), &shape.sorted);
        self.cache.note_miss_cause(cause);
        match cause {
            MissCause::FirstSeen => {
                self.stats.miss_first_seen += 1;
                self.metrics.miss_first_seen.inc();
            }
            MissCause::ConfigMismatch => {
                self.stats.miss_config_mismatch += 1;
                self.metrics.miss_config_mismatch.inc();
            }
            MissCause::BudgetRetry => {
                self.stats.miss_budget_retry += 1;
                self.metrics.miss_budget_retry.inc();
            }
            MissCause::NearMiss => {
                self.stats.miss_near_miss += 1;
                self.metrics.miss_near_miss.inc();
            }
        }
        if span.is_active() {
            span.record_str("miss_cause", cause.as_str());
            if cause == MissCause::NearMiss {
                span.record_u64("near_delta", near_delta);
            }
        }
        let atoms = shape.sorted.len() as u64;
        pins_trace::point("smt.cache.miss", || {
            vec![
                ("cause", cause.as_str().into()),
                ("near_delta", near_delta.into()),
                ("atoms", atoms.into()),
            ]
        });
    }

    /// Books the warm-start projection for a solved miss: the audit's upper
    /// bound on what a warm-started theory state could have saved, assuming
    /// savings proportional to the shared prefix.
    fn note_warm_projection(&mut self, delta: Option<&AuditDelta>, solve_ns: u64) {
        self.metrics.audit_solve_ns.add(solve_ns);
        if let Some(d) = delta {
            if d.atoms > 0 {
                let warm = ((solve_ns as u128 * d.shared_prefix as u128) / d.atoms as u128) as u64;
                self.metrics.audit_warm_ns.add(warm);
            }
        }
    }

    /// Solves on a cache miss: one attempt at the session config, plus (when
    /// [`SmtConfig::retry_unknown`] is set) one retry at doubled budgets if
    /// the first attempt was stopped by a recoverable budget. The final
    /// result is cached at `key`; a definitive retry result is additionally
    /// cached at the escalated config's own key, and its write to `key`
    /// upgrades the would-be `Unknown` entry in place
    /// ([`SessionStats::cache_upgrades`]). An `Unsat` result's tracked core
    /// is cached alongside the verdict and surfaced through
    /// [`last_unsat_core`](Self::last_unsat_core).
    fn solve_and_cache(
        &mut self,
        arena: &mut TermArena,
        assumptions: &[TermId],
        shape: &QueryShape,
        key: u128,
        span: &mut pins_trace::Span,
    ) -> SmtResult {
        let (mut result, mut tracked) = self.solve(arena, assumptions, self.config);
        if let SmtResult::Unknown(reason) = result {
            // a cancellation is a caller's kill switch, not a budget the
            // query outgrew: never retry it
            if self.config.retry_unknown && reason != StopReason::Cancelled {
                self.stats.retries += 1;
                self.metrics.retries.inc();
                let escalated = self.config.escalate();
                let (retried, retried_core) = self.solve(arena, assumptions, escalated);
                let esc_key = shape.key_for(config_fingerprint(&escalated));
                let esc_core = retried_core
                    .as_ref()
                    .map(|c| Arc::new(self.cached_core(shape, c)));
                self.cache
                    .insert_entry(esc_key, Verdict::of(&retried), esc_core);
                if !matches!(retried, SmtResult::Unknown(_)) {
                    // the larger budget settled it: upgrade the entry the
                    // original key would otherwise pin to Unknown
                    self.stats.cache_upgrades += 1;
                    self.metrics.cache_upgrades.inc();
                }
                result = retried;
                tracked = retried_core;
            }
        }
        if let SmtResult::Unknown(reason) = result {
            self.stats.note_unknown(reason);
            self.metrics.note_unknown(reason);
        }
        let verdict = Verdict::of(&result);
        let cached = tracked
            .as_ref()
            .map(|c| Arc::new(self.cached_core(shape, c)));
        self.cache.insert_entry(key, verdict, cached);
        self.cache
            .note_solved(shape.structural_key(), &shape.sorted, verdict);
        if let Some(c) = tracked {
            let core = self.core_of_tracked(shape, &c);
            self.note_core(core, span);
        }
        result
    }

    /// Checks the current scope, producing a model on `Sat`.
    pub fn check(&mut self, arena: &mut TermArena) -> SmtResult {
        self.check_under(arena, &[])
    }

    /// Checks the current scope with extra `assumptions` for this query
    /// only, producing a model on `Sat`.
    ///
    /// `Unsat`/`Unknown` verdicts short-circuit through the cache; a cached
    /// satisfiable verdict still re-solves, because models cannot be shared
    /// across arenas (counted in [`SessionStats::sat_resolves`]).
    pub fn check_under(&mut self, arena: &mut TermArena, assumptions: &[TermId]) -> SmtResult {
        let started = Instant::now();
        let phase = self.prov.phase();
        self.stats.queries += 1;
        self.metrics.note_query(phase);
        self.last_core = None;
        let mut span = self.query_span(assumptions.len());
        let shape = self.query_shape(arena, assumptions);
        let delta = self.note_audit(&shape);
        self.stamp_audit(&mut span, &shape, delta.as_ref());
        let key = shape.key_for(self.config_fp);
        let cached: Option<SmtResult> = match self.cache.lookup(key) {
            Some(entry) => match entry.verdict {
                Verdict::Unsat => {
                    self.stats.cache_hits += 1;
                    self.metrics.cache_hits.inc();
                    span.record("cached", true);
                    span.record_str("verdict", "unsat");
                    if let Some(c) = &entry.core {
                        let core = self.core_of_cached(&shape, c);
                        self.note_core(core, &mut span);
                    }
                    Some(SmtResult::Unsat)
                }
                Verdict::Unknown { reason } => {
                    self.stats.cache_hits += 1;
                    self.metrics.cache_hits.inc();
                    span.record("cached", true);
                    span.record_str("verdict", "unknown");
                    Some(SmtResult::Unknown(reason))
                }
                Verdict::Sat { .. } => {
                    self.stats.cache_hits += 1;
                    self.stats.sat_resolves += 1;
                    self.metrics.cache_hits.inc();
                    self.metrics.sat_resolves.inc();
                    None
                }
            },
            None => {
                self.note_miss(&shape, &mut span);
                None
            }
        };
        let result = match cached {
            Some(r) => r,
            None => {
                let t0 = Instant::now();
                let r = self.solve_and_cache(arena, assumptions, &shape, key, &mut span);
                self.note_warm_projection(delta.as_ref(), t0.elapsed().as_nanos() as u64);
                if span.is_active() {
                    span.record("cached", false);
                    span.record_str(
                        "verdict",
                        match &r {
                            SmtResult::Sat(_) => "sat",
                            SmtResult::Unsat => "unsat",
                            SmtResult::Unknown(_) => "unknown",
                        },
                    );
                }
                r
            }
        };
        self.metrics.note_latency(phase, started.elapsed());
        result
    }

    /// Opens the per-query trace span, stamping the shared budget's
    /// remaining allowance and the query's provenance (benchmark,
    /// iteration, phase, path, CEGIS round). Inert (no allocation) when
    /// tracing is off.
    fn query_span(&self, assumptions: usize) -> pins_trace::Span {
        let mut span = pins_trace::span("smt.query");
        if span.is_active() {
            span.record_u64("assumptions", assumptions as u64);
            if let Some(t) = self.budget.time_left() {
                span.record_u64("budget_ms_left", t.as_millis() as u64);
            }
            if let Some(s) = self.budget.steps_left() {
                span.record_u64("budget_steps_left", s);
            }
            let bench = self.prov.benchmark();
            if !bench.is_empty() {
                span.record_str("bench", &bench);
            }
            span.record_str("phase", self.prov.phase().as_str());
            span.record_u64("iter", self.prov.iteration());
            let path = self.prov.path();
            if path != 0 {
                span.record_u64("path", path);
            }
            let round = self.prov.cegis_round();
            if round != 0 {
                span.record_u64("cegis_round", round);
            }
        }
        span
    }

    /// The verdict of the current scope plus `assumptions`, without a model.
    /// Any cached verdict short-circuits the solver entirely.
    pub fn verdict_under(&mut self, arena: &mut TermArena, assumptions: &[TermId]) -> Verdict {
        let started = Instant::now();
        let phase = self.prov.phase();
        self.stats.queries += 1;
        self.metrics.note_query(phase);
        self.last_core = None;
        let mut span = self.query_span(assumptions.len());
        let shape = self.query_shape(arena, assumptions);
        let delta = self.note_audit(&shape);
        self.stamp_audit(&mut span, &shape, delta.as_ref());
        let key = shape.key_for(self.config_fp);
        let (verdict, cached) = match self.cache.lookup(key) {
            Some(entry) => {
                self.stats.cache_hits += 1;
                self.metrics.cache_hits.inc();
                if entry.verdict.is_unsat() {
                    if let Some(c) = &entry.core {
                        let core = self.core_of_cached(&shape, c);
                        self.note_core(core, &mut span);
                    }
                }
                (entry.verdict, true)
            }
            None => {
                self.note_miss(&shape, &mut span);
                let t0 = Instant::now();
                let r = self.solve_and_cache(arena, assumptions, &shape, key, &mut span);
                self.note_warm_projection(delta.as_ref(), t0.elapsed().as_nanos() as u64);
                (Verdict::of(&r), false)
            }
        };
        if span.is_active() {
            span.record("cached", cached);
            span.record_str(
                "verdict",
                match verdict {
                    Verdict::Sat { .. } => "sat",
                    Verdict::Unsat => "unsat",
                    Verdict::Unknown { .. } => "unknown",
                },
            );
        }
        self.metrics.note_latency(phase, started.elapsed());
        verdict
    }

    /// Whether the current scope plus `assumptions` is provably
    /// unsatisfiable.
    pub fn is_unsat_under(&mut self, arena: &mut TermArena, assumptions: &[TermId]) -> bool {
        self.verdict_under(arena, assumptions).is_unsat()
    }

    /// Whether `hyps |= goal` modulo the session's assertions and axioms,
    /// proven by refuting `hyps ∧ ¬goal`.
    pub fn entails(&mut self, arena: &mut TermArena, hyps: &[TermId], goal: TermId) -> bool {
        let neg = arena.mk_not(goal);
        let mut assumptions = Vec::with_capacity(hyps.len() + 1);
        assumptions.extend_from_slice(hyps);
        assumptions.push(neg);
        self.is_unsat_under(arena, &assumptions)
    }
}
