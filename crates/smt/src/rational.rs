//! Exact rational arithmetic over `i128`, used by the simplex core.
//!
//! Coefficients in PINS constraints are tiny (±1, ±2, small constants), so an
//! `i128` numerator/denominator pair with eager GCD normalisation has ample
//! headroom. All operations use checked arithmetic and panic on overflow —
//! which would indicate a bug, not a data-dependent condition.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128, // always > 0
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Constructs `num / den`, normalised.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "zero denominator");
        let g = gcd(num, den);
        let (num, den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            Rat {
                num: -num,
                den: -den,
            }
        } else {
            Rat { num, den }
        }
    }

    /// The integer `v` as a rational.
    pub fn from_int(v: i64) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }

    /// Numerator (after normalisation; sign lives here).
    pub fn num(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(self) -> i128 {
        self.den
    }

    /// Whether this is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Whether this is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Truncation toward negative infinity.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Truncation toward positive infinity.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn recip(self) -> Rat {
        Rat::new(self.den, self.num)
    }

    /// Converts to `i64` when integral and in range.
    pub fn to_i64(self) -> Option<i64> {
        if self.den == 1 {
            i64::try_from(self.num).ok()
        } else {
            None
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        let num = self
            .num
            .checked_mul(rhs.den)
            .and_then(|a| rhs.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
            .expect("rational overflow in add");
        let den = self
            .den
            .checked_mul(rhs.den)
            .expect("rational overflow in add");
        Rat::new(num, den)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // cross-reduce first to keep magnitudes small
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(rhs.num / g2)
            .expect("rational overflow in mul");
        let den = (self.den / g2)
            .checked_mul(rhs.den / g1)
            .expect("rational overflow in mul");
        Rat::new(num, den)
    }
}

impl Div for Rat {
    type Output = Rat;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a * b^-1
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("rational overflow in cmp");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("rational overflow in cmp");
        lhs.cmp(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half + third, Rat::new(5, 6));
        assert_eq!(half - third, Rat::new(1, 6));
        assert_eq!(half * third, Rat::new(1, 6));
        assert_eq!(half / third, Rat::new(3, 2));
        assert_eq!(-half, Rat::new(-1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::from_int(2) > Rat::new(3, 2));
    }
}
