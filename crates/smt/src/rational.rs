//! Exact rational arithmetic over `i128`, used by the simplex core.
//!
//! Coefficients in PINS constraints are tiny (±1, ±2, small constants), so an
//! `i128` numerator/denominator pair with eager GCD normalisation has ample
//! headroom. Every operation has a checked (`Option`-returning) form; the
//! simplex layer uses those and degrades an overflow to a recoverable
//! `Unknown(Overflow)` verdict instead of panicking. The operator impls
//! (`+`, `-`, `*`, `/`) remain panicking conveniences for contexts where
//! overflow would indicate a bug rather than a data-dependent condition.
//! Comparison (`Ord`) is total and overflow-free.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128, // always > 0
}

/// Greatest common divisor over unsigned magnitudes. Using `unsigned_abs`
/// instead of `abs` keeps `i128::MIN` (magnitude `2^127`) in range.
fn gcd_mag(a: u128, b: u128) -> u128 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Reassembles a signed integer from magnitude + sign, `None` if out of
/// range for `i128`.
fn to_signed(mag: u128, negative: bool) -> Option<i128> {
    if negative {
        if mag > i128::MIN.unsigned_abs() {
            None
        } else {
            Some((mag as i128).wrapping_neg())
        }
    } else {
        i128::try_from(mag).ok()
    }
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// One.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Constructs `num / den`, normalised.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or if the normalised numerator is out of range
    /// (only possible for `i128::MIN` inputs). Use [`Rat::checked_new`]
    /// where overflow must be recoverable.
    pub fn new(num: i128, den: i128) -> Rat {
        Rat::checked_new(num, den).expect("rational overflow in new")
    }

    /// Constructs `num / den`, normalised; `None` on a zero denominator or
    /// when the normalised representation is out of `i128` range (e.g.
    /// `i128::MIN / -1` territory).
    pub fn checked_new(num: i128, den: i128) -> Option<Rat> {
        if den == 0 {
            return None;
        }
        if num == 0 {
            return Some(Rat::ZERO);
        }
        let negative = (num < 0) != (den < 0);
        let (nm, dm) = (num.unsigned_abs(), den.unsigned_abs());
        let g = gcd_mag(nm, dm);
        let num = to_signed(nm / g, negative)?;
        let den = to_signed(dm / g, false)?;
        Some(Rat { num, den })
    }

    /// The integer `v` as a rational.
    pub fn from_int(v: i64) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }

    /// The integer `v` as a rational (full `i128` range, including
    /// `i128::MIN`).
    pub fn from_int128(v: i128) -> Rat {
        Rat { num: v, den: 1 }
    }

    /// Numerator (after normalisation; sign lives here).
    pub fn num(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(self) -> i128 {
        self.den
    }

    /// Whether this is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// Whether this is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Rounds toward negative infinity (largest integer `<= self`).
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Rounds toward positive infinity (smallest integer `>= self`).
    ///
    /// Exact for every normalised value except `i128::MIN` itself (whose
    /// negation is out of range); that case cannot arise from checked
    /// constructors with `den > 1`.
    pub fn ceil(self) -> i128 {
        if self.den == 1 {
            self.num
        } else {
            // den > 1 implies |num| < i128::MAX after normalisation headroom;
            // compute as floor + 1 for non-integers to avoid negating MIN.
            self.num.div_euclid(self.den) + 1
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if zero or unrepresentable. Use [`Rat::checked_recip`] where
    /// overflow must be recoverable.
    pub fn recip(self) -> Rat {
        self.checked_recip().expect("rational overflow in recip")
    }

    /// Multiplicative inverse; `None` if zero or out of range.
    pub fn checked_recip(self) -> Option<Rat> {
        Rat::checked_new(self.den, self.num)
    }

    /// Checked negation; `None` only for `num == i128::MIN`.
    pub fn checked_neg(self) -> Option<Rat> {
        Some(Rat {
            num: self.num.checked_neg()?,
            den: self.den,
        })
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Rat) -> Option<Rat> {
        let a = self.num.checked_mul(rhs.den)?;
        let b = rhs.num.checked_mul(self.den)?;
        let num = a.checked_add(b)?;
        let den = self.den.checked_mul(rhs.den)?;
        Rat::checked_new(num, den)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: Rat) -> Option<Rat> {
        self.checked_add(rhs.checked_neg()?)
    }

    /// Checked multiplication (cross-reduced to keep magnitudes small).
    pub fn checked_mul(self, rhs: Rat) -> Option<Rat> {
        let g1 = gcd_mag(self.num.unsigned_abs(), rhs.den.unsigned_abs()).max(1) as i128;
        let g2 = gcd_mag(rhs.num.unsigned_abs(), self.den.unsigned_abs()).max(1) as i128;
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Rat::checked_new(num, den)
    }

    /// Checked division; `None` on division by zero or overflow.
    pub fn checked_div(self, rhs: Rat) -> Option<Rat> {
        self.checked_mul(rhs.checked_recip()?)
    }

    /// Converts to `i64` when integral and in range.
    pub fn to_i64(self) -> Option<i64> {
        if self.den == 1 {
            i64::try_from(self.num).ok()
        } else {
            None
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        self.checked_add(rhs).expect("rational overflow in add")
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self.checked_sub(rhs).expect("rational overflow in sub")
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        self.checked_neg().expect("rational overflow in neg")
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        self.checked_mul(rhs).expect("rational overflow in mul")
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, rhs: Rat) -> Rat {
        self.checked_div(rhs).expect("rational overflow in div")
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Compares `a/b` with `c/d` for positive `b`, `d` and non-negative `a`,
/// `c`, without overflow, by comparing continued-fraction expansions.
fn cmp_frac_mag(a: u128, b: u128, c: u128, d: u128) -> Ordering {
    // invariant: b, d > 0
    let (q1, r1) = (a / b, a % b);
    let (q2, r2) = (c / d, c % d);
    match q1.cmp(&q2) {
        Ordering::Equal => match (r1, r2) {
            (0, 0) => Ordering::Equal,
            (0, _) => Ordering::Less,
            (_, 0) => Ordering::Greater,
            // a/b <=> c/d  iff  d/r2 <=> b/r1 (reciprocal flips)
            _ => cmp_frac_mag(d, r2, b, r1),
        },
        ord => ord,
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        match (self.num >= 0, other.num >= 0) {
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (true, true) => cmp_frac_mag(
                self.num.unsigned_abs(),
                self.den.unsigned_abs(),
                other.num.unsigned_abs(),
                other.den.unsigned_abs(),
            ),
            (false, false) => cmp_frac_mag(
                other.num.unsigned_abs(),
                other.den.unsigned_abs(),
                self.num.unsigned_abs(),
                self.den.unsigned_abs(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalisation() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half + third, Rat::new(5, 6));
        assert_eq!(half - third, Rat::new(1, 6));
        assert_eq!(half * third, Rat::new(1, 6));
        assert_eq!(half / third, Rat::new(3, 2));
        assert_eq!(-half, Rat::new(-1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::from_int(5).floor(), 5);
        assert_eq!(Rat::from_int(5).ceil(), 5);
    }

    #[test]
    fn floor_ceil_negative_non_integral_boundaries() {
        // floor rounds toward -inf, ceil toward +inf — NOT truncation
        assert_eq!(Rat::new(-1, 2).floor(), -1);
        assert_eq!(Rat::new(-1, 2).ceil(), 0);
        assert_eq!(Rat::new(-1, 1_000_000).floor(), -1);
        assert_eq!(Rat::new(-1, 1_000_000).ceil(), 0);
        assert_eq!(Rat::new(-999_999, 1_000_000).floor(), -1);
        assert_eq!(Rat::new(-999_999, 1_000_000).ceil(), 0);
        assert_eq!(Rat::new(-1_000_001, 1_000_000).floor(), -2);
        assert_eq!(Rat::new(-1_000_001, 1_000_000).ceil(), -1);
        assert_eq!(Rat::from_int(-5).floor(), -5);
        assert_eq!(Rat::from_int(-5).ceil(), -5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::from_int(2) > Rat::new(3, 2));
    }

    #[test]
    fn gcd_handles_i128_min_magnitudes() {
        // regression: gcd via .abs() panicked on i128::MIN
        assert_eq!(
            Rat::checked_new(i128::MIN, 2),
            Some(Rat::new(i128::MIN / 2, 1))
        );
        assert_eq!(Rat::checked_new(2, i128::MIN), Some(Rat::new(-1, 1 << 126)));
        assert_eq!(
            Rat::checked_new(i128::MIN, i128::MIN),
            Some(Rat::ONE),
            "MIN/MIN normalises to 1"
        );
        // MIN / -1 has magnitude 2^127 with positive sign: unrepresentable
        assert_eq!(Rat::checked_new(i128::MIN, -1), None);
        assert_eq!(
            Rat::checked_new(i128::MIN, 1),
            Some(Rat::from_int128(i128::MIN))
        );
        assert_eq!(Rat::checked_new(i128::MAX, i128::MAX), Some(Rat::ONE));
        assert_eq!(Rat::checked_new(5, 0), None);
    }

    #[test]
    fn extreme_value_ordering_is_overflow_free() {
        let min = Rat::from_int128(i128::MIN);
        let max = Rat::from_int128(i128::MAX);
        assert!(min < max);
        assert!(min < Rat::ZERO);
        assert!(max > Rat::ZERO);
        // cross-multiplication here would overflow i128
        let a = Rat::new(i128::MAX, 3);
        let b = Rat::new(i128::MAX - 2, 3);
        assert!(a > b);
        let c = Rat::new(-(i128::MAX / 2), 5);
        let d = Rat::new(-(i128::MAX / 2) + 1, 5);
        assert!(c < d);
        // distinct huge fractions with equal integer parts
        let e = Rat::new(i128::MAX, i128::MAX - 1);
        let f = Rat::new(i128::MAX - 1, i128::MAX - 2);
        assert_eq!(e.cmp(&e), Ordering::Equal);
        assert_ne!(
            e.cmp(&f),
            std::cmp::Ordering::Equal,
            "total order on distinct values"
        );
    }

    #[test]
    fn checked_ops_surface_overflow_as_none() {
        let max = Rat::from_int128(i128::MAX);
        assert_eq!(max.checked_add(Rat::ONE), None);
        assert_eq!(max.checked_mul(Rat::from_int(2)), None);
        assert_eq!(Rat::from_int128(i128::MIN).checked_neg(), None);
        assert_eq!(Rat::ONE.checked_div(Rat::ZERO), None);
        assert_eq!(Rat::ZERO.checked_recip(), None);
        // non-overflowing cases still work
        assert_eq!(
            Rat::new(1, 2).checked_add(Rat::new(1, 3)),
            Some(Rat::new(5, 6))
        );
        assert_eq!(max.checked_sub(max), Some(Rat::ZERO));
    }

    #[test]
    fn ceil_of_extreme_negative_fraction() {
        let r = Rat::checked_new(i128::MIN, 3).unwrap();
        assert_eq!(r.ceil(), r.floor() + 1);
        assert_eq!(Rat::from_int128(i128::MIN).ceil(), i128::MIN);
        assert_eq!(Rat::from_int128(i128::MIN).floor(), i128::MIN);
    }
}
