//! An SMT solver for PINS: the stand-in for Z3.
//!
//! The paper's engine issues three kinds of queries, all supported here:
//!
//! 1. **feasibility** of a path condition during solution-guided symbolic
//!    execution (Rule ASSUME of Figure 3);
//! 2. **validity** of safety/termination constraints under a candidate
//!    solution (the SMT-reduction inside `solve`);
//! 3. **model extraction** to emit concrete test inputs for explored paths
//!    (Section 2.5).
//!
//! Architecture: a lazy DPLL(T) loop over the CDCL solver from
//! [`pins_sat`]. Theory reasoning combines congruence closure
//! ([`Euf`]), a Dutertre–de Moura simplex with branch-and-bound for
//! linear integer arithmetic ([`Lia`]), array read-over-write
//! lemmas on demand, integer disequality splitting, and model-based theory
//! combination. Quantified library axioms — the paper's mechanism for
//! modular synthesis over external functions — are grounded by
//! trigger-based instantiation ([`instantiate`]).
//!
//! `Unsat` answers are always sound (instantiation only helps refutation);
//! `Sat` answers carry a [`Model`] whose `complete` flag records whether a
//! budget was hit.
//!
//! The public entry point is the incremental [`SmtSession`]: persistent
//! assertions with `push`/`pop` scopes, assumption-based checks, and a
//! process-wide normalized-query cache (see [`session`] for the design).
//! Sessions bind their counters into a shared
//! [`MetricsRegistry`](pins_trace::MetricsRegistry) via
//! [`SmtSession::bind_metrics`], and each solve is traced as an `smt.query`
//! span when a [`pins_trace`] recorder is installed.
//!
//! # Example
//!
//! ```
//! use pins_logic::{TermArena, Sort};
//! use pins_smt::{SmtConfig, SmtResult, SmtSession};
//!
//! let mut arena = TermArena::new();
//! let x = arena.sym("x");
//! let vx = arena.mk_var(x, 0, Sort::Int);
//! let two = arena.mk_int(2);
//! let five = arena.mk_int(5);
//! let lo = arena.mk_lt(two, vx);    // 2 < x
//! let hi = arena.mk_lt(vx, five);   // x < 5
//!
//! let mut session = SmtSession::new(SmtConfig::default());
//! session.assert(lo);               // persists across checks
//! match session.check_under(&mut arena, &[hi]) {
//!     SmtResult::Sat(model) => {
//!         let v = model.ints[&vx];
//!         assert!(v > 2 && v < 5);
//!     }
//!     _ => panic!("expected sat"),
//! }
//! // the session still holds `2 < x`; the assumption did not leak
//! assert_eq!(session.assertions(), &[lo]);
//! ```

mod ematch;
mod euf;
mod inst;
mod linear;
mod model;
mod prep;
mod rational;
pub mod session;
mod simplex;
mod solver;

pub use ematch::{ematch_round, EmatchConfig};
pub use euf::Euf;
pub use inst::{instantiate, InstConfig, InstOutcome};
pub use linear::{linearize, LinExpr};
pub use model::Model;
pub use prep::{preprocess, Prepped};
pub use rational::Rat;
pub use session::{
    global_cache, CacheEntry, CachedCore, CoreMember, CoreSlot, MissBreakdown, MissCause,
    QueryCache, SessionStats, SmtSession, UnsatCore, Verdict, NEAR_MISS_DELTA,
};
pub use simplex::Lia;
pub use solver::{Smt, SmtConfig, SmtResult, SmtStats, TrackedCore};

#[cfg(test)]
mod tests;
