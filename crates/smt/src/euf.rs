//! Congruence closure (EUF) with proof-forest explanations.
//!
//! The engine registers the full subterm DAG of every asserted (dis)equality,
//! treating *all* operators — uninterpreted applications, `sel`/`upd`, and
//! even the arithmetic operators — as congruence-respecting function symbols
//! (which is sound and improves equality propagation between the theories).
//! Conflicts come with explanations: the set of asserted atom tags whose
//! equalities force the clash, extracted from a Nieuwenhuis–Oliveras style
//! proof forest.

use std::collections::{HashMap, HashSet};

use pins_logic::{Term, TermArena, TermId};

/// Why two nodes were merged.
#[derive(Debug, Clone, Copy)]
enum Cause {
    /// An equality asserted by the SAT model, tagged by the caller.
    Asserted(u32),
    /// Congruence of two application nodes with pairwise-equal children.
    Congruence(u32, u32),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Signature {
    /// Operator code: distinguishes App(f)/Sel/Upd/Add/Sub/Mul.
    op: (u8, u32),
    children: Vec<u32>,
}

/// A batch congruence-closure solver.
#[derive(Debug, Default)]
pub struct Euf {
    terms: Vec<TermId>,
    node_of: HashMap<TermId, u32>,
    /// union-find parent (roots point to themselves)
    uf: Vec<u32>,
    rank: Vec<u32>,
    /// proof forest: edge to another node with a cause
    proof: Vec<Option<(u32, Cause)>>,
    /// per-root list of application nodes with a member as a child
    use_list: Vec<Vec<u32>>,
    /// per-node operator structure (None for leaves)
    #[allow(clippy::type_complexity)]
    sig_template: Vec<Option<((u8, u32), Vec<u32>)>>,
    sig_table: HashMap<Signature, u32>,
    /// per-root integer constant witness
    int_const: Vec<Option<(i64, u32)>>,
    pending: Vec<(u32, u32, Cause)>,
    diseqs: Vec<(u32, u32, u32)>,
    closed: bool,
}

impl Euf {
    /// Creates an empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    fn op_code(arena: &TermArena, t: TermId) -> Option<((u8, u32), Vec<TermId>)> {
        match arena.term(t) {
            Term::App(f, args) => Some(((0, f.index() as u32), args.clone())),
            Term::Sel(a, b) => Some(((1, 0), vec![*a, *b])),
            Term::Upd(a, b, c) => Some(((2, 0), vec![*a, *b, *c])),
            Term::Add(a, b) => Some(((3, 0), vec![*a, *b])),
            Term::Sub(a, b) => Some(((4, 0), vec![*a, *b])),
            Term::Mul(a, b) => Some(((5, 0), vec![*a, *b])),
            _ => None,
        }
    }

    /// Registers `t` and its subterm DAG; returns its node.
    pub fn add_term(&mut self, arena: &TermArena, t: TermId) -> u32 {
        if let Some(&n) = self.node_of.get(&t) {
            return n;
        }
        let structure = Self::op_code(arena, t);
        let child_nodes: Option<((u8, u32), Vec<u32>)> = structure.map(|(op, kids)| {
            let kid_nodes = kids.iter().map(|&k| self.add_term(arena, k)).collect();
            (op, kid_nodes)
        });
        let n = self.terms.len() as u32;
        self.terms.push(t);
        self.node_of.insert(t, n);
        self.uf.push(n);
        self.rank.push(0);
        self.proof.push(None);
        self.use_list.push(Vec::new());
        self.int_const.push(match arena.term(t) {
            Term::IntConst(v) => Some((*v, n)),
            _ => None,
        });
        self.sig_template.push(child_nodes.clone());
        if let Some((op, kids)) = child_nodes {
            for &k in &kids {
                let rk = self.find(k);
                self.use_list[rk as usize].push(n);
            }
            let sig = Signature {
                op,
                children: kids.iter().map(|&k| self.find(k)).collect(),
            };
            if let Some(&other) = self.sig_table.get(&sig) {
                if self.find(other) != self.find(n) {
                    self.pending.push((n, other, Cause::Congruence(n, other)));
                }
            } else {
                self.sig_table.insert(sig, n);
            }
        }
        self.closed = false;
        n
    }

    fn find(&mut self, mut n: u32) -> u32 {
        while self.uf[n as usize] != n {
            let p = self.uf[n as usize];
            self.uf[n as usize] = self.uf[p as usize];
            n = self.uf[n as usize];
        }
        n
    }

    /// Asserts `a = b` with atom tag `tag`.
    pub fn assert_eq(&mut self, arena: &TermArena, a: TermId, b: TermId, tag: u32) {
        let na = self.add_term(arena, a);
        let nb = self.add_term(arena, b);
        self.pending.push((na, nb, Cause::Asserted(tag)));
        self.closed = false;
    }

    /// Asserts `a != b` with atom tag `tag`.
    pub fn assert_neq(&mut self, arena: &TermArena, a: TermId, b: TermId, tag: u32) {
        let na = self.add_term(arena, a);
        let nb = self.add_term(arena, b);
        self.diseqs.push((na, nb, tag));
        self.closed = false;
    }

    /// Reverses the proof-forest path from `n` to its tree root so that `n`
    /// becomes the root of its explanation tree.
    fn reroot(&mut self, n: u32) {
        let mut prev: Option<(u32, Cause)> = None;
        let mut cur = n;
        loop {
            let next = self.proof[cur as usize];
            self.proof[cur as usize] = prev;
            match next {
                Some((to, cause)) => {
                    prev = Some((cur, cause));
                    cur = to;
                }
                None => break,
            }
        }
    }

    fn union(&mut self, a: u32, b: u32, cause: Cause) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // proof forest edge a -> b
        self.reroot(a);
        self.proof[a as usize] = Some((b, cause));

        // merge smaller-rank class into larger
        let (winner, loser) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        if self.rank[winner as usize] == self.rank[loser as usize] {
            self.rank[winner as usize] += 1;
        }
        self.uf[loser as usize] = winner;
        // constant witnesses
        if let (None, Some(c)) = (
            self.int_const[winner as usize],
            self.int_const[loser as usize],
        ) {
            self.int_const[winner as usize] = Some(c)
        }
        // recompute signatures of parents of the losing class
        let parents = std::mem::take(&mut self.use_list[loser as usize]);
        for p in parents {
            if let Some((op, kids)) = self.sig_template[p as usize].clone() {
                let sig = Signature {
                    op,
                    children: kids.iter().map(|&k| self.find(k)).collect(),
                };
                if let Some(&other) = self.sig_table.get(&sig) {
                    if self.find(other) != self.find(p) {
                        self.pending.push((p, other, Cause::Congruence(p, other)));
                    }
                } else {
                    self.sig_table.insert(sig, p);
                }
            }
            self.use_list[winner as usize].push(p);
        }
    }

    fn close(&mut self) {
        while let Some((a, b, cause)) = self.pending.pop() {
            self.union(a, b, cause);
        }
        self.closed = true;
    }

    /// Runs the closure and checks disequalities and integer-constant clashes.
    /// On conflict, returns the asserted atom tags responsible.
    pub fn check(&mut self) -> Result<(), Vec<u32>> {
        self.close();
        // disequality violations
        for i in 0..self.diseqs.len() {
            let (a, b, tag) = self.diseqs[i];
            if self.find(a) == self.find(b) {
                let mut expl = self.explain(a, b);
                expl.push(tag);
                expl.sort_unstable();
                expl.dedup();
                return Err(expl);
            }
        }
        // distinct integer constants merged
        let mut const_witness: HashMap<u32, (i64, u32)> = HashMap::new();
        for n in 0..self.terms.len() as u32 {
            if let Some((v, node)) = self.int_const[n as usize] {
                if node != n {
                    continue; // only process witness entries once (at their node)
                }
                let root = self.find(n);
                if let Some(&(v0, n0)) = const_witness.get(&root) {
                    if v0 != v {
                        let mut expl = self.explain(n0, n);
                        expl.sort_unstable();
                        expl.dedup();
                        return Err(expl);
                    }
                } else {
                    const_witness.insert(root, (v, n));
                }
            }
        }
        Ok(())
    }

    /// Whether `a` and `b` are currently in the same class (both must have
    /// been added).
    pub fn same_class(&mut self, a: TermId, b: TermId) -> bool {
        if !self.closed {
            self.close();
        }
        match (self.node_of.get(&a), self.node_of.get(&b)) {
            (Some(&na), Some(&nb)) => self.find(na) == self.find(nb),
            _ => false,
        }
    }

    /// All registered terms together with their class root node.
    pub fn class_of_terms(&mut self) -> Vec<(TermId, u32)> {
        if !self.closed {
            self.close();
        }
        (0..self.terms.len() as u32)
            .map(|n| (self.terms[n as usize], self.find(n)))
            .collect()
    }

    /// The class root of a registered term.
    pub fn root_of(&mut self, t: TermId) -> Option<u32> {
        let n = *self.node_of.get(&t)?;
        Some(self.find(n))
    }

    /// Explains why two registered terms are in the same class: returns the
    /// asserted atom tags responsible.
    ///
    /// # Panics
    ///
    /// Panics if the terms are not registered or not congruent.
    pub fn explain_terms(&mut self, a: TermId, b: TermId) -> Vec<u32> {
        let na = self.node_of[&a];
        let nb = self.node_of[&b];
        if !self.closed {
            self.close();
        }
        let mut tags = self.explain(na, nb);
        tags.sort_unstable();
        tags.dedup();
        tags
    }

    /// Explains why `a` and `b` are congruent: the set of asserted tags.
    #[allow(clippy::needless_range_loop)]
    fn explain(&mut self, a: u32, b: u32) -> Vec<u32> {
        let mut tags = Vec::new();
        let mut queue = vec![(a, b)];
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        while let Some((x, y)) = queue.pop() {
            if x == y || !seen.insert((x.min(y), x.max(y))) {
                continue;
            }
            // collect proof paths to the common ancestor
            let px = self.proof_path(x);
            let py = self.proof_path(y);
            let setx: HashMap<u32, usize> =
                px.iter().enumerate().map(|(i, &(n, _))| (n, i)).collect();
            let mut common = None;
            for (j, &(n, _)) in py.iter().enumerate() {
                if let Some(&i) = setx.get(&n) {
                    common = Some((i, j));
                    break;
                }
            }
            let (ci, cj) = common
                .unwrap_or_else(|| panic!("explain called on nodes not in the same proof tree"));
            for k in 0..ci {
                self.push_cause(px[k].1.expect("edge"), &mut tags, &mut queue);
            }
            for k in 0..cj {
                self.push_cause(py[k].1.expect("edge"), &mut tags, &mut queue);
            }
        }
        tags
    }

    /// Nodes on the proof path from `n` to its proof-tree root, with the
    /// cause of each outgoing edge (`None` for the root entry).
    fn proof_path(&self, n: u32) -> Vec<(u32, Option<Cause>)> {
        let mut path = Vec::new();
        let mut cur = n;
        loop {
            match self.proof[cur as usize] {
                Some((to, cause)) => {
                    path.push((cur, Some(cause)));
                    cur = to;
                }
                None => {
                    path.push((cur, None));
                    return path;
                }
            }
        }
    }

    fn push_cause(&mut self, cause: Cause, tags: &mut Vec<u32>, queue: &mut Vec<(u32, u32)>) {
        match cause {
            Cause::Asserted(tag) => tags.push(tag),
            Cause::Congruence(p, q) => {
                let kp = self.sig_template[p as usize].clone().expect("app node").1;
                let kq = self.sig_template[q as usize].clone().expect("app node").1;
                for (x, y) in kp.into_iter().zip(kq) {
                    queue.push((x, y));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pins_logic::Sort;

    fn setup() -> (TermArena, TermId, TermId, TermId) {
        let mut a = TermArena::new();
        let x = a.sym("x");
        let y = a.sym("y");
        let z = a.sym("z");
        let vx = a.mk_var(x, 0, Sort::Int);
        let vy = a.mk_var(y, 0, Sort::Int);
        let vz = a.mk_var(z, 0, Sort::Int);
        (a, vx, vy, vz)
    }

    #[test]
    fn transitivity() {
        let (arena, x, y, z) = setup();
        let mut e = Euf::new();
        e.assert_eq(&arena, x, y, 1);
        e.assert_eq(&arena, y, z, 2);
        assert!(e.check().is_ok());
        assert!(e.same_class(x, z));
    }

    #[test]
    fn diseq_conflict_explained() {
        let (arena, x, y, z) = setup();
        let mut e = Euf::new();
        e.assert_eq(&arena, x, y, 1);
        e.assert_eq(&arena, y, z, 2);
        e.assert_neq(&arena, x, z, 3);
        let expl = e.check().unwrap_err();
        assert_eq!(expl, vec![1, 2, 3]);
    }

    #[test]
    fn congruence_propagates() {
        let (mut arena, x, y, _) = setup();
        let f = arena.declare_fun("f", vec![Sort::Int], Sort::Int);
        let fx = arena.mk_app(f, vec![x]);
        let fy = arena.mk_app(f, vec![y]);
        let mut e = Euf::new();
        e.assert_eq(&arena, x, y, 1);
        e.add_term(&arena, fx);
        e.add_term(&arena, fy);
        assert!(e.check().is_ok());
        assert!(e.same_class(fx, fy));
    }

    #[test]
    fn congruence_conflict_has_minimal_explanation() {
        let (mut arena, x, y, z) = setup();
        let f = arena.declare_fun("f", vec![Sort::Int], Sort::Int);
        let fx = arena.mk_app(f, vec![x]);
        let fy = arena.mk_app(f, vec![y]);
        let mut e = Euf::new();
        e.assert_eq(&arena, x, y, 1);
        e.assert_eq(&arena, y, z, 2); // irrelevant
        e.assert_neq(&arena, fx, fy, 3);
        let expl = e.check().unwrap_err();
        assert_eq!(expl, vec![1, 3], "tag 2 must not appear");
    }

    #[test]
    fn nested_congruence() {
        let (mut arena, x, y, _) = setup();
        let f = arena.declare_fun("g", vec![Sort::Int], Sort::Int);
        let fx = arena.mk_app(f, vec![x]);
        let ffx = arena.mk_app(f, vec![fx]);
        let fy = arena.mk_app(f, vec![y]);
        let ffy = arena.mk_app(f, vec![fy]);
        let mut e = Euf::new();
        e.assert_eq(&arena, x, y, 1);
        e.assert_neq(&arena, ffx, ffy, 2);
        let expl = e.check().unwrap_err();
        assert_eq!(expl, vec![1, 2]);
    }

    #[test]
    fn distinct_constants_clash() {
        let (mut arena, x, _, _) = setup();
        let one = arena.mk_int(1);
        let two = arena.mk_int(2);
        let mut e = Euf::new();
        e.assert_eq(&arena, x, one, 1);
        e.assert_eq(&arena, x, two, 2);
        let expl = e.check().unwrap_err();
        assert_eq!(expl, vec![1, 2]);
    }

    #[test]
    fn arithmetic_ops_respect_congruence() {
        let (mut arena, x, y, z) = setup();
        let xz = arena.mk_add(x, z);
        let yz = arena.mk_add(y, z);
        let mut e = Euf::new();
        e.assert_eq(&arena, x, y, 1);
        e.add_term(&arena, xz);
        e.add_term(&arena, yz);
        assert!(e.check().is_ok());
        assert!(e.same_class(xz, yz));
    }

    #[test]
    fn sel_congruence_over_arrays() {
        let mut arena = TermArena::new();
        let a1 = arena.sym("A");
        let a2 = arena.sym("B");
        let i = arena.sym("i");
        let va = arena.mk_var(a1, 0, Sort::IntArray);
        let vb = arena.mk_var(a2, 0, Sort::IntArray);
        let vi = arena.mk_var(i, 0, Sort::Int);
        let sa = arena.mk_sel(va, vi);
        let sb = arena.mk_sel(vb, vi);
        let mut e = Euf::new();
        e.assert_eq(&arena, va, vb, 1);
        e.assert_neq(&arena, sa, sb, 2);
        let expl = e.check().unwrap_err();
        assert_eq!(expl, vec![1, 2]);
    }
}
