//! Trigger-based (e-matching style) instantiation of quantified axioms.
//!
//! PINS uses quantified facts in two roles: library axioms (e.g.
//! `forall s, c. strlen(append(s, c)) = strlen(s) + 1`) and the identity
//! specification's array quantifier. The latter is skolemized away during
//! preprocessing; axioms are grounded here by *syntactic* matching of
//! triggers against the ground subterm universe, iterated for a bounded
//! number of rounds (new instances contribute new ground terms that may
//! enable further matches).

use std::collections::{HashMap, HashSet};

use pins_budget::{Budget, StopReason};
use pins_logic::{collect_subterms, Sort, Term, TermArena, TermId, BOUND_VERSION};

/// Budget for instantiation.
#[derive(Debug, Clone, Copy)]
pub struct InstConfig {
    /// Fixpoint rounds over the growing ground-term universe.
    pub max_rounds: usize,
    /// Hard cap on generated instances across all axioms.
    pub max_instances: usize,
}

impl Default for InstConfig {
    fn default() -> Self {
        InstConfig {
            max_rounds: 3,
            max_instances: 2000,
        }
    }
}

/// Result of one instantiation run.
#[derive(Debug, Default)]
pub struct InstOutcome {
    /// Ground instances of the axiom bodies.
    pub instances: Vec<TermId>,
    /// Whether the instance cap was hit (the solver reports incompleteness).
    pub truncated: bool,
    /// Set when the budget stopped instantiation mid-run; the instances
    /// gathered so far are still valid (sound) but incomplete.
    pub stopped: Option<StopReason>,
}

/// Instantiates `axioms` (each a `Forall` term) against the ground terms of
/// `roots`, charging `budget` one step per round and per generated instance.
pub fn instantiate(
    arena: &mut TermArena,
    axioms: &[TermId],
    roots: &[TermId],
    config: InstConfig,
    budget: &Budget,
) -> InstOutcome {
    let mut outcome = InstOutcome::default();
    let mut universe: HashSet<TermId> = HashSet::new();
    for &r in roots {
        collect_subterms(arena, r, &mut universe);
    }
    let mut done: HashSet<(TermId, Vec<TermId>)> = HashSet::new();

    'rounds: for _round in 0..config.max_rounds {
        if let Err(reason) = budget.charge(1) {
            outcome.stopped = Some(reason);
            break;
        }
        let mut new_instances: Vec<TermId> = Vec::new();
        for &ax in axioms {
            if let Err(reason) = budget.check() {
                outcome.stopped = Some(reason);
                outcome.instances.extend(new_instances);
                break 'rounds;
            }
            let Term::Forall(vars, body) = arena.term(ax).clone() else {
                continue;
            };
            let bound: Vec<(TermId, Sort)> = vars
                .iter()
                .map(|&(sym, sort)| (arena.mk_var(sym, BOUND_VERSION, sort), sort))
                .collect();
            let triggers = select_triggers(arena, body, &bound);
            if triggers.is_empty() {
                continue;
            }
            let ground: Vec<TermId> = universe.iter().copied().collect();
            let substs = match_triggers(arena, &triggers, &ground, &bound);
            for subst in substs {
                let key: Vec<TermId> = bound.iter().map(|&(v, _)| subst[&v]).collect();
                if !done.insert((ax, key)) {
                    continue;
                }
                if outcome.instances.len() + new_instances.len() >= config.max_instances {
                    outcome.truncated = true;
                    break;
                }
                let inst = arena.substitute(body, &subst);
                new_instances.push(inst);
                let _ = budget.charge(1); // polled at the next loop head
            }
        }
        if new_instances.is_empty() || outcome.truncated {
            outcome.instances.extend(new_instances);
            break;
        }
        for &i in &new_instances {
            collect_subterms(arena, i, &mut universe);
        }
        outcome.instances.extend(new_instances);
    }
    outcome
}

/// Chooses trigger patterns for an axiom body: prefer the smallest single
/// application subterm covering all bound variables; otherwise a greedy set
/// of application subterms jointly covering them.
fn select_triggers(arena: &TermArena, body: TermId, bound: &[(TermId, Sort)]) -> Vec<TermId> {
    let mut subs = HashSet::new();
    collect_subterms(arena, body, &mut subs);
    let bound_set: HashSet<TermId> = bound.iter().map(|&(v, _)| v).collect();
    let mut candidates: Vec<(TermId, HashSet<TermId>, usize)> = Vec::new();
    for &s in &subs {
        if !matches!(arena.term(s), Term::App(..) | Term::Sel(..) | Term::Upd(..)) {
            continue;
        }
        let mut inner = HashSet::new();
        collect_subterms(arena, s, &mut inner);
        let vars: HashSet<TermId> = inner.intersection(&bound_set).copied().collect();
        if vars.is_empty() {
            continue;
        }
        candidates.push((s, vars, inner.len()));
    }
    // single covering trigger, smallest first; term id as tie-break so the
    // choice does not follow the hash set's per-process iteration order
    candidates.sort_by_key(|&(t, _, size)| (size, t));
    for (s, vars, _) in &candidates {
        if vars.len() == bound_set.len() {
            return vec![*s];
        }
    }
    // greedy cover
    let mut chosen = Vec::new();
    let mut covered: HashSet<TermId> = HashSet::new();
    for (s, vars, _) in &candidates {
        if !vars.is_subset(&covered) {
            chosen.push(*s);
            covered.extend(vars.iter().copied());
            if covered.len() == bound_set.len() {
                return chosen;
            }
        }
    }
    Vec::new() // cannot cover: give up on this axiom
}

type Subst = HashMap<TermId, TermId>;

fn match_triggers(
    arena: &TermArena,
    triggers: &[TermId],
    ground: &[TermId],
    bound: &[(TermId, Sort)],
) -> Vec<Subst> {
    let mut partials: Vec<Subst> = vec![HashMap::new()];
    for &trig in triggers {
        let mut next: Vec<Subst> = Vec::new();
        for partial in &partials {
            for &g in ground {
                if !is_ground(arena, g, bound) {
                    continue;
                }
                let mut subst = partial.clone();
                if match_pattern(arena, trig, g, &mut subst) {
                    next.push(subst);
                }
            }
        }
        next.sort_by_key(|s| {
            let mut v: Vec<(TermId, TermId)> = s.iter().map(|(&k, &x)| (k, x)).collect();
            v.sort_unstable();
            v
        });
        next.dedup_by_key(|s| {
            let mut v: Vec<(TermId, TermId)> = s.iter().map(|(&k, &x)| (k, x)).collect();
            v.sort_unstable();
            v
        });
        partials = next;
        if partials.is_empty() {
            return Vec::new();
        }
    }
    partials
        .into_iter()
        .filter(|s| bound.iter().all(|&(v, _)| s.contains_key(&v)))
        .collect()
}

fn is_ground(arena: &TermArena, t: TermId, bound: &[(TermId, Sort)]) -> bool {
    let mut subs = HashSet::new();
    collect_subterms(arena, t, &mut subs);
    bound.iter().all(|&(v, _)| !subs.contains(&v))
        && !subs.iter().any(
            |&s| matches!(arena.term(s), Term::Var { version, .. } if *version == BOUND_VERSION),
        )
}

/// Syntactic one-way matching: extends `subst` so that `pat[subst] == g`.
fn match_pattern(arena: &TermArena, pat: TermId, g: TermId, subst: &mut Subst) -> bool {
    // bound variable?
    if let Term::Var { version, sort, .. } = arena.term(pat) {
        if *version == BOUND_VERSION {
            if arena.sort(g) != *sort {
                return false;
            }
            return match subst.get(&pat) {
                Some(&existing) => existing == g,
                None => {
                    subst.insert(pat, g);
                    true
                }
            };
        }
    }
    if pat == g {
        return true;
    }
    match (arena.term(pat), arena.term(g)) {
        (Term::App(f, pargs), Term::App(h, gargs)) if f == h && pargs.len() == gargs.len() => {
            let (pargs, gargs) = (pargs.clone(), gargs.clone());
            pargs
                .into_iter()
                .zip(gargs)
                .all(|(p, q)| match_pattern(arena, p, q, subst))
        }
        (Term::Sel(a1, b1), Term::Sel(a2, b2)) => {
            let (a1, b1, a2, b2) = (*a1, *b1, *a2, *b2);
            match_pattern(arena, a1, a2, subst) && match_pattern(arena, b1, b2, subst)
        }
        (Term::Upd(a1, b1, c1), Term::Upd(a2, b2, c2)) => {
            let (a1, b1, c1, a2, b2, c2) = (*a1, *b1, *c1, *a2, *b2, *c2);
            match_pattern(arena, a1, a2, subst)
                && match_pattern(arena, b1, b2, subst)
                && match_pattern(arena, c1, c2, subst)
        }
        (Term::Add(a1, b1), Term::Add(a2, b2))
        | (Term::Sub(a1, b1), Term::Sub(a2, b2))
        | (Term::Mul(a1, b1), Term::Mul(a2, b2)) => {
            let (a1, b1, a2, b2) = (*a1, *b1, *a2, *b2);
            match_pattern(arena, a1, a2, subst) && match_pattern(arena, b1, b2, subst)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the axiom `forall s, c. strlen(append(s, c)) = strlen(s) + 1`.
    fn strlen_axiom(arena: &mut TermArena) -> (TermId, pins_logic::Symbol, pins_logic::Symbol) {
        let str_sort = Sort::Unint(arena.sym("Str"));
        let ch_sort = Sort::Unint(arena.sym("Char"));
        let strlen = arena.declare_fun("strlen", vec![str_sort], Sort::Int);
        let append = arena.declare_fun("append", vec![str_sort, ch_sort], str_sort);
        let s = arena.sym("s");
        let c = arena.sym("c");
        let bs = arena.mk_bound(s, str_sort);
        let bc = arena.mk_bound(c, ch_sort);
        let app = arena.mk_app(append, vec![bs, bc]);
        let lhs = arena.mk_app(strlen, vec![app]);
        let inner = arena.mk_app(strlen, vec![bs]);
        let one = arena.mk_int(1);
        let rhs = arena.mk_add(inner, one);
        let body = arena.mk_eq(lhs, rhs);
        let ax = arena.mk_forall(vec![(s, str_sort), (c, ch_sort)], body);
        (ax, strlen, append)
    }

    #[test]
    fn instantiates_matching_ground_terms() {
        let mut arena = TermArena::new();
        let (ax, strlen, append) = strlen_axiom(&mut arena);
        let str_sort = Sort::Unint(arena.sym("Str"));
        let ch_sort = Sort::Unint(arena.sym("Char"));
        let w = arena.sym("w");
        let d = arena.sym("d");
        let vw = arena.mk_var(w, 0, str_sort);
        let vd = arena.mk_var(d, 0, ch_sort);
        let appended = arena.mk_app(append, vec![vw, vd]);
        let len = arena.mk_app(strlen, vec![appended]);
        let five = arena.mk_int(5);
        let root = arena.mk_eq(len, five);
        let out = instantiate(
            &mut arena,
            &[ax],
            &[root],
            InstConfig::default(),
            &Budget::unlimited(),
        );
        assert_eq!(out.instances.len(), 1);
        // The instance should be strlen(append(w,d)) = strlen(w) + 1.
        let shown = arena.display(out.instances[0]).to_string();
        assert!(shown.contains("strlen"), "unexpected instance {shown}");
        assert!(!out.truncated);
    }

    #[test]
    fn no_matches_no_instances() {
        let mut arena = TermArena::new();
        let (ax, _, _) = strlen_axiom(&mut arena);
        let x = arena.sym("x");
        let vx = arena.mk_var(x, 0, Sort::Int);
        let one = arena.mk_int(1);
        let root = arena.mk_le(vx, one);
        let out = instantiate(
            &mut arena,
            &[ax],
            &[root],
            InstConfig::default(),
            &Budget::unlimited(),
        );
        assert!(out.instances.is_empty());
    }

    #[test]
    fn chained_rounds_follow_new_terms() {
        // ground term append(append(e, c1), c2): round 1 instantiates the
        // outer application; the instance mentions strlen(append(e,c1)),
        // which licenses the inner instance in round 2.
        let mut arena = TermArena::new();
        let (ax, strlen, append) = strlen_axiom(&mut arena);
        let str_sort = Sort::Unint(arena.sym("Str"));
        let ch_sort = Sort::Unint(arena.sym("Char"));
        let e = arena.mk_var(arena.symbols().get("s").unwrap(), 0, str_sort);
        let c1 = {
            let c = arena.sym("c1");
            arena.mk_var(c, 0, ch_sort)
        };
        let c2 = {
            let c = arena.sym("c2");
            arena.mk_var(c, 0, ch_sort)
        };
        let inner = arena.mk_app(append, vec![e, c1]);
        let outer = arena.mk_app(append, vec![inner, c2]);
        let len = arena.mk_app(strlen, vec![outer]);
        let five = arena.mk_int(5);
        let root = arena.mk_eq(len, five);
        let out = instantiate(
            &mut arena,
            &[ax],
            &[root],
            InstConfig::default(),
            &Budget::unlimited(),
        );
        assert_eq!(out.instances.len(), 2, "expected chained instantiation");
    }

    #[test]
    fn instance_cap_reported() {
        let mut arena = TermArena::new();
        let (ax, strlen, append) = strlen_axiom(&mut arena);
        let str_sort = Sort::Unint(arena.sym("Str"));
        let ch_sort = Sort::Unint(arena.sym("Char"));
        let base = {
            let s = arena.sym("base");
            arena.mk_var(s, 0, str_sort)
        };
        let c = {
            let c = arena.sym("c");
            arena.mk_var(c, 0, ch_sort)
        };
        let mut t = base;
        for _ in 0..10 {
            t = arena.mk_app(append, vec![t, c]);
        }
        let len = arena.mk_app(strlen, vec![t]);
        let zero = arena.mk_int(0);
        let root = arena.mk_eq(len, zero);
        let out = instantiate(
            &mut arena,
            &[ax],
            &[root],
            InstConfig {
                max_rounds: 10,
                max_instances: 3,
            },
            &Budget::unlimited(),
        );
        assert!(out.truncated);
        assert!(out.instances.len() <= 3);
        let _ = strlen;
    }
}
