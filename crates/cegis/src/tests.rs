use pins_core::{Session, Spec, SpecItem};
use pins_ir::{parse_expr_in, parse_pred_in, program_to_string, ExternEnv, Store, Value};

use crate::*;

fn double_session() -> Session {
    let mut s = Session::from_sources(
        r#"
proc double(in n: int, out m: int) {
  local i: int;
  assume(n >= 0);
  i := 0; m := 0;
  while (i < n) {
    m, i := m + 2, i + 1;
  }
}
"#,
        r#"
proc double_inv(in m: int, out nI: int) {
  local j: int;
  j, nI := ?e1, ?e2;
  while (?p1) {
    nI, j := ?e3, ?e4;
  }
}
"#,
    );
    let c = s.composed.clone();
    s.expr_candidates = ["0", "m", "nI + 1", "nI - 1", "j + 2", "j + 1", "j - 2"]
        .iter()
        .map(|src| parse_expr_in(&c, src).unwrap())
        .collect();
    s.pred_candidates = ["j < m", "nI < m", "j < nI"]
        .iter()
        .map(|src| parse_pred_in(&c, src).unwrap())
        .collect();
    s.spec = Spec {
        items: vec![SpecItem::IntEq {
            input: c.var_by_name("n").unwrap(),
            output: c.var_by_name("nI").unwrap(),
        }],
    };
    s
}

fn battery(session: &Session, ns: &[i64]) -> Vec<Store> {
    let n_var = session.original.var_by_name("n").unwrap();
    ns.iter()
        .map(|&n| {
            let mut s = Store::new();
            s.insert(n_var, Value::Int(n));
            s
        })
        .collect()
}

#[test]
fn cegis_finds_the_double_inverse() {
    let session = double_session();
    let env = ExternEnv::new();
    let battery = battery(&session, &[0, 1, 2, 3, 4, 5]);
    let report = synthesize(&session, &env, &battery, CegisConfig::default());
    let inv = report.solution.expect("cegis should find the inverse");
    let printed = program_to_string(&inv);
    assert!(
        printed.contains("j < m") || printed.contains("nI"),
        "{printed}"
    );
    assert!(report.candidates_tried >= 1);
    assert!(report.sat_size > 0);
    // validate on a fresh input
    let n_var = session.original.var_by_name("n").unwrap();
    let mut input = Store::new();
    input.insert(n_var, Value::Int(7));
    let mid = pins_ir::run(&session.original, &input, &env, 10_000).unwrap();
    let mut inv_inputs = Store::new();
    inv_inputs.insert(
        inv.var_by_name("m").unwrap(),
        mid[&session.original.var_by_name("m").unwrap()].clone(),
    );
    let out = pins_ir::run(&inv, &inv_inputs, &env, 10_000).unwrap();
    assert_eq!(out[&inv.var_by_name("nI").unwrap()], Value::Int(7));
}

#[test]
fn cegis_reports_failure_when_candidates_insufficient() {
    let mut session = double_session();
    let c = session.composed.clone();
    // remove the winning step expressions
    session.expr_candidates = ["0", "m", "nI - 1", "j - 2"]
        .iter()
        .map(|src| parse_expr_in(&c, src).unwrap())
        .collect();
    let env = ExternEnv::new();
    let battery = battery(&session, &[0, 1, 2, 3]);
    let report = synthesize(&session, &env, &battery, CegisConfig::default());
    assert!(report.solution.is_none());
    assert!(report.failure.is_some());
}

#[test]
fn cegis_counterexamples_accumulate() {
    let session = double_session();
    let env = ExternEnv::new();
    // n = 0 alone accepts trivial inverses; bigger inputs refute them
    let battery = battery(&session, &[0, 3]);
    let report = synthesize(&session, &env, &battery, CegisConfig::default());
    assert!(report.solution.is_some());
}
