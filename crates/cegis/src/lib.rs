//! A finitized CEGIS baseline — the stand-in for the paper's Sketch
//! comparison (§4.3, Tables 3 and 5).
//!
//! Like Sketch, the baseline requires the problem to be *finitized*: inputs
//! are drawn from a bounded domain (array lengths and element values are
//! capped), and a candidate counts as verified when it inverts the original
//! program on every test in the bounded battery. The loop is classic
//! counterexample-guided inductive synthesis:
//!
//! 1. propose a template instantiation consistent with the accumulated
//!    counterexample set (SAT enumeration over indicator variables);
//! 2. check it against the battery by concrete execution;
//! 3. on failure, record the failing input as a counterexample and block
//!    the candidate.
//!
//! Differences from Sketch worth noting when reading the reproduction
//! numbers: verification here is concrete re-execution rather than
//! bit-blasted bounded model checking, and external functions are executed
//! through their host semantics (Sketch has no axiom mechanism at all, so
//! the paper could only run it on the 6 axiom-free benchmarks).

use std::time::{Duration, Instant};

use pins_budget::Budget;
use pins_core::{build_domains, resolve_solution, DomainConfig, Session, Solution, SpecItem};
use pins_ir::{run, ExternEnv, Program, Store, Value};
use pins_sat::{Lit, SolveResult, Solver as SatSolver, Var};

/// Finitization and search bounds.
#[derive(Debug, Clone)]
pub struct CegisConfig {
    /// Cap on proposed candidates before giving up.
    pub max_candidates: u64,
    /// Interpreter fuel per run.
    pub fuel: u64,
    /// Maximum atoms per predicate-hole conjunction (same encoding as PINS).
    pub pred_subset_max: usize,
    /// Wall-clock budget.
    pub time_budget: Option<Duration>,
}

impl Default for CegisConfig {
    fn default() -> Self {
        CegisConfig {
            max_candidates: 2_000_000,
            fuel: 100_000,
            pred_subset_max: 1,
            time_budget: Some(Duration::from_secs(600)),
        }
    }
}

/// The outcome of a CEGIS run.
#[derive(Debug, Clone)]
pub struct CegisReport {
    /// The synthesized inverse, if found.
    pub solution: Option<Program>,
    /// Candidates proposed by the SAT enumerator.
    pub candidates_tried: u64,
    /// Counterexamples accumulated.
    pub counterexamples: usize,
    /// Wall-clock time.
    pub time: Duration,
    /// Final SAT formula size (vars + literal occurrences) — Table 5's
    /// `|SAT|` analogue.
    pub sat_size: usize,
    /// Why the run stopped without a solution, if it did.
    pub failure: Option<String>,
}

/// Runs finitized CEGIS over the session's template and candidate sets.
/// `battery` is the bounded input domain: a candidate that inverts the
/// original on every battery element is accepted (the Sketch-style bounded
/// guarantee).
pub fn synthesize(
    session: &Session,
    env: &ExternEnv,
    battery: &[Store],
    config: CegisConfig,
) -> CegisReport {
    let mut span = pins_trace::span("cegis.synthesize");
    let report = synthesize_inner(session, env, battery, config);
    if span.is_active() {
        span.record("solved", report.solution.is_some());
        span.record_u64("candidates", report.candidates_tried);
        span.record_u64("counterexamples", report.counterexamples as u64);
        span.record_u64("sat_size", report.sat_size as u64);
        if let Some(f) = &report.failure {
            span.record_str("failure", f);
        }
    }
    report
}

fn synthesize_inner(
    session: &Session,
    env: &ExternEnv,
    battery: &[Store],
    config: CegisConfig,
) -> CegisReport {
    let start = Instant::now();
    // CEGIS verifies concretely (no SmtSession), but the provenance context
    // still tags the run's trace points with the benchmark and the
    // counterexample round, mirroring the engine's attribution scheme.
    let prov = pins_trace::ProvenanceCtx::new(&session.original.name);
    let _phase = prov.enter_phase(pins_trace::Phase::Cegis);
    let domains = build_domains(
        session,
        DomainConfig {
            pred_subset_max: config.pred_subset_max,
            include_true_invariant: true,
        },
    );

    // run the original once per battery input
    let mut forwards: Vec<(Store, Store)> = Vec::new();
    for input in battery {
        match run(&session.original, input, env, config.fuel) {
            Ok(mid) => forwards.push((input.clone(), mid)),
            Err(_) => continue, // outside the precondition
        }
    }
    if forwards.is_empty() {
        return CegisReport {
            solution: None,
            candidates_tried: 0,
            counterexamples: 0,
            time: start.elapsed(),
            sat_size: 0,
            failure: Some("empty battery after preconditions".into()),
        };
    }

    // indicator encoding (template holes only need checking concretely, but
    // synthetic rank/invariant holes exist in the domain table: fix them to
    // their first candidate, since termination is enforced by fuel here)
    let mut sat = SatSolver::new();
    // the wall-clock budget also interrupts a runaway SAT solve mid-search,
    // not just between candidates
    sat.set_budget(Budget::with_limits(config.time_budget, None));
    let evars: Vec<Vec<Var>> = domains
        .exprs
        .iter()
        .map(|dom| {
            let vars: Vec<Var> = dom.iter().map(|_| sat.new_var()).collect();
            exactly_one(&mut sat, &vars);
            vars
        })
        .collect();
    let pvars: Vec<Vec<Var>> = domains
        .preds
        .iter()
        .map(|dom| {
            let vars: Vec<Var> = dom.iter().map(|_| sat.new_var()).collect();
            exactly_one(&mut sat, &vars);
            vars
        })
        .collect();
    // synthetic ranking/invariant holes don't affect concrete execution:
    // pin them so the enumeration covers template holes only (termination
    // of candidates is enforced by interpreter fuel instead)
    for &(_, h) in &domains.rank_holes {
        if let Some(&v) = evars[h.0 as usize].first() {
            sat.add_clause(&[Lit::pos(v)]);
        }
    }
    for &(_, h) in &domains.inv_holes {
        if let Some(&v) = pvars[h.0 as usize].first() {
            sat.add_clause(&[Lit::pos(v)]);
        }
    }

    // CEGIS state: counterexamples are indices into `forwards`
    let mut active: Vec<usize> = vec![0];
    let mut tried = 0u64;
    loop {
        if tried >= config.max_candidates {
            return report(
                start,
                None,
                tried,
                active.len(),
                &sat,
                Some("candidate budget".into()),
            );
        }
        if let Some(budget) = config.time_budget {
            if start.elapsed() > budget {
                return report(
                    start,
                    None,
                    tried,
                    active.len(),
                    &sat,
                    Some("timeout".into()),
                );
            }
        }
        match sat.solve() {
            SolveResult::Interrupted(reason) => {
                return report(
                    start,
                    None,
                    tried,
                    active.len(),
                    &sat,
                    Some(format!("interrupted: {reason}")),
                );
            }
            SolveResult::Unsat => {
                return report(
                    start,
                    None,
                    tried,
                    active.len(),
                    &sat,
                    Some("no candidate passes the counterexamples".into()),
                );
            }
            SolveResult::Sat => {
                tried += 1;
                let solution = Solution {
                    exprs: evars.iter().map(|vars| pick(&sat, vars)).collect(),
                    preds: pvars.iter().map(|vars| pick(&sat, vars)).collect(),
                };
                let resolved = resolve_solution(session, &domains, &solution);
                let inverse = &resolved.inverse;
                // check against the active counterexample set first
                let mut failed = false;
                for &t in &active {
                    if !passes(session, inverse, env, &forwards[t], config.fuel) {
                        failed = true;
                        break;
                    }
                }
                if !failed {
                    // bounded verification over the whole battery
                    let mut cex = None;
                    for (t, fw) in forwards.iter().enumerate() {
                        if !passes(session, inverse, env, fw, config.fuel) {
                            cex = Some(t);
                            break;
                        }
                    }
                    match cex {
                        None => {
                            let inv = inverse.clone();
                            return report(start, Some(inv), tried, active.len(), &sat, None);
                        }
                        Some(t) => {
                            if !active.contains(&t) {
                                active.push(t);
                                prov.set_cegis_round(active.len() as u64);
                                pins_trace::point("cegis.cex", || {
                                    vec![
                                        ("bench", prov.benchmark().as_ref().into()),
                                        ("round", (active.len() as u64).into()),
                                        ("candidate", tried.into()),
                                        ("battery_index", (t as u64).into()),
                                    ]
                                });
                            }
                        }
                    }
                }
                // block this exact assignment
                let mut clause = Vec::new();
                for (h, &choice) in solution.exprs.iter().enumerate() {
                    if choice != usize::MAX {
                        clause.push(Lit::neg(evars[h][choice]));
                    }
                }
                for (h, &choice) in solution.preds.iter().enumerate() {
                    if choice != usize::MAX {
                        clause.push(Lit::neg(pvars[h][choice]));
                    }
                }
                if !sat.add_clause(&clause) {
                    return report(
                        start,
                        None,
                        tried,
                        active.len(),
                        &sat,
                        Some("search space exhausted".into()),
                    );
                }
            }
        }
    }
}

fn report(
    start: Instant,
    solution: Option<Program>,
    tried: u64,
    cex: usize,
    sat: &SatSolver,
    failure: Option<String>,
) -> CegisReport {
    CegisReport {
        solution,
        candidates_tried: tried,
        counterexamples: cex,
        time: start.elapsed(),
        sat_size: sat.formula_size(),
        failure,
    }
}

fn pick(sat: &SatSolver, vars: &[Var]) -> usize {
    vars.iter()
        .position(|&v| sat.value(v) == Some(true))
        .unwrap_or(usize::MAX)
}

fn exactly_one(sat: &mut SatSolver, vars: &[Var]) {
    if vars.is_empty() {
        return;
    }
    let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
    sat.add_clause(&lits);
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            sat.add_clause(&[Lit::neg(vars[i]), Lit::neg(vars[j])]);
        }
    }
}

/// Runs the candidate inverse after the original and checks the spec
/// concretely.
fn passes(
    session: &Session,
    inverse: &Program,
    env: &ExternEnv,
    (orig_inputs, mid): &(Store, Store),
    fuel: u64,
) -> bool {
    // inverse inputs come from the original's final store (shared names)
    let mut inv_inputs = Store::new();
    for &(v, mode) in &inverse.params {
        if matches!(mode, pins_ir::Mode::In | pins_ir::Mode::InOut) {
            let name = &inverse.var(v).name;
            if let Some(ov) = session.original.var_by_name(name) {
                if let Some(val) = mid.get(&ov) {
                    inv_inputs.insert(v, val.clone());
                }
            }
        }
    }
    let Ok(out) = run(inverse, &inv_inputs, env, fuel) else {
        return false;
    };
    check_spec(session, inverse, env, orig_inputs, mid, &out)
}

fn check_spec(
    session: &Session,
    inverse: &Program,
    env: &ExternEnv,
    orig_inputs: &Store,
    mid: &Store,
    out: &Store,
) -> bool {
    let orig = &session.original;
    // spec items refer to composed-program variable ids; translate by name
    let composed = &session.composed;
    let by_name = |v: pins_ir::VarId| composed.var(v).name.clone();
    let orig_val = |name: &str, store: &Store| -> Option<Value> {
        orig.var_by_name(name).and_then(|v| store.get(&v).cloned())
    };
    let out_val = |name: &str| -> Option<Value> {
        inverse.var_by_name(name).and_then(|v| out.get(&v).cloned())
    };
    for item in &session.spec.items {
        let ok = match item {
            SpecItem::IntEq { input, output } | SpecItem::AbsEq { input, output } => {
                orig_val(&by_name(*input), orig_inputs) == out_val(&by_name(*output))
            }
            SpecItem::IntEqFinal { left, right } => {
                orig_val(&by_name(*left), mid) == out_val(&by_name(*right))
            }
            SpecItem::ArrayEq { input, output, len } => {
                let n = orig_val(&by_name(*len), orig_inputs)
                    .and_then(|v| v.as_int().ok())
                    .unwrap_or(0);
                match (
                    orig_val(&by_name(*input), orig_inputs),
                    out_val(&by_name(*output)),
                ) {
                    (Some(a), Some(b)) => a.arr_prefix(n).ok() == b.arr_prefix(n).ok(),
                    _ => false,
                }
            }
            SpecItem::ArrayEqFinalLen { input, output, len } => {
                let n = orig_val(&by_name(*len), mid)
                    .and_then(|v| v.as_int().ok())
                    .unwrap_or(0);
                match (
                    orig_val(&by_name(*input), orig_inputs),
                    out_val(&by_name(*output)),
                ) {
                    (Some(a), Some(b)) => a.arr_prefix(n).ok() == b.arr_prefix(n).ok(),
                    _ => false,
                }
            }
            SpecItem::ObsEq {
                input,
                output,
                len_fun,
                obs_fun,
            } => {
                match (
                    orig_val(&by_name(*input), orig_inputs),
                    out_val(&by_name(*output)),
                ) {
                    (Some(a), Some(b)) => {
                        let la = env.try_call(len_fun, std::slice::from_ref(&a)).ok();
                        let lb = env.try_call(len_fun, std::slice::from_ref(&b)).ok();
                        match (la, lb) {
                            (Some(Value::Int(la)), Some(Value::Int(lb))) if la == lb => (0..la)
                                .all(|j| {
                                    env.try_call(obs_fun, &[a.clone(), Value::Int(j)]).ok()
                                        == env.try_call(obs_fun, &[b.clone(), Value::Int(j)]).ok()
                                }),
                            _ => false,
                        }
                    }
                    _ => false,
                }
            }
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests;
