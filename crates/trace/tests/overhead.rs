//! Proves the disabled-recorder fast path is a true no-op: no heap
//! allocation and no event emission. Runs as its own test binary because it
//! swaps in a counting global allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_tracing_allocates_nothing() {
    assert!(!pins_trace::is_enabled());

    // Warm up thread-locals (span stack, thread slot) outside the window.
    {
        let mut s = pins_trace::span("warmup");
        s.record_u64("x", 1);
    }
    pins_trace::count("warmup.count", 1);

    let before = allocations();
    for i in 0..10_000u64 {
        let mut s = pins_trace::span("hot.span");
        s.record_u64("iteration", i);
        s.record_str("label", "never copied");
        pins_trace::count("hot.count", i);
        pins_trace::point("hot.point", || vec![("x", i.into())]);
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "disabled tracing must not allocate (saw {} allocations over 10k iterations)",
        after - before
    );
}

#[test]
fn disabled_counter_bumps_do_not_allocate() {
    let registry = pins_trace::MetricsRegistry::new();
    let counter = registry.counter("hot.cell"); // creation may allocate; that's outside the window

    let before = allocations();
    for _ in 0..10_000 {
        counter.inc();
        counter.add(3);
        counter.record_max(7);
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "counter handle bumps must be allocation-free"
    );
    // first iteration: 1 + 3 then raised to 7; each later iteration adds 4
    assert_eq!(counter.get(), 7 + 4 * 9_999);
}

#[test]
fn histogram_records_do_not_allocate() {
    let registry = pins_trace::MetricsRegistry::new();
    let bound = registry.histogram("hot.hist"); // creation may allocate; outside the window
    let detached = pins_trace::Histogram::detached();
    let prov = pins_trace::ProvenanceCtx::new("bench");

    let before = allocations();
    for i in 0..10_000u64 {
        bound.record(i * 17);
        detached.record(i * 31);
        detached.record_duration(std::time::Duration::from_nanos(i));
        // provenance reads/writes on the query hot path are atomics only
        prov.set_iteration(i);
        let _ = prov.phase();
        let g = prov.enter_phase(pins_trace::Phase::Solve);
        drop(g);
    }
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "histogram records and provenance updates must be allocation-free"
    );
    assert_eq!(bound.count(), 10_000);
    assert_eq!(detached.count(), 20_000);
}
