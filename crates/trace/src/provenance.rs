//! Query provenance: *which synthesis decision* a solver event belongs to.
//!
//! The spans of PR 3 say how long each layer took; they cannot say that a
//! pathological `smt.query` was issued by `pickOne` in iteration 7 against
//! path 12. A [`ProvenanceCtx`] is the cheap answer: a shared handle the
//! engine mutates as the run moves through its phases, and that every
//! [`SmtSession`](../../pins_smt) (including forked worker sessions) reads
//! when it opens a query span or bumps a per-phase counter. The fields are
//! plain atomics behind one `Arc`, so updating the context costs a relaxed
//! store and reading it on a disabled-tracing hot path costs one relaxed
//! load — no allocation either way (the benchmark name is read only when a
//! recorder is installed).
//!
//! Fields carried: benchmark/program name, `pins.iteration` number, the
//! current [`Phase`], the path id being explored/verified, and the CEGIS
//! counterexample round.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// The synthesis phase a query originates from. Mirrors the paper's Table 4
/// columns plus the validation subsystems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Outside any instrumented phase.
    None = 0,
    /// Constraint verification inside `solve` (the paper's "SMT reduction").
    Solve = 1,
    /// The `pickOne` infeasibility-count heuristic.
    PickOne = 2,
    /// Symbolic execution (including its feasibility probes).
    Symexec = 3,
    /// Concrete test generation from explored paths (§2.5).
    TestGen = 4,
    /// Bounded model checking of a synthesized inverse.
    Bmc = 5,
    /// The finitized CEGIS baseline.
    Cegis = 6,
}

/// Every phase, in tag order (indexable by `phase as usize`).
pub const PHASES: [Phase; 7] = [
    Phase::None,
    Phase::Solve,
    Phase::PickOne,
    Phase::Symexec,
    Phase::TestGen,
    Phase::Bmc,
    Phase::Cegis,
];

impl Phase {
    /// The stable string tag used in span fields and counter names.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::None => "none",
            Phase::Solve => "solve",
            Phase::PickOne => "pickone",
            Phase::Symexec => "symexec",
            Phase::TestGen => "testgen",
            Phase::Bmc => "bmc",
            Phase::Cegis => "cegis",
        }
    }

    fn from_u8(v: u8) -> Phase {
        PHASES.get(v as usize).copied().unwrap_or(Phase::None)
    }
}

#[derive(Debug)]
struct ProvInner {
    /// Benchmark / program display name. Set once at run start, read only
    /// when a recorder is installed (taking this lock is off the disabled
    /// hot path).
    bench: Mutex<Arc<str>>,
    iteration: AtomicU64,
    phase: AtomicU8,
    /// Id of the path being explored or discharged (1-based; 0 = none).
    path: AtomicU64,
    /// CEGIS counterexample round (0 = not in CEGIS).
    cegis_round: AtomicU64,
}

/// A cheap shared provenance context. Cloning shares the fields: the engine
/// holds one handle and mutates it; sessions (and their forks) hold clones
/// and read it at query time.
#[derive(Debug, Clone)]
pub struct ProvenanceCtx {
    inner: Arc<ProvInner>,
}

impl Default for ProvenanceCtx {
    fn default() -> Self {
        ProvenanceCtx::new("")
    }
}

impl ProvenanceCtx {
    /// A fresh context for `benchmark` (the program or benchmark name).
    pub fn new(benchmark: &str) -> ProvenanceCtx {
        ProvenanceCtx {
            inner: Arc::new(ProvInner {
                bench: Mutex::new(Arc::from(benchmark)),
                iteration: AtomicU64::new(0),
                phase: AtomicU8::new(Phase::None as u8),
                path: AtomicU64::new(0),
                cegis_round: AtomicU64::new(0),
            }),
        }
    }

    /// Whether two handles share the same underlying context.
    pub fn same_ctx(&self, other: &ProvenanceCtx) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Overwrites the benchmark name (takes a lock; call at run start, not
    /// on hot paths).
    pub fn set_benchmark(&self, name: &str) {
        *self.inner.bench.lock().unwrap() = Arc::from(name);
    }

    /// The benchmark name (cheap `Arc` clone under a short lock).
    pub fn benchmark(&self) -> Arc<str> {
        self.inner.bench.lock().unwrap().clone()
    }

    /// Sets the current `pins.iteration` number.
    pub fn set_iteration(&self, i: u64) {
        self.inner.iteration.store(i, Ordering::Relaxed);
    }

    /// The current iteration number.
    pub fn iteration(&self) -> u64 {
        self.inner.iteration.load(Ordering::Relaxed)
    }

    /// Sets the id of the path currently being explored or discharged
    /// (1-based; 0 means none).
    pub fn set_path(&self, id: u64) {
        self.inner.path.store(id, Ordering::Relaxed);
    }

    /// The current path id (0 = none).
    pub fn path(&self) -> u64 {
        self.inner.path.load(Ordering::Relaxed)
    }

    /// Sets the CEGIS counterexample round.
    pub fn set_cegis_round(&self, round: u64) {
        self.inner.cegis_round.store(round, Ordering::Relaxed);
    }

    /// The CEGIS counterexample round (0 = not in CEGIS).
    pub fn cegis_round(&self) -> u64 {
        self.inner.cegis_round.load(Ordering::Relaxed)
    }

    /// The current phase (one relaxed load).
    #[inline]
    pub fn phase(&self) -> Phase {
        Phase::from_u8(self.inner.phase.load(Ordering::Relaxed))
    }

    /// Enters `phase`, returning a guard that restores the previous phase on
    /// drop — phases nest like spans (`Solve` may briefly enter `PickOne`).
    #[must_use = "dropping the guard immediately restores the previous phase"]
    pub fn enter_phase(&self, phase: Phase) -> PhaseGuard {
        let prev = self.inner.phase.swap(phase as u8, Ordering::Relaxed);
        PhaseGuard {
            ctx: self.clone(),
            prev,
        }
    }
}

/// Restores the previous phase of a [`ProvenanceCtx`] on drop.
#[derive(Debug)]
pub struct PhaseGuard {
    ctx: ProvenanceCtx,
    prev: u8,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        self.ctx.inner.phase.store(self.prev, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_guards_nest_and_restore() {
        let ctx = ProvenanceCtx::new("bench");
        assert_eq!(ctx.phase(), Phase::None);
        {
            let _solve = ctx.enter_phase(Phase::Solve);
            assert_eq!(ctx.phase(), Phase::Solve);
            {
                let _pick = ctx.enter_phase(Phase::PickOne);
                assert_eq!(ctx.phase(), Phase::PickOne);
            }
            assert_eq!(ctx.phase(), Phase::Solve);
        }
        assert_eq!(ctx.phase(), Phase::None);
    }

    #[test]
    fn clones_share_every_field() {
        let ctx = ProvenanceCtx::new("a");
        let other = ctx.clone();
        assert!(ctx.same_ctx(&other));
        ctx.set_iteration(7);
        ctx.set_path(12);
        ctx.set_cegis_round(3);
        ctx.set_benchmark("b");
        assert_eq!(other.iteration(), 7);
        assert_eq!(other.path(), 12);
        assert_eq!(other.cegis_round(), 3);
        assert_eq!(&*other.benchmark(), "b");
    }

    #[test]
    fn phase_tags_are_distinct_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for (i, p) in PHASES.iter().enumerate() {
            assert_eq!(*p as usize, i, "PHASES must be indexable by tag");
            assert!(seen.insert(p.as_str()), "duplicate phase tag");
        }
    }
}
