//! Structured tracing and metrics for the PINS solver stack.
//!
//! The paper's evaluation (Table 4, §4) is a per-benchmark breakdown of
//! where time goes — symbolic execution, SMT reduction, SAT, `pickOne` —
//! and CEGIS-style loops are notoriously dominated by a handful of
//! pathological solver calls. This crate is the observability layer that
//! makes those claims measurable in the reproduction:
//!
//! * **[`MetricsRegistry`]** — a thread-safe registry of named atomic
//!   counters and duration accumulators. One registry per synthesis run is
//!   the single source of truth for every statistic the stack reports;
//!   the legacy `SolveStats` / `SessionStats` / `PinsStats` structs are
//!   typed views over it. Counter handles are cheap `Arc<AtomicU64>`
//!   clones, so parallel verification workers bump the *same* cells their
//!   parent reads — no after-the-fact merging, no drift.
//! * **[`span`]** — RAII spans with monotonic timing and per-thread span
//!   stacks, so events emitted from worker threads are attributed to the
//!   worker's own open span rather than whatever the main thread is doing.
//! * **[`Recorder`]** — a thread-safe structured-event sink. Events go to
//!   a JSONL stream (`--trace-out`) or an in-memory ring buffer. Exactly
//!   one recorder can be [`install`]ed process-wide at a time.
//!
//! # Overhead discipline
//!
//! Tracing must cost nothing when off. Every emission point first checks a
//! single process-wide `AtomicBool` ([`is_enabled`]); when it reads
//! `false`, [`span::span`] returns an inert guard and [`count`] returns
//! immediately — **no allocation, no lock, one relaxed atomic load**. The
//! `overhead.rs` integration test pins this down with a counting
//! allocator. Registry counters are independent of the recorder: they are
//! plain relaxed atomic adds and stay on even when event recording is off
//! (they are how `PinsStats` is built).
//!
//! # Example
//!
//! ```
//! use pins_trace::{Recorder, MetricsRegistry, span};
//!
//! let recorder = Recorder::ring(1024);
//! let _guard = pins_trace::install(recorder.clone());
//!
//! let registry = MetricsRegistry::new();
//! let queries = registry.counter("smt.queries");
//! {
//!     let mut s = span("smt.query");
//!     s.record_u64("conflicts", 3);
//!     queries.inc();
//! } // span end event emitted here, with the duration
//!
//! drop(_guard); // uninstalls the recorder, appending a trace.summary point
//! let events = recorder.events();
//! assert_eq!(events.len(), 3); // start + end + trace.summary
//! assert_eq!(registry.get("smt.queries"), 1);
//! ```

pub mod hist;
pub mod json;
pub mod metrics;
pub mod provenance;
pub mod recorder;
pub mod span;

#[cfg(test)]
mod tests;

pub use hist::{HistSnapshot, Histogram};
pub use metrics::{Counter, MetricsRegistry};
pub use provenance::{Phase, PhaseGuard, ProvenanceCtx, PHASES};
pub use recorder::{
    count, install, is_enabled, point, uninstall, Event, EventKind, FieldValue, InstallGuard,
    Recorder,
};
pub use span::{span, Span};
