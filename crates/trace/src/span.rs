//! RAII spans with monotonic timing and per-thread span stacks.
//!
//! A [`Span`] marks a region of work. Opening one emits a `span_start`
//! event; dropping it emits `span_end` with the measured duration and any
//! fields recorded in between. Each thread keeps its own stack of open span
//! ids, so events emitted from a parallel verification worker are parented
//! to *that worker's* span, not to whatever the main thread has open.
//!
//! Spans are unwind-safe: a guard dropped during a panic (e.g. inside the
//! `catch_unwind` isolation of a verification worker) still closes its span
//! and repairs the thread's stack, popping any abandoned inner spans along
//! the way so nesting stays consistent for subsequent spans.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::recorder::{is_enabled, with_recorder, EventKind, FieldValue};

/// Span ids are process-global and never 0 (0 means "no span").
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Open span ids on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// The (innermost open span id, stack depth) on the calling thread.
/// `(0, 0)` at top level.
pub fn current() -> (u64, usize) {
    STACK.with(|s| {
        let s = s.borrow();
        (s.last().copied().unwrap_or(0), s.len())
    })
}

/// An RAII span guard. Created by [`span`]; emits the closing event (with
/// duration and recorded fields) on drop.
#[derive(Debug)]
pub struct Span {
    /// 0 when inert (tracing disabled at creation).
    id: u64,
    parent: u64,
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(&'static str, FieldValue)>,
}

/// Opens a span named `name`. When no recorder is installed this is a
/// no-op: one relaxed atomic load, no allocation, and the returned guard is
/// inert (its `record_*` methods return immediately).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span {
            id: 0,
            parent: 0,
            name,
            start: None,
            fields: Vec::new(),
        };
    }
    open_span(name)
}

/// The slow path: allocate an id, push it, emit `span_start`.
fn open_span(name: &'static str) -> Span {
    let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
    let parent = STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied().unwrap_or(0);
        s.push(id);
        parent
    });
    with_recorder(|r| r.emit(EventKind::SpanStart, name, id, parent, None, Vec::new()));
    Span {
        id,
        parent,
        name,
        start: Some(Instant::now()),
        fields: Vec::new(),
    }
}

impl Span {
    /// Whether this guard will emit events (false when tracing was disabled
    /// at creation).
    pub fn is_active(&self) -> bool {
        self.id != 0
    }

    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attaches a field to the closing event. No-op on an inert span.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.id != 0 {
            self.fields.push((key, value.into()));
        }
    }

    /// Attaches an unsigned field. No-op on an inert span.
    pub fn record_u64(&mut self, key: &'static str, value: u64) {
        self.record(key, value);
    }

    /// Attaches a signed field. No-op on an inert span.
    pub fn record_i64(&mut self, key: &'static str, value: i64) {
        self.record(key, value);
    }

    /// Attaches a float field. No-op on an inert span.
    pub fn record_f64(&mut self, key: &'static str, value: f64) {
        if self.id != 0 {
            self.fields.push((key, FieldValue::F64(value)));
        }
    }

    /// Attaches a string field. No-op on an inert span (the string is not
    /// even copied).
    pub fn record_str(&mut self, key: &'static str, value: &str) {
        if self.id != 0 {
            self.fields.push((key, FieldValue::Str(value.to_string())));
        }
    }

    /// Attaches a duration field, in microseconds. No-op on an inert span.
    pub fn record_duration(&mut self, key: &'static str, value: std::time::Duration) {
        self.record(key, value.as_micros() as u64);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        // Repair the thread stack: pop until this span's id comes off. Inner
        // guards abandoned by an unwind (leaked or dropped out of order) are
        // discarded here so nesting stays consistent afterwards.
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            while let Some(top) = s.pop() {
                if top == self.id {
                    break;
                }
            }
        });
        let dur_us = self
            .start
            .map(|t| t.elapsed().as_micros() as u64)
            .unwrap_or(0);
        let fields = std::mem::take(&mut self.fields);
        let (id, parent, name) = (self.id, self.parent, self.name);
        with_recorder(|r| r.emit(EventKind::SpanEnd, name, id, parent, Some(dur_us), fields));
    }
}
