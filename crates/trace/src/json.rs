//! A minimal JSON reader, just enough to validate and inspect the JSONL
//! trace stream and the benchmark report without external dependencies.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). Numbers are kept as `f64`; the trace schema
//! only emits integers that fit losslessly.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        // surrogate pairs are not emitted by the writer;
                        // decode lone surrogates as replacement characters
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // collect a UTF-8 run
                let start = *pos;
                if c < 0x20 {
                    return Err(format!("raw control character at byte {pos}"));
                }
                *pos += 1;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' && b[*pos] >= 0x20 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}
