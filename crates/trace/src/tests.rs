//! Unit tests for the tracing crate.
//!
//! Tests that install the process-wide recorder serialize on [`GLOBAL_LOCK`]
//! so the harness's default parallel execution cannot interleave installs.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use crate::json::{self, Json};
use crate::metrics::MetricsRegistry;
use crate::recorder::{count, install, is_enabled, point, uninstall, EventKind, Recorder};
use crate::span::{current, span};

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

/// Serializes access to the global recorder slot across tests, recovering
/// from poisoning (a failed test must not cascade).
fn global_lock() -> MutexGuard<'static, ()> {
    GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A `Write` sink backed by a shared byte buffer, so tests can read back
/// what a JSONL recorder wrote.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

// -- json -------------------------------------------------------------------

#[test]
fn json_parses_scalars() {
    assert_eq!(json::parse("null").unwrap(), Json::Null);
    assert_eq!(json::parse("true").unwrap(), Json::Bool(true));
    assert_eq!(json::parse("false").unwrap(), Json::Bool(false));
    assert_eq!(json::parse("42").unwrap(), Json::Num(42.0));
    assert_eq!(json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
    assert_eq!(json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
}

#[test]
fn json_parses_structures() {
    let v = json::parse(r#"{"a": [1, 2, {"b": "x\ny"}], "c": null}"#).unwrap();
    let arr = v.get("a").unwrap();
    match arr {
        Json::Arr(items) => {
            assert_eq!(items.len(), 3);
            assert_eq!(items[2].get("b").unwrap().as_str(), Some("x\ny"));
        }
        other => panic!("expected array, got {other:?}"),
    }
    assert_eq!(v.get("c"), Some(&Json::Null));
}

#[test]
fn json_parses_escapes() {
    let v = json::parse(r#""q\"uote \\ A \t""#).unwrap();
    assert_eq!(v.as_str(), Some("q\"uote \\ A \t"));
}

#[test]
fn json_rejects_malformed() {
    for bad in [
        "",
        "{",
        "[1,",
        "{\"a\":}",
        "tru",
        "1 2",
        "\"unterminated",
        "{\"a\" 1}",
    ] {
        assert!(json::parse(bad).is_err(), "accepted {bad:?}");
    }
}

// -- event serialization ----------------------------------------------------

#[test]
fn event_json_roundtrips_through_parser() {
    let _g = global_lock();
    let rec = Recorder::ring(16);
    rec.emit(
        EventKind::Point,
        "test.point",
        7,
        3,
        Some(1500),
        vec![
            ("count", 9u64.into()),
            ("delta", (-4i64).into()),
            ("ok", true.into()),
            ("label", "a \"quoted\"\nline".into()),
            ("ratio", crate::recorder::FieldValue::F64(0.25)),
            ("nan", crate::recorder::FieldValue::F64(f64::NAN)),
        ],
    );
    let events = rec.events();
    assert_eq!(events.len(), 1);
    let v = json::parse(&events[0].to_json()).expect("event JSON must parse");
    assert_eq!(v.get("kind").unwrap().as_str(), Some("point"));
    assert_eq!(v.get("name").unwrap().as_str(), Some("test.point"));
    assert_eq!(v.get("span").unwrap().as_num(), Some(7.0));
    assert_eq!(v.get("parent").unwrap().as_num(), Some(3.0));
    assert_eq!(v.get("dur_us").unwrap().as_num(), Some(1500.0));
    let fields = v.get("fields").unwrap();
    assert_eq!(fields.get("count").unwrap().as_num(), Some(9.0));
    assert_eq!(fields.get("delta").unwrap().as_num(), Some(-4.0));
    assert_eq!(fields.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        fields.get("label").unwrap().as_str(),
        Some("a \"quoted\"\nline")
    );
    assert_eq!(fields.get("ratio").unwrap().as_num(), Some(0.25));
    assert_eq!(fields.get("nan"), Some(&Json::Null));
}

// -- recorder sinks ---------------------------------------------------------

#[test]
fn ring_buffer_evicts_oldest_and_counts_drops() {
    let rec = Recorder::ring(3);
    for _ in 0..5 {
        rec.emit(EventKind::Count, "c", 0, 0, None, Vec::new());
    }
    let events = rec.events();
    assert_eq!(events.len(), 3);
    assert_eq!(events[0].seq, 3); // 1 and 2 were evicted
    assert_eq!(rec.emitted(), 5);
    assert_eq!(rec.dropped(), 2);
}

#[test]
fn jsonl_sink_emits_one_parseable_object_per_line() {
    let _g = global_lock();
    let buf = SharedBuf::default();
    let rec = Recorder::jsonl(Box::new(buf.clone()));
    {
        let _guard = install(rec.clone());
        let mut s = span("outer");
        s.record_u64("n", 1);
        count("ticks", 2);
        point("obs", || vec![("x", 1u64.into())]);
    }
    let text = buf.contents();
    let lines: Vec<&str> = text.lines().collect();
    // span_start, count, point, span_end, plus the trace.summary appended
    // at uninstall
    assert_eq!(lines.len(), 5);
    let mut prev_seq = 0.0;
    for line in &lines {
        let v = json::parse(line).expect("every JSONL line must parse");
        let seq = v.get("seq").unwrap().as_num().unwrap();
        assert!(seq > prev_seq, "seq must be strictly increasing");
        prev_seq = seq;
    }
    assert_eq!(
        json::parse(lines[3]).unwrap().get("kind").unwrap().as_str(),
        Some("span_end")
    );
    let summary = json::parse(lines[4]).unwrap();
    assert_eq!(summary.get("name").unwrap().as_str(), Some("trace.summary"));
    let fields = summary.get("fields").unwrap();
    assert_eq!(fields.get("emitted").unwrap().as_num(), Some(4.0));
    assert_eq!(fields.get("dropped").unwrap().as_num(), Some(0.0));
}

// -- install / enable -------------------------------------------------------

#[test]
fn install_guard_toggles_enabled_flag() {
    let _g = global_lock();
    assert!(!is_enabled());
    {
        let _guard = install(Recorder::ring(4));
        assert!(is_enabled());
    }
    assert!(!is_enabled());
    assert!(uninstall().is_none());
}

#[test]
fn disabled_emitters_are_inert() {
    let _g = global_lock();
    assert!(!is_enabled());
    let mut s = span("ghost");
    assert!(!s.is_active());
    assert_eq!(s.id(), 0);
    s.record_u64("ignored", 1);
    count("ghost.count", 1);
    point("ghost.point", || panic!("fields closure must not run"));
    assert_eq!(current(), (0, 0));
}

// -- spans ------------------------------------------------------------------

#[test]
fn spans_nest_and_attribute_parents() {
    let _g = global_lock();
    let rec = Recorder::ring(64);
    let _guard = install(rec.clone());

    let outer = span("outer");
    let outer_id = outer.id();
    assert_ne!(outer_id, 0);
    {
        let inner = span("inner");
        assert_ne!(inner.id(), outer_id);
        assert_eq!(current(), (inner.id(), 2));
        count("inside", 1);
    }
    assert_eq!(current(), (outer_id, 1));
    drop(outer);
    assert_eq!(current(), (0, 0));
    drop(_guard);

    let events = rec.events();
    let starts: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanStart)
        .collect();
    assert_eq!(starts.len(), 2);
    assert_eq!(starts[0].parent, 0);
    assert_eq!(starts[1].parent, outer_id);
    let count_ev = events.iter().find(|e| e.kind == EventKind::Count).unwrap();
    assert_eq!(
        count_ev.parent, starts[1].span,
        "count parents to innermost span"
    );
    // ends come innermost-first, each with a duration
    let ends: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd)
        .collect();
    assert_eq!(ends.len(), 2);
    assert_eq!(ends[0].name, "inner");
    assert_eq!(ends[1].name, "outer");
    assert!(ends.iter().all(|e| e.dur_us.is_some()));
}

#[test]
fn span_timing_is_monotone_in_nesting() {
    let _g = global_lock();
    let rec = Recorder::ring(64);
    let _guard = install(rec.clone());
    {
        let _outer = span("outer");
        {
            let _inner = span("inner");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    drop(_guard);
    let events = rec.events();
    let dur = |name: &str| {
        events
            .iter()
            .find(|e| e.kind == EventKind::SpanEnd && e.name == name)
            .unwrap()
            .dur_us
            .unwrap()
    };
    assert!(dur("outer") >= dur("inner"), "outer span contains inner");
    assert!(
        dur("inner") >= 2000,
        "sleep must be visible in the duration"
    );
}

#[test]
fn spans_are_per_thread() {
    let _g = global_lock();
    let rec = Recorder::ring(64);
    let _guard = install(rec.clone());

    let _main_span = span("main.work");
    let main_id = _main_span.id();
    std::thread::spawn(|| {
        // a fresh thread starts with an empty span stack
        assert_eq!(current(), (0, 0));
        let worker = span("worker.task");
        assert_ne!(worker.id(), 0);
    })
    .join()
    .unwrap();
    assert_eq!(current(), (main_id, 1));
    drop(_main_span);
    drop(_guard);

    let worker_start = rec
        .events()
        .iter()
        .find(|e| e.name == "worker.task" && e.kind == EventKind::SpanStart)
        .cloned()
        .unwrap();
    assert_eq!(worker_start.parent, 0, "worker span not parented to main's");
}

#[test]
fn span_stack_survives_panic_unwind() {
    let _g = global_lock();
    let rec = Recorder::ring(64);
    let _guard = install(rec.clone());

    let outer = span("outer");
    let outer_id = outer.id();
    let result = std::panic::catch_unwind(|| {
        let _worker = span("worker");
        // an inner span deliberately leaked mid-unwind
        std::mem::forget(span("leaked"));
        panic!("worker exploded");
    });
    assert!(result.is_err());
    // `worker` was dropped during the unwind; its Drop repaired the stack,
    // discarding the leaked inner id, so `outer` is on top again.
    assert_eq!(current(), (outer_id, 1));
    drop(outer);
    assert_eq!(current(), (0, 0));
    drop(_guard);

    let events = rec.events();
    let worker_end = events
        .iter()
        .find(|e| e.kind == EventKind::SpanEnd && e.name == "worker")
        .unwrap();
    assert!(
        worker_end.dur_us.is_some(),
        "unwound span still closes with timing"
    );
    let outer_end = events
        .iter()
        .find(|e| e.kind == EventKind::SpanEnd && e.name == "outer")
        .unwrap();
    assert_eq!(outer_end.span, outer_id);
}

// -- metrics registry -------------------------------------------------------

#[test]
fn registry_counters_share_cells_across_clones() {
    let reg = MetricsRegistry::new();
    let reg2 = reg.clone();
    assert!(reg.same_registry(&reg2));
    assert!(!reg.same_registry(&MetricsRegistry::new()));

    let a = reg.counter("smt.queries");
    let b = reg2.counter("smt.queries");
    a.inc();
    b.add(4);
    assert_eq!(reg.get("smt.queries"), 5);
    assert_eq!(a.get(), 5);

    // get() on an absent name reports 0 without creating a cell
    assert_eq!(reg.get("never.touched"), 0);
    assert!(!reg.snapshot().contains_key("never.touched"));
}

#[test]
fn registry_counters_sum_across_threads() {
    let reg = MetricsRegistry::new();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let c = reg.counter("hits");
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(reg.get("hits"), 4000);
}

#[test]
fn registry_durations_and_max() {
    let reg = MetricsRegistry::new();
    reg.add_duration("phase.sat", Duration::from_millis(3));
    reg.add_duration("phase.sat", Duration::from_millis(2));
    assert_eq!(reg.duration("phase.sat"), Duration::from_millis(5));

    reg.record_max("solve.max_clauses", 10);
    reg.record_max("solve.max_clauses", 7);
    assert_eq!(reg.get("solve.max_clauses"), 10);
}

#[test]
fn registry_snapshot_prefixed_strips_prefix() {
    let reg = MetricsRegistry::new();
    reg.add("phase.sat", 1);
    reg.add("phase.symexec", 2);
    reg.add("smt.queries", 3);
    let phases = reg.snapshot_prefixed("phase.");
    assert_eq!(phases.len(), 2);
    assert_eq!(phases.get("sat"), Some(&1));
    assert_eq!(phases.get("symexec"), Some(&2));
    let all = reg.snapshot();
    assert_eq!(all.len(), 3);
}
