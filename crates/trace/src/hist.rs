//! Log-scaled latency histograms: fixed-size, lock-free, mergeable.
//!
//! A [`Histogram`] is 64 power-of-two buckets of `AtomicU64` counts behind
//! an `Arc`, so recording is one relaxed atomic add — no allocation, no
//! lock — and cloning a handle shares the cells. That sharing is the merge
//! story for forked verification workers: a worker session's histogram
//! handle points at the *same* buckets its parent reads, so "merging" is
//! automatic and serial/parallel runs fill identical cells. An explicit
//! [`absorb`](Histogram::absorb) exists for combining histograms that were
//! recorded independently (e.g. one registry per benchmark).
//!
//! # Binning
//!
//! Values are recorded in nanoseconds. Bucket 0 holds exact zeros; bucket
//! `i >= 1` holds values in `[2^(i-1), 2^i)` (bucket 63 additionally
//! absorbs everything above `2^62`). Quantile accessors return the
//! arithmetic midpoint of the winning bucket, so a reported percentile is
//! within ~1.5x of the true value — plenty for "where did the time go"
//! attribution, at 512 bytes per histogram and zero overhead when idle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of buckets: zeros + one per power of two up to 2^63.
pub const BUCKETS: usize = 64;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The midpoint value a bucket reports for quantiles.
fn bucket_mid(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        // midpoint of [2^(i-1), 2^i): 3 * 2^(i-2)
        i => 3u64 << (i - 2),
    }
}

#[derive(Debug)]
pub(crate) struct HistCells {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistCells {
    fn default() -> HistCells {
        HistCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A handle to one shared log-scaled histogram. Cloning shares the buckets;
/// records are relaxed atomic adds, safe from any thread.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cells: Arc<HistCells>,
}

impl Histogram {
    /// A detached histogram (not in any registry) — useful as a default.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Whether two handles share the same underlying buckets.
    pub fn same_cells(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.cells, &other.cells)
    }

    /// Records one value (nanoseconds by convention). One relaxed atomic
    /// add; never allocates.
    #[inline]
    pub fn record(&self, v: u64) {
        self.cells.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Adds every bucket count of `other` into this histogram. Used to
    /// merge histograms recorded into *different* cells (handles cloned
    /// from the same registry share cells and need no merging).
    pub fn absorb(&self, other: &Histogram) {
        let snap = other.snapshot();
        for (i, n) in snap.buckets.iter().enumerate() {
            if *n > 0 {
                self.cells.buckets[i].fetch_add(*n, Ordering::Relaxed);
            }
        }
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in self.cells.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistSnapshot { buckets }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.snapshot().count()
    }

    /// The value at quantile `q` in `[0, 1]` (bucket midpoint; 0 when
    /// empty). See [`HistSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// An immutable copy of a histogram's buckets, with quantile accessors.
/// Two snapshots are equal iff every bucket count matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (see the module docs for the binning).
    pub buckets: [u64; BUCKETS],
}

impl HistSnapshot {
    /// An empty snapshot.
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; BUCKETS],
        }
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The value at quantile `q` in `[0, 1]`: the midpoint of the first
    /// bucket whose cumulative count reaches `q * count`. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_mid(i);
            }
        }
        bucket_mid(BUCKETS - 1)
    }

    /// Median (bucket midpoint).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket midpoint).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket midpoint).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another snapshot's counts into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_monotonic_and_exhaustive() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        let mut last = 0;
        for shift in 0..63 {
            let b = bucket_of(1u64 << shift);
            assert!(b >= last, "bucket index must be monotonic in the value");
            last = b;
        }
    }

    #[test]
    fn quantiles_land_in_the_recorded_range() {
        let h = Histogram::detached();
        for v in [100u64, 200, 400, 800, 100_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        // p50 of {100,200,400,800,100_000}: the 3rd value (400) -> its
        // bucket [256,512) reports midpoint 384
        assert_eq!(snap.p50(), 384);
        assert!(snap.p99() >= snap.p90());
        assert!(snap.p90() >= snap.p50());
        // p99 must land in the bucket of the largest value
        assert_eq!(bucket_of(snap.p99()), bucket_of(100_000));
    }

    #[test]
    fn cloned_handles_share_cells_and_absorb_merges_disjoint_ones() {
        let h = Histogram::detached();
        let clone = h.clone();
        clone.record(10);
        assert_eq!(h.count(), 1, "clones must share buckets");
        assert!(h.same_cells(&clone));

        let other = Histogram::detached();
        assert!(!h.same_cells(&other));
        other.record(10);
        other.record(1_000_000);
        h.absorb(&other);
        assert_eq!(h.count(), 3);
    }

    /// An empty histogram must report zero for every quantile, not panic
    /// or return a bucket midpoint.
    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = Histogram::detached();
        let snap = h.snapshot();
        assert_eq!(snap.count(), 0);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), 0, "q={q}");
        }
        assert_eq!(snap, HistSnapshot::empty());
    }

    /// With a single sample every quantile — including q=0 — must land in
    /// that sample's bucket.
    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::detached();
        h.record(700);
        let snap = h.snapshot();
        let expect = bucket_mid(bucket_of(700));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), expect, "q={q}");
        }
        // out-of-range quantiles clamp instead of indexing out of bounds
        assert_eq!(snap.quantile(-1.0), expect);
        assert_eq!(snap.quantile(2.0), expect);
    }

    /// The top bucket saturates: `u64::MAX` and `2^63` both land in bucket
    /// 63 and its midpoint stays representable (no shift overflow).
    #[test]
    fn extreme_values_saturate_the_top_bucket() {
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 63), BUCKETS - 1);
        assert_eq!(bucket_of((1u64 << 62) + 1), BUCKETS - 1);
        assert_eq!(bucket_mid(BUCKETS - 1), 3u64 << 61);

        let h = Histogram::detached();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        let snap = h.snapshot();
        assert_eq!(snap.buckets[BUCKETS - 1], 2);
        assert_eq!(snap.p50(), 3u64 << 61);
        assert_eq!(snap.p99(), 3u64 << 61);
    }

    #[test]
    fn concurrent_records_equal_serial_records() {
        let values: Vec<u64> = (0..4000u64).map(|i| (i * 2654435761) % 1_000_000).collect();
        let serial = Histogram::detached();
        for &v in &values {
            serial.record(v);
        }
        let shared = Histogram::detached();
        std::thread::scope(|s| {
            for chunk in values.chunks(1000) {
                let h = shared.clone();
                s.spawn(move || {
                    for &v in chunk {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(serial.snapshot(), shared.snapshot());
    }
}
