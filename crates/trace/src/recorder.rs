//! The structured-event recorder: event model, sinks, and the process-wide
//! installation point.
//!
//! A [`Recorder`] is a cheaply cloneable handle to a thread-safe sink.
//! Events are either kept in an in-memory ring buffer (bounded; oldest
//! events are dropped and counted) or serialized immediately as one JSON
//! object per line (JSONL) to an arbitrary writer, typically the file named
//! by the harness's `--trace-out` flag.
//!
//! Exactly one recorder is *installed* at a time. Emission points all over
//! the solver stack call [`is_enabled`] first — a single relaxed atomic
//! load — and only touch the global slot when it returns true, so an
//! uninstalled recorder costs nothing on hot paths.

use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// the event model
// ---------------------------------------------------------------------------

/// A typed field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned counter-like value.
    U64(u64),
    /// A signed value.
    I64(i64),
    /// A floating-point value (non-finite values serialize as `null`).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A short string (labels, verdicts).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// What kind of record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was opened.
    SpanStart,
    /// A span was closed; `dur_us` carries its wall-clock duration.
    SpanEnd,
    /// A named quantity was incremented (`fields["n"]` is the delta).
    Count,
    /// A point-in-time observation with arbitrary fields.
    Point,
}

impl EventKind {
    /// The JSON tag of the kind.
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Count => "count",
            EventKind::Point => "point",
        }
    }
}

/// One structured event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Global emission order (1-based, gap-free per recorder).
    pub seq: u64,
    /// Microseconds since the recorder was created (monotonic clock).
    pub t_us: u64,
    /// The emitting thread's slot (0 = first thread to emit).
    pub thread: u64,
    /// Record type.
    pub kind: EventKind,
    /// Event name, e.g. `"smt.query"`.
    pub name: &'static str,
    /// The span this event belongs to (its own id for span events), 0 if
    /// none.
    pub span: u64,
    /// The enclosing span on the emitting thread, 0 at top level.
    pub parent: u64,
    /// Span duration in microseconds (span-end events only).
    pub dur_us: Option<u64>,
    /// Attached key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Escapes `s` into `out` as JSON string *contents* (no surrounding quotes).
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Event {
    /// Renders the event as a single JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"t_us\":");
        s.push_str(&self.t_us.to_string());
        s.push_str(",\"thread\":");
        s.push_str(&self.thread.to_string());
        s.push_str(",\"kind\":\"");
        s.push_str(self.kind.tag());
        s.push_str("\",\"name\":\"");
        escape_json_into(&mut s, self.name);
        s.push('"');
        if self.span != 0 {
            s.push_str(",\"span\":");
            s.push_str(&self.span.to_string());
        }
        if self.parent != 0 {
            s.push_str(",\"parent\":");
            s.push_str(&self.parent.to_string());
        }
        if let Some(d) = self.dur_us {
            s.push_str(",\"dur_us\":");
            s.push_str(&d.to_string());
        }
        if !self.fields.is_empty() {
            s.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('"');
                escape_json_into(&mut s, k);
                s.push_str("\":");
                match v {
                    FieldValue::U64(n) => s.push_str(&n.to_string()),
                    FieldValue::I64(n) => s.push_str(&n.to_string()),
                    FieldValue::F64(f) if f.is_finite() => s.push_str(&format!("{f}")),
                    FieldValue::F64(_) => s.push_str("null"),
                    FieldValue::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
                    FieldValue::Str(t) => {
                        s.push('"');
                        escape_json_into(&mut s, t);
                        s.push('"');
                    }
                }
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

// ---------------------------------------------------------------------------
// sinks and the recorder
// ---------------------------------------------------------------------------

enum SinkImpl {
    /// Keep the most recent `cap` events in memory.
    Ring {
        buf: Mutex<VecDeque<Event>>,
        cap: usize,
    },
    /// Serialize each event immediately as one JSON line.
    Jsonl { out: Mutex<Box<dyn Write + Send>> },
}

struct Core {
    epoch: Instant,
    seq: AtomicU64,
    /// Events evicted from a full ring buffer.
    dropped: AtomicU64,
    sink: SinkImpl,
}

/// A thread-safe structured-event sink. Clones share the same buffer or
/// stream, so a test can keep one handle while the stack emits through the
/// installed one.
#[derive(Clone)]
pub struct Recorder {
    core: Arc<Core>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.core.sink {
            SinkImpl::Ring { .. } => "ring",
            SinkImpl::Jsonl { .. } => "jsonl",
        };
        f.debug_struct("Recorder")
            .field("sink", &kind)
            .field("emitted", &self.core.seq.load(Ordering::Relaxed))
            .field("dropped", &self.core.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Recorder {
    fn from_sink(sink: SinkImpl) -> Recorder {
        Recorder {
            core: Arc::new(Core {
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                sink,
            }),
        }
    }

    /// A recorder keeping the most recent `capacity` events in memory.
    pub fn ring(capacity: usize) -> Recorder {
        Recorder::from_sink(SinkImpl::Ring {
            buf: Mutex::new(VecDeque::with_capacity(capacity.min(4096))),
            cap: capacity.max(1),
        })
    }

    /// A recorder streaming one JSON object per line to `writer`.
    pub fn jsonl(writer: Box<dyn Write + Send>) -> Recorder {
        Recorder::from_sink(SinkImpl::Jsonl {
            out: Mutex::new(writer),
        })
    }

    /// A recorder streaming JSONL to a freshly created (truncated) file.
    pub fn jsonl_file(path: impl AsRef<Path>) -> std::io::Result<Recorder> {
        let f = std::fs::File::create(path)?;
        Ok(Recorder::jsonl(Box::new(BufWriter::new(f))))
    }

    /// Emits one event. Normally called through [`span`](crate::span) /
    /// [`count`] / [`point`], which fill in attribution.
    pub fn emit(
        &self,
        kind: EventKind,
        name: &'static str,
        span: u64,
        parent: u64,
        dur_us: Option<u64>,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        let event = Event {
            seq: self.core.seq.fetch_add(1, Ordering::Relaxed) + 1,
            t_us: self.core.epoch.elapsed().as_micros() as u64,
            thread: thread_slot(),
            kind,
            name,
            span,
            parent,
            dur_us,
            fields,
        };
        match &self.core.sink {
            SinkImpl::Ring { buf, cap } => {
                let mut buf = buf.lock().unwrap();
                if buf.len() >= *cap {
                    buf.pop_front();
                    self.core.dropped.fetch_add(1, Ordering::Relaxed);
                }
                buf.push_back(event);
            }
            SinkImpl::Jsonl { out } => {
                let mut line = event.to_json();
                line.push('\n');
                let mut out = out.lock().unwrap();
                // a broken pipe must not take down the solver; drop the event
                if out.write_all(line.as_bytes()).is_err() {
                    self.core.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Snapshot of the buffered events (ring sink only; empty for JSONL).
    pub fn events(&self) -> Vec<Event> {
        match &self.core.sink {
            SinkImpl::Ring { buf, .. } => buf.lock().unwrap().iter().cloned().collect(),
            SinkImpl::Jsonl { .. } => Vec::new(),
        }
    }

    /// Total events emitted through this recorder.
    pub fn emitted(&self) -> u64 {
        self.core.seq.load(Ordering::Relaxed)
    }

    /// Events lost to ring eviction or sink write errors.
    pub fn dropped(&self) -> u64 {
        self.core.dropped.load(Ordering::Relaxed)
    }

    /// Flushes a JSONL sink (no-op for ring buffers).
    pub fn flush(&self) {
        if let SinkImpl::Jsonl { out } = &self.core.sink {
            let _ = out.lock().unwrap().flush();
        }
    }
}

// ---------------------------------------------------------------------------
// process-wide installation
// ---------------------------------------------------------------------------

/// The one-load fast-path switch. `true` iff a recorder is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder. Only touched when `ENABLED` is true (emission)
/// or under install/uninstall.
static GLOBAL: Mutex<Option<Recorder>> = Mutex::new(None);

/// Whether a recorder is installed. One relaxed atomic load; this is the
/// *only* cost tracing adds when disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `recorder` process-wide, returning a guard that uninstalls it
/// (and flushes) on drop. Replaces any previously installed recorder.
#[must_use = "dropping the guard immediately uninstalls the recorder"]
pub fn install(recorder: Recorder) -> InstallGuard {
    let mut slot = GLOBAL.lock().unwrap();
    *slot = Some(recorder);
    ENABLED.store(true, Ordering::Relaxed);
    InstallGuard { _priv: () }
}

/// Uninstalls and returns the current recorder, if any, emitting a final
/// `trace.summary` point (total emitted, events dropped) and flushing it.
/// The summary is how a consumer (`pins-report`) distinguishes a complete
/// trace from one that silently lost events to ring eviction or sink write
/// errors — under-attribution becomes a counted warning instead of wrong
/// numbers.
pub fn uninstall() -> Option<Recorder> {
    let mut slot = GLOBAL.lock().unwrap();
    ENABLED.store(false, Ordering::Relaxed);
    let r = slot.take();
    if let Some(r) = &r {
        let emitted = r.emitted();
        let dropped = r.dropped();
        r.emit(
            EventKind::Point,
            "trace.summary",
            0,
            0,
            None,
            vec![("emitted", emitted.into()), ("dropped", dropped.into())],
        );
        r.flush();
    }
    r
}

/// Uninstalls the recorder installed by [`install`] when dropped.
#[derive(Debug)]
pub struct InstallGuard {
    _priv: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let _ = uninstall();
    }
}

/// Runs `f` with the installed recorder, if one is present. Callers must
/// check [`is_enabled`] first on hot paths (this takes the slot lock).
pub(crate) fn with_recorder(f: impl FnOnce(&Recorder)) {
    if let Ok(slot) = GLOBAL.lock() {
        if let Some(r) = slot.as_ref() {
            f(r);
        }
    }
}

// ---------------------------------------------------------------------------
// helpers: thread slots, counters, points
// ---------------------------------------------------------------------------

/// Dense per-thread slot ids for event attribution.
pub(crate) fn thread_slot() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static SLOT: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s)
}

/// Emits a `Count` event for `name` with delta `n`. A no-op (single atomic
/// load, no allocation) when no recorder is installed.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if !is_enabled() {
        return;
    }
    let (parent, _) = crate::span::current();
    with_recorder(|r| {
        r.emit(
            EventKind::Count,
            name,
            0,
            parent,
            None,
            vec![("n", n.into())],
        )
    });
}

/// Emits a `Point` event with arbitrary fields. A no-op (single atomic
/// load, no allocation) when no recorder is installed — build the field
/// vector lazily via the closure so the disabled path allocates nothing.
#[inline]
pub fn point(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, FieldValue)>) {
    if !is_enabled() {
        return;
    }
    let (parent, _) = crate::span::current();
    with_recorder(|r| r.emit(EventKind::Point, name, 0, parent, None, fields()));
}
