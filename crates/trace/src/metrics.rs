//! The unified stats registry: named atomic counters and duration
//! accumulators, one registry per synthesis run.
//!
//! Historically each layer of the stack kept its own stats struct
//! (`SolveStats` in `pins-core`, `SessionStats` in `pins-smt`,
//! `PinsStats` on the engine) and counters were hand-copied between them
//! at layer boundaries — three chances per counter to drift, and parallel
//! workers' numbers were summed after the fact. A [`MetricsRegistry`]
//! replaces that: every layer binds cheap [`Counter`] handles to the same
//! registry and bumps them *at event time*. Those structs still exist, but
//! as typed views reconstructed from the registry, so serial and parallel
//! runs report identical totals by construction.
//!
//! Durations are stored as nanoseconds in ordinary counters under the same
//! namespace (`phase.symexec`, `phase.sat`, ...); [`MetricsRegistry::add_duration`]
//! and [`MetricsRegistry::duration`] do the conversion.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::hist::{HistSnapshot, Histogram};

/// A handle to one named cell of a [`MetricsRegistry`]. Cloning shares the
/// cell; increments are relaxed atomic adds, safe from any thread.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A detached counter (not in any registry) — useful as a default.
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the value to at least `v` (for high-water marks).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.cell.fetch_max(v, Ordering::Relaxed);
    }

    /// Overwrites the value (for gauges).
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Adds a duration, in nanoseconds.
    #[inline]
    pub fn add_duration(&self, d: Duration) {
        self.add(d.as_nanos() as u64);
    }

    /// Reads the value as a duration in nanoseconds.
    #[inline]
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.get())
    }
}

#[derive(Debug, Default)]
struct Inner {
    cells: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    /// Named log-scaled latency histograms, same sharing discipline as the
    /// counters: a handle is an `Arc` of the buckets, so forked workers
    /// holding clones record into the same cells their parent reads.
    hists: Mutex<BTreeMap<String, Histogram>>,
}

/// A thread-safe registry of named counters. Cloning shares the registry
/// (it is an `Arc` handle): the engine, the SMT sessions it forks for
/// worker threads, and the benchmark harness all observe the same cells.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Whether two handles share the same underlying registry.
    pub fn same_registry(&self, other: &MetricsRegistry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The counter named `name`, created at 0 on first use. The returned
    /// handle is cheap to clone and bump; hot paths should hold a handle
    /// rather than calling this (it takes the registry lock).
    pub fn counter(&self, name: &str) -> Counter {
        let mut cells = self.inner.cells.lock().unwrap();
        let cell = cells
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            cell: Arc::clone(cell),
        }
    }

    /// One-shot add (prefer holding a [`Counter`] on hot paths).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// One-shot duration add.
    pub fn add_duration(&self, name: &str, d: Duration) {
        self.counter(name).add_duration(d);
    }

    /// One-shot max-record.
    pub fn record_max(&self, name: &str, v: u64) {
        self.counter(name).record_max(v);
    }

    /// Current value of `name` (0 if absent; the cell is not created).
    pub fn get(&self, name: &str) -> u64 {
        let cells = self.inner.cells.lock().unwrap();
        cells.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Value of `name` read as nanoseconds.
    pub fn duration(&self, name: &str) -> Duration {
        Duration::from_nanos(self.get(name))
    }

    /// A point-in-time copy of every cell, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let cells = self.inner.cells.lock().unwrap();
        cells
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// The histogram named `name`, created empty on first use. The returned
    /// handle is cheap to clone and record into; hot paths should hold a
    /// handle rather than calling this (it takes the registry lock).
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut hists = self.inner.hists.lock().unwrap();
        hists.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time copy of the named histogram's buckets (empty if the
    /// histogram was never created).
    pub fn histogram_snapshot(&self, name: &str) -> HistSnapshot {
        let hists = self.inner.hists.lock().unwrap();
        hists
            .get(name)
            .map(Histogram::snapshot)
            .unwrap_or_else(HistSnapshot::empty)
    }

    /// Point-in-time snapshots of every histogram, sorted by name.
    pub fn histograms(&self) -> BTreeMap<String, HistSnapshot> {
        let hists = self.inner.hists.lock().unwrap();
        hists
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect()
    }

    /// Snapshot restricted to names starting with `prefix`, with the prefix
    /// stripped.
    pub fn snapshot_prefixed(&self, prefix: &str) -> BTreeMap<String, u64> {
        let cells = self.inner.cells.lock().unwrap();
        cells
            .iter()
            .filter_map(|(k, v)| {
                k.strip_prefix(prefix)
                    .map(|rest| (rest.to_string(), v.load(Ordering::Relaxed)))
            })
            .collect()
    }
}
