//! Cross-crate integration tests: the full pipeline from DSL sources
//! through synthesis, validation, and the baselines.

use pins::bmc::{check_inverse, BmcConfig};
use pins::cegis::{synthesize, CegisConfig};
use pins::core::{Pins, PinsConfig, Session, Spec, SpecItem};
use pins::ir::{parse_expr_in, program_to_string};
use pins::suite::{benchmark, BenchmarkId};

/// A fresh inversion problem defined from scratch (not part of the suite):
/// offset-and-scale by constants.
fn affine_session() -> Session {
    let mut session = Session::from_sources(
        r#"
proc affine(in x: int, out y: int) {
  y := x + x + 3;
}
"#,
        r#"
proc affine_inv(in y: int, out xI: int) {
  local t: int;
  t := ?e1;
  xI := ?e2;
}
"#,
    );
    let c = session.composed.clone();
    session.expr_candidates = ["y - 3", "y + 3", "t - xI", "0", "t - t", "xI + t"]
        .iter()
        .map(|s| parse_expr_in(&c, s).unwrap())
        .collect();
    session.spec = Spec {
        items: vec![SpecItem::IntEq {
            input: c.var_by_name("x").unwrap(),
            output: c.var_by_name("xI").unwrap(),
        }],
    };
    session
}

#[test]
fn affine_is_not_invertible_with_linear_candidates_only() {
    // y = 2x + 3 needs halving, which no candidate provides: PINS must
    // prove non-invertibility over the template (the paper's debugging
    // story: the explored paths witness why)
    let mut session = affine_session();
    let err = Pins::new(PinsConfig::default())
        .run(&mut session)
        .unwrap_err();
    assert!(matches!(err, pins::core::PinsError::NoSolution { .. }));
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis is slow without optimizations; run with --release"
)]
fn pins_and_cegis_agree_on_sum_i() {
    let bench = benchmark(BenchmarkId::SumI);
    let mut session = bench.session();
    let outcome = Pins::new(bench.recommended_config())
        .run(&mut session)
        .unwrap();
    assert!(!outcome.solutions.is_empty());

    let env = bench.extern_env();
    let battery: Vec<_> = (0..12)
        .flat_map(|seed| [0usize, 1, 2, 4].map(|size| bench.gen_input(seed, size)))
        .collect();
    let report = synthesize(&session, &env, &battery, CegisConfig::default());
    let cegis_inv = report.solution.expect("cegis finds the Σi inverse");

    // both inverses agree on fresh concrete workloads
    for seed in 100..110 {
        assert!(
            bench
                .round_trip(&outcome.solutions[0].inverse, seed, 5)
                .unwrap(),
            "PINS inverse fails concretely"
        );
        assert!(
            bench.round_trip(&cegis_inv, seed, 5).unwrap(),
            "CEGIS inverse fails concretely"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "synthesis is slow without optimizations; run with --release"
)]
fn bmc_confirms_synthesized_vector_shift() {
    let bench = benchmark(BenchmarkId::VectorShift);
    let mut session = bench.session();
    let outcome = Pins::new(bench.recommended_config())
        .run(&mut session)
        .unwrap();
    let inverse = &outcome.solutions[0].inverse;
    let report = check_inverse(
        &session,
        inverse,
        BmcConfig {
            unroll: 3,
            input_bound: 2,
            ..BmcConfig::default()
        },
    );
    assert!(
        report.verified,
        "BMC rejected a synthesized inverse: {report:?}"
    );
}

#[test]
fn bmc_catches_a_planted_bug() {
    // take the correct run-length decoder but plant an off-by-one
    let bench = benchmark(BenchmarkId::SumI);
    let session = bench.session();
    let mut inverse = session.composed.clone();
    inverse.num_eholes = 0;
    inverse.num_pholes = 0;
    inverse.ehole_names.clear();
    inverse.phole_names.clear();
    let broken = r#"
proc sum_i_bad(in s: int, out nI: int) {
  local sI: int;
  nI := 0;
  sI := 0;
  while (sI < s) {
    nI := nI + 1;
    sI := sI + nI + 2;
  }
}
"#;
    let broken = pins::ir::parse_program(broken).unwrap();
    let (composed2, _, _) = session.original.concat(&broken);
    inverse.body = composed2.body[session.original.body.len()..].to_vec();
    // note: vars merged by name, so ids line up with the session's composed
    let report = check_inverse(
        &session,
        &inverse,
        BmcConfig {
            unroll: 6,
            input_bound: 4,
            ..BmcConfig::default()
        },
    );
    assert!(!report.verified, "BMC must refute the planted bug");
}

#[test]
fn synthesized_inverse_prints_as_valid_dsl() {
    let bench = benchmark(BenchmarkId::SumI);
    let mut session = bench.session();
    let outcome = Pins::new(bench.recommended_config())
        .run(&mut session)
        .unwrap();
    let printed = program_to_string(&outcome.solutions[0].inverse);
    let reparsed = pins::ir::parse_program(&printed)
        .unwrap_or_else(|e| panic!("printed inverse does not reparse: {e}\n{printed}"));
    assert_eq!(reparsed.num_eholes, 0);
}

#[test]
fn concrete_tests_satisfy_the_forward_precondition() {
    let bench = benchmark(BenchmarkId::SumI);
    let mut session = bench.session();
    let outcome = Pins::new(bench.recommended_config())
        .run(&mut session)
        .unwrap();
    let env = bench.extern_env();
    for test in &outcome.tests {
        let mut store = pins::ir::Store::new();
        for (name, value) in &test.inputs {
            store.insert(session.original.var_by_name(name).unwrap(), value.clone());
        }
        pins::ir::run(&session.original, &store, &env, 100_000)
            .expect("generated test violates the precondition");
    }
}
